"""SLOC/LLOC metric tests (Nguyen-style normalisation, Eqs. 2–3)."""

from repro.lang.source import VirtualFS
from repro.metrics import lloc, sloc, sloc_per_file
from repro.workflow.codebase import ModelSpec
from repro.workflow.indexer import index_codebase


def index(text, **files):
    fs = VirtualFS()
    for p, t in files.items():
        fs.add(p.replace("__", "/"), t)
    fs.add("main.cpp", text)
    spec = ModelSpec(app="t", model="m", lang="cpp", units={"main": "main.cpp"})
    return index_codebase(spec, fs)


class TestSloc:
    def test_counts_code_lines_only(self):
        cb = index("int a;\n\n// comment only\nint b;\n")
        assert sloc(cb) == 2

    def test_multiline_statement_counts_per_line(self):
        cb = index("int f(int a,\n      int b);\n")
        assert sloc(cb) == 2

    def test_comment_and_blank_free(self):
        cb = index("/* block\n   comment */\nint x;\n")
        assert sloc(cb) == 1

    def test_pp_variant_includes_headers(self):
        cb = index('#include "h.h"\nint x;\n', **{"h.h": "int a;\nint b;\nint c;\n"})
        # pre counts the unit files as written (#include line + header);
        # post counts the preprocessed stream (header body + main body).
        per_post = sloc_per_file(cb, "pp")
        assert per_post["h.h"] == 3
        assert per_post["main.cpp"] == 1

    def test_directives_count_as_code_pre_pp(self):
        cb = index("#define N 4\nint a[N];\n")
        assert sloc(cb) == 2

    def test_per_file_breakdown(self):
        cb = index('#include "h.h"\nint x;\n', **{"h.h": "int a;\n"})
        per = sloc_per_file(cb, "pp")
        assert "h.h" in per and "main.cpp" in per

    def test_coverage_variant_reduces(self, stream_serial):
        full = sloc(stream_serial)
        masked = sloc(stream_serial, mask=stream_serial.mask())
        assert 0 < masked <= full


class TestLloc:
    def test_for_header_is_one_logical_line(self):
        # "a for-loop header in C++ would be counted as a single line
        # regardless of linebreak"
        one_line = index("void f() { for (int i = 0; i < 9; i++) { g(); } }\nvoid g();\n")
        multi_line = index("void f() {\nfor (int i = 0;\n     i < 9;\n     i++) {\ng();\n}\n}\nvoid g();\n")
        assert lloc(one_line) == lloc(multi_line)

    def test_statements_counted(self):
        cb = index("void f() { int a = 1; int b = 2; a = b; }\n")
        assert lloc(cb) >= 3

    def test_lloc_insensitive_to_formatting(self):
        dense = index("int f(){int a=1;int b=2;return a+b;}\n")
        sparse = index("int f()\n{\n  int a = 1;\n  int b = 2;\n  return a + b;\n}\n")
        assert lloc(dense) == lloc(sparse)

    def test_sloc_sensitive_where_lloc_is_not(self):
        # the classic SLOC weakness the paper calls out: linebreak preference
        dense = index("int f(){int a=1;int b=2;return a+b;}\n")
        sparse = index("int f()\n{\n  int a = 1;\n  int b = 2;\n  return a + b;\n}\n")
        assert sloc(dense) != sloc(sparse)
        assert lloc(dense) == lloc(sparse)

    def test_pragma_is_one_logical_line(self):
        with_pragma = index("void f() {\n#pragma omp parallel for\nfor (int i = 0; i < 2; i++) { }\n}\n")
        without = index("void f() {\nfor (int i = 0; i < 2; i++) { }\n}\n")
        assert lloc(with_pragma) == lloc(without) + 1
