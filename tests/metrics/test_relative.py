"""Relative metrics: Source distance, tree metrics, TBMD facade, dmax."""

import pytest

from repro.lang.source import VirtualFS
from repro.metrics import source_distance, tbmd, tree_distance, module_coupling
from repro.workflow.codebase import ModelSpec, match_units
from repro.workflow.indexer import index_codebase


def index(text, model="m", role="main", **files):
    fs = VirtualFS()
    for p, t in files.items():
        fs.add(p.replace("__", "/"), t)
    fs.add("main.cpp", text)
    spec = ModelSpec(app="t", model=model, lang="cpp", units={role: "main.cpp"})
    return index_codebase(spec, fs)


SERIAL = "void f(double* a, int n) {\nfor (int i = 0; i < n; i++) { a[i] = 0.0; }\n}\n"
OMP = "void f(double* a, int n) {\n#pragma omp parallel for\nfor (int i = 0; i < n; i++) { a[i] = 0.0; }\n}\n"
DIFFERENT = "int unrelated(int x) {\nreturn x * 37;\n}\n"


class TestSourceDistance:
    def test_identical_zero(self):
        a = index(SERIAL)
        b = index(SERIAL, model="m2")
        d, dmax = source_distance(a, b)
        assert d == 0 and dmax > 0

    def test_small_edit_small_distance(self):
        a = index(SERIAL)
        b = index(OMP, model="m2")
        d, dmax = source_distance(a, b)
        assert 0 < d / dmax < 0.5

    def test_disjoint_near_max(self):
        a = index(SERIAL)
        b = index(DIFFERENT, model="m2")
        d, dmax = source_distance(a, b)
        assert d / dmax > 0.9


class TestTreeDistance:
    def test_identical_zero_for_all_kinds(self):
        a = index(SERIAL)
        b = index(SERIAL, model="m2")
        for kind in ("src", "src+pp", "sem", "sem+i", "ir"):
            d, _ = tree_distance(a, b, kind)
            assert d == 0, kind

    def test_renamed_code_is_identical_semantically(self):
        # name normalisation: renaming variables must not diverge
        renamed = SERIAL.replace("a[", "buf[").replace("double* a", "double* buf").replace(
            " n;", " count;"
        ).replace("< n", "< count").replace(", int n", ", int count")
        a = index(SERIAL)
        b = index(renamed, model="m2")
        d, _ = tree_distance(a, b, "sem")
        assert d == 0

    def test_unknown_kind_rejected(self):
        a = index(SERIAL)
        with pytest.raises(ValueError):
            tree_distance(a, a, "bogus")

    def test_dmax_normalisation_bounds(self):
        a = index(SERIAL)
        b = index(DIFFERENT, model="m2")
        d, dmax = tree_distance(a, b, "sem")
        assert dmax > 0
        assert d / dmax <= 1.0 + 1e-9

    def test_system_headers_masked_by_default(self):
        with_sys = index(
            '#include <big.h>\n' + SERIAL,
            model="m2",
            **{"<system>__big.h": "int h1();\nint h2();\nint h3();\n" * 20},
        )
        plain = index(SERIAL)
        d_masked, _ = tree_distance(plain, with_sys, "sem", include_system=False)
        d_open, _ = tree_distance(plain, with_sys, "sem", include_system=True)
        assert d_masked < d_open


class TestMatchUnits:
    def test_same_roles_paired(self):
        a = index(SERIAL, role="solver")
        b = index(OMP, model="m2", role="solver")
        pairs = match_units(a, b)
        assert len(pairs) == 1
        assert pairs[0][0].role == pairs[0][1].role == "solver"

    def test_missing_role_pairs_with_none(self):
        a = index(SERIAL, role="solver")
        b = index(OMP, model="m2", role="driver")
        pairs = dict()
        for ua, ub in match_units(a, b):
            pairs[(ua.role if ua else None, ub.role if ub else None)] = True
        assert (None, "driver") in pairs and ("solver", None) in pairs

    def test_unmatched_units_count_fully(self):
        a = index(SERIAL, role="solver")
        b = index(SERIAL, model="m2", role="driver")
        d, dmax = tree_distance(a, b, "sem")
        assert d == dmax  # full deletion + full insertion
        assert d > 0


class TestTbmdFacade:
    def test_profile_contains_all_rows(self, stream_serial, stream_omp):
        res = tbmd(stream_serial, stream_omp)
        for key in ("SLOC", "LLOC", "Source", "Tsrc", "Tsem", "Tsem+i", "Tir"):
            assert key in res.values, key

    def test_self_comparison_all_zero(self, stream_serial):
        res = tbmd(stream_serial, stream_serial)
        for key, v in res.values.items():
            assert v == pytest.approx(0.0), key

    def test_coverage_rows_present_when_profiled(self, stream_serial, stream_omp):
        res = tbmd(stream_serial, stream_omp)
        assert "Tsem+cov" in res.values

    def test_raw_pairs_kept(self, stream_serial, stream_omp):
        res = tbmd(stream_serial, stream_omp)
        d, dmax = res.raw["Tsem"]
        assert res.values["Tsem"] == pytest.approx(d / dmax)


class TestCoupling:
    def test_single_file_zero(self):
        cb = index(SERIAL)
        assert module_coupling(cb) == 0.0

    def test_header_dependency_counted(self):
        cb = index('#include "h.h"\n' + SERIAL, **{"h.h": "int helper();\n"})
        assert module_coupling(cb) > 0.0
