"""MiniIR optimisation pass tests."""

from repro.compiler import (
    IRFunction,
    IRInstr,
    IRModule,
    eliminate_dead_instrs,
    fold_constants,
    run_default_pipeline,
)


def module_with(instrs):
    m = IRModule("t")
    f = IRFunction("f")
    b = f.new_block("entry")
    for i in instrs:
        b.add(i)
    m.functions.append(f)
    return m, f


class TestConstantFolding:
    def test_folds_const_add(self):
        m, f = module_with(
            [
                IRInstr("add", ["const:2", "const:3"], "%1"),
                IRInstr("ret", ["%1"]),
            ]
        )
        assert fold_constants(m) == 1
        assert f.blocks[0].instrs[0].op == "ret"
        assert f.blocks[0].instrs[0].operands == ["const:5"]

    def test_folds_chains(self):
        m, f = module_with(
            [
                IRInstr("mul", ["const:2", "const:3"], "%1"),
                IRInstr("add", ["%1", "const:1"], "%2"),
                IRInstr("ret", ["%2"]),
            ]
        )
        assert fold_constants(m) == 2
        assert f.blocks[0].instrs[0].operands == ["const:7"]

    def test_float_folding(self):
        m, f = module_with(
            [IRInstr("mul", ["const:0.5", "const:4.0"], "%1"), IRInstr("ret", ["%1"])]
        )
        fold_constants(m)
        assert f.blocks[0].instrs[0].operands == ["const:2.0"]

    def test_division_by_zero_safe(self):
        m, f = module_with(
            [IRInstr("div", ["const:1", "const:0"], "%1"), IRInstr("ret", ["%1"])]
        )
        fold_constants(m)  # must not raise
        assert f.blocks[0].instrs[0].operands == ["const:0"]

    def test_non_const_untouched(self):
        m, f = module_with(
            [IRInstr("add", ["%a", "const:1"], "%1"), IRInstr("ret", ["%1"])]
        )
        assert fold_constants(m) == 0


class TestDeadCodeElimination:
    def test_removes_unused_pure(self):
        m, f = module_with(
            [
                IRInstr("add", ["const:1", "const:2"], "%dead"),
                IRInstr("ret", []),
            ]
        )
        assert eliminate_dead_instrs(m) == 1
        assert [i.op for i in f.blocks[0].instrs] == ["ret"]

    def test_keeps_used_values(self):
        m, f = module_with(
            [
                IRInstr("add", ["%a", "%b"], "%1"),
                IRInstr("ret", ["%1"]),
            ]
        )
        assert eliminate_dead_instrs(m) == 0

    def test_keeps_side_effects(self):
        m, f = module_with(
            [
                IRInstr("call", ["@printf"], "%unused"),
                IRInstr("store", ["%x", "%y"]),
                IRInstr("ret", []),
            ]
        )
        assert eliminate_dead_instrs(m) == 0

    def test_cascading_removal(self):
        m, f = module_with(
            [
                IRInstr("add", ["%a", "%b"], "%1"),
                IRInstr("mul", ["%1", "%1"], "%2"),  # only user of %1
                IRInstr("ret", []),
            ]
        )
        assert eliminate_dead_instrs(m) == 2


class TestPipeline:
    def test_pipeline_reports_counts(self):
        m, _ = module_with(
            [
                IRInstr("add", ["const:1", "const:1"], "%1"),
                IRInstr("mul", ["%1", "const:0"], "%unused"),
                IRInstr("ret", []),
            ]
        )
        stats = run_default_pipeline(m)
        assert stats["folds"] >= 1
        # after folding, the unused result is removable
        assert stats["dce"] >= 0

    def test_render_smoke(self):
        m, _ = module_with([IRInstr("ret", [])])
        text = m.render()
        assert "define @f()" in text and "ret" in text
