"""AST → MiniIR lowering tests."""

from repro.compiler import CompileOptions, bundle_to_tree, lower_unit
from repro.lang.cpp.parser import parse_unit
from repro.lang.cpp.sema import analyze
from repro.lang.source import VirtualFS


def lower(text, dialect="host", openmp=False):
    fs = VirtualFS()
    fs.add("main.cpp", text)
    tu = parse_unit(fs, "main.cpp")
    return lower_unit(tu, analyze(tu), CompileOptions(dialect=dialect, openmp=openmp, name="t"))


def ops(fn):
    return [i.op for b in fn.blocks for i in b.instrs]


class TestControlFlow:
    def test_if_creates_blocks(self):
        res = lower("int f(int x) {\nif (x) { return 1; }\nreturn 0;\n}")
        f = res.host.function("f")
        assert len(f.blocks) >= 3
        assert "condbr" in ops(f)

    def test_for_loop_blocks(self):
        res = lower("void f(int n) {\nfor (int i = 0; i < n; i++) { }\n}")
        f = res.host.function("f")
        labels = [b.label for b in f.blocks]
        assert any("for.cond" in lab for lab in labels)
        assert any("for.body" in lab for lab in labels)
        assert any("for.inc" in lab for lab in labels)

    def test_while_loop(self):
        res = lower("void f(int n) {\nwhile (n) { n = n - 1; }\n}")
        assert "condbr" in ops(res.host.function("f"))

    def test_break_branches_to_exit(self):
        res = lower("void f() {\nfor (;;) { break; }\n}")
        f = res.host.function("f")
        brs = [i for b in f.blocks for i in b.instrs if i.op == "br"]
        assert any("for.end" in i.operands[0] for i in brs)

    def test_all_blocks_terminated(self):
        res = lower(
            "int f(int x) {\nif (x > 0) { return 1; } else { return 2; }\n}"
        )
        for b in res.host.function("f").blocks:
            assert b.terminated or not b.instrs

    def test_ternary_select(self):
        res = lower("int f(int c) { return c ? 1 : 2; }")
        assert "select" in ops(res.host.function("f"))


class TestMemoryOps:
    def test_locals_allocated(self):
        res = lower("void f() {\ndouble x = 1.0;\n}")
        o = ops(res.host.function("f"))
        assert "alloca" in o and "store" in o

    def test_subscript_gep_load(self):
        res = lower("double f(double* a, int i) { return a[i]; }")
        o = ops(res.host.function("f"))
        assert "gep" in o and "load" in o

    def test_compound_assign_load_modify_store(self):
        res = lower("void f(double* a, int i) {\na[i] += 1.0;\n}")
        o = ops(res.host.function("f"))
        assert o.count("load") >= 1 and "add" in o and "store" in o

    def test_new_delete_runtime_calls(self):
        res = lower("void f() {\ndouble* p = new double[8];\ndelete[] p;\n}")
        names = [f.name for f in res.host.functions]
        assert "_Znam" in names and "_ZdaPv" in names


class TestOpenMP:
    OMP = "void f(double* a, int n) {\n#pragma omp parallel for reduction(+:s)\nfor (int i = 0; i < n; i++) { a[i] = 0; }\n}"

    def test_region_outlined(self):
        res = lower(self.OMP, openmp=True)
        assert any("omp_outlined" in f.name for f in res.host.functions)

    def test_fork_call_emitted(self):
        res = lower(self.OMP, openmp=True)
        assert "__kmpc_fork_call" in [f.name for f in res.host.functions]
        f = res.host.function("f")
        calls = [i for b in f.blocks for i in b.instrs if i.op == "call"]
        assert any("__kmpc_fork_call" in i.operands[0] for i in calls)

    def test_reduction_runtime_call(self):
        res = lower(self.OMP, openmp=True)
        assert "__kmpc_reduce_nowait" in [f.name for f in res.host.functions]

    def test_outlined_body_contains_loop(self):
        res = lower(self.OMP, openmp=True)
        outlined = [f for f in res.host.functions if "omp_outlined" in f.name][0]
        assert "condbr" in ops(outlined)

    def test_no_device_module_for_host_omp(self):
        res = lower(self.OMP, openmp=True)
        assert not res.devices


class TestOffload:
    TARGET = (
        "void f(double* a, int n) {\n"
        "#pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n"
        "for (int i = 0; i < n; i++) { a[i] = 0; }\n}"
    )
    CUDA = (
        "__global__ void k(double* a) { a[threadIdx.x] = 1.0; }\n"
        "void f(double* a) {\nk<<<1, 8>>>(a);\n}"
    )

    def test_omp_target_device_module(self):
        res = lower(self.TARGET, openmp=True)
        assert len(res.devices) == 1
        dev = res.devices[0]
        assert dev.target == "device:omp"
        assert any("__omp_offloading" in f.name for f in dev.functions)

    def test_omp_target_host_runtime_calls(self):
        res = lower(self.TARGET, openmp=True)
        names = [f.name for f in res.host.functions]
        assert "__tgt_target_kernel" in names
        assert "__tgt_target_data_begin" in names

    def test_cuda_kernel_in_device_module(self):
        res = lower(self.CUDA, dialect="cuda")
        dev = res.devices[0]
        k = dev.function("k")
        assert k is not None and "kernel" in k.attrs

    def test_cuda_host_stub(self):
        res = lower(self.CUDA, dialect="cuda")
        assert res.host.function("__device_stub__k") is not None

    def test_cuda_driver_noise(self):
        """§V-C: 'multiple layers of driver code that is unrelated to the
        core algorithm' pollute offload IR."""
        res = lower(self.CUDA, dialect="cuda")
        dev = res.devices[0]
        names = [f.name for f in dev.functions]
        assert "__cuda_module_ctor" in names
        assert "__cuda_register_globals" in names
        assert any(g.kind == "fatbin" for g in dev.globals)

    def test_hip_driver_noise(self):
        res = lower(self.CUDA.replace("cuda", "hip"), dialect="hip")
        dev = res.devices[0]
        assert any("hip" in f.name for f in dev.functions)

    def test_sycl_launch_outlines_device_kernel(self):
        code = (
            "namespace sycl { class queue { public:\n"
            "queue();\n"
            "template <typename K, typename R, typename F> void parallel_for(R r, F f);\n"
            "}; }\n"
            "void f(double* a) {\n"
            "sycl::queue q;\n"
            "q.parallel_for<class k1>(8, [=](int i) { a[i] = 0.0; });\n"
            "}"
        )
        res = lower(code, dialect="sycl")
        assert res.devices
        assert any("_ZTSZ_kernel" in f.name for f in res.devices[0].functions)
        host_names = [f.name for f in res.host.functions]
        assert "piEnqueueKernelLaunch" in host_names


class TestBundleTree:
    def test_host_only_tree(self):
        res = lower("int f() { return 0; }")
        t = bundle_to_tree(res)
        assert t.label == "module:host"

    def test_bundle_tree_has_device_children(self):
        res = lower(TestOffload.CUDA, dialect="cuda")
        t = bundle_to_tree(res)
        assert t.label == "offload-bundle"
        assert any(n.label == "module:device:cuda" for n in t.children)

    def test_symbol_names_dropped_from_labels(self):
        # §IV-A: "discard all symbol names but retain instruction names"
        res = lower("int compute_something(int x) { return x + 1; }")
        t = bundle_to_tree(res)
        labels = {n.label for n in t.preorder()}
        assert "compute_something" not in labels
        assert "function" in labels and "add" in labels

    def test_instr_spans_preserved(self):
        res = lower("int f() {\nreturn 1 + 2;\n}")
        t = bundle_to_tree(res)
        spanned = [n for n in t.preorder() if n.span is not None]
        assert spanned
