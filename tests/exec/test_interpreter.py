"""MiniC++ interpreter: language core semantics."""

import pytest

from repro.exec import run_program
from repro.lang.cpp.parser import parse_unit
from repro.lang.cpp.sema import analyze
from repro.lang.source import VirtualFS
from repro.util.errors import InterpreterError


def run(text, entry="main", **files):
    fs = VirtualFS()
    for p, t in files.items():
        fs.add(p.replace("__", "/"), t)
    fs.add("main.cpp", text)
    tu = parse_unit(fs, "main.cpp")
    return run_program(tu, analyze(tu), entry)


class TestArithmetic:
    def test_integer_division_truncates(self):
        assert run("int main() { return 7 / 2; }").value == 3

    def test_float_division(self):
        assert run("int main() { double x = 7.0 / 2.0; return x == 3.5 ? 0 : 1; }").value == 0

    def test_modulo(self):
        assert run("int main() { return 17 % 5; }").value == 2

    def test_precedence(self):
        assert run("int main() { return 2 + 3 * 4; }").value == 14

    def test_comparison_and_logic(self):
        assert run("int main() { return (1 < 2 && 3 >= 3) ? 5 : 6; }").value == 5

    def test_short_circuit(self):
        # right side would divide by zero if evaluated
        src = "int div0(int x) { return 1 / x; }\nint main() { int c = 0; return (c != 0 && div0(c)) ? 1 : 0; }"
        assert run(src).value == 0

    def test_bit_ops(self):
        assert run("int main() { return (5 & 3) | (1 << 2); }").value == 5

    def test_unary_minus_and_not(self):
        assert run("int main() { return !(-1 < 0) ? 1 : 2; }").value == 2


class TestControlFlow:
    def test_for_accumulation(self):
        assert run("int main() { int s = 0; for (int i = 1; i <= 4; i++) { s += i; } return s; }").value == 10

    def test_while(self):
        assert run("int main() { int n = 16; int c = 0; while (n > 1) { n = n / 2; c++; } return c; }").value == 4

    def test_do_while_runs_once(self):
        assert run("int main() { int c = 0; do { c++; } while (false); return c; }").value == 1

    def test_break_continue(self):
        src = (
            "int main() { int s = 0;"
            " for (int i = 0; i < 10; i++) { if (i == 2) { continue; } if (i == 5) { break; } s += i; }"
            " return s; }"
        )
        assert run(src).value == 0 + 1 + 3 + 4

    def test_nested_loops(self):
        src = "int main() { int s = 0; for (int i = 0; i < 3; i++) { for (int j = 0; j < 3; j++) { s++; } } return s; }"
        assert run(src).value == 9

    def test_early_return(self):
        assert run("int f() { return 1; return 2; }\nint main() { return f(); }").value == 1


class TestFunctionsAndScope:
    def test_call_with_args(self):
        assert run("int add(int a, int b) { return a + b; }\nint main() { return add(2, 3); }").value == 5

    def test_recursion(self):
        src = "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\nint main() { return fib(10); }"
        assert run(src).value == 55

    def test_reference_parameter(self):
        src = "void inc(int& x) { x = x + 1; }\nint main() { int v = 5; inc(v); return v; }"
        assert run(src).value == 6

    def test_default_argument_used(self):
        src = "int f(int a, int b = 7) { return a + b; }\nint main() { return f(1); }"
        assert run(src).value == 8

    def test_shadowing(self):
        src = "int main() { int x = 1; { int x = 2; } return x; }"
        assert run(src).value == 1

    def test_global_variable(self):
        src = "int g = 42;\nint main() { return g; }"
        assert run(src).value == 42


class TestPointers:
    def test_new_index_store_load(self):
        src = "int main() { double* a = new double[4]; a[2] = 7.5; return a[2] == 7.5 ? 0 : 1; }"
        assert run(src).value == 0

    def test_pointer_arithmetic(self):
        src = "int main() { double* a = new double[4]; a[0] = 1.0; double* p = a + 0; return *p == 1.0 ? 0 : 1; }"
        assert run(src).value == 0

    def test_address_of_scalar(self):
        src = "void set(double* p) { *p = 3.0; }\nint main() { double x = 0.0; set(&x); return x == 3.0 ? 0 : 1; }"
        assert run(src).value == 0

    def test_local_c_array(self):
        src = "int main() { double r[8]; r[3] = 2.0; return r[3] == 2.0 ? 0 : 1; }"
        assert run(src).value == 0

    def test_increment_through_subscript(self):
        src = "int main() { double* a = new double[2]; a[0] = 1.0; a[0] += 2.0; return (int)a[0]; }"
        assert run(src).value == 3


class TestLambdasAndStructs:
    def test_value_capture_snapshots(self):
        src = (
            "int main() { int x = 1; auto f = [=]() { return x; };"
            " x = 99; return f(); }"
        )
        assert run(src).value == 1

    def test_reference_capture_sees_updates(self):
        src = (
            "int main() { int x = 1; auto f = [&]() { return x; };"
            " x = 99; return f(); }"
        )
        assert run(src).value == 99

    def test_lambda_with_params(self):
        src = "int main() { auto add = [](int a, int b) { return a + b; }; return add(2, 3); }"
        assert run(src).value == 5

    def test_struct_fields_and_methods(self):
        src = (
            "struct Counter { int n; void bump() { n = n + 1; } int get() { return n; } };\n"
            "int main() { Counter c; c.bump(); c.bump(); return c.get(); }"
        )
        assert run(src).value == 2

    def test_ctor_runs(self):
        src = (
            "struct P { int v; P(int x) : v(x) { } };\n"
            "int main() { P p(9); return p.v; }"
        )
        assert run(src).value == 9


class TestKernelLaunch:
    def test_grid_iteration(self):
        src = (
            "__global__ void fill(double* a) {\n"
            "int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
            "a[i] = 1.0;\n}\n"
            "int main() { double* a = new double[8]; fill<<<2, 4>>>(a);\n"
            "double s = 0.0; for (int i = 0; i < 8; i++) { s += a[i]; }\n"
            "return (int)s; }"
        )
        assert run(src).value == 8


class TestCoverage:
    def test_executed_lines_recorded(self):
        src = "int main() {\nint x = 1;\nreturn x;\n}"
        res = run(src)
        assert res.hits("main.cpp", 2) >= 1
        assert res.hits("main.cpp", 3) >= 1

    def test_dead_branch_not_recorded(self):
        src = "int main() {\nif (false) {\nint dead = 1;\n}\nreturn 0;\n}"
        res = run(src)
        assert res.hits("main.cpp", 3) == 0

    def test_loop_body_hit_count(self):
        src = "int main() {\nfor (int i = 0; i < 5; i++) {\nint x = i;\n}\nreturn 0;\n}"
        res = run(src)
        # once per iteration (decl statements record at both the DeclStmt
        # and VarDecl granularity, so the count is a multiple of 5)
        assert res.hits("main.cpp", 3) >= 5
        assert res.hits("main.cpp", 3) % 5 == 0

    def test_line_mask_conversion(self):
        res = run("int main() {\nreturn 0;\n}")
        mask = res.line_mask()
        assert mask.covered("main.cpp", 2)
        assert not mask.covered("main.cpp", 999)


class TestErrors:
    def test_missing_entry(self):
        with pytest.raises(InterpreterError, match="entry point"):
            run("int helper() { return 1; }", entry="main")

    def test_undefined_identifier(self):
        with pytest.raises(InterpreterError, match="undefined identifier"):
            run("int main() { return nope; }")

    def test_unknown_function(self):
        with pytest.raises(InterpreterError, match="unknown function"):
            run("int main() { return missing(); }")

    def test_infinite_loop_fuel(self):
        interp_src = "int main() { while (true) { } return 0; }"
        from repro.exec.interpreter import Interpreter

        old = Interpreter.MAX_STEPS
        Interpreter.MAX_STEPS = 10_000
        try:
            with pytest.raises(InterpreterError, match="fuel"):
                run(interp_src)
        finally:
            Interpreter.MAX_STEPS = old
