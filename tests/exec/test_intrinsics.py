"""Intrinsic runtime semantics for every parallel-model API."""

from repro.exec import run_program
from repro.lang.cpp.parser import parse_unit
from repro.lang.cpp.sema import analyze
from repro.lang.source import VirtualFS
from repro.corpus.headers import system_headers


def run(text):
    fs = VirtualFS()
    for p, t in system_headers().items():
        fs.add(p, t)
    fs.add("main.cpp", text)
    tu = parse_unit(fs, "main.cpp")
    return run_program(tu, analyze(tu))


class TestMath:
    def test_sqrt_fabs(self):
        src = '#include <cmath>\nint main() { return fabs(sqrt(16.0) - 4.0) < 0.001 ? 0 : 1; }'
        assert run(src).value == 0

    def test_fmin_fmax(self):
        src = "#include <cmath>\nint main() { return (int)(fmax(2.0, 5.0) + fmin(1.0, 3.0)); }"
        assert run(src).value == 6

    def test_printf_captured(self):
        src = '#include <cstdio>\nint main() { printf("hello\\n"); return 0; }'
        res = run(src)
        assert any("hello" in line for line in res.stdout)


class TestCudaRuntime:
    def test_malloc_memcpy(self):
        src = (
            "#include <cuda_runtime.h>\n"
            "int main() {\n"
            "double* d;\n"
            "cudaMalloc(&d, 4 * sizeof(double));\n"
            "d[1] = 5.0;\n"
            "double* h = new double[4];\n"
            "cudaMemcpy(h, d, 4 * sizeof(double), cudaMemcpyDeviceToHost);\n"
            "return h[1] == 5.0 ? 0 : 1;\n}"
        )
        assert run(src).value == 0

    def test_hip_launch_macro(self):
        src = (
            "#include <hip/hip_runtime.h>\n"
            "__global__ void k(double* a) { a[threadIdx.x + blockIdx.x * blockDim.x] = 2.0; }\n"
            "int main() {\n"
            "double* d;\n"
            "hipMalloc(&d, 8 * sizeof(double));\n"
            "hipLaunchKernelGGL(k, 2, 4, 0, 0, d);\n"
            "double s = 0.0;\n"
            "for (int i = 0; i < 8; i++) { s += d[i]; }\n"
            "return (int)s;\n}"
        )
        assert run(src).value == 16


class TestSycl:
    def test_usm_parallel_for(self):
        src = (
            "#include <sycl/sycl.hpp>\n"
            "int main() {\n"
            "sycl::queue q;\n"
            "double* a = sycl::malloc_shared<double>(8, q);\n"
            "q.parallel_for<class k>(sycl::range<1>(8), [=](sycl::id<1> i) { a[i.get(0)] = 3.0; });\n"
            "q.wait();\n"
            "double s = 0.0;\n"
            "for (int i = 0; i < 8; i++) { s += a[i]; }\n"
            "sycl::free(a, q);\n"
            "return (int)s;\n}"
        )
        assert run(src).value == 24

    def test_reduction(self):
        src = (
            "#include <sycl/sycl.hpp>\n"
            "int main() {\n"
            "sycl::queue q;\n"
            "double* a = sycl::malloc_shared<double>(4, q);\n"
            "for (int i = 0; i < 4; i++) { a[i] = i + 1.0; }\n"
            "double* sum = sycl::malloc_shared<double>(1, q);\n"
            "sum[0] = 0.0;\n"
            "q.parallel_for<class r>(sycl::range<1>(4), sycl::reduction(sum, sycl::plus<double>()), [=](sycl::id<1> i, double& acc) { acc += a[i.get(0)]; });\n"
            "q.wait();\n"
            "return (int)sum[0];\n}"
        )
        assert run(src).value == 10

    def test_buffers_and_accessors(self):
        src = (
            "#include <sycl/sycl.hpp>\n"
            "int main() {\n"
            "sycl::queue q;\n"
            "double* h = new double[4];\n"
            "{\n"
            "sycl::buffer<double, 1> buf(h, sycl::range<1>(4));\n"
            "q.submit([&](sycl::handler& cgh) {\n"
            "sycl::accessor<double, 1> acc(buf, cgh, read_write);\n"
            "cgh.parallel_for<class w>(sycl::range<1>(4), [=](sycl::id<1> i) { h[i.get(0)] = 4.0; });\n"
            "});\n"
            "q.wait();\n"
            "}\n"
            "return (int)(h[0] + h[3]);\n}"
        )
        assert run(src).value == 8


class TestKokkos:
    def test_view_and_parallel_for(self):
        src = (
            "#include <Kokkos_Core.hpp>\n"
            "#define KOKKOS_LAMBDA [=]\n"
            "int main() {\n"
            "Kokkos::initialize();\n"
            "Kokkos::View<double*> v(\"v\", 8);\n"
            "Kokkos::parallel_for(\"fill\", 8, KOKKOS_LAMBDA(const int i) { v(i) = 2.0; });\n"
            "double out = v(3);\n"
            "Kokkos::finalize();\n"
            "return (int)out;\n}"
        )
        assert run(src).value == 2

    def test_parallel_reduce_writes_result(self):
        src = (
            "#include <Kokkos_Core.hpp>\n"
            "#define KOKKOS_LAMBDA [=]\n"
            "int main() {\n"
            "Kokkos::initialize();\n"
            "double total = 0.0;\n"
            "Kokkos::parallel_reduce(\"sum\", 5, KOKKOS_LAMBDA(const int i, double& acc) { acc += i; }, total);\n"
            "Kokkos::finalize();\n"
            "return (int)total;\n}"
        )
        assert run(src).value == 10


class TestTbb:
    def test_blocked_range_for(self):
        src = (
            "#include <tbb/tbb.h>\n"
            "int main() {\n"
            "double* a = new double[6];\n"
            "tbb::parallel_for(tbb::blocked_range<int>(0, 6), [=](const tbb::blocked_range<int>& r) {\n"
            "for (int i = r.begin(); i != r.end(); ++i) { a[i] = 1.5; }\n"
            "});\n"
            "double s = 0.0;\n"
            "for (int i = 0; i < 6; i++) { s += a[i]; }\n"
            "return (int)s;\n}"
        )
        assert run(src).value == 9

    def test_parallel_reduce(self):
        src = (
            "#include <tbb/tbb.h>\n"
            "int main() {\n"
            "double r = tbb::parallel_reduce(tbb::blocked_range<int>(0, 5), 0.0,\n"
            "[=](const tbb::blocked_range<int>& rng, double acc) {\n"
            "for (int i = rng.begin(); i != rng.end(); ++i) { acc += i; }\n"
            "return acc;\n"
            "}, std::plus<double>());\n"
            "return (int)r;\n}"
        )
        assert run(src).value == 10


class TestStdPar:
    def test_fill_and_reduce(self):
        src = (
            "#include <algorithm>\n#include <execution>\n"
            "int main() {\n"
            "double* a = new double[4];\n"
            "std::fill(std::execution::par_unseq, a, a + 4, 2.5);\n"
            "double s = std::reduce(std::execution::par_unseq, a, a + 4, 0.0);\n"
            "return (int)s;\n}"
        )
        assert run(src).value == 10

    def test_transform_unary(self):
        src = (
            "#include <algorithm>\n#include <execution>\n"
            "int main() {\n"
            "double* a = new double[3];\n"
            "double* b = new double[3];\n"
            "std::fill(std::execution::par_unseq, a, a + 3, 2.0);\n"
            "std::transform(std::execution::par_unseq, a, a + 3, b, [](double x) { return x * 3.0; });\n"
            "return (int)b[2];\n}"
        )
        assert run(src).value == 6

    def test_transform_binary(self):
        src = (
            "#include <algorithm>\n#include <execution>\n"
            "int main() {\n"
            "double* a = new double[3];\n"
            "double* b = new double[3];\n"
            "double* c = new double[3];\n"
            "std::fill(std::execution::par_unseq, a, a + 3, 2.0);\n"
            "std::fill(std::execution::par_unseq, b, b + 3, 5.0);\n"
            "std::transform(std::execution::par_unseq, a, a + 3, b, c, [](double x, double y) { return x + y; });\n"
            "return (int)c[0];\n}"
        )
        assert run(src).value == 7

    def test_transform_reduce_inner_product(self):
        src = (
            "#include <algorithm>\n#include <execution>\n"
            "int main() {\n"
            "double* a = new double[3];\n"
            "double* b = new double[3];\n"
            "std::fill(std::execution::par_unseq, a, a + 3, 2.0);\n"
            "std::fill(std::execution::par_unseq, b, b + 3, 4.0);\n"
            "double d = std::transform_reduce(std::execution::par_unseq, a, a + 3, b, 0.0);\n"
            "return (int)d;\n}"
        )
        assert run(src).value == 24

    def test_for_each_n_counting(self):
        src = (
            "#include <algorithm>\n#include <execution>\n"
            "int main() {\n"
            "double* a = new double[4];\n"
            "std::for_each_n(std::execution::par_unseq, 0, 4, [=](int i) { a[i] = i; });\n"
            "return (int)(a[0] + a[1] + a[2] + a[3]);\n}"
        )
        assert run(src).value == 6


class TestOmpRuntime:
    def test_serial_semantics(self):
        src = (
            "#include <omp.h>\n"
            "int main() { return omp_get_num_threads() == 1 && omp_get_thread_num() == 0 ? 0 : 1; }"
        )
        assert run(src).value == 0
