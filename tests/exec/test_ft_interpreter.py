"""MiniFortran interpreter tests."""

import pytest

from repro.exec.ft_interpreter import run_fortran
from repro.lang.fortran.parser import parse_fortran
from repro.util.errors import InterpreterError


def run(body, decls=""):
    src = f"program t\nimplicit none\n{decls}\n{body}\nend program t\n"
    return run_fortran(parse_fortran(src, "t.f90"))


class TestScalars:
    def test_arithmetic(self):
        res = run("x = 2.0 * 3.0 + 1.0\nif (x /= 7.0) then\nstop 1\nend if", "real(kind=8) :: x")
        assert res.value == 0

    def test_integer_division(self):
        res = run("i = 7 / 2\nif (i /= 3) then\nstop 1\nend if", "integer :: i")
        assert res.value == 0

    def test_power(self):
        res = run("x = 2.0 ** 3\nif (x /= 8.0) then\nstop 1\nend if", "real :: x")
        assert res.value == 0

    def test_parameter(self):
        res = run("if (n /= 64) then\nstop 1\nend if", "integer, parameter :: n = 64")
        assert res.value == 0

    def test_logic_ops(self):
        res = run(
            "if (.not. (a < b .and. b < c)) then\nstop 1\nend if",
            "real :: a = 1.0, b = 2.0, c = 3.0",
        )
        assert res.value == 0

    def test_stop_code_returned(self):
        assert run("stop 3").value == 3


class TestLoops:
    def test_do_accumulates(self):
        res = run(
            "s = 0\ndo i = 1, 5\ns = s + i\nend do\nif (s /= 15) then\nstop 1\nend if",
            "integer :: i, s",
        )
        assert res.value == 0

    def test_do_step(self):
        res = run(
            "s = 0\ndo i = 1, 10, 3\ns = s + 1\nend do\nif (s /= 4) then\nstop 1\nend if",
            "integer :: i, s",
        )
        assert res.value == 0

    def test_do_concurrent(self):
        res = run(
            "allocate(a(4))\ndo concurrent (i = 1:4)\na(i) = i * 2.0\nend do\nif (a(3) /= 6.0) then\nstop 1\nend if",
            "integer :: i\nreal, allocatable, dimension(:) :: a",
        )
        assert res.value == 0

    def test_do_while(self):
        res = run(
            "n = 16\nc = 0\ndo while (n > 1)\nn = n / 2\nc = c + 1\nend do\nif (c /= 4) then\nstop 1\nend if",
            "integer :: n, c",
        )
        assert res.value == 0

    def test_exit_cycle(self):
        res = run(
            "s = 0\ndo i = 1, 10\nif (i == 3) then\ncycle\nend if\nif (i == 6) then\nexit\nend if\ns = s + i\nend do\n"
            "if (s /= 1 + 2 + 4 + 5) then\nstop 1\nend if",
            "integer :: i, s",
        )
        assert res.value == 0


class TestArrays:
    DECLS = "integer :: i\nreal(kind=8), allocatable, dimension(:) :: a, b"

    def test_element_access(self):
        res = run(
            "allocate(a(8))\na(5) = 2.5\nif (a(5) /= 2.5) then\nstop 1\nend if", self.DECLS
        )
        assert res.value == 0

    def test_whole_array_assign(self):
        res = run(
            "allocate(a(4))\na = 1.5\nif (sum(a) /= 6.0) then\nstop 1\nend if", self.DECLS
        )
        assert res.value == 0

    def test_section_elementwise(self):
        res = run(
            "allocate(a(4), b(4))\na(:) = 2.0\nb(:) = 3.0 * a(:)\nif (b(2) /= 6.0) then\nstop 1\nend if",
            self.DECLS,
        )
        assert res.value == 0

    def test_dot_product(self):
        res = run(
            "allocate(a(3), b(3))\na = 2.0\nb = 4.0\nif (dot_product(a, b) /= 24.0) then\nstop 1\nend if",
            self.DECLS,
        )
        assert res.value == 0

    def test_intrinsics(self):
        res = run(
            "allocate(a(3))\na(1) = -5.0\na(2) = 1.0\na(3) = 3.0\n"
            "if (maxval(a) /= 3.0) then\nstop 1\nend if\n"
            "if (minval(a) /= -5.0) then\nstop 2\nend if\n"
            "if (abs(a(1)) /= 5.0) then\nstop 3\nend if\n"
            "if (size(a) /= 3) then\nstop 4\nend if",
            self.DECLS,
        )
        assert res.value == 0

    def test_deallocate(self):
        res = run(
            "allocate(a(4))\ndeallocate(a)\nif (allocated(a)) then\nstop 1\nend if", self.DECLS
        )
        assert res.value == 0


class TestDirectivesAndCoverage:
    def test_omp_body_runs_serially(self):
        res = run(
            "allocate(a(4))\n!$omp parallel do\ndo i = 1, 4\na(i) = 1.0\nend do\n!$omp end parallel do\n"
            "if (sum(a) /= 4.0) then\nstop 1\nend if",
            "integer :: i\nreal, allocatable, dimension(:) :: a",
        )
        assert res.value == 0

    def test_coverage_recorded(self):
        res = run("x = 1.0\nif (.false.) then\nx = 99.0\nend if", "real :: x")
        mask = res.line_mask()
        assert mask.covered("t.f90", 4)  # the assignment line
        assert not mask.covered("t.f90", 6)  # the dead branch body

    def test_print_captured(self):
        res = run("print *, 'value', 42")
        assert any("42" in line for line in res.stdout)


class TestSubprograms:
    def test_contained_subroutine(self):
        src = (
            "program t\ninteger :: x\nx = 0\ncall bump(3)\n"
            "contains\nsubroutine bump(k)\ninteger :: k\nx = x + k\nend subroutine bump\n"
            "end program t\n"
        )
        res = run_fortran(parse_fortran(src, "t.f90"))
        assert res.value == 0

    def test_contained_function(self):
        src = (
            "program t\nreal :: y\ny = sq(3.0)\nif (y /= 9.0) then\nstop 1\nend if\n"
            "contains\nfunction sq(v) result(r)\nreal :: v, r\nr = v * v\nend function sq\n"
            "end program t\n"
        )
        res = run_fortran(parse_fortran(src, "t.f90"))
        assert res.value == 0


class TestErrors:
    def test_undefined_name(self):
        with pytest.raises(InterpreterError):
            run("x = nope + 1", "real :: x")

    def test_unknown_subroutine(self):
        with pytest.raises(InterpreterError):
            run("call missing()")


class TestCorpusVerification:
    def test_all_fortran_ports_verify(self):
        """The interpreter runs every BabelStream-Fortran port to completion
        with its built-in validation passing."""
        from repro.corpus import app_models, build_fs, get_spec

        for model in app_models("babelstream-fortran"):
            spec = get_spec("babelstream-fortran", model)
            fs = build_fs("babelstream-fortran", model)
            path = spec.units["main"]
            res = run_fortran(parse_fortran(fs.get(path).text, path))
            assert res.value == 0, model
            assert res.coverage
