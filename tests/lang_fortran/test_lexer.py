"""MiniFortran lexer tests."""

import pytest

from repro.lang.fortran.lexer import FtTokenType, lex_fortran
from repro.util.errors import ParseError


def toks(text):
    return [t for t in lex_fortran(text) if t.type not in (FtTokenType.NEWLINE, FtTokenType.EOF)]


class TestBasics:
    def test_keywords_lowercased(self):
        t = toks("PROGRAM Foo")
        assert t[0].type is FtTokenType.KEYWORD and t[0].text == "program"
        assert t[1].type is FtTokenType.IDENT and t[1].text == "Foo"

    def test_real_literals(self):
        for lit in ("1.5", "1.0d0", "2e-3", "1.0_dp"):
            assert toks(lit)[0].type is FtTokenType.REAL, lit

    def test_int_literal(self):
        assert toks("42")[0].type is FtTokenType.INT

    def test_string_literal(self):
        assert toks("'hello'")[0].type is FtTokenType.STRING

    def test_logical_literals(self):
        assert toks(".true.")[0].type is FtTokenType.LOGICAL
        assert toks(".false.")[0].type is FtTokenType.LOGICAL

    def test_dotops(self):
        t = toks("a .and. b .or. .not. c")
        dotops = [x.text for x in t if x.type is FtTokenType.DOTOP]
        assert dotops == [".and.", ".or.", ".not."]

    def test_operators(self):
        t = [x.text for x in toks("a ** 2 /= b")]
        assert "**" in t and "/=" in t


class TestCommentsAndDirectives:
    def test_plain_comment_is_trivia(self):
        t = lex_fortran("x = 1 ! a comment")
        assert any(tok.type is FtTokenType.COMMENT for tok in t)

    def test_omp_sentinel_is_directive(self):
        t = lex_fortran("!$omp parallel do")
        assert t[0].type is FtTokenType.DIRECTIVE

    def test_acc_sentinel_is_directive(self):
        t = lex_fortran("!$acc kernels")
        assert t[0].type is FtTokenType.DIRECTIVE

    def test_case_insensitive_sentinel(self):
        t = lex_fortran("!$OMP PARALLEL DO")
        assert t[0].type is FtTokenType.DIRECTIVE


class TestContinuations:
    def test_ampersand_joins_lines(self):
        t = toks("x = 1 + &\n    2")
        texts = [x.text for x in t]
        assert texts == ["x", "=", "1", "+", "2"]

    def test_statement_separator_semicolon(self):
        raw = lex_fortran("a = 1; b = 2")
        seps = [t for t in raw if t.type is FtTokenType.NEWLINE]
        assert len(seps) >= 2

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            lex_fortran("x = 'oops")

    def test_line_numbers_preserved(self):
        raw = toks("a = 1\nb = 2\nc = 3")
        c = [t for t in raw if t.text == "c"][0]
        assert c.line == 3
