"""MiniFortran parser tests."""

import pytest

from repro.lang.fortran.astnodes import (
    FtAllocate,
    FtAssign,
    FtBinOp,
    FtCallOrIndex,
    FtCallStmt,
    FtDecl,
    FtDirective,
    FtDo,
    FtDoConcurrent,
    FtIf,
    FtPrint,
    FtRange,
    FtStop,
    FtWhile,
)
from repro.lang.fortran.parser import parse_fortran
from repro.util.errors import ParseError


def program(body):
    return f"program t\n{body}\nend program t\n"


def parse_body(body):
    f = parse_fortran(program(body))
    return f.units[0].body


class TestUnits:
    def test_program_unit(self):
        f = parse_fortran("program hello\nend program hello")
        assert f.units[0].kind == "program"
        assert f.units[0].name == "hello"

    def test_subroutine_with_args(self):
        f = parse_fortran("subroutine s(a, b)\nend subroutine s")
        assert f.units[0].params == ["a", "b"]

    def test_function_with_result(self):
        f = parse_fortran("function f(x) result(y)\nend function f")
        assert f.units[0].result == "y"

    def test_contains_block(self):
        src = (
            "program p\n"
            "call inner()\n"
            "contains\n"
            "subroutine inner()\n"
            "end subroutine inner\n"
            "end program p"
        )
        f = parse_fortran(src)
        assert len(f.units[0].contains) == 1

    def test_module_unit(self):
        f = parse_fortran("module m\nend module m")
        assert f.units[0].kind == "module"


class TestDeclarations:
    def test_typed_decl_with_kind(self):
        (d,) = parse_body("real(kind=8) :: x")
        assert isinstance(d, FtDecl)
        assert d.base_type == "real"
        assert d.kind == "kind=8"

    def test_allocatable_array(self):
        (d,) = parse_body("real(kind=8), allocatable, dimension(:) :: a, b")
        attrs = {a.name for a in d.attrs}
        assert "allocatable" in attrs and "dimension" in attrs
        assert [e[0] for e in d.entities] == ["a", "b"]

    def test_parameter_with_init(self):
        (d,) = parse_body("integer, parameter :: n = 64")
        name, dims, init = d.entities[0]
        assert name == "n"
        assert not dims
        assert init is not None

    def test_explicit_shape(self):
        (d,) = parse_body("real :: grid(8, 8)")
        assert len(d.entities[0][1]) == 2


class TestStatements:
    def test_assignment(self):
        decls = parse_body("integer :: x\nx = 1 + 2")
        assign = decls[1]
        assert isinstance(assign, FtAssign)
        assert isinstance(assign.rhs, FtBinOp)

    def test_array_element_assignment(self):
        stmts = parse_body("real, dimension(:) :: a\na(3) = 1.0")
        assign = stmts[1]
        assert isinstance(assign.lhs, FtCallOrIndex)
        assert assign.lhs.is_index

    def test_whole_array_section(self):
        stmts = parse_body("real, dimension(:) :: a\na(:) = 0.0")
        assert isinstance(stmts[1].lhs.args[0], FtRange)

    def test_intrinsic_call_not_index(self):
        stmts = parse_body("real :: s\nreal, dimension(:) :: a\ns = sum(a)")
        rhs = stmts[2].rhs
        assert isinstance(rhs, FtCallOrIndex) and not rhs.is_index

    def test_do_loop(self):
        stmts = parse_body("integer :: i\ndo i = 1, 10\ni = i\nend do")
        loop = stmts[1]
        assert isinstance(loop, FtDo)
        assert loop.var == "i"
        assert len(loop.body) == 1

    def test_do_with_step(self):
        stmts = parse_body("integer :: i\ndo i = 1, 10, 2\nend do")
        assert stmts[1].step is not None

    def test_do_concurrent(self):
        stmts = parse_body("integer :: i\ndo concurrent (i = 1:8)\nend do")
        assert isinstance(stmts[1], FtDoConcurrent)

    def test_do_while(self):
        stmts = parse_body("integer :: i\ni = 0\ndo while (i < 3)\ni = i + 1\nend do")
        assert isinstance(stmts[2], FtWhile)

    def test_if_then_else(self):
        body = "integer :: x\nif (x > 0) then\nx = 1\nelse\nx = 2\nend if"
        stmts = parse_body(body)
        node = stmts[1]
        assert isinstance(node, FtIf)
        assert len(node.then) == 1 and len(node.other) == 1

    def test_single_line_if(self):
        stmts = parse_body("integer :: x\nif (x > 0) x = 0")
        assert isinstance(stmts[1], FtIf)

    def test_allocate_deallocate(self):
        stmts = parse_body("real, allocatable :: a(:)\nallocate(a(10))\ndeallocate(a)")
        assert isinstance(stmts[1], FtAllocate) and not stmts[1].dealloc
        assert isinstance(stmts[2], FtAllocate) and stmts[2].dealloc

    def test_call_statement(self):
        stmts = parse_body("call work(1, 2)")
        assert isinstance(stmts[0], FtCallStmt)
        assert len(stmts[0].args) == 2

    def test_print_statement(self):
        stmts = parse_body("print *, 'hi', 42")
        assert isinstance(stmts[0], FtPrint)
        assert len(stmts[0].items) == 2

    def test_stop_with_code(self):
        stmts = parse_body("stop 1")
        assert isinstance(stmts[0], FtStop)


class TestDirectives:
    def test_omp_directive_attached_to_do(self):
        body = "integer :: i\n!$omp parallel do\ndo i = 1, 4\nend do\n!$omp end parallel do"
        stmts = parse_body(body)
        d = stmts[1]
        assert isinstance(d, FtDirective)
        assert d.directives == ["parallel", "do"]
        assert len(d.body) == 1 and isinstance(d.body[0], FtDo)

    def test_end_directive_consumed(self):
        body = "integer :: i\n!$omp parallel do\ndo i = 1, 4\nend do\n!$omp end parallel do"
        stmts = parse_body(body)
        assert not any(isinstance(s, FtDirective) and s.is_end for s in stmts)

    def test_reduction_clause(self):
        body = "integer :: i\nreal :: s\n!$omp parallel do reduction(+:s)\ndo i = 1, 4\nend do"
        stmts = parse_body(body)
        d = stmts[2]
        assert ("reduction", ["+:s"]) in d.clauses

    def test_acc_directive(self):
        body = "integer :: i\n!$acc parallel loop\ndo i = 1, 4\nend do\n!$acc end parallel loop"
        stmts = parse_body(body)
        assert stmts[1].family == "acc"

    def test_continued_directive(self):
        body = "integer :: i\n!$omp parallel do &\n!$omp reduction(+:s)\ndo i = 1, 4\nend do"
        stmts = parse_body(body)
        d = stmts[1]
        assert any(c[0] == "reduction" for c in d.clauses)


class TestErrors:
    def test_missing_end_raises(self):
        with pytest.raises(ParseError):
            parse_fortran("program p\ninteger :: x")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_fortran("program p\nx = = 1\nend program p")
