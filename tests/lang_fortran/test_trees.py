"""Fortran tree extraction (T_src / T_sem / T_ir)."""

from repro.compiler import bundle_to_tree
from repro.lang.fortran import (
    fortran_cst,
    fortran_src_tree,
    fortran_to_tree,
    lower_fortran,
    parse_fortran,
)

OMP_SRC = """
program t
  implicit none
  integer :: i
  real(kind=8) :: s
  real(kind=8), dimension(:), allocatable :: a
  allocate(a(8))
  s = 0.0
  !$omp parallel do reduction(+:s)
  do i = 1, 8
    s = s + a(i)
  end do
  !$omp end parallel do
  deallocate(a)
end program t
"""

ACC_SRC = OMP_SRC.replace("!$omp parallel do reduction(+:s)", "!$acc parallel loop reduction(+:s)").replace(
    "!$omp end parallel do", "!$acc end parallel loop"
)


class TestTsem:
    def test_ft_prefix_namespace(self):
        # Fortran labels must not collide with MiniC++ labels (§IV-B:
        # "cross-compiler comparison is not possible")
        t = fortran_to_tree(parse_fortran(OMP_SRC))
        structural = [n.label for n in t.preorder() if n.label.startswith("ft-")]
        assert len(structural) > 5

    def test_directive_node_with_implicit_semantics(self):
        t = fortran_to_tree(parse_fortran(OMP_SRC))
        assert t.find_labels("ft-omp-parallel-do")
        labels = {n.label for n in t.preorder()}
        assert "thread-team" in labels and "reduction-init" in labels

    def test_acc_has_no_implicit_parallel_tokens(self):
        """§V-B: GCC's OpenACC 'did not introduce extra tokens related to
        parallelism' — acc directives carry only their surface."""
        t = fortran_to_tree(parse_fortran(ACC_SRC))
        labels = {n.label for n in t.preorder()}
        assert "thread-team" not in labels
        assert t.find_labels("ft-acc-parallel-loop")

    def test_do_concurrent_is_parallel_construct(self):
        src = "program p\ninteger :: i\ndo concurrent (i = 1:4)\nend do\nend program p"
        t = fortran_to_tree(parse_fortran(src))
        nodes = t.find_labels("ft-do-concurrent")
        assert nodes and nodes[0].kind == "parallel-construct"

    def test_array_assign_label(self):
        src = "program p\nreal, dimension(:) :: a\na(:) = 1.0\nend program p"
        t = fortran_to_tree(parse_fortran(src))
        assert t.find_labels("ft-array-assign")


class TestTsrc:
    def test_cst_keeps_all_statement_tokens(self):
        cst = fortran_cst("program p\nx = 1\nend program p")
        labels = [n.label for n in cst.preorder()]
        assert "program" in labels and "x" in labels

    def test_src_tree_drops_punct(self):
        cst = fortran_cst("program p\nx = a(1) + 2\nend program p")
        t = fortran_src_tree(cst)
        assert not [n for n in t.preorder() if n.kind == "punct"]

    def test_directive_words_visible(self):
        cst = fortran_cst("program p\ninteger :: i\n!$omp parallel do\ndo i = 1, 2\nend do\nend program p")
        t = fortran_src_tree(cst)
        labels = [n.label for n in t.preorder()]
        assert "directive:omp" in labels and "parallel" in labels

    def test_block_nesting(self):
        cst = fortran_cst("program p\ninteger :: i\ndo i = 1, 2\ni = i\nend do\nend program p")
        assert cst.find_labels("do-block")


class TestTir:
    def test_host_lowering_has_loop_blocks(self):
        res = lower_fortran(parse_fortran(OMP_SRC))
        t = bundle_to_tree(res)
        labels = [n.label for n in t.preorder()]
        assert "condbr" in labels and "gep" in labels

    def test_omp_outlines_and_forks(self):
        res = lower_fortran(parse_fortran(OMP_SRC))
        fn_names = [f.name for f in res.host.functions]
        assert any("omp_outlined" in n for n in fn_names)
        assert "__kmpc_fork_call" in fn_names

    def test_acc_single_veneer(self):
        # the GOACC veneer wraps an essentially serial region (§V-B)
        res = lower_fortran(parse_fortran(ACC_SRC))
        fn_names = [f.name for f in res.host.functions]
        assert "GOACC_parallel_keyed" in fn_names
        assert not any("kmpc" in n for n in fn_names)

    def test_array_syntax_scalarised(self):
        src = "program p\nreal, dimension(:), allocatable :: a\nallocate(a(8))\na(:) = 1.0\nend program p"
        res = lower_fortran(parse_fortran(src))
        main = res.host.functions[0]
        labels = [i.op for b in main.blocks for i in b.instrs]
        assert "gep" in labels and "condbr" in labels  # elementwise loop

    def test_no_devices_for_host_models(self):
        res = lower_fortran(parse_fortran(OMP_SRC))
        assert res.devices == []

    def test_target_directive_creates_device_module(self):
        src = (
            "program p\ninteger :: i\nreal :: s\n"
            "!$omp target teams distribute parallel do\n"
            "do i = 1, 4\ns = s + 1\nend do\n"
            "end program p"
        )
        res = lower_fortran(parse_fortran(src))
        assert len(res.devices) == 1
        assert res.devices[0].target == "device:omp"
