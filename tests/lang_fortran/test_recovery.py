"""Panic-mode recovery tests: malformed Fortran yields partial trees, not tracebacks."""

import pytest

from repro import diag
from repro.lang.fortran.astnodes import FtCallStmt, FtDecl, FtDo, FtError, FtIf
from repro.lang.fortran.asttree import fortran_to_tree
from repro.lang.fortran.parser import parse_fortran
from repro.util.errors import ParseError


def recover_parse(src):
    with diag.capture() as sink:
        f = parse_fortran(src, "t.f90", recover=True)
    return f, sink


class TestStrictStillRaises:
    def test_default_mode_unchanged(self):
        with pytest.raises(ParseError):
            parse_fortran("program p\ndo i = 1, 10\ncall w(i)\nend program p\n")

    def test_recover_mode_is_noop_on_valid_input(self):
        src = "program p\ninteger :: i\ndo i = 1, 3\ncall w(i)\nend do\nend program p\n"
        f, sink = recover_parse(src)
        assert sink.count() == 0
        assert isinstance(f.units[0].body[1], FtDo)


class TestUnterminatedDo:
    def test_closed_by_end_program_keeps_body(self):
        src = "program p\ninteger :: i\ndo i = 1, 10\ncall work(i)\nend program p\n"
        f, sink = recover_parse(src)
        assert "parse/missing-end" in sink.by_code()
        body = f.units[0].body
        assert isinstance(body[0], FtDecl)
        do = body[1]
        assert isinstance(do, FtDo)
        assert any(isinstance(s, FtCallStmt) for s in do.body)

    def test_truncated_at_eof_keeps_body(self):
        f, sink = recover_parse("program p\ndo i = 1, 10\ncall work(i)\n")
        # one missing-end for the do, one for the program unit
        assert sink.by_code()["parse/missing-end"] == 2
        do = f.units[0].body[0]
        assert isinstance(do, FtDo) and do.body

    def test_nested_do_missing_inner_end(self):
        src = "program p\ndo i = 1, 2\ndo j = 1, 3\ncall w(i, j)\nend do\nend program p\n"
        f, sink = recover_parse(src)
        assert "parse/missing-end" in sink.by_code()
        outer = f.units[0].body[0]
        assert isinstance(outer, FtDo)
        assert isinstance(outer.body[0], FtDo)

    def test_unterminated_if_block(self):
        f, sink = recover_parse("program p\nif (x > 0) then\ncall w()\nend program p\n")
        assert "parse/missing-end" in sink.by_code()
        assert isinstance(f.units[0].body[0], FtIf)


class TestBadOmpSentinels:
    def test_typo_in_directive_word_is_diagnosed(self):
        src = (
            "program p\n!$omp paralel do\ndo i = 1, 10\nend do\n"
            "!$omp end parallel do\nend program p\n"
        )
        f, sink = recover_parse(src)
        assert "parse/unknown-directive" in sink.by_code()

    def test_typo_in_sentinel_is_diagnosed(self):
        src = "program p\n!$opm parallel do\ndo i = 1, 10\ncall w(i)\nend do\nend program p\n"
        f, sink = recover_parse(src)
        assert "lex/unknown-sentinel" in sink.by_code()
        # the loop under the typo'd sentinel still parses
        assert isinstance(f.units[0].body[0], FtDo)

    def test_conditional_compilation_sentinel_not_flagged(self):
        f, sink = recover_parse("program p\n!$ x = 1\nend program p\n")
        assert "lex/unknown-sentinel" not in sink.by_code()

    def test_plain_comment_not_flagged(self):
        f, sink = recover_parse("program p\n! just a comment\nend program p\n")
        assert sink.count() == 0


class TestStatementRecovery:
    def test_junk_statement_becomes_error_node(self):
        src = "program p\ninteger :: i\n= = 1 +\ncall ok()\nend program p\n"
        f, sink = recover_parse(src)
        assert "parse/bad-stmt" in sink.by_code()
        body = f.units[0].body
        assert any(isinstance(s, FtError) for s in body)
        # the statement after the junk line still parses
        assert any(isinstance(s, FtCallStmt) for s in body)

    def test_error_node_in_tree(self):
        f, _ = recover_parse("program p\n= = 1 +\nend program p\n")
        tree = fortran_to_tree(f)
        nodes = [n for n in tree.preorder() if n.kind == "error"]
        assert nodes and all(n.label == "error-node" for n in nodes)
