"""Generic artifact-layer tests: namespacing, version stamps, lenient loads.

The concrete stores (TED cache, checkpoints, unit artifacts) have their own
suites; these tests pin the shared contract every namespace relies on.
"""

import pytest

from repro import obs
from repro.artifacts import ArtifactStore, BlobStore, ShardMapStore, scan_namespaces
from repro.serde.container import write_blob
from repro.util.errors import SerdeError


class ToyShards(ShardMapStore):
    NAMESPACE = "toy"
    SCHEMA = "repro.toy/v1"
    KEY_SPEC = "toy:v1"
    DESCRIPTION = "toy shard"
    KIND = "toy"
    INVALID_COUNTER = "toy.invalid"


class ToyBlobs(BlobStore):
    NAMESPACE = "blob"
    SCHEMA = "repro.blob/v1"
    KEY_SPEC = "blob:v1"
    DESCRIPTION = "toy blob"
    KIND = "blob"
    INVALID_COUNTER = "blob.invalid"
    SAVED_COUNTER = "blob.saved"


class TestNamespacing:
    def test_files_carry_namespace_prefix(self, tmp_path):
        shards = ToyShards(tmp_path)
        shards.put("ab12", 1.0)
        shards.flush()
        blobs = ToyBlobs(tmp_path)
        blobs.save("deadbeef", {"x": 1})
        names = sorted(p.name for p in tmp_path.glob("*.svc"))
        assert names == ["blob-deadbeef.svc", "toy-ab.svc"]

    def test_namespaces_do_not_interfere(self, tmp_path):
        ToyShards(tmp_path).put("ab", 1.0)
        store = ToyShards(tmp_path)
        store.put("ab12", 2.0)
        store.flush()
        blobs = ToyBlobs(tmp_path)
        blobs.save("ab", {"x": 1})
        assert store.get("ab12") == 2.0
        assert blobs.load("ab") == {"x": 1}
        assert blobs.keys() == ["ab"]
        assert store._shard_ids_on_disk() == ["ab"]

    def test_scan_namespaces_groups_by_prefix(self, tmp_path):
        ToyBlobs(tmp_path).save("k1", {"a": 1})
        ToyBlobs(tmp_path).save("k2", {"a": 2})
        s = ToyShards(tmp_path)
        s.put("ab12", 1.0)
        s.flush()
        (tmp_path / "unrelated.txt").write_text("ignored")
        (tmp_path / "noprefix.svc").write_bytes(b"ignored: no namespace dash")
        out = scan_namespaces(tmp_path)
        assert set(out) == {"blob", "toy"}
        assert out["blob"]["files"] == 2
        assert out["toy"]["files"] == 1
        assert out["blob"]["bytes"] > 0

    def test_scan_missing_root_is_empty(self, tmp_path):
        assert scan_namespaces(tmp_path / "nope") == {}


class TestVersionStamps:
    def test_schema_mismatch_is_strict_error(self, tmp_path):
        path = ToyShards(tmp_path).shard_path("ab")
        write_blob(path, {"schema": "other/v9", "keyspec": "toy:v1", "entries": {}})
        with pytest.raises(SerdeError, match="schema"):
            ToyShards(tmp_path).read_shard("ab")

    def test_keyspec_mismatch_is_strict_error(self, tmp_path):
        store = ToyShards(tmp_path)
        store.put("ab12", 1.0)
        store.flush()
        with pytest.raises(SerdeError, match="keyspec"):
            ToyShards(tmp_path, keyspec="toy:v2").read_shard("ab")

    def test_foreign_file_is_strict_error(self, tmp_path):
        path = ToyShards(tmp_path).shard_path("ab")
        path.write_bytes(b"not a container at all")
        with pytest.raises(SerdeError):
            ToyShards(tmp_path).read_shard("ab")

    def test_lenient_load_counts_and_continues(self, tmp_path):
        store = ToyShards(tmp_path)
        store.shard_path("ab").write_bytes(b"junk")
        with obs.collect() as col:
            assert store.get("ab12") is None
        assert col.counters["toy.invalid"] == 1

    def test_blob_key_mismatch_is_lenient_miss(self, tmp_path):
        blobs = ToyBlobs(tmp_path)
        blobs.save("realkey", {"x": 1})
        # rename the artifact into the wrong identity
        blobs.path_for("realkey").rename(blobs.path_for("stolen"))
        with obs.collect() as col:
            assert blobs.load("stolen") == {}
        assert col.counters["blob.invalid"] == 1


class TestBlobStore:
    def test_roundtrip_and_delete(self, tmp_path):
        blobs = ToyBlobs(tmp_path)
        with obs.collect() as col:
            blobs.save("k", {"v": [1, 2, 3]})
        assert col.counters["blob.saved"] == 1
        assert blobs.load("k") == {"v": [1, 2, 3]}
        blobs.delete("k")
        assert blobs.load("k") == {}
        blobs.delete("k")  # idempotent

    def test_stats_and_clear(self, tmp_path):
        blobs = ToyBlobs(tmp_path)
        blobs.save("a", {"x": 1})
        blobs.save("b", {"x": 2})
        blobs.path_for("b").write_bytes(b"corrupt")
        stats = blobs.stats()
        assert stats["files"] == 2
        assert stats["entries"] == 1
        assert stats["invalid"] == ["b"]
        assert blobs.clear() == 2
        assert blobs.keys() == []

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        blobs = ToyBlobs(tmp_path)
        blobs.save("k", {"x": 1})
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []


class TestDefaults:
    def test_base_store_has_uncounted_invalid(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with obs.collect() as col:
            store._count_invalid()
        assert col.counters == {}


class TestPreload:
    def test_preload_reads_every_shard_into_memory(self, tmp_path):
        w = ToyShards(tmp_path)
        for key in ("aa11", "ab22", "cd33"):
            w.put(key, key)
        w.flush()
        r = ToyShards(tmp_path)
        assert r.preload() == 3
        # resident: every get is now a pure dict lookup
        assert set(r._loaded) == {"aa", "ab", "cd"}
        assert r.get("cd33") == "cd33"

    def test_preload_empty_root(self, tmp_path):
        assert ToyShards(tmp_path).preload() == 0

    def test_preload_counts_invalid_shard_as_empty(self, tmp_path):
        w = ToyShards(tmp_path)
        w.put("ee44", 1.0)
        w.flush()
        w.shard_path("ee").write_bytes(b"corrupt")
        r = ToyShards(tmp_path)
        with obs.collect() as col:
            assert r.preload() == 0
        assert col.counters["toy.invalid"] == 1
