"""End-to-end daemon tests over the small Fortran corpus.

One module-scoped daemon serves most tests (boot + warm costs a couple of
seconds); lifecycle tests that need their own daemon boot a cold one
without warm-up. The bit-identity tests assert the serve responses equal
the batch-path results over the same corpus — the tentpole guarantee.
"""

import http.client
import json
import socket
import threading

import pytest

from repro import obs
from repro.analysis.cluster import cluster_codebases
from repro.analysis.heatmap import HEATMAP_SPECS, divergence_heatmap
from repro.corpus.registry import app_models, clear_index_cache, index_app
from repro.distance.engine import DistanceEngine
from repro.distance.ted import clear_ted_cache
from repro.serve.daemon import ServeDaemon
from repro.workflow.comparer import divergence_row, parse_metric

APP = "babelstream-fortran"
BASELINE = "sequential"


class Client:
    """Tiny keep-alive JSON client over one http.client connection."""

    def __init__(self, port: int):
        self.port = port

    def request(self, method: str, path: str, body: bytes = b""):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=120)
        try:
            conn.request(method, path, body=body or None)
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            return resp.status, payload, dict(resp.getheaders())
        finally:
            conn.close()

    def get(self, path: str):
        status, payload, _ = self.request("GET", path)
        return status, payload

    def post(self, path: str, body: dict = None):
        data = json.dumps(body).encode() if body else b""
        status, payload, _ = self.request("POST", path, data)
        return status, payload


def boot(daemon: ServeDaemon) -> threading.Thread:
    t = threading.Thread(target=daemon.run, daemon=True)
    t.start()
    assert daemon.ready.wait(120), "daemon did not become ready"
    return t


@pytest.fixture(scope="module")
def served():
    """Warm daemon + collector + client shared by the read-only tests."""
    clear_index_cache()
    clear_ted_cache()
    with obs.collect() as col:
        daemon = ServeDaemon(
            DistanceEngine(),
            port=0,
            warm=[APP],
            window_s=0.05,
            quiet=True,
        )
        thread = boot(daemon)
        yield daemon, Client(daemon.port), col
        daemon.stop()
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestBasics:
    def test_healthz(self, served):
        _, client, _ = served
        status, payload = client.get("/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_apps(self, served):
        _, client, _ = served
        status, payload = client.get("/v1/apps")
        assert status == 200
        assert payload["apps"][APP] == app_models(APP)

    def test_unknown_path_404(self, served):
        _, client, _ = served
        status, payload = client.get("/v1/bogus")
        assert status == 404 and "error" in payload

    def test_wrong_method_405(self, served):
        _, client, _ = served
        status, _ = client.post("/v1/compare")
        assert status == 405

    def test_unknown_app_400_with_own_diag(self, served):
        _, client, _ = served
        status, payload = client.get("/v1/compare?app=nope&model=x")
        assert status == 400
        assert "nope" in payload["error"]
        assert any("serve/bad-request" in d for d in payload["diagnostics"])

    def test_missing_param_400(self, served):
        _, client, _ = served
        status, payload = client.get(f"/v1/compare?app={APP}")
        assert status == 400 and "model" in payload["error"]

    def test_index_reports_units(self, served):
        _, client, _ = served
        status, payload = client.get(f"/v1/index?app={APP}&model={BASELINE}")
        assert status == 200
        assert payload["units"] >= 1
        assert payload["fingerprint"]

    def test_responses_carry_request_ids(self, served):
        _, client, _ = served
        _, p1, h1 = client.request("GET", "/healthz")
        _, p2, h2 = client.request("GET", "/healthz")
        assert p2["request_id"] > p1["request_id"]
        assert h1["X-Request-Id"] == str(p1["request_id"])

    def test_stats_exposes_hot_tier_and_metrics(self, served):
        _, client, _ = served
        status, payload = client.get("/v1/stats")
        assert status == 200
        assert payload["serve"]["codebases"] >= len(app_models(APP))
        assert "serve.requests" in payload["metrics"]["counters"]


class TestBitIdentity:
    """Serve responses must equal the batch path over the same corpus."""

    def test_compare_matches_divergence_row(self, served):
        _, client, _ = served
        spec = parse_metric("Tsem")
        cbs = index_app(APP, coverage=spec.coverage)
        expected = divergence_row(cbs[BASELINE], [cbs["omp"]], spec)["omp"]
        status, payload = client.get(
            f"/v1/compare?app={APP}&model=omp&baseline={BASELINE}"
        )
        assert status == 200
        assert payload["divergence"] == expected  # bit-identical, no tolerance
        assert f"= {expected:.4f}" in payload["text"]

    def test_cluster_matches_cluster_codebases(self, served):
        _, client, _ = served
        spec = parse_metric("Tsem")
        cbs = index_app(APP, coverage=spec.coverage)
        names = list(cbs)
        dend = cluster_codebases([cbs[m] for m in names], names, spec)
        status, payload = client.get(f"/v1/cluster?app={APP}")
        assert status == 200
        assert payload["labels"] == names
        assert payload["newick"] == dend.newick()
        assert payload["leaf_order"] == dend.leaf_order()
        assert payload["linkage"] == [[float(v) for v in row] for row in dend.linkage]

    def test_heatmap_matches_divergence_heatmap(self, served):
        _, client, _ = served
        cbs = index_app(APP, coverage=True)
        models = [cb for m, cb in cbs.items() if m != BASELINE]
        data = divergence_heatmap(cbs[BASELINE], models, HEATMAP_SPECS)
        status, payload = client.get(f"/v1/heatmap?app={APP}&baseline={BASELINE}")
        assert status == 200
        assert payload["csv"] == data.to_csv()  # bit-identical grid
        assert payload["rows"] == data.row_labels
        assert payload["cols"] == data.col_labels

    def test_warm_repeat_is_identical(self, served):
        _, client, _ = served
        path = f"/v1/compare?app={APP}&model=omp&baseline={BASELINE}"
        _, first = client.get(path)
        _, again = client.get(path)
        assert again["divergence"] == first["divergence"]

    def test_nearest_orders_by_symmetrized_divergence(self, served):
        _, client, _ = served
        status, payload = client.get(f"/v1/nearest?app={APP}&model={BASELINE}&k=3")
        assert status == 200
        ds = [n["divergence"] for n in payload["neighbors"]]
        assert len(ds) == 3
        assert ds == sorted(ds)
        # symmetrized values are averages of two [0,1] divergences
        assert all(0.0 <= d <= 1.0 for d in ds)

    def test_nearest_index_matches_brute_and_batch(self, served):
        _, client, _ = served
        from repro.workflow.comparer import nearest_brute_force

        status, via_index = client.get(f"/v1/nearest?app={APP}&model={BASELINE}&k=3")
        assert status == 200 and via_index["mode"] == "index"
        assert via_index["index"]["exact_calls"] >= 1
        status, brute = client.get(
            f"/v1/nearest?app={APP}&model={BASELINE}&k=3&brute=1"
        )
        assert status == 200 and brute["mode"] == "scan"
        assert via_index["neighbors"] == brute["neighbors"]  # bit-identical
        spec = parse_metric("Tsem")
        cbs = index_app(APP, coverage=spec.coverage)
        others = [cb for m, cb in cbs.items() if m != BASELINE]
        want = nearest_brute_force(cbs[BASELINE], others, spec)[:3]
        assert via_index["neighbors"] == [
            {"model": m, "divergence": d} for d, m in want
        ]

    def test_nearest_non_tree_metric_falls_back_with_diag(self, served):
        _, client, _ = served
        status, payload = client.get(
            f"/v1/nearest?app={APP}&model={BASELINE}&k=2&metric=SLOC"
        )
        assert status == 200
        assert payload["mode"] == "scan"
        assert any("index/fallback" in d for d in payload["diagnostics"])

    def test_stats_reports_index_tier(self, served):
        _, client, _ = served
        status, payload = client.get("/v1/stats")
        assert status == 200
        # warm builds the Tsem index for the warmed app
        assert payload["serve"]["indexes"] >= 1
        assert "max_indexes" in payload["serve"]


class TestCoalescing:
    """N concurrent requests over overlapping pairs → one engine wave."""

    def test_concurrent_compares_one_wave_and_isolated_diags(self):
        clear_index_cache()
        with obs.collect() as col:
            daemon = ServeDaemon(
                DistanceEngine(),
                port=0,
                warm=[APP],
                window_s=0.4,  # wide window: all client threads land in one wave
                quiet=True,
            )
            thread = boot(daemon)
            client = Client(daemon.port)
            waves_before = col.counters.get("engine.waves", 0)

            models = ["omp", "array", "openacc"]
            paths = [
                f"/v1/compare?app={APP}&model={m}&baseline={BASELINE}"
                for m in models
            ] * 2  # 6 requests, 3 unique directed pairs
            paths.append(
                f"/v1/compare?app={APP}&model=not-a-model&baseline={BASELINE}"
            )  # bad rider

            results = [None] * len(paths)
            barrier = threading.Barrier(len(paths))

            def hit(i, path):
                barrier.wait()
                results[i] = client.get(path)

            threads = [
                threading.Thread(target=hit, args=(i, p)) for i, p in enumerate(paths)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)

            good = [r for r in results if r[0] == 200]
            bad = [r for r in results if r[0] == 400]
            assert len(good) == 6 and len(bad) == 1

            # exactly one ChunkedPool wave for the whole unique pair set
            assert col.counters["engine.waves"] - waves_before == 1
            # 6 demands over 3 unique keys → 3 folded duplicates
            assert col.counters["serve.batch.coalesced"] == 3
            assert col.counters["serve.batch.tasks"] == 3

            # per-request diag isolation: the failing request carries its own
            # diagnostic; none of the successes see it
            assert any("not-a-model" in d for d in bad[0][1]["diagnostics"])
            for _, payload in good:
                assert payload["diagnostics"] == []

            # identical duplicated requests got identical values
            by_model = {}
            for _, payload in good:
                by_model.setdefault(payload["model"], set()).add(payload["divergence"])
            assert all(len(vals) == 1 for vals in by_model.values())

            daemon.stop()
            thread.join(timeout=30)


class TestLifecycle:
    def test_port_file_and_invalidate_and_shutdown_endpoint(self, tmp_path):
        port_file = tmp_path / "port"
        daemon = ServeDaemon(
            DistanceEngine(), port=0, port_file=str(port_file), quiet=True
        )
        thread = boot(daemon)
        assert int(port_file.read_text()) == daemon.port
        client = Client(daemon.port)

        status, payload = client.get(f"/v1/index?app={APP}&model={BASELINE}")
        assert status == 200
        status, payload = client.get(f"/v1/nearest?app={APP}&model={BASELINE}&k=1")
        assert status == 200 and payload["mode"] == "index"
        status, payload = client.post("/v1/invalidate")
        assert status == 200
        assert payload["invalidated"]["codebases"] >= 1
        assert payload["invalidated"]["indexes"] == 1  # the nearest query built it

        status, payload = client.post("/v1/shutdown")
        assert status == 200 and payload["shutting_down"] is True
        thread.join(timeout=30)
        assert not thread.is_alive()
        # drain removes the port file so supervisors can't race a dead port
        assert not port_file.exists()

    def test_keep_alive_connection_reuse(self):
        daemon = ServeDaemon(DistanceEngine(), port=0, quiet=True)
        thread = boot(daemon)
        conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=30)
        try:
            ids = []
            for _ in range(3):  # same socket, three requests
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                ids.append(json.loads(resp.read())["request_id"])
            assert ids == sorted(ids) and len(set(ids)) == 3
        finally:
            conn.close()
            daemon.stop()
            thread.join(timeout=30)

    def test_malformed_request_gets_400_and_close(self):
        daemon = ServeDaemon(DistanceEngine(), port=0, quiet=True)
        thread = boot(daemon)
        try:
            with socket.create_connection(("127.0.0.1", daemon.port), timeout=30) as s:
                s.sendall(b"NONSENSE\r\n\r\n")
                data = s.recv(4096)
            assert data.startswith(b"HTTP/1.1 400 ")
        finally:
            daemon.stop()
            thread.join(timeout=30)

    def test_stop_is_graceful_and_idempotent(self):
        daemon = ServeDaemon(DistanceEngine(), port=0, quiet=True)
        thread = boot(daemon)
        daemon.stop()
        daemon.stop()
        thread.join(timeout=30)
        assert not thread.is_alive()
