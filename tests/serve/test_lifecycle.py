"""Daemon lifecycle under signals: SIGTERM mid-wave drains, answers, exits 0.

Drives the real ``silvervale serve`` CLI in a subprocess (loop signal
handlers only exist on a main thread, so the in-process daemons of the
other suites can't cover this). Pins the contract: a SIGTERM arriving
while an engine wave is in flight lets the wave finish, delivers the
joiners' responses, removes the port file, records the serve ledger
snapshot, and exits 0.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.obs import ledger as runledger

SRC = str(Path(__file__).resolve().parents[2] / "src")
APP = "babelstream-fortran"
BASELINE = "sequential"


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals required")
class TestSigtermMidWave:
    def test_drain_completes_wave_and_exits_zero(self, tmp_path):
        port_file = tmp_path / "port"
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.workflow.cli",
                "serve",
                "--port",
                "0",
                "--port-file",
                str(port_file),
                "--warm",
                APP,
                "--grace",
                "60",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline and not port_file.exists():
                time.sleep(0.05)
                assert proc.poll() is None, "daemon died before becoming ready"
            assert port_file.exists(), "daemon never wrote its port file"
            port = int(port_file.read_text())

            # issue a cold compare (real wave work) from a client thread,
            # then SIGTERM the daemon while that wave is in flight
            result = {}

            def query():
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
                try:
                    conn.request(
                        "GET",
                        f"/v1/compare?app={APP}&model=omp"
                        f"&baseline={BASELINE}&metric=Tir",
                    )
                    resp = conn.getresponse()
                    result["status"] = resp.status
                    result["payload"] = json.loads(resp.read())
                finally:
                    conn.close()

            t = threading.Thread(target=query)
            t.start()
            time.sleep(0.25)  # request in flight; the wave has started
            proc.send_signal(signal.SIGTERM)
            t.join(timeout=120)
            out, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        # graceful drain: the in-flight joiner got its real answer
        assert result.get("status") == 200, f"result={result!r} stderr={err!r}"
        assert 0.0 <= result["payload"]["divergence"] <= 1.0
        # clean exit, not an interrupt/error path
        assert proc.returncode == 0, f"stdout={out!r} stderr={err!r}"
        # drain removed the port file so supervisors can't race a dead port
        assert not port_file.exists()

        # shutdown flushed the serve-lifetime snapshot into the run ledger
        store = runledger.RunLedgerStore(str(cache_dir))
        snaps = runledger.history(store, command="serve")
        assert snaps, "serve session recorded no ledger snapshot"
        workload = snaps[-1].get("workload", {})
        assert workload.get("uptime_s", 0) > 0
        assert "requests" in workload and workload["requests"] >= 1
