"""WaveBatcher contract: dedup, in-flight join, wave counting, errors.

These tests use a recording fake runner (no engine) on a real event loop;
the daemon-level suite proves the same properties against ChunkedPool via
the ``engine.waves`` counter.
"""

import asyncio
import concurrent.futures
import threading

import pytest

from repro import obs
from repro.serve.batcher import (
    WAVE_FAILED,
    WaveBatcher,
    WaveKeyError,
    WavePoisonedError,
)


class Runner:
    """Synchronous wave runner that records every call it receives."""

    def __init__(self, fn=None, block: threading.Event = None):
        self.calls = []
        self.fn = fn or (lambda kind, task: ("val", kind, task))
        self.block = block

    def __call__(self, kind, tasks, keys):
        if self.block is not None:
            assert self.block.wait(10)
        self.calls.append((kind, list(keys)))
        return [self.fn(kind, t) for t in tasks]


def run_with_batcher(coro_fn, runner, window_s=0.001, **kw):
    """Drive one async scenario with a fresh batcher + one-thread executor."""

    async def go():
        with concurrent.futures.ThreadPoolExecutor(max_workers=1) as ex:
            batcher = WaveBatcher(runner, ex, window_s=window_s, **kw)
            return await coro_fn(batcher)

    return asyncio.run(go())


class TestCoalescing:
    def test_concurrent_overlapping_demands_one_wave(self):
        """N concurrent demand sets with overlap → one wave of unique keys."""
        runner = Runner()

        async def scenario(batcher):
            results = await asyncio.gather(
                batcher.demand_many("pair", ["a", "b"], [1, 2]),
                batcher.demand_many("pair", ["b", "c"], [2, 3]),
                batcher.demand_many("pair", ["a", "c"], [1, 3]),
            )
            return results

        with obs.collect() as col:
            results = run_with_batcher(scenario, runner)
        assert len(runner.calls) == 1
        kind, keys = runner.calls[0]
        assert kind == "pair" and sorted(keys) == ["a", "b", "c"]
        # every requester got its values, shared results included
        assert results[0] == [("val", "pair", 1), ("val", "pair", 2)]
        assert results[1] == [("val", "pair", 2), ("val", "pair", 3)]
        assert results[2] == [("val", "pair", 1), ("val", "pair", 3)]
        assert col.counters["serve.batch.waves"] == 1
        assert col.counters["serve.batch.tasks"] == 3
        assert col.counters["serve.batch.demands"] == 6
        assert col.counters["serve.batch.coalesced"] == 3

    def test_kinds_grouped_within_one_wave(self):
        runner = Runner()

        async def scenario(batcher):
            return await asyncio.gather(
                batcher.demand("directed", "d1", 10),
                batcher.demand("pair", "p1", 20),
            )

        with obs.collect() as col:
            values = run_with_batcher(scenario, runner)
        # one flush window, one runner call per task kind
        assert col.counters["serve.batch.waves"] == 1
        assert sorted(kind for kind, _ in runner.calls) == ["directed", "pair"]
        assert values == [("val", "directed", 10), ("val", "pair", 20)]

    def test_inflight_join_shares_running_work(self):
        """A demand for a key already being computed joins it, no re-run."""
        release = threading.Event()
        runner = Runner(block=release)

        async def scenario(batcher):
            first = asyncio.ensure_future(batcher.demand("pair", "k", 1))
            # let the first demand flush and start running (runner blocks)
            await asyncio.sleep(0.05)
            second = asyncio.ensure_future(batcher.demand("pair", "k", 1))
            await asyncio.sleep(0.05)
            release.set()
            return await asyncio.gather(first, second)

        with obs.collect() as col:
            v1, v2 = run_with_batcher(scenario, runner, window_s=0.001)
        assert v1 == v2 == ("val", "pair", 1)
        assert len(runner.calls) == 1
        assert col.counters["serve.batch.coalesced"] == 1

    def test_sequential_demands_make_separate_waves(self):
        runner = Runner()

        async def scenario(batcher):
            await batcher.demand("pair", "a", 1)
            await batcher.demand("pair", "b", 2)

        with obs.collect() as col:
            run_with_batcher(scenario, runner)
        assert len(runner.calls) == 2
        assert col.counters["serve.batch.waves"] == 2


class TestFailure:
    def test_runner_error_reaches_every_waiter(self):
        def boom(kind, tasks, keys):
            raise RuntimeError("wave failed")

        async def scenario(batcher):
            with pytest.raises(RuntimeError, match="wave failed"):
                await asyncio.gather(
                    batcher.demand("pair", "a", 1),
                    batcher.demand("pair", "b", 2),
                )
            # a failed wave must not leave its keys stuck in-flight
            assert batcher._inflight == {}

        run_with_batcher(scenario, boom)

    def test_failed_key_isolated_from_siblings(self):
        """A WAVE_FAILED sentinel fails only its own key's joiners."""

        def runner(kind, tasks, keys):
            return [WAVE_FAILED if t == 2 else ("val", t) for t in tasks]

        async def scenario(batcher):
            results = await asyncio.gather(
                batcher.demand("pair", "a", 1),
                batcher.demand("pair", "b", 2),
                batcher.demand("pair", "c", 3),
                return_exceptions=True,
            )
            assert batcher._inflight == {}
            return results

        with obs.collect() as col:
            a, b, c = run_with_batcher(scenario, runner)
        assert a == ("val", 1)
        assert isinstance(b, WaveKeyError) and b.key == "b"
        assert c == ("val", 3)
        assert col.counters["serve.batch.failed_keys"] == 1

    def test_one_kind_failing_spares_sibling_kinds(self):
        """An exception out of one kind's engine call fails only that kind."""

        def runner(kind, tasks, keys):
            if kind == "directed":
                raise RuntimeError("directed wave blew up")
            return [("val", t) for t in tasks]

        async def scenario(batcher):
            return await asyncio.gather(
                batcher.demand("directed", "d1", 1),
                batcher.demand("pair", "p1", 2),
                return_exceptions=True,
            )

        d, p = run_with_batcher(scenario, runner)
        assert isinstance(d, RuntimeError)
        assert p == ("val", 2)

    def test_requester_cancellation_spares_shared_future(self):
        """One joiner's deadline cancellation must not cancel the wave."""
        release = threading.Event()
        runner = Runner(block=release)

        async def scenario(batcher):
            slow = asyncio.ensure_future(batcher.demand("pair", "k", 1))
            await asyncio.sleep(0.05)  # flush; runner blocks
            joiner = asyncio.ensure_future(batcher.demand("pair", "k", 1))
            await asyncio.sleep(0.05)
            joiner.cancel()  # the request-deadline path
            release.set()
            return await slow

        value = run_with_batcher(scenario, runner)
        assert value == ("val", "pair", 1)


class TestWaveWatchdog:
    def test_poisoned_wave_fails_joiners_and_fires_callback(self):
        release = threading.Event()
        runner = Runner(block=release)  # wedged until released
        poisoned = []

        async def scenario(batcher):
            try:
                results = await asyncio.gather(
                    batcher.demand("pair", "a", 1),
                    batcher.demand("pair", "b", 2),
                    return_exceptions=True,
                )
            finally:
                release.set()  # let the abandoned thread finish
            assert batcher._inflight == {}
            return results

        with obs.collect() as col:
            a, b = run_with_batcher(
                scenario, runner, wave_timeout_s=0.1, on_poisoned=poisoned.append
            )
        assert isinstance(a, WavePoisonedError)
        assert isinstance(b, WavePoisonedError)
        assert poisoned == ["pair"]
        assert col.counters["serve.batch.poisoned"] == 1

    def test_next_wave_runs_on_replacement_executor(self):
        """After a poisoned wave the batcher keeps serving via the executor
        callable — the daemon's restart hook swaps in a fresh thread."""
        release = threading.Event()
        wedged = Runner(block=release)
        executors = [concurrent.futures.ThreadPoolExecutor(max_workers=1)]

        def runner(kind, tasks, keys):
            if not release.is_set():
                return wedged(kind, tasks, keys)
            return [("ok", t) for t in tasks]

        def on_poisoned(kind):
            old = executors[0]
            executors.append(concurrent.futures.ThreadPoolExecutor(max_workers=1))
            executors[0] = executors[-1]
            old.shutdown(wait=False)

        async def go():
            batcher = WaveBatcher(
                runner,
                lambda: executors[0],
                window_s=0.001,
                wave_timeout_s=0.1,
                on_poisoned=on_poisoned,
            )
            with pytest.raises(WavePoisonedError):
                await batcher.demand("pair", "a", 1)
            release.set()
            value = await batcher.demand("pair", "b", 2)
            executors[0].shutdown(wait=True)
            return value

        try:
            assert asyncio.run(go()) == ("ok", 2)
        finally:
            release.set()


class TestDrain:
    def test_drain_flushes_pending(self):
        runner = Runner()

        async def scenario(batcher):
            # long window: without drain() this demand would sit pending
            fut = asyncio.ensure_future(batcher.demand("pair", "a", 1))
            await asyncio.sleep(0)
            await batcher.drain()
            assert fut.done()
            return await fut

        value = run_with_batcher(scenario, runner, window_s=30.0)
        assert value == ("val", "pair", 1)
        assert len(runner.calls) == 1

    def test_drain_idle_is_noop(self):
        async def scenario(batcher):
            await batcher.drain()

        run_with_batcher(scenario, Runner())
