"""Overload and failure semantics: admission shedding, deadlines, the
bounded hot tier, and the explicit 405/501 surface.

The daemon-level tests boot tiny cold daemons with deliberately small
budgets; the hot-tier LRU is unit-tested directly on :class:`ServeState`.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro import obs
from repro.distance.engine import DistanceEngine
from repro.serve.daemon import ServeDaemon
from repro.serve.state import ServeState

from tests.serve.test_endpoints import APP, BASELINE, Client, boot


class TestHotTierLRU:
    def test_memo_evicts_least_recently_used(self):
        state = ServeState(engine=None, max_entries=2)
        with obs.collect() as col:
            state.remember("a", 1)
            state.remember("b", 2)
            assert state.lookup("a") == 1  # refresh a: b is now LRU
            state.remember("c", 3)
        assert state.lookup("b") is None
        assert state.lookup("a") == 1 and state.lookup("c") == 3
        assert col.counters["serve.hot.evicted.memo"] == 1
        stats = state.stats()
        assert stats["evicted"]["memo"] == 1
        assert stats["max_entries"] == 2

    def test_unbounded_by_default(self):
        state = ServeState(engine=None)
        for i in range(100):
            state.remember(str(i), i)
        assert state.stats()["memo_entries"] == 100
        assert state.stats()["evicted"] == {"codebases": 0, "memo": 0, "indexes": 0}

    def test_codebase_cap_evicts_in_insertion_order(self):
        state = ServeState(engine=None, max_codebases=2)
        # bypass indexing: exercise only the cap bookkeeping
        with obs.collect() as col:
            with state._lock:
                state._codebases[("app", "m1", False)] = "cb1"
            state._codebases.move_to_end(("app", "m1", False))
            with state._lock:
                state._codebases[("app", "m2", False)] = "cb2"
            # a hit on m1 makes m2 the eviction candidate
            hit = state._codebases.get(("app", "m1", False))
            state._codebases.move_to_end(("app", "m1", False))
            assert hit == "cb1"
            state.remember("x", 1)  # unrelated tier, no interference
        assert len(state._codebases) == 2


class TestAdmissionControl:
    def test_shed_beyond_budget_and_queue(self):
        """max_inflight=1, max_queue=0: a second concurrent request sheds
        with 429 + Retry-After while the first is still in flight."""
        daemon = ServeDaemon(
            DistanceEngine(),
            port=0,
            warm=[APP],
            window_s=0.005,
            quiet=True,
            max_inflight=1,
            max_queue=0,
            request_timeout_s=120.0,
        )
        thread = boot(daemon)
        client = Client(daemon.port)
        try:
            # occupy the only slot with a cold compare (real engine work)
            hold_result = {}

            def hold():
                hold_result["r"] = client.get(
                    f"/v1/compare?app={APP}&model=omp&baseline={BASELINE}&metric=Tir"
                )

            t = threading.Thread(target=hold)
            t.start()
            # wait until the slot is actually taken
            for _ in range(200):
                status, health, headers = client.request("GET", "/healthz")
                if health.get("state") in ("busy", "overloaded"):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("holder request never took the admission slot")

            status, payload, headers = client.request(
                "GET", f"/v1/compare?app={APP}&model=array&baseline={BASELINE}&metric=Tir"
            )
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert any("serve/overloaded" in d for d in payload["diagnostics"])

            # health reports overload as 503 while saturated, yet answers
            status, health, _ = client.request("GET", "/healthz")
            assert status == 503
            assert health["status"] == "overloaded"
            assert health["admission"]["shed"] >= 1

            t.join(timeout=120)
            assert hold_result["r"][0] == 200
            # slot released: the daemon is ready again
            status, health = client.get("/healthz")
            assert status == 200 and health["state"] == "ready"
        finally:
            daemon.stop()
            thread.join(timeout=30)

    def test_exempt_paths_never_shed(self):
        daemon = ServeDaemon(
            DistanceEngine(), port=0, quiet=True, max_inflight=1, max_queue=0
        )
        thread = boot(daemon)
        client = Client(daemon.port)
        try:
            for _ in range(5):  # nothing in flight: always 200
                status, payload = client.get("/v1/stats")
                assert status == 200
                assert payload["admission"]["max_inflight"] == 1
        finally:
            daemon.stop()
            thread.join(timeout=30)


class TestDeadlines:
    def test_client_timeout_header_gets_504_with_diag(self):
        daemon = ServeDaemon(
            DistanceEngine(),
            port=0,
            warm=[APP],
            window_s=0.005,
            quiet=True,
            request_timeout_s=120.0,
        )
        thread = boot(daemon)
        try:
            conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=60)
            # a cold Tir compare takes well over 1ms of engine work
            conn.request(
                "GET",
                f"/v1/compare?app={APP}&model=omp&baseline={BASELINE}&metric=Tir",
                headers={"X-Timeout-Ms": "1"},
            )
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 504
            assert any("serve/deadline" in d for d in payload["diagnostics"])
            conn.close()

            # the same query without the header succeeds: the cancelled
            # request did not poison the shared wave or the daemon
            client = Client(daemon.port)
            status, payload = client.get(
                f"/v1/compare?app={APP}&model=omp&baseline={BASELINE}&metric=Tir"
            )
            assert status == 200
            assert 0.0 <= payload["divergence"] <= 1.0
        finally:
            daemon.stop()
            thread.join(timeout=30)

    def test_malformed_timeout_header_ignored(self):
        daemon = ServeDaemon(DistanceEngine(), port=0, quiet=True)
        thread = boot(daemon)
        try:
            conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=30)
            conn.request("GET", "/v1/apps", headers={"X-Timeout-Ms": "soon"})
            resp = conn.getresponse()
            assert resp.status == 200
            conn.close()
        finally:
            daemon.stop()
            thread.join(timeout=30)


class TestExplicitStatusCodes:
    def test_405_carries_allow_header(self):
        daemon = ServeDaemon(DistanceEngine(), port=0, quiet=True)
        thread = boot(daemon)
        client = Client(daemon.port)
        try:
            status, payload, headers = client.request("POST", "/v1/compare")
            assert status == 405
            assert headers.get("Allow") == "GET"
            status, payload, headers = client.request("DELETE", "/v1/index")
            assert status == 405
            assert headers.get("Allow") == "GET, POST"
        finally:
            daemon.stop()
            thread.join(timeout=30)

    def test_unknown_method_gets_501(self):
        daemon = ServeDaemon(DistanceEngine(), port=0, quiet=True)
        thread = boot(daemon)
        try:
            with socket.create_connection(("127.0.0.1", daemon.port), timeout=30) as s:
                s.sendall(b"BREW /v1/apps HTTP/1.1\r\n\r\n")
                data = s.recv(4096)
            assert data.startswith(b"HTTP/1.1 501 ")
        finally:
            daemon.stop()
            thread.join(timeout=30)

    def test_chunked_transfer_gets_501(self):
        daemon = ServeDaemon(DistanceEngine(), port=0, quiet=True)
        thread = boot(daemon)
        try:
            with socket.create_connection(("127.0.0.1", daemon.port), timeout=30) as s:
                s.sendall(
                    b"POST /v1/index HTTP/1.1\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                    b"0\r\n\r\n"
                )
                data = s.recv(4096)
            assert data.startswith(b"HTTP/1.1 501 ")
        finally:
            daemon.stop()
            thread.join(timeout=30)


class TestSlowClients:
    def test_stalled_header_gets_408(self):
        daemon = ServeDaemon(DistanceEngine(), port=0, quiet=True, io_timeout_s=0.3)
        thread = boot(daemon)
        try:
            with obs.collect():
                with socket.create_connection(
                    ("127.0.0.1", daemon.port), timeout=30
                ) as s:
                    s.sendall(b"GET /healthz HT")  # slowloris: never finishes
                    s.settimeout(10)
                    data = s.recv(4096)
                assert data.startswith(b"HTTP/1.1 408 ")
        finally:
            daemon.stop()
            thread.join(timeout=30)

    def test_idle_keep_alive_closed_silently(self):
        daemon = ServeDaemon(DistanceEngine(), port=0, quiet=True, io_timeout_s=0.3)
        thread = boot(daemon)
        try:
            with socket.create_connection(("127.0.0.1", daemon.port), timeout=30) as s:
                s.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
                s.settimeout(10)
                first = s.recv(65536)
                assert first.startswith(b"HTTP/1.1 200 ")
                # now idle past the io timeout: silent close, no 408 bytes
                # that a reusing client would misread as its next response
                tail = b""
                while True:
                    chunk = s.recv(4096)
                    if not chunk:
                        break
                    tail += chunk
                assert b"408" not in tail
        finally:
            daemon.stop()
            thread.join(timeout=30)
