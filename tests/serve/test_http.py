"""HTTP framing unit tests: request parsing, limits, response serialisation.

Pure stream-level tests — a ``StreamReader`` is fed bytes by hand; no
sockets, no daemon.
"""

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    HttpError,
    read_request,
    response_bytes,
)


def parse(raw: bytes, **kw):
    """Run ``read_request`` over a pre-filled reader."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kw)

    return asyncio.run(go())


class TestRequestParsing:
    def test_get_with_query(self):
        req = parse(b"GET /v1/compare?app=x&model=omp HTTP/1.1\r\nHost: h\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/v1/compare"
        assert req.query == {"app": "x", "model": "omp"}
        assert req.headers["host"] == "h"
        assert req.body == b""

    def test_header_names_lowercased(self):
        req = parse(b"GET / HTTP/1.1\r\nX-ThInG: V\r\n\r\n")
        assert req.headers["x-thing"] == "V"

    def test_post_body_via_content_length(self):
        body = json.dumps({"app": "x"}).encode()
        raw = (
            b"POST /v1/index HTTP/1.1\r\ncontent-length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        req = parse(raw)
        assert req.json() == {"app": "x"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_mid_header_eof_is_400(self):
        with pytest.raises(HttpError) as ei:
            parse(b"GET / HTTP/1.1\r\nHos")
        assert ei.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as ei:
            parse(b"GET /\r\n\r\n")
        assert ei.value.status == 400

    def test_unsupported_version(self):
        with pytest.raises(HttpError) as ei:
            parse(b"GET / HTTP/2.0\r\n\r\n")
        assert ei.value.status == 400

    def test_malformed_header_line(self):
        with pytest.raises(HttpError) as ei:
            parse(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n")
        assert ei.value.status == 400

    def test_bad_content_length(self):
        with pytest.raises(HttpError) as ei:
            parse(b"GET / HTTP/1.1\r\ncontent-length: nope\r\n\r\n")
        assert ei.value.status == 400

    def test_negative_content_length(self):
        with pytest.raises(HttpError) as ei:
            parse(b"GET / HTTP/1.1\r\ncontent-length: -5\r\n\r\n")
        assert ei.value.status == 400

    def test_oversized_body_is_413(self):
        n = MAX_BODY_BYTES + 1
        with pytest.raises(HttpError) as ei:
            parse(f"GET / HTTP/1.1\r\ncontent-length: {n}\r\n\r\n".encode())
        assert ei.value.status == 413

    def test_oversized_header_block_is_413(self):
        raw = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 4096 + b"\r\n\r\n"
        with pytest.raises(HttpError) as ei:
            parse(raw, max_header=1024)
        assert ei.value.status == 413

    def test_chunked_bodies_rejected_as_501(self):
        with pytest.raises(HttpError) as ei:
            parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
        assert ei.value.status == 501

    def test_unknown_method_is_501(self):
        with pytest.raises(HttpError) as ei:
            parse(b"BREW / HTTP/1.1\r\n\r\n")
        assert ei.value.status == 501

    def test_known_methods_parse(self):
        assert parse(b"DELETE /x HTTP/1.1\r\n\r\n").method == "DELETE"
        assert parse(b"options / HTTP/1.1\r\n\r\n").method == "OPTIONS"


class TestReadTimeouts:
    """Slow-client guard: idle closes silently, a stalled message is 408."""

    def run_with_writer(self, coro_fn, payload_plan):
        """Drive ``read_request`` against a reader fed per ``payload_plan``:
        a list of (delay_s, bytes) steps, with EOF never fed."""

        async def go():
            reader = asyncio.StreamReader()

            async def feeder():
                for delay, data in payload_plan:
                    await asyncio.sleep(delay)
                    reader.feed_data(data)

            feed = asyncio.ensure_future(feeder())
            try:
                return await coro_fn(reader)
            finally:
                feed.cancel()

        return asyncio.run(go())

    def test_idle_timeout_closes_silently(self):
        # zero bytes ever sent: the keep-alive connection idled out — that
        # is a None (silent close), never a 408 that would desync a reusing
        # client
        result = self.run_with_writer(
            lambda r: read_request(r, header_timeout_s=0.05), []
        )
        assert result is None

    def test_stalled_header_is_408(self):
        with pytest.raises(HttpError) as ei:
            self.run_with_writer(
                lambda r: read_request(r, header_timeout_s=0.05),
                [(0.0, b"GET / HT")],  # slowloris: starts, never finishes
            )
        assert ei.value.status == 408

    def test_stalled_body_is_408(self):
        raw = b"POST / HTTP/1.1\r\ncontent-length: 100\r\n\r\nonly-ten-b"
        with pytest.raises(HttpError) as ei:
            self.run_with_writer(
                lambda r: read_request(
                    r, header_timeout_s=0.5, body_timeout_s=0.05
                ),
                [(0.0, raw)],
            )
        assert ei.value.status == 408

    def test_prompt_request_unaffected_by_timeouts(self):
        req = self.run_with_writer(
            lambda r: read_request(r, header_timeout_s=0.5, body_timeout_s=0.5),
            [(0.0, b"GET /ok HTTP/1.1\r\n\r\n")],
        )
        assert req.path == "/ok"


class TestRequestHelpers:
    def test_keep_alive_default_by_version(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive is True
        assert parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive is False

    def test_keep_alive_connection_header(self):
        assert parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive is False
        assert (
            parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive is True
        )

    def test_param_required(self):
        req = parse(b"GET /?a=1 HTTP/1.1\r\n\r\n")
        assert req.param("a") == "1"
        assert req.param("b", "dflt") == "dflt"
        with pytest.raises(HttpError) as ei:
            req.param("b")
        assert ei.value.status == 400

    def test_flag(self):
        req = parse(b"GET /?x=true&y=0 HTTP/1.1\r\n\r\n")
        assert req.flag("x") is True
        assert req.flag("y") is False
        assert req.flag("z") is False
        assert req.flag("z", default=True) is True

    def test_bad_json_body_is_400(self):
        raw = b"POST / HTTP/1.1\r\ncontent-length: 3\r\n\r\n{{{"
        with pytest.raises(HttpError) as ei:
            parse(raw).json()
        assert ei.value.status == 400

    def test_empty_body_json_is_empty_dict(self):
        assert parse(b"POST / HTTP/1.1\r\n\r\n").json() == {}


class TestResponseBytes:
    def test_framing(self):
        raw = response_bytes(200, {"b": 1, "a": 2})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: keep-alive" in lines
        # deterministic body: sorted keys, trailing newline
        assert body == b'{"a": 2, "b": 1}\n'

    def test_close_and_extra_headers(self):
        raw = response_bytes(404, {}, keep_alive=False, extra_headers={"X-Request-Id": "7"})
        head = raw.split(b"\r\n\r\n")[0].decode()
        assert "HTTP/1.1 404 Not Found" in head
        assert "Connection: close" in head
        assert "X-Request-Id: 7" in head
