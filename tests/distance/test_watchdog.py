"""Watchdog fault tolerance: injected kills/hangs/exceptions must never
change results, and retry exhaustion degrades (or fail-fasts under strict).

Faults are injected through the worker-side ``REPRO_CHAOS`` hook — the same
hook ``benchmarks/chaos_engine.py`` drives at corpus scale.
"""

import math

import pytest

from repro import diag, obs
from repro.distance.engine import DistanceEngine, _parse_chaos
from repro.util.errors import ReproError

TASKS = list(range(8))
EXPECTED = [x * x for x in TASKS]


def _square(task):
    return task * task


def _engine(**kw):
    kw.setdefault("jobs", 2)
    kw.setdefault("chunk_size", 2)
    kw.setdefault("chunk_timeout", 10.0)
    kw.setdefault("retries", 2)
    kw.setdefault("backoff_s", 0.05)
    return DistanceEngine(**kw)


class TestChaosSpecParsing:
    def test_modes_indices_and_always_flag(self):
        assert _parse_chaos("kill@3, hang@5 ,exc!@7") == [
            ("kill", 3, False),
            ("hang", 5, False),
            ("exc", 7, True),
        ]

    def test_malformed_parts_ignored(self):
        assert _parse_chaos("bogus@1,kill@x,@3,,kill") == []

    def test_semicolons_accepted(self):
        assert _parse_chaos("kill@1;exc@2") == [("kill", 1, False), ("exc", 2, False)]


class TestInjectedFaults:
    def test_worker_exception_is_retried(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "exc@3")
        with obs.collect() as col:
            out = _engine().map_tasks(_square, TASKS)
        assert out == EXPECTED
        assert col.counters["engine.retries"] >= 1

    def test_killed_worker_chunk_is_rescheduled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "kill@1")
        with obs.collect() as col:
            out = _engine(chunk_timeout=1.0).map_tasks(_square, TASKS)
        assert out == EXPECTED
        assert col.counters["engine.chunk_timeouts"] >= 1
        assert col.counters["engine.worker_deaths"] >= 1
        assert col.counters["engine.retries"] >= 1

    def test_hung_worker_chunk_is_rescheduled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "hang@5")
        monkeypatch.setenv("REPRO_CHAOS_HANG_S", "30")
        with obs.collect() as col:
            out = _engine(chunk_timeout=1.0).map_tasks(_square, TASKS)
        assert out == EXPECTED
        assert col.counters["engine.chunk_timeouts"] >= 1

    def test_no_timeout_configured_still_recovers_exceptions(self, monkeypatch):
        # exceptions surface through the pool immediately — no deadline needed
        monkeypatch.setenv("REPRO_CHAOS", "exc@0")
        out = _engine(chunk_timeout=None).map_tasks(_square, TASKS)
        assert out == EXPECTED


class TestRetryExhaustion:
    def test_degrades_to_fail_value_with_diagnostic(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "exc!@0")  # fails on every attempt
        with diag.capture() as sink, obs.collect() as col:
            out = _engine(retries=1).map_tasks(_square, TASKS)
        assert math.isnan(out[0]) and math.isnan(out[1])  # chunk 0:2 degraded
        assert out[2:] == EXPECTED[2:]
        assert sink.by_code() == {"distance/chunk-failed": 1}
        assert col.counters["engine.chunks_failed"] == 1
        assert col.counters["engine.retries"] == 1

    def test_custom_fail_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "exc!@0")
        out = _engine(retries=0).map_tasks(_square, TASKS, fail_value=-1.0)
        assert out[:2] == [-1.0, -1.0] and out[2:] == EXPECTED[2:]

    def test_strict_mode_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "exc!@0")
        with pytest.raises(ReproError, match="failed after 2 attempt"):
            _engine(retries=1, strict=True).map_tasks(_square, TASKS)

    def test_retries_zero_means_single_attempt(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "exc!@4")
        with obs.collect() as col:
            out = _engine(retries=0).map_tasks(_square, TASKS)
        assert math.isnan(out[4])
        assert "engine.retries" not in col.counters


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DistanceEngine(chunk_timeout=0)
        with pytest.raises(ValueError):
            DistanceEngine(chunk_timeout=-1.5)
        with pytest.raises(ValueError):
            DistanceEngine(retries=-1)

    def test_keys_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="keys length"):
            DistanceEngine().map_tasks(_square, [1, 2, 3], keys=["a", "b"])
