"""Property-based TED tests: oracle agreement and metric axioms."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.distance import brute_force_ted
from repro.distance.zhang_shasha import zhang_shasha_distance, zhang_shasha_generic
from repro.trees import Node

_LABELS = ("a", "b", "c")


@st.composite
def small_trees(draw, max_nodes=9):
    """Random ordered trees by parent-attachment."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [Node(draw(st.sampled_from(_LABELS)))]
    for _ in range(n - 1):
        parent = draw(st.integers(min_value=0, max_value=len(nodes) - 1))
        child = Node(draw(st.sampled_from(_LABELS)))
        nodes[parent].children.append(child)
        nodes.append(child)
    return nodes[0]


@st.composite
def mid_trees(draw, max_nodes=40):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [Node(draw(st.sampled_from(_LABELS)))]
    for _ in range(n - 1):
        parent = draw(st.integers(min_value=0, max_value=len(nodes) - 1))
        child = Node(draw(st.sampled_from(_LABELS)))
        nodes[parent].children.append(child)
        nodes.append(child)
    return nodes[0]


@settings(max_examples=120, deadline=None)
@given(small_trees(), small_trees())
def test_hybrid_matches_brute_force(t1, t2):
    assert zhang_shasha_distance(t1, t2) == brute_force_ted(t1, t2)


@settings(max_examples=40, deadline=None)
@given(mid_trees(), mid_trees())
def test_hybrid_matches_generic_kernel(t1, t2):
    unit = (
        lambda n: 1.0,
        lambda n: 1.0,
        lambda a, b: 0.0 if a.label == b.label else 1.0,
    )
    assert zhang_shasha_distance(t1, t2) == zhang_shasha_generic(t1, t2, *unit)


@settings(max_examples=60, deadline=None)
@given(mid_trees())
def test_identity_axiom(t):
    assert zhang_shasha_distance(t, t) == 0


@settings(max_examples=60, deadline=None)
@given(mid_trees(), mid_trees())
def test_symmetry_axiom(t1, t2):
    assert zhang_shasha_distance(t1, t2) == zhang_shasha_distance(t2, t1)


@settings(max_examples=25, deadline=None)
@given(small_trees(), small_trees(), small_trees())
def test_triangle_inequality(a, b, c):
    dab = zhang_shasha_distance(a, b)
    dbc = zhang_shasha_distance(b, c)
    dac = zhang_shasha_distance(a, c)
    assert dac <= dab + dbc


@settings(max_examples=60, deadline=None)
@given(mid_trees(), mid_trees())
def test_bounded_by_dmax_sum(t1, t2):
    # deleting everything then inserting everything is always an upper bound
    d = zhang_shasha_distance(t1, t2)
    assert d <= t1.size() + t2.size()
    # and at least the size difference
    assert d >= abs(t1.size() - t2.size())
