"""Sequence distance kernels: Wu–Manber O(NP), Myers O(ND), Levenshtein."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.distance import lcs_length, levenshtein, myers_edit_distance, onp_edit_distance


class TestWuManber:
    def test_identical(self):
        assert onp_edit_distance("abc", "abc") == 0

    def test_empty_sides(self):
        assert onp_edit_distance("", "abc") == 3
        assert onp_edit_distance("abc", "") == 3
        assert onp_edit_distance("", "") == 0

    def test_known_distance(self):
        # abc -> axbyc: two insertions
        assert onp_edit_distance("abc", "axbyc") == 2

    def test_disjoint(self):
        assert onp_edit_distance("abc", "xyz") == 6

    def test_works_on_line_lists(self):
        a = ["int main() {", "return 0;", "}"]
        b = ["int main() {", "int x = 1;", "return x;", "}"]
        assert onp_edit_distance(a, b) == 3  # delete 1 line, insert 2

    def test_lcs_length(self):
        assert lcs_length("abcbdab", "bdcaba") == 4


class TestMyers:
    def test_known(self):
        assert myers_edit_distance("abcabba", "cbabac") == 5

    def test_empty(self):
        assert myers_edit_distance("", "xy") == 2


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.sampled_from("abcd"), max_size=24),
    st.lists(st.sampled_from("abcd"), max_size=24),
)
def test_onp_equals_myers(a, b):
    assert onp_edit_distance(a, b) == myers_edit_distance(a, b)


@settings(max_examples=120, deadline=None)
@given(
    st.lists(st.sampled_from("abc"), max_size=16),
    st.lists(st.sampled_from("abc"), max_size=16),
)
def test_onp_symmetry(a, b):
    assert onp_edit_distance(a, b) == onp_edit_distance(b, a)


class TestLevenshtein:
    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_identical(self):
        assert levenshtein("same", "same") == 0

    def test_substitution_cheaper_than_indel_pair(self):
        # with substitutions allowed, "a"->"b" costs 1 not 2
        assert levenshtein("a", "b") == 1


@settings(max_examples=120, deadline=None)
@given(
    st.lists(st.sampled_from("abc"), max_size=14),
    st.lists(st.sampled_from("abc"), max_size=14),
)
def test_levenshtein_bounded_by_indel_distance(a, b):
    # allowing substitutions can only shorten the script
    assert levenshtein(a, b) <= onp_edit_distance(a, b)
    assert levenshtein(a, b) >= abs(len(a) - len(b))
