"""Distance-matrix assembly helpers."""

import numpy as np

from repro.distance import condensed_to_square, pairwise_matrix
from repro.distance.matrix import square_to_condensed


class TestPairwiseMatrix:
    def test_symmetric_fill(self):
        items = [1, 5, 9]
        m = pairwise_matrix(items, lambda a, b: abs(a - b))
        assert m[0, 1] == 4 and m[1, 0] == 4
        assert m[0, 2] == 8
        assert np.allclose(m, m.T)

    def test_diagonal_computed(self):
        m = pairwise_matrix([1, 2], lambda a, b: 7.0 if a is b or a == b else 1.0)
        assert m[0, 0] == 7.0  # self-comparison is measured, not assumed

    def test_asymmetric_mode(self):
        m = pairwise_matrix([1, 2], lambda a, b: a - b, symmetric=False)
        assert m[0, 1] == -1 and m[1, 0] == 1


class TestCondensed:
    def test_round_trip(self):
        sq = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 3.0], [2.0, 3.0, 0.0]])
        cond = square_to_condensed(sq)
        assert list(cond) == [1.0, 2.0, 3.0]
        back = condensed_to_square(cond, 3)
        assert np.allclose(back, sq)
