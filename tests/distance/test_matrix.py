"""Distance-matrix assembly helpers."""

import numpy as np
import pytest

from repro.distance import condensed_to_square, pairwise_matrix
from repro.distance.matrix import square_to_condensed


class TestPairwiseMatrix:
    def test_symmetric_fill(self):
        items = [1, 5, 9]
        m = pairwise_matrix(items, lambda a, b: abs(a - b))
        assert m[0, 1] == 4 and m[1, 0] == 4
        assert m[0, 2] == 8
        assert np.allclose(m, m.T)

    def test_diagonal_computed(self):
        m = pairwise_matrix([1, 2], lambda a, b: 7.0 if a is b or a == b else 1.0)
        assert m[0, 0] == 7.0  # self-comparison is measured, not assumed

    def test_asymmetric_mode(self):
        m = pairwise_matrix([1, 2], lambda a, b: a - b, symmetric=False)
        assert m[0, 1] == -1 and m[1, 0] == 1


class TestCondensed:
    def test_round_trip(self):
        sq = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 3.0], [2.0, 3.0, 0.0]])
        cond = square_to_condensed(sq)
        assert list(cond) == [1.0, 2.0, 3.0]
        back = condensed_to_square(cond, 3)
        assert np.allclose(back, sq)

    def test_condensed_order_is_row_major(self):
        # SciPy's condensed order: (0,1) (0,2) (0,3) (1,2) (1,3) (2,3)
        n = 4
        sq = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                sq[i, j] = sq[j, i] = 10 * i + j
        assert list(square_to_condensed(sq)) == [1.0, 2.0, 3.0, 12.0, 13.0, 23.0]

    def test_square_to_condensed_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            square_to_condensed(np.zeros((3, 4)))

    def test_square_to_condensed_rejects_non_2d(self):
        with pytest.raises(ValueError, match="square"):
            square_to_condensed(np.zeros(9))

    def test_square_to_condensed_trivial_sizes(self):
        assert square_to_condensed(np.zeros((1, 1))).size == 0
        assert list(square_to_condensed(np.array([[0.0, 5.0], [5.0, 0.0]]))) == [5.0]

    def test_condensed_to_square_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="entries"):
            condensed_to_square(np.array([1.0, 2.0]), 3)  # n=3 needs 3 entries
