"""Bound-oracle admissibility: the metric index's safety contract.

The index may only prune on oracle bounds, so every stage the oracle
yields must be admissible — ``lower(a, b) <= exact TED <= upper(a, b)``,
including capped calls, where a yielded bound that reaches the cap only
certifies "at least cap" (``min(lb, cap) <= exact`` always holds). These
properties are what DESIGN.md §"Metric index contract" pins.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.distance import cascade
from repro.distance.bounds import (
    BoundOracle,
    BruteForceOracle,
    get_oracle,
    set_oracle,
)
from repro.distance.cascade import cascade_distance
from repro.distance.zhang_shasha import zhang_shasha_distance
from repro.trees import from_sexpr

from tests.distance.test_cascade import mid_trees


# ---------------------------------------------------------------------------
# Stage admissibility
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(mid_trees(), mid_trees())
def test_every_uncapped_stage_is_admissible(t1, t2):
    orc = BoundOracle()
    exact = zhang_shasha_distance(t1, t2)
    for stage, lb in orc.lower_stages(t1, t2):
        assert stage in BoundOracle.STAGES
        assert lb <= exact, f"stage {stage} overshot: {lb} > {exact}"


@settings(max_examples=80, deadline=None)
@given(mid_trees(), mid_trees(), st.integers(min_value=0, max_value=60))
def test_capped_stages_stay_admissible(t1, t2, cap):
    # a capped call may return "at least cap" instead of the true bound:
    # min(lb, cap) <= exact is the invariant a capped prune relies on
    orc = BoundOracle()
    exact = zhang_shasha_distance(t1, t2)
    for stage, lb in orc.lower_stages(t1, t2, cap=cap):
        assert min(lb, cap) <= exact, f"stage {stage}: min({lb}, {cap}) > {exact}"


@settings(max_examples=80, deadline=None)
@given(mid_trees(), mid_trees())
def test_lower_never_exceeds_upper_never_undercuts(t1, t2):
    orc = BoundOracle()
    exact = zhang_shasha_distance(t1, t2)
    assert orc.lower(t1, t2) <= exact <= orc.upper(t1, t2)


@settings(max_examples=40, deadline=None)
@given(mid_trees(), mid_trees())
def test_tiny_budget_upper_still_valid(t1, t2):
    # the alignment-budget overrun fallback (delete + insert everything)
    assert BoundOracle().upper(t1, t2, max_cells=1) >= zhang_shasha_distance(t1, t2)


@settings(max_examples=40, deadline=None)
@given(mid_trees())
def test_identical_trees_hit_the_hash_stage(t):
    stages = list(BoundOracle().lower_stages(t, t.copy()))
    assert stages == [("hash", 0)]


def test_degenerate_pairs():
    # chain vs star of the same size: stats alone cannot separate them,
    # the later stages must still be admissible
    chain = from_sexpr("(a (a (a (a a))))")
    star = from_sexpr("(a a a a a)")
    orc = BoundOracle()
    exact = zhang_shasha_distance(chain, star)
    for stage, lb in orc.lower_stages(chain, star):
        assert lb <= exact
    assert orc.upper(chain, star) >= exact


# ---------------------------------------------------------------------------
# The null oracle and the process-wide hook
# ---------------------------------------------------------------------------


def test_brute_force_oracle_never_prunes():
    orc = BruteForceOracle()
    t1 = from_sexpr("(a (b c))")
    t2 = from_sexpr("(x y z)")
    assert orc.prunes is False
    assert list(orc.lower_stages(t1, t2)) == []
    assert orc.lower(t1, t2) == 0
    # the vacuous upper bound: delete one tree, insert the other
    assert orc.upper(t1, t2) == t1.size() + t2.size()


def test_cascade_with_brute_force_oracle_never_prunes(monkeypatch):
    monkeypatch.setattr(cascade, "_MIN_CELLS", 1)
    t1 = from_sexpr("(a a a)")
    t2 = from_sexpr("(a a a a a)")
    assert cascade_distance(t1, t2) is not None  # the default oracle prunes
    assert cascade_distance(t1, t2, oracle=BruteForceOracle()) is None


def test_set_oracle_roundtrip():
    base = get_oracle()
    null = BruteForceOracle()
    prev = set_oracle(null)
    try:
        assert get_oracle() is null
    finally:
        set_oracle(prev)
    assert get_oracle() is base


# ---------------------------------------------------------------------------
# Cascade on/off bit-identity (the refactor must not move any float)
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(mid_trees(), mid_trees())
def test_cascade_decision_pins_the_exact_distance(t1, t2):
    prev = cascade._MIN_CELLS
    cascade._MIN_CELLS = 1
    try:
        hit = cascade_distance(t1, t2)
    finally:
        cascade._MIN_CELLS = prev
    if hit is not None:
        d, _stage = hit
        assert d == zhang_shasha_distance(t1, t2)
