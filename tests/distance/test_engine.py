"""DistanceEngine scheduling: serial/parallel equivalence, counters,
checkpoint/resume, and the worker-init degrade path."""

import numpy as np
import pytest

from repro import obs
from repro.ckpt import CheckpointStore
from repro.distance.engine import DistanceEngine, _make_worker_setup
from repro.distance.ted import get_disk_cache, set_disk_cache
from repro.parallel import pool as pool_mod
from repro.parallel.pool import _run_chunk, _worker_init
from repro.trees import from_sexpr


def _square(task):
    return task * task


def _ted_task(task):
    from repro.distance.ted import ted

    a, b = task
    return ted(a, b).distance


class TestMapTasks:
    def test_empty(self):
        assert DistanceEngine().map_tasks(_square, []) == []

    def test_serial_preserves_order(self):
        assert DistanceEngine().map_tasks(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        tasks = list(range(23))
        serial = DistanceEngine(jobs=1).map_tasks(_square, tasks)
        parallel = DistanceEngine(jobs=2).map_tasks(_square, tasks)
        assert serial == parallel

    def test_parallel_ted_matches_serial(self):
        trees = [
            from_sexpr("(a (b c) (d e))"),
            from_sexpr("(a (b x) (d e f))"),
            from_sexpr("(q (r s t))"),
            from_sexpr("(a (b c))"),
        ]
        tasks = [(t1, t2) for t1 in trees for t2 in trees]
        serial = DistanceEngine(jobs=1).map_tasks(_ted_task, tasks)
        parallel = DistanceEngine(jobs=3, chunk_size=2).map_tasks(_ted_task, tasks)
        assert np.array_equal(np.asarray(serial), np.asarray(parallel))

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            DistanceEngine(jobs=0)
        with pytest.raises(ValueError):
            DistanceEngine(chunk_size=0)


class TestCounters:
    def test_serial_counters(self):
        with obs.collect() as col:
            DistanceEngine().map_tasks(_square, [1, 2, 3])
        assert col.counters["ted.pairs"] == 3
        assert col.gauges["engine.workers"] == 1
        assert "engine.chunks" not in col.counters

    def test_parallel_counters_and_worker_merge(self):
        with obs.collect() as col:
            DistanceEngine(jobs=2, chunk_size=2).map_tasks(_square, list(range(10)))
        assert col.counters["ted.pairs"] == 10
        assert col.counters["engine.chunks"] == 5
        assert col.gauges["engine.workers"] == 2

    def test_worker_ted_counters_reach_parent(self):
        from repro.distance.ted import clear_ted_cache

        clear_ted_cache()
        trees = [from_sexpr(f"(a (b c{i}) (d e))") for i in range(6)]
        tasks = [(trees[i], trees[j]) for i in range(6) for j in range(i + 1, 6)]
        with obs.collect() as col:
            DistanceEngine(jobs=2, chunk_size=4).map_tasks(_ted_task, tasks)
        # the DP ran somewhere (workers), and the deltas were merged here
        assert col.counters.get("ted.zs.calls", 0) > 0


TASKS = list(range(10))
KEYS = [f"task:{i}" for i in TASKS]
EXPECTED = [x * x for x in TASKS]


class TestCheckpointResume:
    def test_completed_run_discards_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path)
        eng = DistanceEngine(checkpoint=store)
        assert eng.map_tasks(_square, TASKS, keys=KEYS) == EXPECTED
        assert store.run_keys() == []  # nothing left to resume

    def test_interrupt_saves_checkpoint_and_resume_skips_done(self, tmp_path):
        store = CheckpointStore(tmp_path)
        calls = {"n": 0}

        def flaky(task):
            if calls["n"] >= 4:
                raise KeyboardInterrupt
            calls["n"] += 1
            return task * task

        eng = DistanceEngine(checkpoint=store, checkpoint_every=0.0)
        with pytest.raises(KeyboardInterrupt):
            eng.map_tasks(flaky, TASKS, keys=KEYS)
        assert eng.last_checkpoint is not None and eng.last_checkpoint.exists()

        resumed_calls = {"n": 0}

        def counting(task):
            resumed_calls["n"] += 1
            return task * task

        with obs.collect() as col:
            out = DistanceEngine(checkpoint=store, resume=True).map_tasks(
                counting, TASKS, keys=KEYS
            )
        assert out == EXPECTED
        assert resumed_calls["n"] == len(TASKS) - 4  # only unfinished work
        assert col.counters["ckpt.loaded"] == 4
        assert store.run_keys() == []  # completed resume cleans up

    def test_interrupt_emits_resumable_diagnostic(self, tmp_path):
        from repro import diag

        def boom(task):
            if task >= 3:
                raise KeyboardInterrupt
            return task

        with diag.capture() as sink:
            with pytest.raises(KeyboardInterrupt):
                DistanceEngine(checkpoint=CheckpointStore(tmp_path)).map_tasks(
                    boom, TASKS, keys=KEYS
                )
        codes = sink.by_code()
        assert codes.get("distance/interrupted") == 1
        assert "resumable from" in sink.diagnostics[0].message

    def test_resume_without_checkpoint_computes_everything(self, tmp_path):
        with obs.collect() as col:
            out = DistanceEngine(
                checkpoint=CheckpointStore(tmp_path), resume=True
            ).map_tasks(_square, TASKS, keys=KEYS)
        assert out == EXPECTED
        assert "ckpt.loaded" not in col.counters

    def test_parallel_run_checkpoints_and_resumes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        eng = DistanceEngine(jobs=2, chunk_size=3, checkpoint=store, checkpoint_every=0.0)
        assert eng.map_tasks(_square, TASKS, keys=KEYS) == EXPECTED

        # simulate a torn run: seed a partial checkpoint, then resume parallel
        from repro.ckpt import run_key_for

        store.save(run_key_for(KEYS), {KEYS[i]: float(EXPECTED[i]) for i in range(6)})
        with obs.collect() as col:
            out = DistanceEngine(
                jobs=2, chunk_size=2, checkpoint=store, resume=True
            ).map_tasks(_square, TASKS, keys=KEYS)
        assert out == EXPECTED
        assert col.counters["ckpt.loaded"] == 6
        assert col.counters["engine.chunks"] == 2  # only 4 pending tasks scheduled

    def test_tuple_values_roundtrip_through_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path)

        def both(task):
            return (float(task), float(task * task))

        keys = KEYS[:4]
        from repro.ckpt import run_key_for

        store.save(run_key_for(keys), {keys[0]: [0.0, 0.0]})
        out = DistanceEngine(checkpoint=store, resume=True).map_tasks(
            both, TASKS[:4], keys=keys
        )
        assert out == [(0.0, 0.0), (1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]

    def test_no_keys_means_no_checkpointing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        DistanceEngine(checkpoint=store).map_tasks(_square, TASKS)
        assert store.run_keys() == []


def _stage(setup=None, init_counter="engine.worker_init_errors"):
    return {
        "fn": _square,
        "tasks": TASKS,
        "setup": setup,
        "teardown": None,
        "init_counter": init_counter,
    }


class TestWorkerInitDegrade:
    """Direct coverage of the `_worker_init` degrade path: a broken stage or
    cache must leave the worker cache-off and flagged, never raise."""

    @pytest.fixture(autouse=True)
    def _restore_state(self):
        prev_stage = pool_mod._STAGE
        prev_cache = get_disk_cache()
        yield
        pool_mod._STAGE = prev_stage
        pool_mod._INIT_FAILED = False
        set_disk_cache(prev_cache)

    def test_missing_stage_degrades_and_flags(self):
        pool_mod._STAGE = None
        _worker_init()
        assert pool_mod._INIT_FAILED is True

    def test_unusable_cache_root_degrades_and_flags(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file where the cache dir should be")
        pool_mod._STAGE = _stage(setup=_make_worker_setup(str(blocker / "cache")))
        _worker_init()
        assert pool_mod._INIT_FAILED is True
        assert get_disk_cache() is None

    def test_healthy_init_without_cache(self):
        pool_mod._STAGE = _stage(setup=_make_worker_setup(None))
        _worker_init()
        assert pool_mod._INIT_FAILED is False
        assert get_disk_cache() is None

    def test_degraded_worker_counts_in_next_chunk(self):
        pool_mod._STAGE = None
        _worker_init()  # sets _INIT_FAILED
        pool_mod._STAGE = _stage()
        out, counters, _payload = _run_chunk(((0, 3), 0))
        assert out == [0, 1, 4]
        assert counters["engine.worker_init_errors"] == 1
