"""DistanceEngine scheduling: serial/parallel equivalence and counters."""

import numpy as np
import pytest

from repro import obs
from repro.distance.engine import DistanceEngine
from repro.trees import from_sexpr


def _square(task):
    return task * task


def _ted_task(task):
    from repro.distance.ted import ted

    a, b = task
    return ted(a, b).distance


class TestMapTasks:
    def test_empty(self):
        assert DistanceEngine().map_tasks(_square, []) == []

    def test_serial_preserves_order(self):
        assert DistanceEngine().map_tasks(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        tasks = list(range(23))
        serial = DistanceEngine(jobs=1).map_tasks(_square, tasks)
        parallel = DistanceEngine(jobs=2).map_tasks(_square, tasks)
        assert serial == parallel

    def test_parallel_ted_matches_serial(self):
        trees = [
            from_sexpr("(a (b c) (d e))"),
            from_sexpr("(a (b x) (d e f))"),
            from_sexpr("(q (r s t))"),
            from_sexpr("(a (b c))"),
        ]
        tasks = [(t1, t2) for t1 in trees for t2 in trees]
        serial = DistanceEngine(jobs=1).map_tasks(_ted_task, tasks)
        parallel = DistanceEngine(jobs=3, chunk_size=2).map_tasks(_ted_task, tasks)
        assert np.array_equal(np.asarray(serial), np.asarray(parallel))

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            DistanceEngine(jobs=0)
        with pytest.raises(ValueError):
            DistanceEngine(chunk_size=0)


class TestCounters:
    def test_serial_counters(self):
        with obs.collect() as col:
            DistanceEngine().map_tasks(_square, [1, 2, 3])
        assert col.counters["ted.pairs"] == 3
        assert col.gauges["engine.workers"] == 1
        assert "engine.chunks" not in col.counters

    def test_parallel_counters_and_worker_merge(self):
        with obs.collect() as col:
            DistanceEngine(jobs=2, chunk_size=2).map_tasks(_square, list(range(10)))
        assert col.counters["ted.pairs"] == 10
        assert col.counters["engine.chunks"] == 5
        assert col.gauges["engine.workers"] == 2

    def test_worker_ted_counters_reach_parent(self):
        from repro.distance.ted import clear_ted_cache

        clear_ted_cache()
        trees = [from_sexpr(f"(a (b c{i}) (d e))") for i in range(6)]
        tasks = [(trees[i], trees[j]) for i in range(6) for j in range(i + 1, 6)]
        with obs.collect() as col:
            DistanceEngine(jobs=2, chunk_size=4).map_tasks(_ted_task, tasks)
        # the DP ran somewhere (workers), and the deltas were merged here
        assert col.counters.get("ted.zs.calls", 0) > 0
