"""Tree edit distance unit tests (incl. the paper's Fig. 1 example)."""

from repro.distance import Cost, UnitCost, ted, ted_normalized
from repro.distance.ted import clear_ted_cache, ted_lower_bound
from repro.trees import from_sexpr


class TestKnownDistances:
    def test_identical_zero(self):
        t = from_sexpr("(a (b c) d)")
        assert ted(t, t.copy()).distance == 0.0

    def test_single_relabel(self):
        assert ted(from_sexpr("(a b)"), from_sexpr("(a c)")).distance == 1

    def test_single_insert(self):
        assert ted(from_sexpr("(a b)"), from_sexpr("(a b c)")).distance == 1

    def test_single_delete(self):
        assert ted(from_sexpr("(a b c)"), from_sexpr("(a b)")).distance == 1

    def test_empty_vs_tree(self):
        assert ted(from_sexpr("x"), from_sexpr("(a b c)")).distance == 3

    def test_fig1_example(self):
        """Fig. 1: 'Two ASTs with a TED distance of five: four outlined nodes
        are inserted or deleted with one relabelled node on the top.'"""
        # one relabelled node on top, four nodes deleted
        t1 = from_sexpr("(call (args a b) (body c))")  # 6 nodes
        t2 = from_sexpr("(ret c)")  # 2 nodes
        # relabel call->ret (1) + delete args, a, b, body (4) = 5
        assert ted(t1, t2).distance == 5

    def test_subtree_move_costs_delete_plus_insert(self):
        t1 = from_sexpr("(r (a x) b)")
        t2 = from_sexpr("(r a (b x))")
        # moving x: delete + insert = 2
        assert ted(t1, t2).distance == 2


class TestTedResult:
    def test_dmax_is_target_size(self):
        r = ted(from_sexpr("(a b)"), from_sexpr("(x y z)"))
        assert r.dmax == 3

    def test_normalized_in_unit_range_for_disjoint(self):
        r = ted(from_sexpr("(a b c)"), from_sexpr("(x y z)"))
        assert 0 < r.normalized <= 1.0

    def test_identical_shortcut_flag(self):
        t = from_sexpr("(a b)")
        assert ted(t, t.copy()).shortcut

    def test_ted_normalized_zero_for_identical(self):
        t = from_sexpr("(a (b c))")
        assert ted_normalized(t, t.copy()) == 0.0


class TestCache:
    def test_cache_hit_on_repeat(self):
        clear_ted_cache()
        a = from_sexpr("(a (b c) (d e))")
        b = from_sexpr("(a (b x) (d e f))")
        first = ted(a, b)
        second = ted(a, b)
        assert not first.cached and not first.shortcut
        assert second.cached  # served from memo
        assert not second.shortcut  # memo hits are NOT hash shortcuts
        assert second.distance == first.distance

    def test_cache_symmetric(self):
        clear_ted_cache()
        a = from_sexpr("(p q r)")
        b = from_sexpr("(p (q r) s)")
        d1 = ted(a, b).distance
        rev = ted(b, a)
        assert rev.cached
        assert rev.distance == d1

    def test_identical_trees_are_shortcut_not_cached(self):
        clear_ted_cache()
        t = from_sexpr("(a (b c))")
        r = ted(t, t.copy())
        assert r.shortcut and not r.cached

    def test_stats_distinguish_hit_miss_shortcut(self):
        from repro.distance.ted import cache_stats

        clear_ted_cache()
        a = from_sexpr("(a (b c) (d e))")
        b = from_sexpr("(a (b x) (d e f))")
        ted(a, b)
        ted(a, b)
        ted(a, a.copy())
        s = cache_stats()
        assert s["miss"] == 1 and s["hit"] == 1 and s["shortcut"] == 1
        assert s["size"] == 2  # both key orders

    def test_cache_never_exceeds_limit(self, monkeypatch):
        import sys

        # the package re-exports the ted() function under the same name, so
        # reach the module through sys.modules
        ted_mod = sys.modules["repro.distance.ted"]

        clear_ted_cache()
        monkeypatch.setattr(ted_mod, "_CACHE_LIMIT", 6)
        trees = [from_sexpr(f"(r{i} (x{i} y{i}) z{i})") for i in range(8)]
        base = from_sexpr("(q (w e) r)")
        for t in trees:
            ted(base, t)
            assert len(ted_mod._CACHE) <= 6
        assert ted_mod.cache_stats()["evicted"] > 0
        # recent pairs survive eviction and still hit
        assert ted(base, trees[-1]).cached


class TestCustomCosts:
    def test_weighted_insert(self):
        # making inserts free: pure-insertion pair costs 0
        cost = Cost(delete=lambda n: 1.0, insert=lambda n: 0.0, relabel=lambda a, b: float(a.label != b.label))
        r = ted(from_sexpr("(a b)"), from_sexpr("(a b c)"), cost)
        assert r.distance == 0.0

    def test_weighted_matches_unit_when_unit(self):
        cost = Cost(delete=lambda n: 1.0, insert=lambda n: 1.0, relabel=lambda a, b: float(a.label != b.label))
        a = from_sexpr("(a (b c) d)")
        b = from_sexpr("(a (x c) e f)")
        assert ted(a, b, cost).distance == ted(a, b).distance

    def test_unitcost_is_unit(self):
        assert UnitCost().is_unit()


class TestLowerBound:
    def test_bound_below_distance(self):
        a = from_sexpr("(a (b c) (d e))")
        b = from_sexpr("(x (y z))")
        assert ted_lower_bound(a, b) <= ted(a, b).distance
