"""Cross-pair batched Zhang–Shasha: exactness against the per-pair kernel.

``zhang_shasha_cross`` packs keyroot row-sweeps from *different* tree pairs
into one wide NumPy scan. Its only contract is bit-exact agreement with
``zhang_shasha_distance`` on every pair, in input order — these tests drive
that on random batches, degenerate shapes, and under forced memory-group
splits, then cover the ``ted_many`` routing layer built on top of it.
"""

import importlib

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.distance import zs_cross
from repro.distance.ted import Cost, clear_ted_cache, ted, ted_many
from repro.distance.zhang_shasha import zhang_shasha_distance
from repro.distance.zs_cross import zhang_shasha_cross
from repro.trees import Node, from_sexpr

# the package __init__ re-exports the ted() function under the module's
# name, so reach the module itself for monkeypatching its routing knob
ted_mod = importlib.import_module("repro.distance.ted")

_LABELS = ("a", "b", "c")


@st.composite
def rand_trees(draw, max_nodes=25):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [Node(draw(st.sampled_from(_LABELS)))]
    for _ in range(n - 1):
        parent = draw(st.integers(min_value=0, max_value=len(nodes) - 1))
        child = Node(draw(st.sampled_from(_LABELS)))
        nodes[parent].children.append(child)
        nodes.append(child)
    return nodes[0]


def _chain(n, label="a"):
    root = node = Node(label)
    for _ in range(n - 1):
        child = Node(label)
        node.children.append(child)
        node = child
    return root


def _star(n, label="a"):
    root = Node(label)
    root.children.extend(Node(label) for _ in range(n - 1))
    return root


def _oracle(pairs):
    return [zhang_shasha_distance(a, b) for a, b in pairs]


# ---------------------------------------------------------------------------
# The cross kernel itself
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(rand_trees(), rand_trees()), min_size=1, max_size=6))
def test_cross_matches_per_pair_kernel(pairs):
    assert zhang_shasha_cross(pairs) == _oracle(pairs)


def test_cross_degenerate_shapes():
    pairs = [
        (Node("a"), Node("a")),
        (Node("a"), Node("b")),
        (_chain(7), _chain(4, "b")),
        (_star(6), _star(9)),
        (_chain(8), _star(8)),
        (from_sexpr("(a (b c) (d e))"), from_sexpr("(a (b c) (d e))")),
    ]
    assert zhang_shasha_cross(pairs) == _oracle(pairs)


def test_cross_single_pair_and_empty_batch():
    assert zhang_shasha_cross([]) == []
    pair = (from_sexpr("(a (b c))"), from_sexpr("(a (x c) d)"))
    assert zhang_shasha_cross([pair]) == _oracle([pair])


def test_cross_duplicate_pairs_in_one_batch():
    a, b = from_sexpr("(a (b c) d)"), from_sexpr("(a (b x))")
    pairs = [(a, b), (a, b), (b, a)]
    assert zhang_shasha_cross(pairs) == _oracle(pairs)


def test_cross_mixed_sizes_one_batch():
    pairs = [
        (Node("a"), _chain(12)),
        (_star(20), from_sexpr("(a b)")),
        (from_sexpr("(a (b (c d)) e)"), _star(15, "b")),
    ]
    assert zhang_shasha_cross(pairs) == _oracle(pairs)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(rand_trees(), rand_trees()), min_size=2, max_size=5))
def test_cross_exact_under_tiny_memory_groups(pairs):
    # force every pair into its own memory group: the greedy packer must
    # still return all results, in order, unchanged
    prev = zs_cross._MAX_FD_CELLS
    zs_cross._MAX_FD_CELLS = 1
    try:
        assert zhang_shasha_cross(pairs) == _oracle(pairs)
    finally:
        zs_cross._MAX_FD_CELLS = prev


def test_cross_emits_counters():
    from repro import obs

    pairs = [(from_sexpr("(a (b c))"), from_sexpr("(a (x c) d)"))] * 3
    with obs.collect() as c:
        zhang_shasha_cross(pairs)
    assert c.counters["zs.cross_calls"] == 1
    assert c.counters["zs.cross_pairs"] == 3


# ---------------------------------------------------------------------------
# ted_many routing on top of it
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(rand_trees(), rand_trees()), min_size=1, max_size=6))
def test_ted_many_matches_single_ted(pairs):
    clear_ted_cache()
    batch = ted_many(pairs)
    clear_ted_cache()
    single = [ted(a, b) for a, b in pairs]
    assert [r.distance for r in batch] == [r.distance for r in single]
    assert [(r.size1, r.size2) for r in batch] == [(r.size1, r.size2) for r in single]


def test_ted_many_warms_the_memo():
    clear_ted_cache()
    a, b = from_sexpr("(a (b c) d)"), from_sexpr("(a (b x) (d e))")
    ted_many([(a, b)])
    assert ted(a, b).cached


def test_ted_many_folds_duplicates_to_one_solve():
    from repro import obs

    clear_ted_cache()
    a, b = from_sexpr("(a (b c) d)"), from_sexpr("(a (b x))")
    with obs.collect() as c:
        results = ted_many([(a, b), (a, b), (b, a)])
    # one DP for the unique unordered key; the fan-out rides the memo
    assert c.counters["ted.cache.miss"] == 1
    assert len({r.distance for r in results}) == 1
    assert results[0].distance == zhang_shasha_distance(a, b)


def test_ted_many_identical_pairs_shortcut():
    clear_ted_cache()
    t = from_sexpr("(a (b c) (d e))")
    (r,) = ted_many([(t, t.copy())])
    assert r.distance == 0.0 and r.shortcut


def test_ted_many_routes_small_survivors_through_cross(monkeypatch):
    from repro import obs

    # force the small-pair route: everything below the (huge) threshold
    monkeypatch.setattr(ted_mod, "_CROSS_MAX_CELLS", 1 << 30)
    clear_ted_cache()
    pairs = [
        (from_sexpr("(a (b c) d)"), from_sexpr("(a (b x) e)")),
        (from_sexpr("(a (b (c d)))"), from_sexpr("(x (b d))")),
    ]
    with obs.collect() as c:
        results = ted_many(pairs)
    assert c.counters["zs.cross_calls"] == 1
    assert c.counters["zs.cross_pairs"] == 2
    assert [r.distance for r in results] == [float(d) for d in _oracle(pairs)]


def test_ted_many_large_pairs_avoid_cross(monkeypatch):
    from repro import obs

    # force the large-pair route: nothing fits under the threshold
    monkeypatch.setattr(ted_mod, "_CROSS_MAX_CELLS", 0)
    clear_ted_cache()
    pairs = [
        (from_sexpr("(a (b c) d)"), from_sexpr("(a (b x) e)")),
        (from_sexpr("(a (b (c d)))"), from_sexpr("(x (b d))")),
    ]
    with obs.collect() as c:
        results = ted_many(pairs)
    assert "zs.cross_calls" not in c.counters
    assert [r.distance for r in results] == [float(d) for d in _oracle(pairs)]


def test_ted_many_custom_cost_bypasses_batching():
    cost = Cost(
        delete=lambda n: 1.0,
        insert=lambda n: 1.0,
        relabel=lambda a, b: 2.0,
    )
    clear_ted_cache()
    t = from_sexpr("(a (b c))")
    pairs = [(t, t.copy())]
    (batch,) = ted_many(pairs, cost)
    (single,) = [ted(t, t.copy(), cost)]
    assert batch.distance == single.distance > 0.0
