"""Pruning-cascade properties: every bound is valid, pruning is exact.

The cascade's contract (DESIGN.md "Pruning cascade contract") is that each
stage's lower bound never exceeds the true TED, the greedy upper bound
never undercuts it, and a prune happens only when the two meet — which
pins the exact distance. These tests check each clause independently on
seeded random trees, then the end-to-end guarantee on a real corpus.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.distance import cascade
from repro.distance.cascade import (
    cascade_distance,
    preorder_labels,
    sequence_lower_bound,
    set_cascade_enabled,
    stats_lower_bound,
    upper_bound,
)
from repro.distance.levenshtein import levenshtein, levenshtein_bounded
from repro.distance.ted import Cost, TedResult, clear_ted_cache, ted, ted_lower_bound
from repro.distance.zhang_shasha import zhang_shasha_distance, zhang_shasha_generic
from repro.trees import Node, from_sexpr

_LABELS = ("a", "b", "c")


@st.composite
def mid_trees(draw, max_nodes=40):
    """Random ordered trees by parent-attachment."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [Node(draw(st.sampled_from(_LABELS)))]
    for _ in range(n - 1):
        parent = draw(st.integers(min_value=0, max_value=len(nodes) - 1))
        child = Node(draw(st.sampled_from(_LABELS)))
        nodes[parent].children.append(child)
        nodes.append(child)
    return nodes[0]


# ---------------------------------------------------------------------------
# Stage bounds vs the exact kernel
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(mid_trees(), mid_trees())
def test_stats_bound_below_exact(t1, t2):
    assert stats_lower_bound(t1, t2) <= zhang_shasha_distance(t1, t2)


@settings(max_examples=80, deadline=None)
@given(mid_trees(), mid_trees())
def test_histogram_bound_below_exact(t1, t2):
    assert ted_lower_bound(t1, t2) <= zhang_shasha_distance(t1, t2)


@settings(max_examples=80, deadline=None)
@given(mid_trees(), mid_trees())
def test_sequence_bound_below_exact(t1, t2):
    exact = zhang_shasha_distance(t1, t2)
    # with an infinite cap the sequence stage is the plain preorder-label
    # Levenshtein distance, which tree edits can never undercut
    lb = sequence_lower_bound(t1, t2, cap=1 << 30)
    assert lb <= exact


@settings(max_examples=80, deadline=None)
@given(mid_trees(), mid_trees())
def test_upper_bound_above_exact(t1, t2):
    assert upper_bound(t1, t2) >= zhang_shasha_distance(t1, t2)


@settings(max_examples=40, deadline=None)
@given(mid_trees(), mid_trees())
def test_budget_capped_upper_bound_still_valid(t1, t2):
    # the overrun fallback (delete one tree, insert the other) must also
    # hold when the child-alignment budget is absurdly small
    assert upper_bound(t1, t2, max_cells=1) >= zhang_shasha_distance(t1, t2)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.sampled_from(_LABELS), max_size=12),
    st.lists(st.sampled_from(_LABELS), max_size=12),
    st.integers(min_value=0, max_value=14),
)
def test_levenshtein_bounded_contract(a, b, cap):
    full = levenshtein(a, b)
    got = levenshtein_bounded(a, b, cap)
    if got < cap:
        assert got == full
    else:
        assert cap <= got <= max(full, cap)
        assert got <= full or full >= cap


# ---------------------------------------------------------------------------
# The cascade decision
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(mid_trees(), mid_trees())
def test_cascade_prune_is_exact(t1, t2):
    # force the size gate open so small random pairs exercise the stages
    prev = cascade._MIN_CELLS
    cascade._MIN_CELLS = 1
    try:
        hit = cascade_distance(t1, t2)
    finally:
        cascade._MIN_CELLS = prev
    if hit is not None:
        d, stage = hit
        # "hash" is the oracle's identical-tree stage (upstream ted() usually
        # short-circuits these pairs before the cascade ever sees them)
        assert stage in ("hash", "stats", "histogram", "sequence")
        assert d == zhang_shasha_distance(t1, t2)


def test_cascade_respects_size_gate():
    # default gate: tiny pairs never pay for bound computation
    t1 = from_sexpr("(a (b c) (d e))")
    t2 = from_sexpr("(x (y z))")
    assert cascade_distance(t1, t2) is None


def test_cascade_disabled_returns_none(monkeypatch):
    monkeypatch.setattr(cascade, "_MIN_CELLS", 1)
    prev = set_cascade_enabled(False)
    try:
        assert cascade_distance(from_sexpr("(a b)"), from_sexpr("(x (y z))")) is None
    finally:
        set_cascade_enabled(prev)


def test_stage_counters_emitted(monkeypatch):
    from repro import obs

    monkeypatch.setattr(cascade, "_MIN_CELLS", 1)
    clear_ted_cache()
    # same shape, same labels except sizes differ: the stats stage prunes
    t1 = from_sexpr("(a a a)")
    t2 = from_sexpr("(a a a a a)")
    with obs.collect() as c:
        r = ted(t1, t2)
    assert r.pruned == "stats"
    assert c.counters["ted.cascade.calls"] == 1
    assert c.counters["ted.pruned.stats"] == 1
    assert r.distance == zhang_shasha_distance(t1, t2)


def test_preorder_labels_memoised():
    t = from_sexpr("(a (b c) d)")
    first = preorder_labels(t)
    assert first == ("a", "b", "c", "d")
    assert preorder_labels(t) is first


@settings(max_examples=60, deadline=None)
@given(mid_trees(), mid_trees())
def test_ted_with_cascade_matches_kernel(t1, t2):
    prev = cascade._MIN_CELLS
    cascade._MIN_CELLS = 1
    try:
        clear_ted_cache()
        assert ted(t1, t2).distance == zhang_shasha_distance(t1, t2)
    finally:
        cascade._MIN_CELLS = prev


# ---------------------------------------------------------------------------
# Satellite bugfix regressions
# ---------------------------------------------------------------------------


class TestNormalizedEmptyTarget:
    def test_empty_target_reports_full_divergence(self):
        # distance > 0 against a zero-size target used to normalise to 0.0,
        # masking full divergence as "identical"
        r = TedResult(5.0, 5, 0)
        assert r.normalized == 1.0

    def test_both_empty_is_zero(self):
        assert TedResult(0.0, 0, 0).normalized == 0.0

    def test_regular_normalisation_unchanged(self):
        assert TedResult(2.0, 4, 8).normalized == 0.25


class TestShortcutCostGate:
    def _nonzero_identity_cost(self):
        return Cost(
            delete=lambda n: 1.0,
            insert=lambda n: 1.0,
            relabel=lambda a, b: 2.0,  # even relabel(x, x) costs 2
        )

    def test_identical_trees_not_shortcut_under_custom_cost(self):
        clear_ted_cache()
        t = from_sexpr("(a (b c) (d e))")
        cost = self._nonzero_identity_cost()
        r = ted(t, t.copy(), cost)
        want = zhang_shasha_generic(
            t, t.copy(), cost.delete, cost.insert, cost.relabel
        )
        assert not r.shortcut
        assert r.distance == want > 0.0

    def test_custom_cost_never_reads_unit_memo(self):
        clear_ted_cache()
        t1 = from_sexpr("(a (b c))")
        t2 = from_sexpr("(a (b x))")
        ted(t1, t2)  # seeds the unit-cost memo with distance 1
        cost = self._nonzero_identity_cost()
        r = ted(t1, t2, cost)
        assert not r.cached
        assert r.distance == zhang_shasha_generic(
            t1, t2, cost.delete, cost.insert, cost.relabel
        )

    def test_unit_cost_instance_still_shortcuts(self):
        from repro.distance.ted import UnitCost

        clear_ted_cache()
        t = from_sexpr("(a (b c))")
        assert ted(t, t.copy(), UnitCost()).shortcut


# ---------------------------------------------------------------------------
# End to end on a real corpus
# ---------------------------------------------------------------------------


def test_cascade_matrix_bit_identical_on_corpus(monkeypatch):
    import numpy as np

    from repro.corpus.registry import index_app
    from repro.distance.engine import DistanceEngine
    from repro.workflow.comparer import MetricSpec, divergence_matrix

    # open the size gate so the small-fortran corpus exercises the cascade
    monkeypatch.setattr(cascade, "_MIN_CELLS", 1)
    cbs = list(index_app("babelstream-fortran").values())
    spec = MetricSpec("Tsem")

    prev = set_cascade_enabled(False)
    try:
        clear_ted_cache()
        m_off = divergence_matrix(cbs, spec, engine=DistanceEngine())
        set_cascade_enabled(True)
        clear_ted_cache()
        m_on = divergence_matrix(cbs, spec, engine=DistanceEngine())
    finally:
        set_cascade_enabled(prev)
    assert np.array_equal(m_on, m_off)
