"""T_sem+i inlining tests (§IV-A)."""

from repro.trees import Node, inline_calls, tree, leaf
from repro.trees.inline import collect_definitions, DEFAULT_MAX_DEPTH


def call(name, system=False):
    return Node(name, "call", None, None, {"callee": name, "system": system})


class TestInlineCalls:
    def test_local_call_inlined(self):
        body = tree("body", leaf("work"))
        root = tree("fn-root", call("helper"))
        out = inline_calls(root, {"helper": body})
        inlined = out.find_labels("inlined-body")
        assert len(inlined) == 1
        assert inlined[0].children[0].find_labels("work")

    def test_size_grows(self):
        body = tree("body", leaf("a"), leaf("b"), leaf("c"))
        root = tree("fn", call("f"))
        out = inline_calls(root, {"f": body})
        assert out.size() > root.size()

    def test_system_call_not_inlined(self):
        # "system headers or libraries are excluded"
        root = tree("fn", call("sysfn", system=True))
        out = inline_calls(root, {"sysfn": leaf("guts")})
        assert not out.find_labels("inlined-body")

    def test_unknown_callee_untouched(self):
        root = tree("fn", call("missing"))
        out = inline_calls(root, {})
        assert out == root

    def test_recursive_call_terminates(self):
        # f's body calls f — fuel must stop the expansion
        body = tree("body", call("f"))
        root = tree("fn", call("f"))
        out = inline_calls(root, {"f": body}, max_depth=DEFAULT_MAX_DEPTH)
        assert out.size() < 10_000

    def test_mutual_recursion_terminates(self):
        fa = tree("body", call("g"))
        fb = tree("body", call("f"))
        root = tree("fn", call("f"))
        out = inline_calls(root, {"f": fa, "g": fb})
        assert out.size() < 10_000

    def test_nested_calls_inlined_transitively(self):
        inner = tree("body", leaf("deep"))
        outer = tree("body", call("inner"))
        root = tree("fn", call("outer"))
        out = inline_calls(root, {"outer": outer, "inner": inner})
        assert out.find_labels("deep")

    def test_marks_call_attr(self):
        root = tree("fn", call("h"))
        out = inline_calls(root, {"h": leaf("x")})
        c = out.find_all(lambda n: n.kind == "call")[0]
        assert c.attrs.get("inlined") is True


class TestCollectDefinitions:
    def test_collects_fn_bodies(self):
        fn = Node("fn", "fn", [leaf("param"), tree("body", leaf("stmt"))], None, {"name": "myfn"})
        root = tree("tu", fn)
        defs = collect_definitions(root)
        assert "myfn" in defs
        assert defs["myfn"].label == "body"

    def test_uses_label_when_unnormalized(self):
        fn = Node("plainfn", "fn", [tree("body", leaf("s"))])
        defs = collect_definitions(tree("tu", fn))
        assert "plainfn" in defs
