"""Property-based tests for tree transforms and serialisation."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.trees import (
    Node,
    SourceSpan,
    mask_tree,
    normalize_names,
    strip_non_semantic,
    structural_hash,
    tree_stats,
)
from repro.trees.coverage_mask import LineMask
from repro.trees.normalize import NAMED_KINDS

_KINDS = ["stmt", "expr", "var", "call", "fn", "lit", "binop"]
_LABELS = ["alpha", "beta", "for", "if", "binop:+", "x", "my_name"]


@st.composite
def trees(draw, max_nodes=20):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = [
        Node(
            draw(st.sampled_from(_LABELS)),
            draw(st.sampled_from(_KINDS)),
            None,
            SourceSpan("f.cpp", draw(st.integers(min_value=1, max_value=30))),
        )
    ]
    for _ in range(n - 1):
        parent = draw(st.integers(min_value=0, max_value=len(nodes) - 1))
        child = Node(
            draw(st.sampled_from(_LABELS)),
            draw(st.sampled_from(_KINDS)),
            None,
            SourceSpan("f.cpp", draw(st.integers(min_value=1, max_value=30))),
        )
        nodes[parent].children.append(child)
        nodes.append(child)
    return nodes[0]


@settings(max_examples=80, deadline=None)
@given(trees())
def test_normalize_preserves_size_and_shape(t):
    out = normalize_names(t)
    assert out.size() == t.size()
    assert out.depth() == t.depth()


@settings(max_examples=80, deadline=None)
@given(trees())
def test_normalize_idempotent(t):
    once = normalize_names(t)
    assert normalize_names(once) == once


@settings(max_examples=80, deadline=None)
@given(trees())
def test_normalize_erases_named_kinds(t):
    out = normalize_names(t)
    for n in out.preorder():
        if n.kind in NAMED_KINDS:
            assert n.label == n.kind


@settings(max_examples=80, deadline=None)
@given(trees())
def test_strip_non_semantic_never_grows(t):
    assert strip_non_semantic(t).size() <= t.size()


@settings(max_examples=80, deadline=None)
@given(trees(), st.sets(st.integers(min_value=1, max_value=30)))
def test_mask_never_grows_and_full_mask_is_identity(t, lines):
    mask = LineMask({"f.cpp": lines}, unknown_covered=False)
    out = mask_tree(t, mask)
    if out is not None:
        assert out.size() <= t.size()
    full = LineMask({"f.cpp": set(range(1, 31))}, unknown_covered=False)
    assert mask_tree(t, full) == t


@settings(max_examples=80, deadline=None)
@given(trees(), st.sets(st.integers(min_value=1, max_value=30)))
def test_mask_keeps_only_covered_or_ancestors(t, lines):
    mask = LineMask({"f.cpp": lines}, unknown_covered=False)
    out = mask_tree(t, mask)
    if out is None:
        return
    # every kept leaf must itself be covered
    for n in out.preorder():
        if not n.children and n.span is not None:
            assert mask.covered_span(n.span.file, n.span.line_start, n.span.line_end)


@settings(max_examples=80, deadline=None)
@given(trees())
def test_serialisation_round_trip(t):
    back = Node.from_dict(t.to_dict())
    assert back == t
    assert structural_hash(back) == structural_hash(t)


@settings(max_examples=80, deadline=None)
@given(trees())
def test_stats_consistent(t):
    s = tree_stats(t)
    assert s.size == t.size()
    assert s.depth == t.depth()
    assert 1 <= s.leaves <= s.size
    assert s.distinct_labels <= s.size
