"""Unit tests for the tree core (Node, SourceSpan)."""

import pytest

from repro.trees import Node, SourceSpan, from_sexpr, leaf


class TestSourceSpan:
    def test_single_line(self):
        s = SourceSpan("a.cpp", 3)
        assert s.line_start == 3
        assert s.line_end == 3

    def test_multi_line(self):
        s = SourceSpan("a.cpp", 3, 7)
        assert s.contains_line("a.cpp", 5)
        assert not s.contains_line("a.cpp", 8)
        assert not s.contains_line("b.cpp", 5)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            SourceSpan("a.cpp", 5, 3)

    def test_union(self):
        a = SourceSpan("f", 2, 4)
        b = SourceSpan("f", 3, 9)
        u = a.union(b)
        assert (u.line_start, u.line_end) == (2, 9)

    def test_union_cross_file_rejected(self):
        with pytest.raises(ValueError):
            SourceSpan("f", 1).union(SourceSpan("g", 1))

    def test_equality_and_hash(self):
        assert SourceSpan("f", 1, 2) == SourceSpan("f", 1, 2)
        assert hash(SourceSpan("f", 1, 2)) == hash(SourceSpan("f", 1, 2))
        assert SourceSpan("f", 1, 2) != SourceSpan("f", 1, 3)

    def test_tuple_round_trip(self):
        s = SourceSpan("x.cpp", 10, 20)
        assert SourceSpan.from_tuple(s.to_tuple()) == s


class TestNodeBasics:
    def test_size_and_depth(self):
        t = from_sexpr("(a (b c d) e)")
        assert t.size() == 5
        assert t.depth() == 3

    def test_single_node(self):
        n = leaf("x")
        assert n.size() == 1
        assert n.depth() == 1
        assert n.is_leaf

    def test_add_chaining(self):
        n = Node("root").add(leaf("a")).add(leaf("b"))
        assert [c.label for c in n.children] == ["a", "b"]

    def test_preorder_order(self):
        t = from_sexpr("(a (b c) (d e))")
        assert [n.label for n in t.preorder()] == ["a", "b", "c", "d", "e"]

    def test_postorder_order(self):
        t = from_sexpr("(a (b c) (d e))")
        assert [n.label for n in t.postorder()] == ["c", "b", "e", "d", "a"]

    def test_walk_with_parent(self):
        t = from_sexpr("(a (b c))")
        pairs = {(n.label, p.label if p else None) for n, p in t.walk_with_parent()}
        assert pairs == {("a", None), ("b", "a"), ("c", "b")}

    def test_deep_tree_traversal_is_iterative(self):
        # 10k-deep chain must not hit the recursion limit
        root = Node("0")
        cur = root
        for i in range(10_000):
            nxt = Node(str(i + 1))
            cur.children.append(nxt)
            cur = nxt
        assert root.size() == 10_001
        assert root.depth() == 10_001


class TestNodeEquality:
    def test_structural_equality(self):
        assert from_sexpr("(a (b c))") == from_sexpr("(a (b c))")

    def test_label_mismatch(self):
        assert from_sexpr("(a b)") != from_sexpr("(a c)")

    def test_shape_mismatch(self):
        assert from_sexpr("(a b c)") != from_sexpr("(a (b c))")

    def test_spans_ignored(self):
        a = Node("x", span=SourceSpan("f", 1))
        b = Node("x", span=SourceSpan("g", 9))
        assert a == b


class TestNodeTransforms:
    def test_copy_is_deep(self):
        t = from_sexpr("(a (b c))")
        c = t.copy()
        c.children[0].label = "z"
        assert t.children[0].label == "b"

    def test_map_nodes(self):
        t = from_sexpr("(a (b c))")
        upper = t.map_nodes(lambda n: Node(n.label.upper(), n.kind, n.children, n.span, n.attrs))
        assert [n.label for n in upper.preorder()] == ["A", "B", "C"]
        # original untouched
        assert t.label == "a"

    def test_filter_subtrees_drops_matching_root(self):
        t = from_sexpr("(a (drop x) (keep y))")
        out = t.filter_subtrees(lambda n: n.label != "drop")
        assert [n.label for n in out.preorder()] == ["a", "keep", "y"]

    def test_filter_subtrees_root_dropped(self):
        t = from_sexpr("(a b)")
        assert t.filter_subtrees(lambda n: n.label != "a") is None

    def test_find_labels(self):
        t = from_sexpr("(a (b a) a)")
        assert len(t.find_labels("a")) == 3


class TestNodeSerialisation:
    def test_round_trip(self):
        t = from_sexpr("(a (b c) d)")
        t.children[0].span = SourceSpan("f.cpp", 4, 6)
        t.attrs["name"] = "hello"
        back = Node.from_dict(t.to_dict())
        assert back == t
        assert back.children[0].span == SourceSpan("f.cpp", 4, 6)
        assert back.attrs["name"] == "hello"

    def test_non_scalar_attrs_dropped(self):
        t = leaf("x")
        t.attrs["obj"] = object()
        t.attrs["n"] = 3
        d = t.to_dict()
        assert "obj" not in d.get("a", {})
        assert d["a"]["n"] == 3

    def test_pretty_contains_labels(self):
        text = from_sexpr("(a (b c))").pretty()
        assert "a" in text and "b" in text and "c" in text
