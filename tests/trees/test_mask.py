"""Coverage masking of trees (§III-A / §IV-D)."""

from repro.trees import Node, SourceSpan, mask_tree
from repro.trees.coverage_mask import LineMask


def spanned(label, file, line, *children):
    return Node(label, "stmt", list(children), SourceSpan(file, line))


class TestLineMask:
    def test_covered(self):
        m = LineMask({"a.cpp": {1, 3}}, unknown_covered=False)
        assert m.covered("a.cpp", 1)
        assert not m.covered("a.cpp", 2)

    def test_unknown_file_policy(self):
        m_known = LineMask({}, unknown_covered=True)
        m_unknown = LineMask({}, unknown_covered=False)
        assert m_known.covered("other.cpp", 1)
        assert not m_unknown.covered("other.cpp", 1)

    def test_covered_span_any_line(self):
        m = LineMask({"a.cpp": {5}}, unknown_covered=False)
        assert m.covered_span("a.cpp", 3, 6)
        assert not m.covered_span("a.cpp", 6, 9)

    def test_union(self):
        a = LineMask({"f": {1}}, unknown_covered=False)
        b = LineMask({"f": {2}, "g": {1}}, unknown_covered=False)
        u = a.union(b)
        assert u.covered("f", 1) and u.covered("f", 2) and u.covered("g", 1)


class TestMaskTree:
    def test_uncovered_leaf_pruned(self):
        t = spanned("root", "f", 1, spanned("hot", "f", 2), spanned("cold", "f", 9))
        m = LineMask({"f": {1, 2}}, unknown_covered=False)
        out = mask_tree(t, m)
        labels = [n.label for n in out.preorder()]
        assert "hot" in labels and "cold" not in labels

    def test_uncovered_parent_with_covered_child_kept(self):
        t = spanned("outer", "f", 9, spanned("inner", "f", 2))
        m = LineMask({"f": {2}}, unknown_covered=False)
        out = mask_tree(t, m)
        assert out is not None
        assert [n.label for n in out.preorder()] == ["outer", "inner"]

    def test_spanless_nodes_survive(self):
        t = Node("structural", "tu", [spanned("cold", "f", 9)])
        m = LineMask({"f": {1}}, unknown_covered=False)
        out = mask_tree(t, m)
        assert out is not None
        assert out.label == "structural"
        assert not out.children

    def test_fully_cold_tree_pruned_to_none(self):
        t = spanned("root", "f", 9, spanned("a", "f", 10))
        m = LineMask({"f": {1}}, unknown_covered=False)
        assert mask_tree(t, m) is None

    def test_full_coverage_is_identity(self):
        t = spanned("root", "f", 1, spanned("a", "f", 2, spanned("b", "f", 3)))
        m = LineMask({"f": {1, 2, 3}}, unknown_covered=False)
        assert mask_tree(t, m) == t
