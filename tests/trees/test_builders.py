"""S-expression builder tests."""

import pytest

from repro.trees import from_sexpr, to_sexpr, tree, leaf
from repro.util.errors import ReproError


class TestFromSexpr:
    def test_leaf(self):
        assert from_sexpr("x").label == "x"

    def test_nested(self):
        t = from_sexpr("(a b (c d e))")
        assert t.label == "a"
        assert t.children[1].children[0].label == "d"

    def test_unbalanced_open_rejected(self):
        with pytest.raises(ReproError):
            from_sexpr("(a (b)")

    def test_unbalanced_close_rejected(self):
        with pytest.raises(ReproError):
            from_sexpr("(a))")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ReproError):
            from_sexpr("(a) b")

    def test_empty_group_rejected(self):
        with pytest.raises(ReproError):
            from_sexpr("()")

    def test_kind_applied(self):
        t = from_sexpr("(a b)", kind="tok")
        assert all(n.kind == "tok" for n in t.preorder())


class TestToSexpr:
    def test_round_trip(self):
        for text in ["x", "(a b)", "(a (b c) (d (e f) g))"]:
            assert to_sexpr(from_sexpr(text)) == text

    def test_builders_compose(self):
        t = tree("root", leaf("a"), tree("b", leaf("c")))
        assert to_sexpr(t) == "(root a (b c))"
