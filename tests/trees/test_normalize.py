"""Name normalisation and non-semantic stripping (§III-B behaviours)."""

from repro.trees import Node, from_sexpr, normalize_names, strip_non_semantic, tree, leaf


class TestNormalizeNames:
    def test_named_kind_label_replaced(self):
        n = Node("my_variable", "var")
        out = normalize_names(n)
        assert out.label == "var"
        assert out.attrs["name"] == "my_variable"

    def test_operator_labels_kept(self):
        # "we ... record only the node type, literal, and operator names"
        n = Node("binop:+", "binop", [Node("x", "var"), Node("3.0", "lit")])
        out = normalize_names(n)
        assert out.label == "binop:+"
        assert out.children[0].label == "var"
        assert out.children[1].label == "3.0"  # literal retained

    def test_two_differently_named_trees_become_identical(self):
        a = tree("fn", Node("alpha", "var"), Node("beta", "var"))
        a.kind = "fn"
        a.label = "compute_alpha"
        b = tree("fn", Node("x", "var"), Node("y", "var"))
        b.kind = "fn"
        b.label = "do_something"
        assert normalize_names(a) == normalize_names(b)

    def test_original_not_mutated(self):
        n = Node("name", "var")
        normalize_names(n)
        assert n.label == "name"

    def test_idempotent(self):
        n = Node("name", "var")
        once = normalize_names(n)
        twice = normalize_names(once)
        assert once == twice


class TestStripNonSemantic:
    def test_wrapper_spliced(self):
        t = tree("expr-stmt", tree("implicit-cast", leaf("x")))
        out = strip_non_semantic(t)
        assert [n.label for n in out.preorder()] == ["expr-stmt", "x"]

    def test_nested_wrappers_spliced(self):
        t = tree("root", tree("implicit-cast", tree("lvalue-to-rvalue", leaf("v"))))
        out = strip_non_semantic(t)
        assert [n.label for n in out.preorder()] == ["root", "v"]

    def test_root_never_spliced(self):
        t = tree("implicit-cast", leaf("x"))
        out = strip_non_semantic(t)
        assert out.label == "implicit-cast"

    def test_semantic_nodes_untouched(self):
        t = from_sexpr("(if cond (then a) (else b))")
        assert strip_non_semantic(t) == t
