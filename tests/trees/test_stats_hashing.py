"""Tree statistics, label histograms and structural hashing."""

from collections import Counter

from repro.trees import from_sexpr, label_histogram, structural_hash, tree_stats, Node, SourceSpan
from repro.trees.stats import histogram_lower_bound
from repro.distance import ted


class TestTreeStats:
    def test_counts(self):
        s = tree_stats(from_sexpr("(a (b c d) e)"))
        assert s.size == 5
        assert s.depth == 3
        assert s.leaves == 3
        assert s.max_fanout == 2

    def test_single_node(self):
        s = tree_stats(from_sexpr("x"))
        assert (s.size, s.depth, s.leaves, s.max_fanout) == (1, 1, 1, 0)
        assert s.mean_fanout == 0.0

    def test_distinct_labels(self):
        s = tree_stats(from_sexpr("(a a (a b))"))
        assert s.distinct_labels == 2


class TestHistogram:
    def test_label_histogram(self):
        h = label_histogram(from_sexpr("(a a (a b))"))
        assert h == Counter({"a": 3, "b": 1})

    def test_lower_bound_is_valid(self):
        # bound must never exceed the true TED
        cases = [
            ("(a b c)", "(a b c)"),
            ("(a b)", "(c d e)"),
            ("(a (b c))", "(a c)"),
            ("(x (y (z)))", "(a b c d)"),
        ]
        for sa, sb in cases:
            ta, tb = from_sexpr(sa), from_sexpr(sb)
            bound = histogram_lower_bound(label_histogram(ta), label_histogram(tb))
            assert bound <= ted(ta, tb).distance


class TestStructuralHash:
    def test_equal_trees_equal_hash(self):
        assert structural_hash(from_sexpr("(a (b c))")) == structural_hash(from_sexpr("(a (b c))"))

    def test_label_changes_hash(self):
        assert structural_hash(from_sexpr("(a b)")) != structural_hash(from_sexpr("(a c)"))

    def test_shape_changes_hash(self):
        assert structural_hash(from_sexpr("(a b c)")) != structural_hash(from_sexpr("(a (b c))"))

    def test_kind_changes_hash(self):
        assert structural_hash(Node("x", "stmt")) != structural_hash(Node("x", "expr"))

    def test_span_does_not_change_hash(self):
        a = Node("x", "stmt", None, SourceSpan("f", 1))
        b = Node("x", "stmt", None, SourceSpan("g", 99))
        assert structural_hash(a) == structural_hash(b)

    def test_deep_chain_hashable(self):
        root = Node("0")
        cur = root
        for i in range(5000):
            nxt = Node("n")
            cur.children.append(nxt)
            cur = nxt
        assert len(structural_hash(root)) == 64
