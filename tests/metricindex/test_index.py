"""MetricIndex behaviour over a real corpus: parity, persistence, refresh.

The hard guarantees (also gated in CI by ``benchmarks/nearest_smoke.py``):
query results are bit-identical to the brute-force scan, pruning actually
happens, the ``vpindex`` artifact roundtrips, a corrupt artifact degrades
to a rebuild with a diagnostic, and a one-file touch re-inserts exactly
one unit.
"""

import pytest

from repro import diag, obs
from repro.corpus.registry import app_models, build_fs, get_spec, index_app
from repro.distance.bounds import BruteForceOracle
from repro.distance.engine import DistanceEngine
from repro.distance.ted import clear_ted_cache
from repro.metricindex import (
    MetricIndex,
    PairPinner,
    VpIndexStore,
    index_key,
    load_index,
    save_index,
)
from repro.metricindex import vptree
from repro.workflow.comparer import (
    MetricSpec,
    divergence_matrix,
    nearest_brute_force,
    parse_metric,
)
from repro.workflow.indexer import index_codebase

APP = "babelstream-fortran"
SPEC = parse_metric("Tsem")


@pytest.fixture(scope="module")
def corpus():
    clear_ted_cache()
    return index_app(APP)


@pytest.fixture(scope="module")
def index(corpus):
    return MetricIndex.build(APP, corpus, SPEC)


class TestQuery:
    def test_bit_identical_to_brute_force_for_every_target(self, corpus, index):
        for name in corpus:
            others = [cb for m, cb in corpus.items() if m != name]
            want = nearest_brute_force(corpus[name], others, SPEC)[:3]
            got = index.query(corpus[name], corpus, 3)
            assert got.neighbors == want  # bit-identical floats and order

    def test_fewer_exact_calls_than_candidates_somewhere(self, corpus, index):
        saved = 0
        for name in corpus:
            r = index.query(corpus[name], corpus, 3)
            assert r.stats["exact_calls"] <= r.stats["candidates"] + 1
            saved += r.stats["candidates"] - min(
                r.stats["exact_calls"], r.stats["candidates"]
            )
        assert saved > 0, "the index never pruned a single candidate"

    def test_prune_counters_fire(self, corpus, index):
        with obs.collect() as col:
            for name in corpus:
                index.query(corpus[name], corpus, 2)
        pruned = sum(
            v for k, v in col.counters.items() if k.startswith("index.pruned.")
        )
        assert pruned > 0
        assert col.counters.get("index.exact_calls", 0) > 0

    def test_brute_force_oracle_disables_candidate_stages(self, corpus, index):
        for name in corpus:
            others = [cb for m, cb in corpus.items() if m != name]
            want = nearest_brute_force(corpus[name], others, SPEC)[:3]
            r = index.query(corpus[name], corpus, 3, oracle=BruteForceOracle())
            assert r.neighbors == want
            for stage in ("stats", "histogram", "sequence"):
                assert r.stats["pruned"][stage] == 0

    def test_k_exceeding_candidates_returns_everything(self, corpus, index):
        name = next(iter(corpus))
        r = index.query(corpus[name], corpus, 100)
        assert len(r.neighbors) == len(corpus) - 1


class TestPersistence:
    def test_payload_roundtrip(self, index):
        again = MetricIndex.from_payload(index.to_payload())
        assert again.to_payload() == index.to_payload()
        assert again.spec.label == SPEC.label

    def test_from_payload_rejects_malformed(self, index):
        with pytest.raises(ValueError):
            MetricIndex.from_payload({**index.to_payload(), "models": "nope"})
        broken = index.to_payload()
        broken = {**broken, "models": {**broken["models"], "ghost": {"units": {}, "total": 0, "fingerprint": "x"}}}
        with pytest.raises(ValueError):
            MetricIndex.from_payload(broken)  # tree/models disagree

    def test_store_roundtrip(self, tmp_path, index, corpus):
        store = VpIndexStore(tmp_path)
        save_index(store, index)
        assert store.path_for(index_key(APP, SPEC)).exists()
        again = load_index(store, APP, SPEC)
        assert again.to_payload() == index.to_payload()
        name = next(iter(corpus))
        assert (
            again.query(corpus[name], corpus, 3).neighbors
            == index.query(corpus[name], corpus, 3).neighbors
        )

    def test_missing_artifact_is_silent_none(self, tmp_path):
        with diag.capture() as sink:
            assert load_index(VpIndexStore(tmp_path), APP, SPEC) is None
        assert sink.count() == 0

    def test_corrupt_artifact_warns_and_rebuilds(self, tmp_path, index):
        store = VpIndexStore(tmp_path)
        save_index(store, index)
        store.path_for(index_key(APP, SPEC)).write_bytes(b"\x00garbage")
        with diag.capture() as sink:
            assert load_index(store, APP, SPEC) is None
        assert any("index/artifact-invalid" in d.format() for d in sink.diagnostics)


class TestRefresh:
    def test_noop_refresh_reinserts_nothing(self, corpus):
        idx = MetricIndex.build(APP, corpus, SPEC)
        counts = idx.refresh(corpus)
        assert counts == {
            "added": 0,
            "removed": 0,
            "models_reinserted": 0,
            "units_reinserted": 0,
        }

    def test_touch_one_file_reinserts_exactly_one_unit(self, corpus):
        # the acceptance gate: a real one-file edit re-inserts one unit
        idx = MetricIndex.build(APP, corpus, SPEC)
        app, model = "babelstream", "serial"
        cpp = index_app(app)
        cidx = MetricIndex.build(app, cpp, parse_metric("Tsem"))
        spec_m = get_spec(app, model)
        fs = build_fs(app, model)
        main = spec_m.units["main"]
        fs.files[main] = fs.files[main] + "\nint nearest_touch_marker = 7;\n"
        touched = dict(cpp)
        touched[model] = index_codebase(spec_m, fs)
        counts = cidx.refresh(touched)
        assert counts["models_reinserted"] == 1
        assert counts["units_reinserted"] == 1
        assert counts["added"] == counts["removed"] == 0
        assert vptree.check_invariant(cidx.root, cidx._dist_fn(touched), cidx._weight) == []
        # post-refresh queries still agree with brute force over the new corpus
        others = [cb for m, cb in touched.items() if m != model]
        want = nearest_brute_force(touched[model], others, parse_metric("Tsem"))[:3]
        assert cidx.query(touched[model], touched, 3).neighbors == want
        assert idx.refresh(corpus)["units_reinserted"] == 0  # untouched app

    def test_removed_model_triggers_rebuild(self, corpus):
        idx = MetricIndex.build(APP, corpus, SPEC)
        victim = app_models(APP)[0]
        rest = {m: cb for m, cb in corpus.items() if m != victim}
        counts = idx.refresh(rest)
        assert counts["removed"] == 1
        assert victim not in set(vptree.members(idx.root))
        name = next(iter(rest))
        others = [cb for m, cb in rest.items() if m != name]
        want = nearest_brute_force(rest[name], others, SPEC)[:3]
        assert idx.query(rest[name], rest, 3).neighbors == want


class TestPinning:
    def test_identical_pair_pins_to_zero(self, corpus):
        pinner = PairPinner(SPEC)
        cb = next(iter(corpus.values()))
        assert pinner.pin_pair(cb, cb) == (0.0, 0.0)

    def test_differing_pair_does_not_pin(self, corpus):
        pinner = PairPinner(SPEC)
        cbs = list(corpus.values())
        assert pinner.pin_pair(cbs[0], cbs[1]) is None

    def test_non_tree_metric_never_pins(self, corpus):
        pinner = PairPinner(MetricSpec("SLOC"))
        cb = next(iter(corpus.values()))
        assert pinner.pin_pair(cb, cb) is None

    def test_matrix_with_pinner_is_bit_identical(self, corpus):
        import numpy as np

        cbs = list(corpus.values())
        clear_ted_cache()
        plain = divergence_matrix(cbs, SPEC, engine=DistanceEngine())
        clear_ted_cache()
        pinned = divergence_matrix(
            cbs, SPEC, engine=DistanceEngine(), index=PairPinner(SPEC)
        )
        assert np.array_equal(plain, pinned)
