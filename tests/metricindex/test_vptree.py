"""VP-tree structure properties: determinism, containment, maintenance.

The tree is pure data over an abstract integer metric, so these tests run
on synthetic point sets (positions on a line — trivially a metric) and
check the contracts the metric index relies on: deterministic builds,
the containment invariant surviving insert/remove, and serialization
being the identity.
"""

import json

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.metricindex import vptree

POS = {
    "alpha": 0,
    "bravo": 3,
    "charlie": 7,
    "delta": 8,
    "echo": 15,
    "foxtrot": 21,
    "golf": 22,
    "hotel": 40,
}


def dist(a: str, b: str) -> int:
    return abs(POS[a] - POS[b])


def weight(name: str) -> int:
    return POS[name] + 1


def test_empty_build_is_none():
    assert vptree.build([], dist, weight) is None


def test_single_point():
    node = vptree.build(["echo"], dist, weight)
    assert node == {"v": "echo", "bands": []}
    assert vptree.count(node) == 1


def test_build_is_deterministic_and_order_independent():
    names = list(POS)
    a = vptree.build(names, dist, weight)
    b = vptree.build(list(reversed(names)), dist, weight)
    assert a == b
    assert sorted(vptree.members(a)) == sorted(names)


def test_build_satisfies_containment_invariant():
    tree = vptree.build(list(POS), dist, weight)
    assert vptree.check_invariant(tree, dist, weight) == []


def test_serialization_roundtrip_is_identity():
    # pure ints/strings: the artifact codec is plain JSON-able data
    tree = vptree.build(list(POS), dist, weight)
    assert json.loads(json.dumps(tree)) == tree


def test_insert_preserves_membership_and_invariant():
    names = sorted(POS)
    tree = vptree.build(names[:4], dist, weight)
    for name in names[4:]:
        tree = vptree.insert(tree, name, dist, weight)
    assert sorted(vptree.members(tree)) == names
    assert vptree.check_invariant(tree, dist, weight) == []


def test_insert_into_empty():
    tree = vptree.insert(None, "alpha", dist, weight)
    assert vptree.count(tree) == 1


def test_remove_leaf_root_and_internal():
    names = sorted(POS)
    tree = vptree.build(names, dist, weight)
    for victim in (names[-1], tree["v"], names[3]):
        tree = vptree.remove(tree, victim, dist, weight)
        assert victim not in set(vptree.members(tree))
        assert vptree.check_invariant(tree, dist, weight) == []
    assert vptree.count(tree) == len(names) - 3


def test_remove_missing_is_noop():
    tree = vptree.build(list(POS), dist, weight)
    before = json.loads(json.dumps(tree))
    POS["zulu"] = 99
    try:
        assert vptree.remove(tree, "zulu", dist, weight) == before
    finally:
        del POS["zulu"]


def test_remove_last_point_returns_none():
    tree = vptree.build(["alpha"], dist, weight)
    assert vptree.remove(tree, "alpha", dist, weight) is None


def test_remove_then_insert_keeps_invariant():
    # the incremental-refresh step for one changed model
    tree = vptree.build(list(POS), dist, weight)
    old = POS["delta"]
    tree = vptree.remove(tree, "delta", dist, weight)
    POS["delta"] = 30  # the point moved
    try:
        tree = vptree.insert(tree, "delta", dist, weight)
        assert sorted(vptree.members(tree)) == sorted(POS)
        assert vptree.check_invariant(tree, dist, weight) == []
    finally:
        POS["delta"] = old


@settings(max_examples=60, deadline=None)
@given(
    st.dictionaries(
        st.text(alphabet="abcdefgh", min_size=1, max_size=3),
        st.integers(min_value=0, max_value=1000),
        min_size=1,
        max_size=12,
    )
)
def test_random_point_sets_build_sound_trees(points):
    d = lambda a, b: abs(points[a] - points[b])  # noqa: E731
    w = lambda n: points[n] + 1  # noqa: E731
    tree = vptree.build(list(points), d, w)
    assert sorted(vptree.members(tree)) == sorted(points)
    assert vptree.check_invariant(tree, d, w) == []
