"""Interrupting a live engine run must leave no zombie workers, flush the
checkpoint, and leave the workload resumable.

The interrupt test drives a real subprocess and sends it SIGINT mid-pool —
the regression it pins: KeyboardInterrupt during the pool phase used to
leave live fork workers behind and lose all progress.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.ckpt import CheckpointStore, run_key_for
from repro.distance.engine import DistanceEngine

SRC = str(Path(__file__).resolve().parents[2] / "src")

N_TASKS = 200
KEYS = [f"k{i}" for i in range(N_TASKS)]

_SCRIPT = textwrap.dedent(
    """
    import sys, time
    sys.path.insert(0, {src!r})
    from repro.ckpt import CheckpointStore
    from repro.distance.engine import DistanceEngine

    def slow(task):
        time.sleep(0.1)
        return task * 2.0

    tasks = list(range({n}))
    keys = ["k%d" % i for i in range({n})]
    store = CheckpointStore({ckpt!r})
    eng = DistanceEngine(jobs=2, chunk_size=1, checkpoint=store, checkpoint_every=0.05)
    print("WORKERS-UP", flush=True)
    try:
        eng.map_tasks(slow, tasks, keys=keys)
    except KeyboardInterrupt:
        # the engine has already terminated the pool and flushed the
        # checkpoint before re-raising; report our own pool children
        import multiprocessing
        print("LIVE-CHILDREN %d" % len(multiprocessing.active_children()), flush=True)
        print("INTERRUPTED", flush=True)
        sys.exit(130)
    sys.exit(0)
    """
)


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals required")
class TestSigintDuringPoolPhase:
    def test_sigint_flushes_checkpoint_and_is_resumable(self, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        script = _SCRIPT.format(src=SRC, n=N_TASKS, ckpt=str(ckpt_dir))
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # wait until the run has made checkpointed progress, then Ctrl-C it
            deadline = time.monotonic() + 30
            store = CheckpointStore(ckpt_dir)
            while time.monotonic() < deadline and not store.run_keys():
                time.sleep(0.05)
                if proc.poll() is not None:
                    break
            assert store.run_keys(), "run never checkpointed before finishing"
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, f"stdout={out!r} stderr={err!r}"
        assert "INTERRUPTED" in out
        # the pool was terminated before the engine re-raised
        assert "LIVE-CHILDREN 0" in out, out

        entries = store.load(run_key_for(KEYS))
        assert 0 < len(entries) < N_TASKS  # partial progress persisted

        # the interrupted workload resumes, recomputing only unfinished tasks
        computed = {"n": 0}

        def fast(task):
            computed["n"] += 1
            return task * 2.0

        out_values = DistanceEngine(
            checkpoint=CheckpointStore(ckpt_dir), resume=True
        ).map_tasks(fast, list(range(N_TASKS)), keys=KEYS)
        assert out_values == [t * 2.0 for t in range(N_TASKS)]
        assert computed["n"] == N_TASKS - len(entries)

    def test_sigterm_behaves_like_sigint(self, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        script = _SCRIPT.format(src=SRC, n=N_TASKS, ckpt=str(ckpt_dir))
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            store = CheckpointStore(ckpt_dir)
            while time.monotonic() < deadline and not store.run_keys():
                time.sleep(0.05)
                if proc.poll() is not None:
                    break
            assert store.run_keys(), "run never checkpointed before finishing"
            os.kill(proc.pid, signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        # the engine maps SIGTERM to KeyboardInterrupt during the run
        assert proc.returncode == 130, f"stdout={out!r} stderr={err!r}"
        assert "INTERRUPTED" in out
        assert store.load(run_key_for(KEYS))
