"""Indexer unit tests (beyond the corpus integration coverage)."""

import pytest

from repro.compiler import CompileOptions
from repro.lang.source import VirtualFS
from repro.util.errors import ReproError
from repro.workflow.codebase import ModelSpec
from repro.workflow.indexer import index_codebase, index_cpp_unit


def make_fs(**files):
    fs = VirtualFS()
    for p, t in files.items():
        fs.add(p.replace("__", "/"), t)
    return fs


class TestCppUnit:
    def test_deps_discovered(self):
        fs = make_fs(
            **{
                "main.cpp": '#include "a.h"\nint main() { return 0; }\n',
                "a.h": '#include "b.h"\nint fa();\n',
                "b.h": "int fb();\n",
            }
        )
        unit = index_cpp_unit(fs, "main", "main.cpp", CompileOptions())
        assert unit.deps == ["a.h", "b.h"]

    def test_all_representations_populated(self):
        fs = make_fs(**{"main.cpp": "int main() {\nreturn 3;\n}\n"})
        unit = index_cpp_unit(fs, "main", "main.cpp", CompileOptions())
        assert unit.t_src_pre is not None and unit.t_src_post is not None
        assert unit.t_sem is not None and unit.t_sem_inlined is not None
        assert unit.t_ir is not None
        assert unit.sig_lines_pre["main.cpp"] == {1, 2, 3}
        assert unit.source_lines_pre

    def test_source_tags_align_with_lines(self):
        fs = make_fs(**{"main.cpp": "int a;\nint b;\n"})
        unit = index_cpp_unit(fs, "main", "main.cpp", CompileOptions())
        assert len(unit.source_lines_pre) == len(unit.source_tags_pre)
        assert unit.source_tags_pre[0] == ("main.cpp", 1)

    def test_defines_applied(self):
        fs = make_fs(**{"main.cpp": "int a[COUNT];\n"})
        unit = index_cpp_unit(fs, "main", "main.cpp", CompileOptions(), {"COUNT": "9"})
        assert any("9" in row for row in unit.source_lines_post)

    def test_names_normalised_in_trees(self):
        fs = make_fs(**{"main.cpp": "int my_special_var = 1;\n"})
        unit = index_cpp_unit(fs, "main", "main.cpp", CompileOptions())
        labels = {n.label for n in unit.t_sem.preorder()}
        assert "my_special_var" not in labels


class TestCodebaseIndexing:
    def test_unknown_language_rejected(self):
        spec = ModelSpec(app="t", model="m", lang="cobol", units={"main": "x"})
        with pytest.raises(ReproError):
            index_codebase(spec, make_fs(x="y"))

    def test_coverage_failure_degrades_gracefully(self):
        # main calls a function defined in another (unlinked) TU
        fs = make_fs(**{"main.cpp": "int external();\nint main() { return external(); }\n"})
        spec = ModelSpec(app="t", model="m", lang="cpp", units={"main": "main.cpp"})
        cb = index_codebase(spec, fs, run_coverage=True)
        assert cb.coverage is None
        assert "coverage run failed" in str(cb.run_value)
        assert cb.units["main"].t_sem is not None  # indexing still complete

    def test_multiple_units(self):
        fs = make_fs(
            **{
                "a.cpp": "int fa() { return 1; }\n",
                "b.cpp": "int fb() { return 2; }\n",
            }
        )
        spec = ModelSpec(
            app="t", model="m", lang="cpp", units={"a": "a.cpp", "b": "b.cpp"}, entry=None
        )
        cb = index_codebase(spec, fs)
        assert set(cb.units) == {"a", "b"}


class TestCliFigures:
    def test_figures_command_writes_svgs(self, tmp_path):
        from repro.workflow.cli import main

        rc = main(
            ["figures", "babelstream-fortran", "-o", str(tmp_path), "-b", "sequential"]
        )
        assert rc == 0
        names = {p.name for p in tmp_path.iterdir()}
        assert any(n.endswith("_dendrogram_Tsem.svg") for n in names)
        assert any(n.endswith("_heatmap.svg") for n in names)
        assert any(n.endswith("_cascade.svg") for n in names)
        assert any(n.endswith("_navchart.svg") for n in names)
