"""compile_commands.json ingestion tests."""

import json

import pytest

from repro.workflow import CompileCommand, options_from_command, parse_compile_db
from repro.util.errors import WorkflowError


DB = [
    {
        "directory": "/build",
        "file": "stream.cpp",
        "arguments": ["clang++", "-fopenmp", "-DARRAY_SIZE=64", "-c", "stream.cpp"],
    },
    {
        "directory": "/build",
        "file": "kernels.cu",
        "command": "clang++ -x cuda -DUSE_GPU -c kernels.cu",
    },
]


class TestParsing:
    def test_arguments_form(self):
        cmds = parse_compile_db(json.dumps(DB))
        assert cmds[0].file == "stream.cpp"
        assert "-fopenmp" in cmds[0].arguments

    def test_command_string_form(self):
        cmds = parse_compile_db(json.dumps(DB))
        assert "-x" in cmds[1].arguments

    def test_file_path_input(self, tmp_path):
        p = tmp_path / "compile_commands.json"
        p.write_text(json.dumps(DB))
        cmds = parse_compile_db(p)
        assert len(cmds) == 2

    def test_bad_json_rejected(self):
        with pytest.raises(WorkflowError):
            parse_compile_db("{not json")

    def test_non_array_rejected(self):
        with pytest.raises(WorkflowError):
            parse_compile_db('{"file": "x"}')

    def test_missing_file_rejected(self):
        with pytest.raises(WorkflowError):
            parse_compile_db('[{"command": "cc x.c"}]')


class TestOptionDerivation:
    def test_openmp_flag(self):
        cmds = parse_compile_db(json.dumps(DB))
        opts, defines = options_from_command(cmds[0])
        assert opts.openmp
        assert defines == {"ARRAY_SIZE": "64"}

    def test_cuda_dialect_from_x_flag(self):
        cmds = parse_compile_db(json.dumps(DB))
        opts, defines = options_from_command(cmds[1])
        assert opts.dialect == "cuda"
        assert defines == {"USE_GPU": "1"}

    def test_cuda_dialect_from_suffix(self):
        opts, _ = options_from_command(CompileCommand(file="k.cu", arguments=["nvcc"]))
        assert opts.dialect == "cuda"

    def test_sycl_flag(self):
        opts, _ = options_from_command(
            CompileCommand(file="a.cpp", arguments=["icpx", "-fsycl"])
        )
        assert opts.dialect == "sycl"

    def test_name_from_stem(self):
        opts, _ = options_from_command(CompileCommand(file="src/omp_stream.cpp"))
        assert opts.name == "omp_stream"
