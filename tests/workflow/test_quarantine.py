"""Per-file quarantine in index_codebase: damaged units degrade, strict raises."""

import pytest

from repro import diag
from repro.lang.source import VirtualFS
from repro.util.errors import ReproError
from repro.workflow.codebase import ModelSpec
from repro.workflow.indexer import index_codebase

GOOD_CPP = "int main() { return 0; }\n"
# lexically broken: unterminated block comment never closes
BROKEN_CPP = "int main() { /* unterminated\n"
GOOD_F90 = "program p\nx = 1\nend program p\n"


def make_fs(**files):
    fs = VirtualFS()
    for p, t in files.items():
        fs.add(p.replace("__", "/"), t)
    return fs


def cpp_spec(units):
    return ModelSpec(app="t", model="m", lang="cpp", units=units, entry=None)


class TestQuarantine:
    def test_broken_unit_degrades_others_survive(self):
        fs = make_fs(**{"good.cpp": GOOD_CPP, "bad.cpp": BROKEN_CPP})
        spec = cpp_spec({"good": "good.cpp", "bad": "bad.cpp"})
        with diag.capture() as sink:
            cb = index_codebase(spec, fs)
        assert "index/quarantined" in sink.by_code()
        assert not cb.units["good"].degraded
        assert cb.units["good"].t_sem is not None
        bad = cb.units["bad"]
        assert bad.degraded
        assert bad.t_sem is None and bad.t_src_pre is None and bad.t_ir is None

    def test_degraded_unit_keeps_sloc_metrics(self):
        fs = make_fs(**{"bad.cpp": BROKEN_CPP})
        with diag.capture():
            cb = index_codebase(cpp_spec({"bad": "bad.cpp"}), fs)
        bad = cb.units["bad"]
        assert bad.lloc_pre.get("bad.cpp", 0) > 0
        assert bad.source_lines_pre
        assert len(bad.source_lines_pre) == len(bad.source_tags_pre)

    def test_strict_mode_raises(self):
        fs = make_fs(**{"bad.cpp": BROKEN_CPP})
        with pytest.raises(ReproError):
            index_codebase(cpp_spec({"bad": "bad.cpp"}), fs, strict=True)

    def test_missing_file_quarantined(self):
        fs = make_fs(**{"good.cpp": GOOD_CPP})
        spec = cpp_spec({"good": "good.cpp", "gone": "gone.cpp"})
        with diag.capture() as sink:
            cb = index_codebase(spec, fs)
        assert cb.units["gone"].degraded
        assert sink.has_errors() or "index/quarantined" in sink.by_code()

    def test_unknown_language_always_raises(self):
        # a spec error, not file damage: never quarantined, even non-strict
        spec = ModelSpec(app="t", model="m", lang="cobol", units={"main": "x"})
        with pytest.raises(ReproError) as ei:
            index_codebase(spec, make_fs(x="y"))
        msg = str(ei.value)
        assert "cobol" in msg and "x" in msg and "t/m" in msg

    def test_quarantine_emits_note_with_unit_role(self):
        fs = make_fs(**{"bad.cpp": BROKEN_CPP})
        with diag.capture() as sink:
            index_codebase(cpp_spec({"bad": "bad.cpp"}), fs)
        notes = [d for d in sink.diagnostics if d.code == "index/quarantined"]
        assert any("bad" in d.message for d in notes)


class TestDegradedRoundTrip:
    def test_degraded_flag_survives_codebase_db(self, tmp_path):
        from repro.workflow.codebasedb import load_codebase_db, save_codebase_db

        fs = make_fs(**{"good.cpp": GOOD_CPP, "bad.cpp": BROKEN_CPP})
        spec = cpp_spec({"good": "good.cpp", "bad": "bad.cpp"})
        with diag.capture():
            cb = index_codebase(spec, fs)
        p = tmp_path / "db.svdb"
        save_codebase_db(cb, p)
        back = load_codebase_db(p)
        assert back.units["bad"].degraded
        assert not back.units["good"].degraded


class TestFortranQuarantine:
    def test_mixed_language_corpus_with_broken_fortran(self):
        # lexically fine but so damaged the parser gives up at unit level
        fs = make_fs(**{"ok.f90": GOOD_F90})
        spec = ModelSpec(app="t", model="m", lang="fortran", units={"main": "ok.f90"})
        with diag.capture() as sink:
            cb = index_codebase(spec, fs)
        assert not cb.units["main"].degraded
        assert sink.count() == 0
