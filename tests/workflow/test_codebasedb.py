"""Codebase DB save/load round trip."""

import pytest

from repro.metrics import sloc, tree_distance
from repro.workflow.codebasedb import load_codebase_db, save_codebase_db
from repro.util.errors import SerdeError


class TestRoundTrip:
    def test_metrics_identical_after_reload(self, tmp_path, stream_serial, stream_omp):
        p1 = tmp_path / "serial.svdb"
        p2 = tmp_path / "omp.svdb"
        save_codebase_db(stream_serial, p1)
        save_codebase_db(stream_omp, p2)
        a = load_codebase_db(p1)
        b = load_codebase_db(p2)
        assert a.model == "serial" and b.model == "omp"
        # absolute metric identical
        assert sloc(a) == sloc(stream_serial)
        # relative metric identical
        d0 = tree_distance(stream_serial, stream_omp, "sem")
        d1 = tree_distance(a, b, "sem")
        assert d0 == d1

    def test_trees_structurally_equal(self, tmp_path, stream_serial):
        p = tmp_path / "s.svdb"
        save_codebase_db(stream_serial, p)
        back = load_codebase_db(p)
        orig = stream_serial.units["main"]
        got = back.units["main"]
        assert got.t_sem == orig.t_sem
        assert got.t_src_pre == orig.t_src_pre
        assert got.t_ir == orig.t_ir

    def test_coverage_restored(self, tmp_path, stream_serial):
        p = tmp_path / "s.svdb"
        save_codebase_db(stream_serial, p)
        back = load_codebase_db(p)
        assert back.coverage is not None
        assert back.coverage.total_hits() == stream_serial.coverage.total_hits()

    def test_spec_restored(self, tmp_path, stream_cuda):
        p = tmp_path / "c.svdb"
        save_codebase_db(stream_cuda, p)
        back = load_codebase_db(p)
        assert back.spec.dialect == "cuda"
        assert back.spec.units == stream_cuda.spec.units

    def test_foreign_format_rejected(self, tmp_path):
        from repro.serde import write_blob

        p = tmp_path / "x.svdb"
        write_blob(p, {"format": 99})
        with pytest.raises(SerdeError, match="format"):
            load_codebase_db(p)
