"""CLI exit codes: quarantined runs complete (0), strict runs fail fast (1)."""

import pytest

from repro.corpus.registry import clear_index_cache
from repro.workflow.cli import main


@pytest.fixture
def corrupted_omp(monkeypatch):
    """babelstream-fortran/omp with one damaged statement in its main file."""
    from repro.corpus import babelstream_fortran as mod

    fname, src = mod.MODELS["omp"]
    assert "end do" in src
    monkeypatch.setitem(mod.MODELS, "omp", (fname, src.replace("end do", "= = oops", 1)))
    clear_index_cache()
    yield
    clear_index_cache()


class TestCorruptedCorpus:
    def test_compare_completes_with_diagnostics(self, corrupted_omp, capsys):
        rc = main(["compare", "babelstream-fortran", "omp", "-b", "sequential"])
        assert rc == 0
        cap = capsys.readouterr()
        assert "divergence" in cap.out
        assert "parse/" in cap.err  # located diagnostics on stderr
        assert "completed with" in cap.err
        assert "error" in cap.err

    def test_compare_strict_fails_fast(self, corrupted_omp, capsys):
        rc = main(["compare", "babelstream-fortran", "omp", "-b", "sequential", "--strict"])
        assert rc == 1
        cap = capsys.readouterr()
        assert cap.err.startswith("error:")
        assert "divergence" not in cap.out

    def test_index_strict_fails_fast(self, corrupted_omp, tmp_path, capsys):
        out = tmp_path / "db.svdb"
        rc = main(["index", "babelstream-fortran", "omp", "-o", str(out), "--strict"])
        assert rc == 1
        assert not out.exists()

    def test_index_nonstrict_writes_db(self, corrupted_omp, tmp_path, capsys):
        out = tmp_path / "db.svdb"
        rc = main(["index", "babelstream-fortran", "omp", "-o", str(out)])
        assert rc == 0
        assert out.exists()


class TestCleanCorpus:
    def test_no_diagnostics_on_clean_run(self, capsys):
        clear_index_cache()
        rc = main(["compare", "babelstream-fortran", "omp", "-b", "sequential"])
        assert rc == 0
        cap = capsys.readouterr()
        # a clean corpus must produce zero diagnostic chatter on stderr
        assert "completed with" not in cap.err
        assert "error" not in cap.err

    def test_strict_flag_accepted_on_clean_run(self, capsys):
        clear_index_cache()
        try:
            rc = main(
                ["compare", "babelstream-fortran", "omp", "-b", "sequential", "--strict"]
            )
        finally:
            clear_index_cache()
        assert rc == 0
