"""CLI smoke tests (fast subcommands only)."""

import pytest

from repro.workflow.cli import main, _metric_spec


class TestMetricSpecParsing:
    def test_plain(self):
        s = _metric_spec("Tsem")
        assert s.name == "Tsem" and not s.pp and not s.coverage

    def test_suffixes(self):
        s = _metric_spec("Source+pp+cov")
        assert s.name == "Source" and s.pp and s.coverage

    def test_inlining(self):
        s = _metric_spec("Tsem+i")
        assert s.inlining


class TestCommands:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "babelstream" in out and "tealeaf" in out

    def test_compare(self, capsys):
        assert main(["compare", "babelstream", "omp", "-m", "Tsem"]) == 0
        out = capsys.readouterr().out
        assert "divergence" in out

    def test_phi(self, capsys):
        assert main(["phi", "tealeaf"]) == 0
        out = capsys.readouterr().out
        assert "kokkos" in out

    def test_phi_cascade_csv(self, capsys):
        assert main(["phi", "cloverleaf", "--cascade"]) == 0
        out = capsys.readouterr().out
        assert "model,position,platform" in out

    def test_index_writes_db(self, tmp_path, capsys):
        out_file = tmp_path / "db.svdb"
        assert main(["index", "babelstream", "serial", "-o", str(out_file)]) == 0
        assert out_file.exists()

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestProfiling:
    """--profile / --trace-out / --metrics-out / stats (small Fortran corpus)."""

    def test_compare_profile_prints_span_report(self, capsys):
        # assert cold-pipeline spans: other modules may have warmed the
        # in-process registry/TED memos for this corpus
        from repro.corpus.registry import clear_index_cache
        from repro.distance.ted import clear_ted_cache

        clear_index_cache()
        clear_ted_cache()
        rc = main(["compare", "babelstream-fortran", "omp", "-b", "sequential", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile" in out
        # nested stage spans from the index+compare pipeline
        for stage in ("index.", "parse", "lower", "ted"):
            assert stage in out
        assert "lex.fortran.tokens" in out

    def test_trace_and_metrics_files(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main(
            [
                "compare",
                "babelstream-fortran",
                "omp",
                "-b",
                "sequential",
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert rc == 0
        tdata = json.loads(trace.read_text())
        assert any(e["ph"] == "X" and e["name"] == "ted" for e in tdata["traceEvents"])
        mdata = json.loads(metrics.read_text())
        assert mdata["spans"]["ted"]["count"] > 0

    def test_stats_shows_cache_counters(self, capsys):
        rc = main(["stats", "babelstream-fortran"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ted.cache.hit" in out
        assert "ted.cache.miss" in out
        assert "ted.shortcut" in out  # distinct from memo hits
        assert "spans:" in out and "counters:" in out

    def test_stats_json(self, capsys):
        import json

        rc = main(["stats", "babelstream-fortran", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"].startswith("repro.obs/")
        assert "ted.cache.hit" in data["counters"]

    def test_profile_leaves_no_collector_installed(self):
        from repro import obs

        main(["compare", "babelstream-fortran", "omp", "-b", "sequential", "--profile"])
        assert not obs.enabled()


class TestSlowCommands:
    """cluster/heatmap exercised on the small Fortran corpus (fast)."""

    def test_cluster(self, capsys):
        from repro.workflow.cli import main as cli_main

        assert cli_main(["cluster", "babelstream-fortran", "-m", "Tsem"]) == 0
        out = capsys.readouterr().out
        assert "openacc" in out and "h=" in out

    def test_heatmap(self, capsys):
        from repro.workflow.cli import main as cli_main

        assert cli_main(["heatmap", "babelstream-fortran", "-b", "sequential"]) == 0
        out = capsys.readouterr().out
        assert "Tsem" in out and "openacc" in out
