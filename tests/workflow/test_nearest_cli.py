"""``silvervale nearest``: index vs brute parity, persistence, fallback."""

import json

import pytest

from repro.corpus.registry import clear_index_cache
from repro.distance.ted import clear_ted_cache
from repro.workflow.cli import main

APP = "babelstream-fortran"
MODEL = "sequential"


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    d = tmp_path / "root"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(d))
    clear_index_cache()
    clear_ted_cache()
    return d


def run_json(capsys, *argv):
    capsys.readouterr()
    assert main(["nearest", APP, MODEL, "--json", *argv]) == 0
    return json.loads(capsys.readouterr().out)


class TestParity:
    def test_index_matches_brute_force_bit_identically(self, cache_dir, capsys):
        via_index = run_json(capsys, "-k", "4")
        brute = run_json(capsys, "-k", "4", "--brute-force")
        assert via_index["mode"] == "index"
        assert brute["mode"] == "brute"
        assert via_index["neighbors"] == brute["neighbors"]

    def test_index_reports_pruning_ledger(self, cache_dir, capsys):
        payload = run_json(capsys, "-k", "2")
        assert payload["index"]["exact_calls"] <= payload["index"]["candidates"] + 1
        assert set(payload["index"]["pruned"]) == {
            "triangle",
            "stats",
            "histogram",
            "sequence",
        }

    def test_text_output_names_mode_and_ranks(self, cache_dir, capsys):
        assert main(["nearest", APP, MODEL, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert f"2 nearest to {MODEL} under Tsem (index):" in out
        assert "  1. " in out and "  2. " in out
        assert "exact evaluation(s)" in out


class TestPersistence:
    def test_vpindex_artifact_written_and_replayed(self, cache_dir, capsys):
        run_json(capsys)
        files = list(cache_dir.glob("vpindex-*.svc"))
        assert len(files) == 1
        # warm run replays the artifact; answers are unchanged
        first = run_json(capsys)
        again = run_json(capsys)
        assert first["neighbors"] == again["neighbors"]
        assert len(list(cache_dir.glob("vpindex-*.svc"))) == 1

    def test_no_incremental_runs_without_persisting(self, cache_dir, capsys):
        payload = run_json(capsys, "--no-incremental")
        assert payload["mode"] == "index"
        assert list(cache_dir.glob("vpindex-*.svc")) == []


class TestFallbackAndErrors:
    def test_non_tree_metric_scans_with_fallback_diag(self, cache_dir, capsys):
        capsys.readouterr()
        assert main(["nearest", APP, MODEL, "-m", "SLOC", "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["mode"] == "scan"
        assert "index" not in payload
        assert "index/fallback" in captured.err

    def test_unknown_model_is_an_error(self, cache_dir, capsys):
        assert main(["nearest", APP, "not-a-model"]) == 1
        assert "unknown model" in capsys.readouterr().err

    def test_k_must_be_positive(self, cache_dir, capsys):
        assert main(["nearest", APP, MODEL, "-k", "0"]) == 1
        assert "k must be >= 1" in capsys.readouterr().err
