"""``silvervale cache`` over the unified artifact root.

The ``stats`` top-level keys remain the TED shard summary (CI's warm-cache
gate reads ``entries``); the ``namespaces`` section enumerates every artifact
namespace sharing the root.
"""

import json

import pytest

from repro.corpus.registry import clear_index_cache
from repro.distance.ted import clear_ted_cache
from repro.workflow.cli import main


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    d = tmp_path / "root"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(d))
    return d


def populate(cache_dir):
    """One incremental index (unit artifacts) + one cached compare (ted).

    In-process memos (registry index cache, TED memo) would otherwise
    satisfy repeat runs without touching disk — clear them so every test's
    ``populate`` actually writes artifacts under its own root.
    """
    clear_index_cache()
    clear_ted_cache()
    assert main(["index", "babelstream", "serial", "-o", str(cache_dir / "out.svdb")]) == 0
    assert main(["compare", "babelstream", "omp", "-m", "Tsem", "--cache-dir", str(cache_dir)]) == 0


class TestStats:
    def test_json_lists_namespaces(self, cache_dir, capsys):
        populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "stats", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["entries"] > 0  # the historical TED contract CI pins
        assert "unit" in d["namespaces"] and "ted" in d["namespaces"]
        assert d["namespaces"]["unit"]["entries"] > 0
        assert d["namespaces"]["unit"]["files"] > 0
        assert d["namespaces"]["ted"]["entries"] == d["entries"]

    def test_text_output_mentions_namespaces(self, cache_dir, capsys):
        populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "namespaces :" in out
        assert "unit" in out and "ted" in out

    def test_no_root_configured(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no cache directory" in capsys.readouterr().err


class TestClear:
    def test_clear_all_namespaces(self, cache_dir, capsys):
        populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["entries"] == 0
        assert d["namespaces"] == {}

    def test_clear_single_namespace(self, cache_dir, capsys):
        populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "clear", "--namespace", "unit"]) == 0
        out = capsys.readouterr().out
        assert "unit artifact file(s)" in out
        assert main(["cache", "stats", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert "unit" not in d["namespaces"]
        assert d["entries"] > 0  # ted shards survive

    def test_unknown_namespace_rejected(self, cache_dir, capsys):
        assert main(["cache", "clear", "--namespace", "bogus"]) == 2
        assert "unknown namespace" in capsys.readouterr().err


class TestVpIndexNamespace:
    def populate_index(self, cache_dir):
        clear_index_cache()
        clear_ted_cache()
        assert main(["nearest", "babelstream-fortran", "sequential", "-k", "2"]) == 0

    def test_stats_enumerates_vpindex(self, cache_dir, capsys):
        self.populate_index(cache_dir)
        capsys.readouterr()
        assert main(["cache", "stats", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["namespaces"]["vpindex"]["entries"] == 1
        assert d["namespaces"]["vpindex"]["files"] == 1
        # the historical top-level contract stays the TED shard summary
        assert d["entries"] == d["namespaces"]["ted"]["entries"]

    def test_clear_vpindex_only(self, cache_dir, capsys):
        self.populate_index(cache_dir)
        capsys.readouterr()
        assert main(["cache", "clear", "--namespace", "vpindex"]) == 0
        assert "vpindex artifact file(s)" in capsys.readouterr().out
        assert main(["cache", "stats", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert "vpindex" not in d["namespaces"]
        assert d["namespaces"]["unit"]["entries"] > 0  # other namespaces survive
