"""``silvervale obs`` + run-ledger recording through the real CLI entry point.

Every workload subcommand records a metrics snapshot into the ``obs``
namespace of the artifact root (opt-out: ``--no-ledger``); the ``obs``
subcommand family reads the snapshots back. These tests drive ``main()``
end-to-end over a tmp cache root.
"""

import json

import pytest

from repro.corpus.registry import clear_index_cache
from repro.distance.ted import clear_ted_cache
from repro.obs import ledger
from repro.workflow.cli import main


@pytest.fixture
def root(tmp_path, monkeypatch):
    # keep any default-root fallback (.silvervale-cache) out of the repo CWD
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "unused-default"))
    return tmp_path / "root"


def record_run(root, out_dir, tag="a"):
    """One fast real workload run that lands in the ledger.

    In-process memos would satisfy repeat runs without doing (or recording)
    any work — clear them so every run collects real spans and writes unit
    artifacts under its own root.
    """
    clear_index_cache()
    clear_ted_cache()
    rc = main(
        [
            "index", "babelstream", "serial",
            "-o", str(out_dir / f"{tag}.svdb"),
            "--cache-dir", str(root),
        ]
    )
    assert rc == 0


class TestRecording:
    def test_workload_run_records_snapshot(self, root, tmp_path, capsys):
        record_run(root, tmp_path)
        store = ledger.RunLedgerStore(root)
        ids = store.run_ids()
        assert len(ids) == 1
        snap = store.load(ids[0])
        assert snap["command"] == "index"
        assert snap["workload"]["app"] == "babelstream"
        assert snap["workload"]["model"] == "serial"
        assert snap["exit_code"] == 0
        assert snap["corpus"]  # fingerprint of a known app resolves
        assert snap["metrics"]["schema"] == ledger.METRICS_SCHEMA

    def test_no_ledger_opts_out(self, root, tmp_path):
        rc = main(
            [
                "index", "babelstream", "serial",
                "-o", str(tmp_path / "x.svdb"),
                "--cache-dir", str(root),
                "--no-ledger",
            ]
        )
        assert rc == 0
        assert ledger.RunLedgerStore(root).run_ids() == []

    def test_read_only_subcommands_do_not_record(self, root, capsys):
        assert main(["obs", "history", "--cache-dir", str(root)]) == 0
        assert main(["apps"]) == 0
        assert ledger.RunLedgerStore(root).run_ids() == []


class TestHistory:
    def test_empty_ledger_message(self, root, capsys):
        assert main(["obs", "history", "--cache-dir", str(root)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_table_and_json(self, root, tmp_path, capsys):
        record_run(root, tmp_path)
        capsys.readouterr()
        assert main(["obs", "history", "--cache-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "index" in out and "babelstream" in out
        assert main(["obs", "history", "--cache-dir", str(root), "--json"]) == 0
        snaps = json.loads(capsys.readouterr().out)
        assert len(snaps) == 1 and snaps[0]["command"] == "index"

    def test_command_filter(self, root, tmp_path, capsys):
        record_run(root, tmp_path)
        capsys.readouterr()
        assert main(
            ["obs", "history", "--cache-dir", str(root), "--command", "compare", "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out) == []


class TestDiff:
    def test_empty_ledger_exits_zero_with_message(self, root, capsys):
        """``obs diff`` on a fresh root is a no-op, not an error — advisory
        CI steps run it unconditionally."""
        assert main(["obs", "diff", "prev", "last", "--cache-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "0 snapshot(s)" in out and "need two" in out

    def test_single_run_exits_zero_with_message(self, root, tmp_path, capsys):
        record_run(root, tmp_path, "a")
        capsys.readouterr()
        assert main(["obs", "diff", "prev", "last", "--cache-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "1 snapshot(s)" in out and "need two" in out

    def test_short_ledger_json_reports_skipped(self, root, capsys):
        assert (
            main(["obs", "diff", "prev", "last", "--cache-dir", str(root), "--json"]) == 0
        )
        d = json.loads(capsys.readouterr().out)
        assert d["skipped"] is True and d["runs"] == 0

    def test_prev_vs_last(self, root, tmp_path, capsys):
        record_run(root, tmp_path, "a")
        record_run(root, tmp_path, "b")
        capsys.readouterr()
        assert main(["obs", "diff", "prev", "last", "--cache-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("diff ")
        assert "wall time:" in out

    def test_json_shape(self, root, tmp_path, capsys):
        record_run(root, tmp_path, "a")
        record_run(root, tmp_path, "b")
        capsys.readouterr()
        assert main(["obs", "diff", "prev", "last", "--cache-dir", str(root), "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["schema_ok"] is True
        assert d["comparable"] is True  # same command, same corpus

    def test_schema_mismatch_hard_fails(self, root, tmp_path, capsys):
        record_run(root, tmp_path, "a")
        record_run(root, tmp_path, "b")
        store = ledger.RunLedgerStore(root)
        last = store.run_ids()[-1]
        snap = store.load(last)
        snap["metrics"]["schema"] = "repro.obs/v0"
        store.save(last, snap)
        capsys.readouterr()
        assert main(["obs", "diff", "prev", "last", "--cache-dir", str(root)]) == 1
        assert "not comparable" in capsys.readouterr().err

    def test_regression_flagged_in_text(self, root, capsys):
        store = ledger.RunLedgerStore(root)
        base = {
            "command": "compare", "corpus": "c0de", "argv": [], "workload": {},
            "duration_s": 1.0, "exit_code": 0,
            "metrics": {
                "schema": ledger.METRICS_SCHEMA, "spans": {}, "counters": {},
                "gauges": {},
                "hists": {"ted": {"count": 5, "p50_s": 0.1, "p99_s": 0.1}},
            },
        }
        slow = json.loads(json.dumps(base))
        slow["metrics"]["hists"]["ted"] = {"count": 5, "p50_s": 0.2, "p99_s": 0.2}
        store.save("20260101T000000-000000-1", dict(base, run="20260101T000000-000000-1"))
        store.save("20260102T000000-000000-1", dict(slow, run="20260102T000000-000000-1"))
        assert main(["obs", "diff", "prev", "last", "--cache-dir", str(root)]) == 0
        captured = capsys.readouterr()
        assert "regressed" in captured.out
        assert "1 span(s) regressed" in captured.err


class TestReport:
    def test_latest_by_default(self, root, tmp_path, capsys):
        record_run(root, tmp_path)
        capsys.readouterr()
        assert main(["obs", "report", "--cache-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "command  : index" in out
        assert "latency percentiles:" in out

    def test_json(self, root, tmp_path, capsys):
        record_run(root, tmp_path)
        capsys.readouterr()
        assert main(["obs", "report", "--cache-dir", str(root), "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["command"] == "index"

    def test_empty_ledger_errors(self, root, capsys):
        assert main(["obs", "report", "--cache-dir", str(root)]) != 0


class TestCacheIntegration:
    def test_stats_enumerates_obs_namespace(self, root, tmp_path, capsys):
        record_run(root, tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(root), "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["namespaces"]["obs"]["files"] == 1

    def test_clear_namespace_obs_only_prunes_ledger(self, root, tmp_path, capsys):
        record_run(root, tmp_path)
        other = {p.name for p in root.glob("*.svc") if not p.name.startswith("obs-")}
        assert other  # the index run also wrote unit artifacts
        assert main(["cache", "clear", "--cache-dir", str(root), "--namespace", "obs"]) == 0
        assert ledger.RunLedgerStore(root).run_ids() == []
        assert {p.name for p in root.glob("*.svc") if not p.name.startswith("obs-")} == other
