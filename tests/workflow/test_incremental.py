"""Incremental indexing: per-unit artifacts, hit/miss accounting, bit-identity.

These tests drive :func:`index_codebase` with a ``UnitArtifactStore`` against
a tiny hand-built codebase so every frontend invocation is observable via the
``index.unit.{hit,miss}`` counters.
"""

from repro import diag, obs
from repro.lang.source import VirtualFS
from repro.workflow.codebase import ModelSpec
from repro.workflow.codebasedb import save_codebase_db
from repro.workflow.indexer import index_codebase
from repro.workflow.unitstore import UnitArtifactStore, unit_key


def make_fs(files):
    fs = VirtualFS()
    for p, t in files.items():
        fs.add(p, t)
    return fs


FILES = {
    "a.cpp": '#include "common.h"\nint fa() { return C + 1; }\n',
    "b.cpp": "int fb() { return 2; }\n",
    "common.h": "int C = 40;\n",
}


def make_spec():
    return ModelSpec(
        app="t", model="m", lang="cpp", units={"a": "a.cpp", "b": "b.cpp"}, entry=None
    )


def index_counting(spec, fs, store, **kw):
    with obs.collect() as col:
        cb = index_codebase(spec, fs, artifacts=store, **kw)
    return cb, col.counters


class TestHitMiss:
    def test_cold_then_warm(self, tmp_path):
        store = UnitArtifactStore(tmp_path)
        spec, fs = make_spec(), make_fs(FILES)

        _, cold = index_counting(spec, fs, store)
        assert cold["index.unit.miss"] == 2
        assert cold["index.units"] == 2
        assert "index.unit.hit" not in cold

        with diag.capture() as sink:
            cb, warm = index_counting(spec, make_fs(FILES), store)
        assert warm["index.unit.hit"] == 2
        assert "index.unit.miss" not in warm
        assert "index.units" not in warm  # zero frontend invocations
        assert not sink.diagnostics
        assert set(cb.units) == {"a", "b"}
        assert cb.units["a"].t_sem is not None

    def test_touch_one_file_reindexes_only_it(self, tmp_path):
        store = UnitArtifactStore(tmp_path)
        index_counting(make_spec(), make_fs(FILES), store)

        touched = dict(FILES)
        touched["b.cpp"] = "int fb() { return 3; }\n"
        cb, c = index_counting(make_spec(), make_fs(touched), store)
        assert c["index.unit.hit"] == 1
        assert c["index.unit.miss"] == 1
        assert c["index.units"] == 1
        assert "return 3 ;" in " / ".join(cb.units["b"].source_lines_pre)

    def test_header_change_misses_through_depfile(self, tmp_path):
        store = UnitArtifactStore(tmp_path)
        index_counting(make_spec(), make_fs(FILES), store)

        touched = dict(FILES)
        touched["common.h"] = "int C = 41;\n"
        # Only unit "a" includes common.h, but a header edit changes the fs
        # layout-independent content, so the unit key (main hash + layout)
        # still matches — the depfile check must catch it.
        _, c = index_counting(make_spec(), make_fs(touched), store)
        assert c["index.unit.miss"] >= 1
        assert c.get("index.unit.hit", 0) + c["index.unit.miss"] == 2
        # unit "a" specifically must have been re-fronted
        assert c["index.units"] == c["index.unit.miss"]

    def test_new_file_in_layout_invalidates(self, tmp_path):
        store = UnitArtifactStore(tmp_path)
        index_counting(make_spec(), make_fs(FILES), store)

        grown = dict(FILES)
        grown["common2.h"] = "int D = 1;\n"
        _, c = index_counting(make_spec(), make_fs(grown), store)
        # layout digest changed -> every key changed -> all misses
        assert c["index.unit.miss"] == 2


class TestArtifactHygiene:
    def test_corrupt_artifact_warns_and_reindexes(self, tmp_path):
        store = UnitArtifactStore(tmp_path)
        spec, fs = make_spec(), make_fs(FILES)
        index_counting(spec, fs, store)

        key = unit_key(spec, fs, "a", "a.cpp", recover=True, coverage=False)
        store.path_for(key).write_bytes(b"garbage")
        with diag.capture() as sink:
            _, c = index_counting(spec, make_fs(FILES), store)
        assert c["index.unit.miss"] == 1 and c["index.unit.hit"] == 1
        assert sink.by_code().get("index/artifact-invalid") == 1

    def test_strict_bypasses_store(self, tmp_path):
        store = UnitArtifactStore(tmp_path)
        spec, fs = make_spec(), make_fs(FILES)
        index_counting(spec, fs, store)

        _, c = index_counting(spec, make_fs(FILES), store, strict=True)
        assert "index.unit.hit" not in c
        assert c["index.units"] == 2

    def test_degraded_units_not_persisted(self, tmp_path):
        store = UnitArtifactStore(tmp_path)
        bad = {"a.cpp": "int fa( { syntax error\n", "b.cpp": FILES["b.cpp"]}
        spec = ModelSpec(
            app="t", model="m", lang="cpp", units={"a": "a.cpp", "b": "b.cpp"}, entry=None
        )
        with diag.capture():
            cb, c1 = index_counting(spec, make_fs(bad), store)
        # depending on frontend recovery "a" may degrade or carry diagnostics;
        # either way it must not be cached, so the re-run re-fronts it.
        with diag.capture():
            _, c2 = index_counting(spec, make_fs(bad), store)
        assert c2.get("index.unit.hit", 0) <= 1
        assert c2["index.unit.miss"] >= 1


class TestBitIdentity:
    def test_warm_db_identical_to_cold(self, tmp_path):
        store = UnitArtifactStore(tmp_path / "store")
        cold = index_codebase(make_spec(), make_fs(FILES), artifacts=store)
        p1 = tmp_path / "cold.svdb"
        save_codebase_db(cold, p1)

        warm = index_codebase(make_spec(), make_fs(FILES), artifacts=store)
        p2 = tmp_path / "warm.svdb"
        save_codebase_db(warm, p2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_parallel_matches_serial(self, tmp_path):
        serial = index_codebase(make_spec(), make_fs(FILES), artifacts=None, jobs=1)
        p1 = tmp_path / "serial.svdb"
        save_codebase_db(serial, p1)

        parallel = index_codebase(make_spec(), make_fs(FILES), artifacts=None, jobs=2)
        p2 = tmp_path / "parallel.svdb"
        save_codebase_db(parallel, p2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_warm_parallel_coverage_free_ride(self, tmp_path):
        """Artifacts written by a parallel run replay in a serial run."""
        store = UnitArtifactStore(tmp_path)
        index_codebase(make_spec(), make_fs(FILES), artifacts=store, jobs=2)
        _, c = index_counting(make_spec(), make_fs(FILES), store)
        assert c["index.unit.hit"] == 2


class TestCoverageReplay:
    def test_coverage_identical_cold_vs_warm(self, tmp_path):
        store = UnitArtifactStore(tmp_path)
        fs_files = {"main.cpp": "int main() {\nreturn 0;\n}\n"}
        spec = ModelSpec(app="t", model="m", lang="cpp", units={"main": "main.cpp"})

        cold = index_codebase(spec, make_fs(fs_files), run_coverage=True, artifacts=store)
        with obs.collect() as col:
            warm = index_codebase(
                spec, make_fs(fs_files), run_coverage=True, artifacts=store
            )
        assert col.counters["index.unit.hit"] == 1
        assert cold.run_value == warm.run_value == 0
        assert cold.coverage is not None and warm.coverage is not None
        assert cold.coverage.hits == warm.coverage.hits

    def test_coverage_and_plain_artifacts_are_distinct(self, tmp_path):
        store = UnitArtifactStore(tmp_path)
        fs_files = {"main.cpp": "int main() {\nreturn 0;\n}\n"}
        spec = ModelSpec(app="t", model="m", lang="cpp", units={"main": "main.cpp"})
        index_codebase(spec, make_fs(fs_files), run_coverage=False, artifacts=store)
        with obs.collect() as col:
            cb = index_codebase(spec, make_fs(fs_files), run_coverage=True, artifacts=store)
        assert col.counters["index.unit.miss"] == 1
        assert cb.coverage is not None
