"""Utility-layer tests: timers and error types."""

import pytest

from repro.util import LoweringError, ParseError, ReproError, SemanticError, Timer, timed
from repro.util.timing import all_timers, get_timer, reset_timers


class TestTimer:
    def test_accumulates(self):
        t = Timer("x")
        with t:
            pass
        with t:
            pass
        assert t.calls == 2
        assert t.elapsed >= 0.0
        assert t.mean >= 0.0

    def test_mean_zero_when_unused(self):
        assert Timer("x").mean == 0.0

    def test_registry(self):
        reset_timers()
        a = get_timer("alpha")
        assert get_timer("alpha") is a
        assert "alpha" in all_timers()
        reset_timers()
        assert "alpha" not in all_timers()

    def test_timed_decorator(self):
        reset_timers()

        @timed("deco")
        def fn(x):
            return x * 2

        assert fn(21) == 42
        assert get_timer("deco").calls == 1

    def test_reentrant_nesting_keeps_elapsed_sane(self):
        import time

        t = Timer("nested")
        with t:
            time.sleep(0.01)
            with t:
                time.sleep(0.01)
        assert t.calls == 2
        # inner ≈ 0.01, outer ≈ 0.02; the old single-slot _start made the
        # outer exit measure from the *inner* start, undercounting.
        assert t.elapsed >= 0.029
        assert t.depth == 0

    def test_recursive_timed_function(self):
        reset_timers()

        @timed("fact")
        def fact(n):
            return 1 if n <= 1 else n * fact(n - 1)

        assert fact(5) == 120
        assert get_timer("fact").calls == 5

    def test_timer_opens_span_when_collecting(self):
        from repro import obs

        reset_timers()
        with obs.collect() as c:
            with get_timer("outer"):
                with get_timer("inner"):
                    pass
        names = {r.name: r for r in c.spans}
        assert set(names) == {"outer", "inner"}
        assert names["inner"].parent == names["outer"].index


class TestErrors:
    def test_parse_error_formats_location(self):
        e = ParseError("bad token", "f.cpp", 3, 7)
        assert "f.cpp:3:7" in str(e)
        assert isinstance(e, ReproError)

    def test_semantic_error(self):
        e = SemanticError("unknown symbol", "g.cpp", 9)
        assert "g.cpp:9" in str(e)

    def test_hierarchy(self):
        for cls in (ParseError, SemanticError, LoweringError):
            assert issubclass(cls, ReproError)

    def test_catchable_at_base(self):
        with pytest.raises(ReproError):
            raise LoweringError("nope")
