"""Diagnostics subsystem tests: sink, capture, emit helpers, formatting."""

from repro import diag
from repro.diag.diagnostics import Diagnostic
from repro.util.errors import ParseError


class TestEmitWithoutSink:
    def test_emit_is_noop_when_nobody_listens(self):
        assert not diag.enabled()
        assert diag.error("parse/bad-stmt", "dropped on the floor") is None
        assert diag.current_sink() is None

    def test_enabled_reflects_capture(self):
        assert not diag.enabled()
        with diag.capture():
            assert diag.enabled()
        assert not diag.enabled()


class TestCapture:
    def test_collects_records(self):
        with diag.capture() as sink:
            diag.warning("lex/unexpected-char", "unexpected character '$'", "a.f90", 3, 7)
            diag.error("parse/bad-stmt", "unexpected token", "a.f90", 4)
        assert sink.count() == 2
        d = sink.diagnostics[0]
        assert d.severity == "warning"
        assert d.code == "lex/unexpected-char"
        assert (d.file, d.line, d.col) == ("a.f90", 3, 7)

    def test_severity_helpers(self):
        with diag.capture() as sink:
            diag.note("index/quarantined", "n")
            diag.warning("lex/unexpected-char", "w")
            diag.error("parse/bad-decl", "e")
        assert sink.count("note") == 1
        assert sink.count("warning") == 1
        assert sink.count("error") == 1
        assert sink.has_errors()

    def test_has_errors_false_for_warnings_only(self):
        with diag.capture() as sink:
            diag.warning("lex/unexpected-char", "w")
        assert not sink.has_errors()

    def test_by_code_aggregates(self):
        with diag.capture() as sink:
            for _ in range(3):
                diag.error("parse/bad-stmt", "x")
            diag.warning("lex/unexpected-char", "y")
        assert sink.by_code() == {"parse/bad-stmt": 3, "lex/unexpected-char": 1}

    def test_summary_counts_severities(self):
        with diag.capture() as sink:
            diag.error("parse/bad-decl", "e")
            diag.warning("lex/unexpected-char", "w")
            diag.warning("lex/unterminated-literal", "w")
        assert sink.summary() == "3 diagnostics: 1 error, 2 warnings"

    def test_summary_empty(self):
        with diag.capture() as sink:
            pass
        assert sink.summary() == "no diagnostics"

    def test_limit_drops_overflow(self):
        with diag.capture(limit=2) as sink:
            for _ in range(5):
                diag.note("index/quarantined", "x")
        assert len(sink.diagnostics) == 2
        assert sink.dropped == 3
        assert sink.count() == 5
        assert "3 dropped" in sink.summary()

    def test_nested_capture_shadows_outer(self):
        with diag.capture() as outer:
            diag.note("a/one", "outer")
            with diag.capture() as inner:
                diag.note("a/two", "inner")
            diag.note("a/three", "outer again")
        assert [d.code for d in outer.diagnostics] == ["a/one", "a/three"]
        assert [d.code for d in inner.diagnostics] == ["a/two"]


class TestEmitException:
    def test_prefers_bare_message_over_str(self):
        # ParseError.__str__ embeds file:line:col — the diagnostic carries
        # the location separately, so the message must not repeat it.
        e = ParseError("unexpected token ';'", "a.cpp", 4, 9)
        with diag.capture() as sink:
            diag.emit_exception("parse/bad-stmt", e)
        d = sink.diagnostics[0]
        assert d.message == "unexpected token ';'"
        assert "a.cpp" not in d.message
        assert (d.file, d.line, d.col) == ("a.cpp", 4, 9)

    def test_plain_exception_falls_back_to_str(self):
        with diag.capture() as sink:
            diag.emit_exception("index/internal-error", ValueError("boom"))
        assert sink.diagnostics[0].message == "boom"


class TestFormat:
    def test_full_location(self):
        d = Diagnostic("error", "parse/bad-stmt", "unexpected token", "a.f90", 4, 9)
        assert d.format() == "a.f90:4:9: error: unexpected token [parse/bad-stmt]"

    def test_no_location(self):
        d = Diagnostic("note", "index/quarantined", "degraded")
        assert d.format() == "<input>: note: degraded [index/quarantined]"

    def test_phase_prefix(self):
        d = Diagnostic("error", "parse/bad-stmt", "m")
        assert d.phase == "parse"
