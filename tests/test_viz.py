"""Visualisation backends: SVG validity (XML-parsed) and ASCII output."""

import xml.etree.ElementTree as ET

import numpy as np

from repro.analysis import agglomerative
from repro.analysis.heatmap import HeatmapData
from repro.perfport import PerfModel, cascade, navigation_chart
from repro.viz import (
    SvgCanvas,
    ascii_bars,
    ascii_dendrogram,
    ascii_heatmap,
    render_bars_svg,
    render_cascade_svg,
    render_dendrogram_svg,
    render_heatmap_svg,
    render_navigation_svg,
)
from repro.viz.svg import viridis


def parse_svg(text):
    root = ET.fromstring(text)
    assert root.tag.endswith("svg")
    return root


def toy_dendrogram():
    d = np.array([[0.0, 1.0, 8.0], [1.0, 0.0, 8.5], [8.0, 8.5, 0.0]])
    return agglomerative(d, ["serial", "omp", "cuda"])


class TestSvgCanvas:
    def test_document_valid_xml(self):
        c = SvgCanvas(100, 50)
        c.line(0, 0, 10, 10)
        c.rect(5, 5, 10, 10)
        c.circle(20, 20, 3)
        c.star(30, 30, 5)
        c.polyline([(0, 0), (5, 5), (10, 0)])
        c.text(1, 1, "label <&>")
        parse_svg(c.to_svg())

    def test_text_escaped(self):
        c = SvgCanvas(10, 10)
        c.text(0, 0, "a < b & c")
        assert "a &lt; b &amp; c" in c.to_svg()

    def test_save(self, tmp_path):
        c = SvgCanvas(10, 10)
        path = tmp_path / "x.svg"
        c.save(str(path))
        parse_svg(path.read_text())

    def test_viridis_endpoints(self):
        assert viridis(0.0) == "rgb(68,1,84)"
        assert viridis(1.0) == "rgb(253,231,37)"
        assert viridis(-5).startswith("rgb(68")
        assert viridis(7).startswith("rgb(253")


class TestChartRenderers:
    def test_dendrogram_svg(self):
        svg = render_dendrogram_svg(toy_dendrogram(), "title")
        parse_svg(svg)  # must be well-formed XML
        assert "serial" in svg and "cuda" in svg

    def test_heatmap_svg(self):
        data = HeatmapData(["Tsem"], ["omp", "cuda"], np.array([[0.1, 0.6]]))
        svg = render_heatmap_svg(data, "hm")
        parse_svg(svg)
        assert "0.10" in svg and "0.60" in svg

    def test_cascade_svg(self):
        m = PerfModel().efficiency_matrix("tealeaf", ["kokkos", "omp-target"])
        svg = render_cascade_svg(cascade(m), "cascade")
        parse_svg(svg)
        assert "kokkos" in svg

    def test_navigation_svg(self):
        chart = navigation_chart(
            "t", {"omp": 0.5, "cuda": 0.0}, {"omp": 0.1, "cuda": 0.4}, {"omp": 0.1, "cuda": 0.5}
        )
        svg = render_navigation_svg(chart, "nav")
        parse_svg(svg)
        assert "towards no resemblance" in svg

    def test_bars_svg(self):
        svg = render_bars_svg({"omp": 0.5, "cuda": 0.9})
        parse_svg(svg)
        assert "0.900" in svg


class TestAscii:
    def test_dendrogram(self):
        out = ascii_dendrogram(toy_dendrogram())
        assert "serial" in out and "omp" in out and "cuda" in out
        assert "h=" in out

    def test_heatmap(self):
        data = HeatmapData(["Tsem"], ["omp"], np.array([[0.42]]))
        out = ascii_heatmap(data)
        assert "Tsem" in out and "0.42" in out

    def test_bars(self):
        out = ascii_bars({"x": 0.5}, width=10)
        assert "x" in out and "█████" in out
