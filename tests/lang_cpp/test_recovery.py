"""Panic-mode recovery tests: malformed C++ yields partial trees, not tracebacks."""

import pytest

from repro import diag
from repro.lang.cpp.astnodes import ErrorDecl, ErrorStmt, FunctionDecl
from repro.lang.cpp.asttree import ast_to_tree
from repro.lang.cpp.lexer import TokenType, lex
from repro.lang.cpp.parser import parse_tokens
from repro.util.errors import ParseError


def significant(src):
    """What the preprocessor hands the parser: no trivia, no EOF marker."""
    return [
        t
        for t in lex(src, "t.cpp", tolerant=True)
        if not t.is_trivia and t.type is not TokenType.EOF
    ]


def recover_parse(src):
    """Parse with recovery on, returning (translation unit, sink)."""
    with diag.capture() as sink:
        tu = parse_tokens(significant(src), "t.cpp", recover=True)
    return tu, sink


def functions(tu):
    return [d for d in tu.decls if isinstance(d, FunctionDecl)]


class TestStrictStillRaises:
    def test_default_mode_unchanged(self):
        with pytest.raises(ParseError):
            parse_tokens(significant("int f( {"), "t.cpp")

    def test_recover_mode_is_noop_on_valid_input(self):
        tu, sink = recover_parse("int good() { return 1; }\n")
        assert sink.count() == 0
        assert [d.name for d in functions(tu)] == ["good"]


class TestUnbalancedBraces:
    SRC = (
        "int good() { return 1; }\n"
        "int bad() { if (x { return 2; }\n"
        "int after() { return 3; }\n"
    )

    def test_no_raise_and_diagnostics(self):
        _tu, sink = recover_parse(self.SRC)
        assert sink.has_errors()
        assert "parse/bad-stmt" in sink.by_code()
        assert "parse/unclosed-brace" in sink.by_code()

    def test_preceding_function_survives_intact(self):
        tu, _ = recover_parse(self.SRC)
        names = [d.name for d in functions(tu)]
        assert names[0] == "good"
        assert "bad" in names

    def test_bad_statement_becomes_error_node(self):
        tu, _ = recover_parse(self.SRC)
        bad = [d for d in functions(tu) if d.name == "bad"][0]
        assert any(isinstance(s, ErrorStmt) for s in bad.body.stmts)

    def test_unclosed_at_eof_keeps_partial_body(self):
        tu, sink = recover_parse("int f() { int a = 1;\n")
        assert "parse/unclosed-brace" in sink.by_code()
        fns = functions(tu)
        assert fns and fns[0].body is not None and fns[0].body.stmts


class TestTruncatedTemplates:
    def test_truncated_template_header(self):
        tu, sink = recover_parse("template <typename T\nint ok() { return 0; }\n")
        assert sink.has_errors()
        assert any(isinstance(d, ErrorDecl) for d in tu.decls)
        # the sync stops at the type keyword, so 'ok' still parses
        assert "ok" in [d.name for d in functions(tu)]

    def test_truncated_template_argument_list(self):
        tu, sink = recover_parse(
            "std::vector<std::pair<int, x = 1;\nint ok() { return 0; }\n"
        )
        assert sink.has_errors()
        assert "ok" in [d.name for d in functions(tu)]


class TestStrayChevrons:
    def test_stray_triple_chevron_launch(self):
        # CUDA-ish <<<...>>> is not in the grammar; must degrade gracefully
        src = "int main() {\nkernel<<<>>>(a);\nreturn 0;\n}\n"
        tu, sink = recover_parse(src)
        assert sink.has_errors()
        fns = functions(tu)
        assert fns and fns[0].name == "main"
        assert any(isinstance(s, ErrorStmt) for s in fns[0].body.stmts)
        # the statement after the launch still parses
        assert len(fns[0].body.stmts) >= 2

    def test_chevron_soup_at_top_level(self):
        tu, sink = recover_parse(">>> <<< >>\nint f() { return 1; }\n")
        assert sink.has_errors()
        assert "f" in [d.name for d in functions(tu)]


class TestErrorNodeContract:
    def test_error_nodes_in_source_tree(self):
        tu, _ = recover_parse("int f() { <<<>>>; return 1; }\n")
        nodes = [n for n in ast_to_tree(tu).preorder() if n.kind == "error"]
        assert nodes
        for n in nodes:
            assert n.label == "error-node"

    def test_error_nodes_survive_sema(self):
        from repro.lang.cpp.sema import analyze

        tu, _ = recover_parse("int f() { <<<>>>; return 1; }\n")
        sem = analyze(tu)
        labels = {n.label for n in ast_to_tree(tu, sem).preorder()}
        assert "error-node" in labels
