"""CST construction and T_src normalisation."""

from repro.lang.cpp.cst import build_cst, cst_post, cst_pre, normalized_src_tree
from repro.lang.cpp.lexer import lex
from repro.lang.source import VirtualFS


def fs_with(text, **files):
    fs = VirtualFS()
    for p, t in files.items():
        fs.add(p.replace("__", "/"), t)
    fs.add("main.cpp", text)
    return fs


class TestBuildCst:
    def test_bracket_grouping(self):
        cst = build_cst(lex("int f(int a) { return a; }", "m"), "m")
        groups = [n.label for n in cst.preorder() if n.kind == "group"]
        assert "paren-group" in groups and "brace-group" in groups

    def test_nesting(self):
        cst = build_cst(lex("f(g(x));", "m"), "m")
        outer = cst.find_labels("paren-group")[0]
        assert outer.find_labels("paren-group")  # inner group nested

    def test_all_tokens_kept(self):
        text = "int x = 1; // comment"
        cst = build_cst(lex(text, "m"), "m")
        kinds = {n.kind for n in cst.preorder()}
        assert "trivia" in kinds and "punct" in kinds and "kw" in kinds

    def test_literal_classification(self):
        cst = build_cst(lex('x = 1 + 2.5 + "s";', "m"), "m")
        labels = [n.label for n in cst.preorder()]
        assert "int-lit" in labels and "float-lit" in labels and "str-lit" in labels

    def test_spans_recorded(self):
        cst = build_cst(lex("int a;\nint b;", "m"), "m")
        b = [n for n in cst.preorder() if n.label == "b"][0]
        assert b.span.line_start == 2


class TestNormalizedSrcTree:
    def test_trivia_and_punct_dropped(self):
        cst = build_cst(lex("int x = 1; // note", "m"), "m")
        t = normalized_src_tree(cst)
        kinds = {n.kind for n in t.preorder()}
        assert "trivia" not in kinds and "punct" not in kinds

    def test_keywords_and_idents_kept(self):
        cst = build_cst(lex("for (int i = 0; i < n; i++) {}", "m"), "m")
        t = normalized_src_tree(cst)
        labels = [n.label for n in t.preorder()]
        assert "for" in labels and "i" in labels

    def test_groups_preserve_nesting(self):
        cst = build_cst(lex("{ { x } }", "m"), "m")
        t = normalized_src_tree(cst)
        outer = t.find_labels("brace-group")[0]
        assert outer.find_labels("brace-group")

    def test_directive_words_survive(self):
        # "OpenMP pragmas are identified and retained even after ...
        # normalisation steps" (§III-C)
        cst = build_cst(lex("#pragma omp parallel for\nint x;", "m"), "m")
        t = normalized_src_tree(cst)
        labels = [n.label for n in t.preorder()]
        assert "directive:pragma" in labels
        assert "parallel" in labels and "omp" in labels


class TestPrePostVariants:
    def test_pre_shows_directives(self):
        fs = fs_with('#include "h.h"\nint x;', **{"h.h": "int hidden;"})
        pre = cst_pre(fs, "main.cpp")
        labels = [n.label for n in pre.preorder()]
        assert any(lab.startswith("directive:include") for lab in labels)
        assert "hidden" not in labels

    def test_post_shows_header_content(self):
        fs = fs_with('#include "h.h"\nint x;', **{"h.h": "int hidden;"})
        post = cst_post(fs, "main.cpp")
        labels = [n.label for n in post.preorder()]
        assert "hidden" in labels

    def test_post_expands_macros(self):
        fs = fs_with("#define N 64\nint a[N];")
        post = cst_post(fs, "main.cpp")
        lits = [n.attrs.get("text") for n in post.preorder() if n.kind == "lit"]
        assert "64" in lits
