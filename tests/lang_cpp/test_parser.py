"""MiniC++ parser tests."""

import pytest

from repro.lang.cpp.astnodes import (
    AssignExpr,
    BinaryExpr,
    CallExpr,
    CastExpr,
    ClassDecl,
    CompoundStmt,
    CondExpr,
    DeclStmt,
    DeleteExpr,
    DoStmt,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    IdentExpr,
    IfStmt,
    KernelLaunchExpr,
    LambdaExpr,
    LiteralExpr,
    MemberExpr,
    NamespaceDecl,
    NewExpr,
    PragmaStmt,
    ReturnStmt,
    SubscriptExpr,
    TranslationUnit,
    UnaryExpr,
    VarDecl,
    WhileStmt,
)
from repro.lang.cpp.lexer import lex, significant
from repro.lang.cpp.parser import parse_tokens
from repro.util.errors import ParseError


def parse(text) -> TranslationUnit:
    return parse_tokens(significant(lex(text, "t.cpp")), "t.cpp")


def parse_fn_body(body_text):
    tu = parse(f"void f() {{\n{body_text}\n}}")
    return tu.decls[0].body.stmts


class TestDeclarations:
    def test_function_with_params(self):
        tu = parse("double dot(const double* a, int n);")
        fn = tu.decls[0]
        assert isinstance(fn, FunctionDecl)
        assert fn.name == "dot"
        assert fn.ret.base_name == "double"
        assert fn.params[0].type.pointer == 1
        assert fn.params[0].type.is_const
        assert fn.body is None

    def test_function_definition(self):
        tu = parse("int f() { return 3; }")
        assert isinstance(tu.decls[0].body, CompoundStmt)

    def test_global_variable(self):
        tu = parse("int limit = 10;")
        v = tu.decls[0]
        assert isinstance(v, VarDecl)
        assert isinstance(v.init, LiteralExpr)

    def test_namespace(self):
        tu = parse("namespace sycl { class queue; }")
        ns = tu.decls[0]
        assert isinstance(ns, NamespaceDecl)
        assert isinstance(ns.decls[0], ClassDecl)

    def test_class_with_members(self):
        tu = parse(
            """
            class Vec {
             public:
              Vec(int n);
              double get(int i) const;
              int size_;
            };
            """
        )
        cls = tu.decls[0]
        assert cls.name == "Vec"
        assert [m.name for m in cls.methods] == ["Vec", "get"]
        assert cls.methods[0].is_ctor
        assert "const" in cls.methods[1].qualifiers
        assert cls.fields[0].name == "size_"

    def test_struct_with_base(self):
        tu = parse("struct D : public B { int x; };")
        assert tu.decls[0].bases[0].base_name == "B"

    def test_template_function(self):
        tu = parse("template <typename T> T square(T x) { return x * x; }")
        fn = tu.decls[0]
        assert fn.template_params[0].name == "T"

    def test_template_class_with_defaults(self):
        tu = parse("template <typename T, int D = 1> class buffer { };")
        cls = tu.decls[0]
        assert len(cls.template_params) == 2
        assert cls.template_params[1].kind == "nontype"

    def test_cuda_kernel_attrs(self):
        tu = parse("__global__ void k(double* a) { }")
        assert tu.decls[0].is_kernel

    def test_using_namespace(self):
        tu = parse("using namespace std;")
        assert "std" in tu.decls[0].text

    def test_using_alias(self):
        tu = parse("using real = double;")
        assert tu.decls[0].alias == "real"

    def test_typedef(self):
        tu = parse("typedef int myint;")
        assert tu.decls[0].name == "myint"

    def test_operator_call_method(self):
        tu = parse("class F { double operator()(int i) const; };")
        m = tu.decls[0].methods[0]
        assert m.is_operator and m.name == "operator()"

    def test_operator_subscript_method(self):
        tu = parse("class A { double operator[](int i) const; };")
        assert tu.decls[0].methods[0].name == "operator[]"

    def test_destructor(self):
        tu = parse("class R { ~R() { } };")
        assert tu.decls[0].methods[0].name == "~R"

    def test_ctor_init_list(self):
        tu = parse("class P { int x; P(int v) : x(v) { } };")
        ctor = tu.decls[0].methods[0]
        # member inits become leading statements of the body
        assert isinstance(ctor.body.stmts[0], ExprStmt)


class TestStatements:
    def test_decl_statement(self):
        (s,) = parse_fn_body("double sum = 0.0;")
        assert isinstance(s, DeclStmt)
        assert s.decls[0].name == "sum"

    def test_multi_declarator(self):
        (s,) = parse_fn_body("int a = 1, b = 2;")
        assert [v.name for v in s.decls] == ["a", "b"]

    def test_ctor_style_decl(self):
        (s,) = parse_fn_body("Widget w(1, 2);")
        assert s.decls[0].ctor_args is not None
        assert len(s.decls[0].ctor_args) == 2

    def test_array_decl(self):
        (s,) = parse_fn_body("double r[64];")
        v = s.decls[0]
        assert v.type.pointer == 1  # array declarator folds into pointer+size

    def test_if_else(self):
        (s,) = parse_fn_body("if (x > 0) { a = 1; } else { a = 2; }")
        assert isinstance(s, IfStmt)
        assert s.other is not None

    def test_for_loop(self):
        (s,) = parse_fn_body("for (int i = 0; i < n; i++) { work(); }")
        assert isinstance(s, ForStmt)
        assert isinstance(s.init, DeclStmt)

    def test_for_infinite(self):
        (s,) = parse_fn_body("for (;;) { break; }")
        assert s.cond is None and s.inc is None

    def test_while_and_do(self):
        s1, s2 = parse_fn_body("while (x) { y(); } do { z(); } while (w);")
        assert isinstance(s1, WhileStmt)
        assert isinstance(s2, DoStmt)

    def test_return_void(self):
        (s,) = parse_fn_body("return;")
        assert isinstance(s, ReturnStmt) and s.value is None

    def test_expression_vs_declaration_disambiguation(self):
        s1, s2 = parse_fn_body("a(i) = 1.0; int x = 2;")
        assert isinstance(s1, ExprStmt)
        assert isinstance(s2, DeclStmt)


class TestPragmas:
    def test_omp_parallel_for_attaches_loop(self):
        (s,) = parse_fn_body("#pragma omp parallel for\nfor (int i = 0; i < n; i++) { a[i] = 0; }")
        assert isinstance(s, PragmaStmt)
        assert s.directives == ["parallel", "for"]
        assert isinstance(s.body, ForStmt)

    def test_clause_arguments(self):
        (s,) = parse_fn_body("#pragma omp parallel for reduction(+:sum) schedule(static)\nfor (;;) {}")
        names = {c.name for c in s.clauses}
        assert "reduction" in names and "schedule" in names
        red = [c for c in s.clauses if c.name == "reduction"][0]
        assert red.arguments == ["+:sum"]

    def test_target_directives(self):
        (s,) = parse_fn_body(
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:N])\nfor (;;) {}"
        )
        assert s.directives == ["target", "teams", "distribute", "parallel", "for"]
        maps = [c for c in s.clauses if c.name == "map"]
        assert maps

    def test_standalone_barrier_has_no_body(self):
        s1, s2 = parse_fn_body("#pragma omp barrier\nx = 1;")
        assert isinstance(s1, PragmaStmt) and s1.body is None
        assert isinstance(s2, ExprStmt)

    def test_acc_family(self):
        (s,) = parse_fn_body("#pragma acc parallel loop\nfor (;;) {}")
        assert s.family == "acc"


class TestExpressions:
    def expr(self, text):
        (s,) = parse_fn_body(f"x = {text};")
        return s.expr.rhs

    def test_precedence(self):
        e = self.expr("1 + 2 * 3")
        assert isinstance(e, BinaryExpr) and e.op == "+"
        assert e.rhs.op == "*"

    def test_comparison_chain(self):
        e = self.expr("a < b && c >= d")
        assert e.op == "&&"

    def test_assignment_in_expr(self):
        (s,) = parse_fn_body("a = b = 3;")
        assert isinstance(s.expr.rhs, AssignExpr)

    def test_ternary(self):
        e = self.expr("c ? 1 : 2")
        assert isinstance(e, CondExpr)

    def test_call_with_args(self):
        e = self.expr("f(1, g(2), h)")
        assert isinstance(e, CallExpr)
        assert len(e.args) == 3

    def test_member_chain(self):
        e = self.expr("obj.inner.method(1)")
        assert isinstance(e, CallExpr)
        assert isinstance(e.callee, MemberExpr)

    def test_arrow(self):
        e = self.expr("p->x")
        assert isinstance(e, MemberExpr) and e.arrow

    def test_subscript(self):
        e = self.expr("a[i + 1]")
        assert isinstance(e, SubscriptExpr)

    def test_unary_ops(self):
        e = self.expr("-*p")
        assert isinstance(e, UnaryExpr) and e.op == "-"
        assert e.operand.op == "*"

    def test_postfix_increment(self):
        e = self.expr("i++")
        assert isinstance(e, UnaryExpr) and not e.prefix

    def test_new_array(self):
        e = self.expr("new double[N]")
        assert isinstance(e, NewExpr)
        assert e.array_size is not None

    def test_delete_array(self):
        (s,) = parse_fn_body("delete[] p;")
        assert isinstance(s.expr, DeleteExpr) and s.expr.is_array

    def test_c_cast(self):
        e = self.expr("(int)x")
        assert isinstance(e, CastExpr)

    def test_static_cast(self):
        e = self.expr("static_cast<double>(n)")
        assert isinstance(e, CastExpr) and e.kind == "static"

    def test_functional_cast(self):
        e = self.expr("double(n)")
        assert isinstance(e, CastExpr)

    def test_parenthesised_not_cast(self):
        e = self.expr("(a + b) * c")
        assert isinstance(e, BinaryExpr) and e.op == "*"

    def test_qualified_name(self):
        e = self.expr("std::execution::par_unseq")
        assert isinstance(e, IdentExpr)
        assert e.parts == ["std", "execution", "par_unseq"]

    def test_sizeof_type(self):
        e = self.expr("sizeof(double)")
        from repro.lang.cpp.astnodes import SizeofExpr

        assert isinstance(e, SizeofExpr) and e.type is not None


class TestTemplatesAndDialect:
    def test_explicit_template_call(self):
        tu = parse("void f() { g<double>(x); }")
        call = tu.decls[0].body.stmts[0].expr
        assert isinstance(call, CallExpr)
        assert len(call.template_args) == 1

    def test_template_vs_less_than(self):
        (s,) = parse_fn_body("b = a < c;")
        assert isinstance(s.expr.rhs, BinaryExpr)
        assert s.expr.rhs.op == "<"

    def test_kernel_name_template_arg(self):
        tu = parse("void f(Q& q) { q.parallel_for<class my_k>(r, l); }")
        call = tu.decls[0].body.stmts[0].expr
        assert isinstance(call, CallExpr)
        assert call.template_args

    def test_nested_template_args_with_shift_close(self):
        (s,) = parse_fn_body("A<B<int>> x;")
        assert isinstance(s, DeclStmt)
        assert s.decls[0].type.template_args

    def test_kernel_launch(self):
        tu = parse("void f() { k<<<grid, block>>>(a, b); }")
        e = tu.decls[0].body.stmts[0].expr
        assert isinstance(e, KernelLaunchExpr)
        assert len(e.config) == 2
        assert len(e.args) == 2

    def test_lambda_value_capture(self):
        e_stmt = parse_fn_body("auto f = [=](int i) { return i; };")[0]
        lam = e_stmt.decls[0].init
        assert isinstance(lam, LambdaExpr)
        assert lam.capture == "="
        assert lam.params[0].name == "i"

    def test_lambda_ref_capture(self):
        e_stmt = parse_fn_body("auto f = [&](sycl::handler& h) { };")[0]
        lam = e_stmt.decls[0].init
        assert lam.capture == "&"
        assert lam.params[0].type.is_ref

    def test_default_argument_recorded(self):
        tu = parse("int get(int dim = 0);")
        assert tu.decls[0].params[0].default is not None


class TestErrors:
    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse("void f() { if (x) {")

    def test_garbage_decl(self):
        with pytest.raises(ParseError):
            parse("$$$")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int x = 1")


class TestSpans:
    def test_function_span_covers_body(self):
        tu = parse("void f() {\n  int x = 1;\n  int y = 2;\n}")
        fn = tu.decls[0]
        assert fn.span.line_start == 1
        assert fn.span.line_end >= 4

    def test_stmt_spans_point_at_lines(self):
        # body starts on line 2 of the synthesised function
        stmts = parse_fn_body("int a = 1;\n  int b = 2;")
        assert stmts[0].span.line_start == 2
        assert stmts[1].span.line_start == 3


class TestEdgeCases:
    def test_deeply_nested_expressions(self):
        expr = "1" + " + 1" * 60
        (s,) = parse_fn_body(f"x = {expr};")
        assert isinstance(s, ExprStmt)

    def test_deeply_nested_blocks(self):
        body = "{" * 30 + "x = 1;" + "}" * 30
        stmts = parse_fn_body(body)
        assert stmts

    def test_empty_function(self):
        tu = parse("void f() {}")
        assert tu.decls[0].body.stmts == []

    def test_chained_subscript_member(self):
        (s,) = parse_fn_body("obj.field[i].inner = 1;")
        assert isinstance(s.expr, AssignExpr)

    def test_comma_operator(self):
        (s,) = parse_fn_body("for (i = 0, j = 9; i < j; i++, j--) { }")
        assert isinstance(s, ForStmt)

    def test_reserved_punct_cannot_be_variable(self):
        with pytest.raises(ParseError):
            parse("int + = 3;")

    def test_unary_chain(self):
        (s,) = parse_fn_body("x = - - + 5;")
        assert isinstance(s.expr.rhs, UnaryExpr)

    def test_nested_lambdas(self):
        (s,) = parse_fn_body("auto f = [=](int i) { auto g = [&](int j) { return j; }; return g(i); };")
        assert isinstance(s, DeclStmt)

    def test_pragma_before_closing_brace(self):
        # a pragma as the last statement of a block must not grab '}'
        stmts = parse_fn_body("x = 1;\n#pragma omp barrier")
        assert isinstance(stmts[-1], PragmaStmt)
        assert stmts[-1].body is None
