"""Property-based preprocessor/lexer invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang.cpp.lexer import lex, significant
from repro.lang.cpp.preprocessor import preprocess
from repro.lang.source import VirtualFS

_ident = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
_int = st.integers(min_value=0, max_value=9999)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(_ident, _int), min_size=1, max_size=8, unique_by=lambda t: t[0]))
def test_object_macros_fully_expand(defs):
    """Every defined macro disappears from the output; its value appears."""
    lines = [f"#define {name} {value}" for name, value in defs]
    uses = [f"int u{i} = {name};" for i, (name, _v) in enumerate(defs)]
    fs = VirtualFS().add("m.cpp", "\n".join(lines + uses) + "\n")
    result = preprocess(fs, "m.cpp")
    texts = [t.text for t in result.tokens]
    for name, value in defs:
        assert name not in texts
        assert str(value) in texts


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["int x;", "double y = 1.0;", "// note", "", "y = y + 1;"]), max_size=12))
def test_lexer_line_numbers_monotone(lines):
    toks = significant(lex("\n".join(lines), "m.cpp"))
    line_numbers = [t.line for t in toks]
    assert line_numbers == sorted(line_numbers)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["a", "b", "42", "1.5", "+", "(", ")", ";", "if"]), max_size=20))
def test_lexer_token_texts_reconstruct_source(parts):
    """Concatenating token texts (with spaces) re-lexes to the same stream."""
    src = " ".join(parts)
    toks1 = [(t.type, t.text) for t in significant(lex(src, "m"))]
    rebuilt = " ".join(t for _ty, t in toks1)
    toks2 = [(t.type, t.text) for t in significant(lex(rebuilt, "m"))]
    assert toks1 == toks2


@settings(max_examples=40, deadline=None)
@given(st.booleans(), st.booleans())
def test_conditionals_select_exactly_one_branch(a, b):
    src = (
        ("#define A 1\n" if a else "")
        + ("#define B 1\n" if b else "")
        + "#if defined(A) && defined(B)\nint both;\n"
        + "#elif defined(A)\nint only_a;\n"
        + "#elif defined(B)\nint only_b;\n"
        + "#else\nint neither;\n#endif\n"
    )
    fs = VirtualFS().add("m.cpp", src)
    texts = [t.text for t in preprocess(fs, "m.cpp").tokens]
    hits = [n for n in ("both", "only_a", "only_b", "neither") if n in texts]
    expected = "both" if (a and b) else "only_a" if a else "only_b" if b else "neither"
    assert hits == [expected]
