"""MiniC++ lexer tests."""

import pytest

from repro.lang.cpp.lexer import TokenType, lex, significant
from repro.util.errors import ParseError


def kinds(text):
    return [(t.type, t.text) for t in significant(lex(text))]


class TestBasicTokens:
    def test_keywords_vs_idents(self):
        toks = kinds("int foo")
        assert toks == [(TokenType.KEYWORD, "int"), (TokenType.IDENT, "foo")]

    def test_int_literals(self):
        assert kinds("42 0x1F 7u")[0] == (TokenType.INT, "42")
        assert kinds("0x1F")[0][0] == TokenType.INT

    def test_float_literals(self):
        for text in ("1.5", "0.4", "1e9", "2.5e-3", "1.0f"):
            assert kinds(text)[0][0] == TokenType.FLOAT, text

    def test_int_with_suffix_stays_int(self):
        assert kinds("42u")[0][0] == TokenType.INT

    def test_string_and_char(self):
        toks = kinds('"hello" \'c\'')
        assert toks[0][0] == TokenType.STRING
        assert toks[1][0] == TokenType.CHAR

    def test_string_with_escape(self):
        toks = kinds(r'"a\"b"')
        assert toks[0][1] == r'"a\"b"'

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            lex('"oops')


class TestOperators:
    def test_longest_match(self):
        assert [t for _, t in kinds("a<<<b>>>c")] == ["a", "<<<", "b", ">>>", "c"]

    def test_shift_vs_chevron(self):
        assert [t for _, t in kinds("a << b")] == ["a", "<<", "b"]

    def test_scope_and_arrow(self):
        assert [t for _, t in kinds("a::b->c")] == ["a", "::", "b", "->", "c"]

    def test_compound_assignment(self):
        assert [t for _, t in kinds("x += y")] == ["x", "+=", "y"]


class TestTrivia:
    def test_comments_are_trivia(self):
        toks = lex("a // line\n/* block */ b")
        sig = significant(toks)
        assert [t.text for t in sig] == ["a", "b"]
        assert any(t.type == TokenType.COMMENT for t in toks)

    def test_multiline_block_comment_tracks_lines(self):
        toks = lex("/* a\nb\nc */ x")
        x = significant(toks)[0]
        assert x.line == 3

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ParseError):
            lex("/* never ends")


class TestDirectives:
    def test_directive_token(self):
        toks = lex("#include <omp.h>\nint x;")
        assert toks[0].type == TokenType.DIRECTIVE
        assert "#include" in toks[0].text

    def test_hash_mid_line_not_directive(self):
        # only line-leading '#' starts a directive
        toks = significant(lex("a # b"))
        assert [t.text for t in toks] == ["a", "#", "b"]

    def test_continued_directive(self):
        toks = lex("#define M(a) \\\n  (a + 1)\nint y;")
        assert toks[0].type == TokenType.DIRECTIVE
        assert "(a + 1)" in toks[0].text

    def test_pragma_is_directive(self):
        toks = lex("#pragma omp parallel for\n")
        assert toks[0].type == TokenType.DIRECTIVE


class TestLocations:
    def test_line_and_col(self):
        toks = significant(lex("int a;\n  double b;"))
        b = [t for t in toks if t.text == "b"][0]
        assert b.line == 2
        assert b.col == 10

    def test_cuda_attr_is_keyword(self):
        assert kinds("__global__")[0][0] == TokenType.KEYWORD
