"""MiniC++ preprocessor tests."""

import pytest

from repro.lang.cpp.lexer import TokenType
from repro.lang.cpp.preprocessor import preprocess
from repro.lang.source import VirtualFS
from repro.util.errors import ParseError


def pp(main_text, files=None, defines=None):
    fs = VirtualFS()
    for path, text in (files or {}).items():
        fs.add(path, text)
    fs.add("main.cpp", main_text)
    return preprocess(fs, "main.cpp", defines)


def texts(result):
    return [t.text for t in result.tokens if t.type is not TokenType.DIRECTIVE]


class TestObjectMacros:
    def test_simple_expansion(self):
        r = pp("#define N 64\nint x = N;")
        assert "64" in texts(r) and "N" not in texts(r)

    def test_rescanning(self):
        r = pp("#define A B\n#define B 7\nint x = A;")
        assert "7" in texts(r)

    def test_self_reference_terminates(self):
        r = pp("#define X X\nint x = X;")
        assert "X" in texts(r)

    def test_undef(self):
        r = pp("#define N 1\n#undef N\nint x = N;")
        assert "N" in texts(r)

    def test_cmdline_defines(self):
        r = pp("int x = FROM_CLI;", defines={"FROM_CLI": "99"})
        assert "99" in texts(r)


class TestFunctionMacros:
    def test_args_substituted(self):
        r = pp("#define SQ(x) ((x) * (x))\nint y = SQ(3);")
        assert texts(r).count("3") == 2

    def test_multi_args(self):
        r = pp("#define ADD(a, b) (a + b)\nint y = ADD(1, 2);")
        t = texts(r)
        assert "1" in t and "2" in t and "+" in t

    def test_nested_call_args(self):
        r = pp("#define ID(x) x\nint y = ID(f(1, 2));")
        t = texts(r)
        assert "f" in t and "," in t

    def test_name_without_parens_not_expanded(self):
        r = pp("#define F(x) x\nint F;")
        assert "F" in texts(r)

    def test_wrong_arity_raises(self):
        with pytest.raises(ParseError):
            pp("#define TWO(a, b) a\nint x = TWO(1);")

    def test_object_macro_expanding_to_lambda_intro(self):
        # the KOKKOS_LAMBDA idiom
        r = pp("#define KOKKOS_LAMBDA [=]\nauto f = KOKKOS_LAMBDA(int i) { return i; };")
        t = texts(r)
        assert "[" in t and "=" in t and "]" in t


class TestConditionals:
    def test_ifdef_taken(self):
        r = pp("#define YES 1\n#ifdef YES\nint a;\n#endif\nint b;")
        assert "a" in texts(r)

    def test_ifdef_skipped(self):
        r = pp("#ifdef NO\nint a;\n#endif\nint b;")
        assert "a" not in texts(r) and "b" in texts(r)

    def test_ifndef(self):
        r = pp("#ifndef NO\nint a;\n#endif")
        assert "a" in texts(r)

    def test_else_branch(self):
        r = pp("#ifdef NO\nint a;\n#else\nint b;\n#endif")
        assert "a" not in texts(r) and "b" in texts(r)

    def test_elif(self):
        r = pp("#define V 2\n#if V == 1\nint a;\n#elif V == 2\nint b;\n#else\nint c;\n#endif")
        t = texts(r)
        assert "b" in t and "a" not in t and "c" not in t

    def test_nested_conditionals(self):
        r = pp("#define A 1\n#ifdef A\n#ifdef B\nint x;\n#endif\nint y;\n#endif")
        t = texts(r)
        assert "x" not in t and "y" in t

    def test_if_defined_expr(self):
        r = pp("#define A 1\n#if defined(A) && !defined(B)\nint yes;\n#endif")
        assert "yes" in texts(r)

    def test_if_arithmetic(self):
        r = pp("#if (2 + 3) * 2 == 10\nint yes;\n#endif")
        assert "yes" in texts(r)

    def test_unterminated_if_raises(self):
        with pytest.raises(ParseError):
            pp("#ifdef X\nint a;")

    def test_error_directive_in_dead_branch_ignored(self):
        r = pp("#ifdef NO\n#error boom\n#endif\nint ok;")
        assert "ok" in texts(r)

    def test_error_directive_raises(self):
        with pytest.raises(ParseError, match="boom"):
            pp("#error boom")

    def test_skipped_lines_recorded(self):
        r = pp("#ifdef NO\nint a;\nint b;\n#endif")
        assert len(r.skipped_lines) >= 2


class TestIncludes:
    def test_quoted_include(self):
        r = pp('#include "h.h"\nint y;', files={"h.h": "int from_header;"})
        assert "from_header" in texts(r)
        assert r.dependencies == ["h.h"]

    def test_angled_include_resolves_system(self):
        r = pp("#include <sys.h>\n", files={"<system>/sys.h": "int sys_decl;"})
        assert "sys_decl" in texts(r)

    def test_include_once(self):
        r = pp(
            '#include "h.h"\n#include "h.h"\n',
            files={"h.h": "int once;"},
        )
        assert texts(r).count("once") == 1

    def test_missing_include_raises(self):
        with pytest.raises(ParseError, match="include not found"):
            pp('#include "nope.h"\n')

    def test_nested_includes(self):
        r = pp(
            '#include "a.h"\n',
            files={"a.h": '#include "b.h"\nint a_decl;', "b.h": "int b_decl;"},
        )
        t = texts(r)
        assert "b_decl" in t and "a_decl" in t
        assert r.dependencies == ["a.h", "b.h"]

    def test_tokens_keep_original_file(self):
        r = pp('#include "h.h"\nint y;', files={"h.h": "int hx;"})
        hx = [t for t in r.tokens if t.text == "hx"][0]
        assert hx.file == "h.h"


class TestPragmaRetention:
    def test_omp_pragma_survives(self):
        r = pp("#pragma omp parallel for\nfor (;;) {}")
        directives = [t for t in r.tokens if t.type is TokenType.DIRECTIVE]
        assert len(directives) == 1
        assert "omp parallel for" in directives[0].text

    def test_acc_pragma_survives(self):
        r = pp("#pragma acc kernels\n{}")
        assert any(t.type is TokenType.DIRECTIVE for t in r.tokens)

    def test_other_pragma_dropped(self):
        r = pp("#pragma GCC optimize\nint x;")
        assert not any(t.type is TokenType.DIRECTIVE for t in r.tokens)

    def test_pragma_once_marks_included(self):
        r = pp(
            '#include "g.h"\n#include "g.h"\n',
            files={"g.h": "#pragma once\nint gg;"},
        )
        assert texts(r).count("gg") == 1
