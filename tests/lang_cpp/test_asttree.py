"""AST → T_sem conversion: labels, OMP implicit semantics, instantiations."""

from repro.lang.cpp.asttree import ast_to_tree
from repro.lang.cpp.parser import parse_unit
from repro.lang.cpp.sema import analyze
from repro.lang.source import VirtualFS


def sem_tree(main_text, **files):
    fs = VirtualFS()
    for p, t in files.items():
        fs.add(p.replace("__", "/"), t)
    fs.add("main.cpp", main_text)
    tu = parse_unit(fs, "main.cpp")
    return ast_to_tree(tu, analyze(tu))


class TestBasicShapes:
    def test_function_node(self):
        t = sem_tree("int f(int a) { return a; }")
        fns = t.find_all(lambda n: n.kind == "fn")
        assert fns and fns[0].label == "f"

    def test_control_flow_labels(self):
        t = sem_tree("void f() {\nfor (int i = 0; i < 3; i++) { if (i) { break; } }\n}")
        labels = {n.label for n in t.preorder()}
        assert {"for", "if", "break"} <= labels

    def test_operator_names_recorded(self):
        t = sem_tree("int f(int a, int b) { return a * b + 1; }")
        labels = {n.label for n in t.preorder()}
        assert "binop:*" in labels and "binop:+" in labels

    def test_literals_recorded(self):
        t = sem_tree("double x = 3.14;")
        assert t.find_labels("3.14")

    def test_spans_present(self):
        t = sem_tree("int f() { return 1; }")
        fn = t.find_all(lambda n: n.kind == "fn")[0]
        assert fn.span is not None and fn.span.file == "main.cpp"


class TestCudaDialect:
    def test_kernel_gets_kernel_kind_and_attr(self):
        t = sem_tree("__global__ void k(double* a) { }")
        k = t.find_all(lambda n: n.kind == "kernel")
        assert k
        assert k[0].find_labels("attr:__global__")

    def test_launch_node(self):
        t = sem_tree("__global__ void k() { }\nvoid f() {\nk<<<2, 64>>>();\n}")
        launches = t.find_labels("cuda-kernel-launch")
        assert launches
        assert launches[0].find_labels("launch-config")


class TestOmpSemantics:
    CODE = (
        "void f(double* a, int n) {\n"
        "double s = 0.0;\n"
        "#pragma omp parallel for reduction(+:s)\n"
        "for (int i = 0; i < n; i++) { s += a[i]; }\n"
        "}"
    )

    def test_directive_node_label(self):
        t = sem_tree(self.CODE)
        assert t.find_labels("omp-parallel-for")

    def test_implicit_semantic_nodes(self):
        # "unique AST tokens [that] possess semantic information above the
        # laws of the host language" (§V-C / conclusions)
        t = sem_tree(self.CODE)
        labels = {n.label for n in t.preorder()}
        assert "thread-team" in labels
        assert "implicit-barrier" in labels
        assert "iteration-space" in labels

    def test_reduction_clause_expansion(self):
        t = sem_tree(self.CODE)
        labels = [n.label for n in t.preorder()]
        assert "reduction-init" in labels and "reduction-combine" in labels

    def test_captured_stmt_wraps_body(self):
        t = sem_tree(self.CODE)
        cap = t.find_labels("captured-stmt")[0]
        assert cap.find_labels("for")

    def test_implicit_captures_per_variable(self):
        t = sem_tree(self.CODE)
        caps = t.find_labels("implicit-capture")
        names = {c.attrs.get("name") for c in caps}
        assert "s" in names and "a" in names

    def test_target_adds_device_nodes(self):
        code = (
            "void f(double* a, int n) {\n"
            "#pragma omp target teams distribute parallel for map(tofrom: a[0:n])\n"
            "for (int i = 0; i < n; i++) { a[i] = 0; }\n"
            "}"
        )
        t = sem_tree(code)
        labels = {n.label for n in t.preorder()}
        assert "device-data-environment" in labels
        assert "league-of-teams" in labels
        assert "mapper" in labels

    def test_tsem_exceeds_tsrc_for_omp(self):
        """The §V-C finding: directives carry more semantics than source."""
        from repro.lang.cpp.cst import build_cst, normalized_src_tree
        from repro.lang.cpp.lexer import lex

        t_sem = sem_tree(self.CODE)
        pragma_sem = t_sem.find_labels("omp-parallel-for")[0]
        cst = normalized_src_tree(build_cst(lex(self.CODE, "m"), "m"))
        pragma_src = [n for n in cst.preorder() if n.label.startswith("directive")][0]
        # the semantic subtree is strictly richer than the source tokens
        assert pragma_sem.size() > pragma_src.size()


class TestInstantiationNodes:
    HEADER = """
namespace sycl {
template <int D> class range { public: range(int n); int size() const; };
class queue {
 public:
  queue();
  template <typename K, typename R, typename F> void parallel_for(R r, F f);
};
}
"""

    def test_instantiation_node_attached_to_call(self):
        t = sem_tree(
            '#include <s.h>\nvoid f() { sycl::queue q; q.parallel_for(1, 2); }',
            **{"<system>__s.h": self.HEADER},
        )
        assert t.find_labels("template-instantiation")

    def test_instantiation_spans_at_use_site(self):
        # must survive system-header masking: spans are the call site's
        t = sem_tree(
            '#include <s.h>\nvoid f() { sycl::queue q; q.parallel_for(1, 2); }',
            **{"<system>__s.h": self.HEADER},
        )
        for inst in t.find_labels("template-instantiation"):
            for n in inst.preorder():
                assert n.span is None or n.span.file == "main.cpp"

    def test_ctor_expression_instantiation(self):
        t = sem_tree(
            '#include <s.h>\nvoid f() { int n = sycl::range<1>(8).size(); }',
            **{"<system>__s.h": self.HEADER},
        )
        assert t.find_labels("template-instantiation")

    def test_lambda_node(self):
        t = sem_tree("void f() { auto g = [=](int i) { return i; }; }")
        lam = t.find_labels("lambda")
        assert lam
        assert lam[0].find_labels("capture:=")
