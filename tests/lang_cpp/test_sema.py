"""Semantic analysis: resolution, instantiation, type inference."""

from repro.lang.cpp.parser import parse_unit
from repro.lang.cpp.sema import analyze
from repro.lang.source import VirtualFS


def analyzed(main_text, **files):
    fs = VirtualFS()
    for p, t in files.items():
        fs.add(p.replace("__", "/"), t)
    fs.add("main.cpp", main_text)
    tu = parse_unit(fs, "main.cpp")
    return tu, analyze(tu)


SYCL_MINI = """
namespace sycl {
template <int D> class range { public: range(int n); };
class queue {
 public:
  queue();
  template <typename K, typename R, typename F> void parallel_for(R r, F f);
};
template <typename T> T* malloc_shared(int n, queue& q);
}
"""


class TestCollection:
    def test_functions_collected(self):
        _, sema = analyzed("int f(); int g() { return 1; }")
        assert "f" in sema.functions and "g" in sema.functions

    def test_definition_wins_over_declaration(self):
        _, sema = analyzed("int f();\nint f() { return 2; }")
        assert sema.functions["f"].body is not None

    def test_namespaced_names_qualified(self):
        _, sema = analyzed("namespace a { namespace b { void f(); } }")
        assert "a::b::f" in sema.functions

    def test_classes_collected(self):
        _, sema = analyzed("namespace sycl { class queue; }")
        assert "sycl::queue" in sema.classes


class TestCallResolution:
    def test_direct_call_resolved(self):
        _, sema = analyzed("void h() {}\nvoid g() { h(); }")
        assert ("g", "h") in sema.calls

    def test_qualified_call_resolved(self):
        _, sema = analyzed("namespace ns { void f() {} }\nvoid g() { ns::f(); }")
        assert ("g", "ns::f") in sema.calls

    def test_method_call_resolved_through_var_type(self):
        _, sema = analyzed(
            SYCL_MINI + "void g() { sycl::queue q; q.parallel_for(1, 2); }"
        )
        assert ("g", "sycl::queue::parallel_for") in sema.calls

    def test_system_flag_set(self):
        _, sema = analyzed(
            '#include <sys.h>\nvoid g() { sysfn(); }',
            **{"<system>__sys.h": "void sysfn();"},
        )
        resolved = list(sema.resolved.values())
        assert any(q == "sysfn" and is_sys for q, _d, is_sys in resolved)


class TestInstantiations:
    def test_template_function_call_instantiates(self):
        _, sema = analyzed(
            SYCL_MINI + "void g() { sycl::queue q; double* p = sycl::malloc_shared<double>(8, q); }"
        )
        names = [i.callee for i in sema.instantiations]
        assert "sycl::malloc_shared" in names
        inst = [i for i in sema.instantiations if i.callee == "sycl::malloc_shared"][0]
        assert inst.template_args == ["double"]

    def test_templated_method_call_instantiates(self):
        _, sema = analyzed(
            SYCL_MINI + "void g() { sycl::queue q; q.parallel_for(3, 4); }"
        )
        assert any(i.callee.endswith("parallel_for") for i in sema.instantiations)

    def test_ctor_expression_instantiates(self):
        # sycl::range<1>(n) — a materialised templated temporary
        _, sema = analyzed(
            '#include <sycl_mini.h>\nvoid g() { int n = 4; sycl::range<1> r = sycl::range<1>(n); }',
            **{"<system>__sycl_mini.h": SYCL_MINI},
        )
        assert any(i.callee == "sycl::range" for i in sema.instantiations)

    def test_instantiation_site_is_user_file(self):
        _, sema = analyzed(
            '#include <sycl_mini.h>\nvoid g() { sycl::queue q; q.parallel_for(1, 2); }',
            **{"<system>__sycl_mini.h": SYCL_MINI},
        )
        inst = [i for i in sema.instantiations if i.callee.endswith("parallel_for")][0]
        assert inst.site_file == "main.cpp"

    def test_non_template_call_does_not_instantiate(self):
        _, sema = analyzed("void h() {}\nvoid g() { h(); }")
        assert not sema.instantiations


class TestTypeInference:
    def test_param_type_used_for_method_resolution(self):
        _, sema = analyzed(
            SYCL_MINI + "void g(sycl::queue& q) { q.parallel_for(1, 2); }"
        )
        assert any(c[1].endswith("parallel_for") for c in sema.calls)

    def test_function_bodies_helper(self):
        _, sema = analyzed("int f();\nint g() { return 0; }")
        bodies = sema.function_bodies()
        assert "g" in bodies and "f" not in bodies
