"""Clustering (vs SciPy cross-check), dendrograms, heatmaps, tables."""

import numpy as np
import pytest
from scipy.cluster import hierarchy
from scipy.spatial.distance import squareform

from repro.analysis import (
    agglomerative,
    cluster_models,
    cophenetic_matrix,
    cut_clusters,
    euclidean_rows,
    render_table,
)
from repro.analysis.heatmap import HeatmapData, divergence_heatmap
from repro.workflow.comparer import MetricSpec


def toy_distance_matrix():
    # two tight pairs far apart: (a,b) and (c,d)
    labels = ["a", "b", "c", "d"]
    d = np.array(
        [
            [0.0, 1.0, 9.0, 9.5],
            [1.0, 0.0, 9.2, 9.8],
            [9.0, 9.2, 0.0, 0.8],
            [9.5, 9.8, 0.8, 0.0],
        ]
    )
    return d, labels


class TestAgglomerative:
    def test_pairs_merge_first(self):
        d, labels = toy_distance_matrix()
        dend = agglomerative(d, labels)
        clusters = cut_clusters(dend, 2.0)
        assert {"a", "b"} in clusters and {"c", "d"} in clusters

    def test_linkage_row_shape(self):
        d, labels = toy_distance_matrix()
        dend = agglomerative(d, labels)
        assert dend.linkage.shape == (3, 4)
        # heights non-decreasing for complete linkage on a metric
        heights = dend.merge_heights()
        assert heights == sorted(heights)

    def test_matches_scipy_complete_linkage(self):
        rng = np.random.default_rng(7)
        for _ in range(5):
            pts = rng.random((6, 3))
            d = np.sqrt(((pts[:, None] - pts[None]) ** 2).sum(-1))
            ours = agglomerative(d, [str(i) for i in range(6)], "complete")
            theirs = hierarchy.linkage(squareform(d, checks=False), method="complete")
            assert np.allclose(sorted(ours.merge_heights()), sorted(theirs[:, 2]))

    def test_matches_scipy_single_linkage(self):
        rng = np.random.default_rng(3)
        pts = rng.random((7, 2))
        d = np.sqrt(((pts[:, None] - pts[None]) ** 2).sum(-1))
        ours = agglomerative(d, [str(i) for i in range(7)], "single")
        theirs = hierarchy.linkage(squareform(d, checks=False), method="single")
        assert np.allclose(sorted(ours.merge_heights()), sorted(theirs[:, 2]))

    def test_average_linkage_supported(self):
        d, labels = toy_distance_matrix()
        dend = agglomerative(d, labels, "average")
        assert len(dend.linkage) == 3

    def test_unknown_linkage_rejected(self):
        d, labels = toy_distance_matrix()
        with pytest.raises(ValueError):
            agglomerative(d, labels, "ward")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            agglomerative(np.zeros((2, 2)), ["a", "b", "c"])


class TestDendrogram:
    def test_newick_contains_all_leaves(self):
        d, labels = toy_distance_matrix()
        text = agglomerative(d, labels).newick()
        for lab in labels:
            assert lab in text
        assert text.endswith(";")

    def test_leaf_order_is_permutation(self):
        d, labels = toy_distance_matrix()
        order = agglomerative(d, labels).leaf_order()
        assert sorted(order) == sorted(labels)

    def test_leaf_order_groups_clusters(self):
        d, labels = toy_distance_matrix()
        order = agglomerative(d, labels).leaf_order()
        ia, ib = order.index("a"), order.index("b")
        assert abs(ia - ib) == 1  # tight pair adjacent

    def test_cophenetic_symmetry_and_zero_diag(self):
        d, labels = toy_distance_matrix()
        coph = cophenetic_matrix(agglomerative(d, labels))
        assert np.allclose(coph, coph.T)
        assert np.allclose(np.diag(coph), 0.0)

    def test_cophenetic_reflects_merge_heights(self):
        d, labels = toy_distance_matrix()
        dend = agglomerative(d, labels)
        coph = cophenetic_matrix(dend)
        assert coph[0, 1] < coph[0, 2]  # a-b merge earlier than a-c


class TestEuclideanRows:
    def test_matches_manual(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        d = euclidean_rows(m)
        assert d[0, 1] == pytest.approx(np.sqrt(2))

    def test_cluster_models_end_to_end(self):
        m = np.array(
            [
                [0.0, 0.1, 0.9, 0.9],
                [0.1, 0.0, 0.9, 0.9],
                [0.9, 0.9, 0.0, 0.1],
                [0.9, 0.9, 0.1, 0.0],
            ]
        )
        dend = cluster_models(m, ["s", "omp", "cuda", "hip"])
        clusters = cut_clusters(dend, dend.merge_heights()[1])
        assert {"s", "omp"} in clusters
        assert {"cuda", "hip"} in clusters


class TestHeatmap:
    def test_divergence_heatmap_values(self, stream_serial, stream_omp):
        data = divergence_heatmap(stream_serial, [stream_serial, stream_omp], [MetricSpec("Tsem")])
        assert data.cell("Tsem", "serial") == 0.0
        assert data.cell("Tsem", "omp") > 0.0

    def test_csv_export(self):
        data = HeatmapData(["r1"], ["c1", "c2"], np.array([[0.1, 0.2]]))
        csv = data.to_csv()
        assert "metric,c1,c2" in csv and "0.1000" in csv

    def test_row_accessor(self):
        data = HeatmapData(["r1"], ["c1"], np.array([[0.5]]))
        assert data.row("r1") == {"c1": 0.5}


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["name", "v"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(row) == len(lines[0]) for row in lines[1:])
