"""Φ metric, performance model, cascade plots, navigation charts."""

import pytest

from repro.perfport import (
    PLATFORMS,
    PerfModel,
    cascade,
    navigation_chart,
    phi,
    platform_by_abbr,
)
from repro.perfport.pp_metric import phi_subset


class TestPhi:
    def test_harmonic_mean(self):
        assert phi([0.5, 1.0]) == pytest.approx(2 / (1 / 0.5 + 1 / 1.0))

    def test_zero_if_any_unsupported(self):
        # "Φ of zero" for models not portable to the whole set
        assert phi([0.9, 0.0, 0.8]) == 0.0

    def test_empty_is_zero(self):
        assert phi([]) == 0.0

    def test_single_platform(self):
        assert phi([0.7]) == pytest.approx(0.7)

    def test_phi_between_min_and_arithmetic_mean(self):
        effs = [0.9, 0.5, 0.7]
        assert min(effs) <= phi(effs) <= sum(effs) / len(effs)


class TestPlatforms:
    def test_table3_platforms_present(self):
        abbrs = {p.abbr for p in PLATFORMS}
        assert abbrs == {"SPR", "Milan", "G3e", "H100", "MI250X", "PVC"}

    def test_lookup(self):
        p = platform_by_abbr("H100")
        assert p.vendor == "NVIDIA" and p.kind == "gpu"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            platform_by_abbr("A64FX")


class TestPerfModel:
    def setup_method(self):
        self.pm = PerfModel()
        self.models = ["serial", "omp", "omp-target", "cuda", "hip", "sycl-acc", "kokkos"]

    def test_deterministic(self):
        a = self.pm.efficiency_matrix("tealeaf", self.models)
        b = PerfModel().efficiency_matrix("tealeaf", self.models)
        assert (a.eff == b.eff).all()

    def test_cuda_only_on_nvidia(self):
        m = self.pm.efficiency_matrix("tealeaf", self.models)
        assert m.efficiency("cuda", "H100") > 0
        assert m.efficiency("cuda", "MI250X") == 0.0
        assert m.efficiency("cuda", "SPR") == 0.0

    def test_host_omp_no_gpus(self):
        m = self.pm.efficiency_matrix("tealeaf", self.models)
        assert m.efficiency("omp", "SPR") > 0
        assert m.efficiency("omp", "H100") == 0.0

    def test_portable_models_everywhere(self):
        m = self.pm.efficiency_matrix("tealeaf", self.models)
        for plat in m.platforms:
            assert m.efficiency("kokkos", plat) > 0
            assert m.efficiency("omp-target", plat) > 0

    def test_efficiency_normalised(self):
        m = self.pm.efficiency_matrix("tealeaf", self.models)
        assert (m.eff <= 1.0 + 1e-12).all()
        # the best model on each supported platform has efficiency 1
        assert (m.eff.max(axis=0) == pytest.approx(1.0, abs=1e-12))

    def test_serial_is_slow(self):
        m = self.pm.efficiency_matrix("tealeaf", self.models)
        assert m.efficiency("serial", "SPR") < 0.1

    def test_openacc_cpu_qoi_issue(self):
        # §V-B: single-threaded OpenACC on CPU via GCC
        m = self.pm.efficiency_matrix(
            "babelstream-fortran", ["sequential", "omp", "openacc"]
        )
        assert m.efficiency("openacc", "SPR") < 0.1
        assert m.efficiency("omp", "SPR") > 0.5

    def test_roofline_memory_bound_app(self):
        h100 = platform_by_abbr("H100")
        # tealeaf is BW-bound: attainable ≪ peak flops
        assert self.pm.roofline("tealeaf", h100) < h100.flops / 10

    def test_csv_export(self):
        m = self.pm.efficiency_matrix("tealeaf", ["omp", "cuda"])
        assert m.to_csv().startswith("model,")


class TestCascade:
    def test_series_sorted_descending(self):
        m = PerfModel().efficiency_matrix("tealeaf", ["kokkos", "cuda"])
        data = cascade(m)
        for s in data.series:
            assert s.efficiencies == sorted(s.efficiencies, reverse=True)

    def test_phi_collapses_at_unsupported(self):
        m = PerfModel().efficiency_matrix("tealeaf", ["cuda", "kokkos"])
        data = cascade(m)
        cuda = data.by_model("cuda")
        assert cuda.phis[0] > 0  # best platform first
        assert cuda.final_phi == 0.0  # dies once unsupported platforms enter

    def test_portable_model_keeps_phi(self):
        m = PerfModel().efficiency_matrix("tealeaf", ["kokkos", "cuda"])
        assert cascade(m).by_model("kokkos").final_phi > 0.5

    def test_phi_monotone_nonincreasing_along_cascade(self):
        m = PerfModel().efficiency_matrix("cloverleaf", ["kokkos", "omp-target", "sycl-usm"])
        for s in cascade(m).series:
            for a, b in zip(s.phis, s.phis[1:]):
                assert b <= a + 1e-12

    def test_csv(self):
        m = PerfModel().efficiency_matrix("tealeaf", ["kokkos"])
        assert "model,position,platform" in cascade(m).to_csv()


class TestNavigation:
    def test_chart_assembly(self):
        chart = navigation_chart(
            "tealeaf",
            phis={"omp-target": 0.8, "cuda": 0.0},
            tsem={"omp-target": 0.2, "cuda": 0.5},
            tsrc={"omp-target": 0.05, "cuda": 0.55},
        )
        p = chart.by_model("omp-target")
        assert p.phi == 0.8 and p.tsrc == 0.05

    def test_zero_phi_models_still_plotted(self):
        # "Models that are not portable ... are still plotted"
        chart = navigation_chart("t", {"cuda": 0.0}, {"cuda": 0.4}, {"cuda": 0.5})
        assert chart.by_model("cuda").phi == 0.0

    def test_ranking_prefers_top_right(self):
        chart = navigation_chart(
            "t",
            phis={"good": 0.9, "bad": 0.1},
            tsem={"good": 0.1, "bad": 0.8},
            tsrc={"good": 0.1, "bad": 0.8},
        )
        assert chart.ranked()[0].model == "good"

    def test_perceived_bloat_sign(self):
        # SYCL-accessor style: source looks worse than the semantics are
        chart = navigation_chart("t", {"sycl-acc": 0.8}, {"sycl-acc": 0.4}, {"sycl-acc": 0.7})
        assert chart.by_model("sycl-acc").perceived_bloat > 0

    def test_phi_subset_for_migration_story(self):
        # Fig. 15: CUDA has Φ=1 on an NVIDIA-only platform set, 0 once AMD
        # enters the set
        m = PerfModel().efficiency_matrix("tealeaf", ["cuda", "hip", "omp-target"])
        nvidia_only = phi_subset(m, ["H100"])
        both = phi_subset(m, ["H100", "MI250X"])
        assert nvidia_only["cuda"] == pytest.approx(1.0, abs=0.2)
        assert both["cuda"] == 0.0
        assert both["omp-target"] > 0
