"""Shared fixtures.

Corpus indexing is expensive (frontends + interpreter runs), so indexed
codebases are session-scoped and cached through the corpus registry.
"""

from __future__ import annotations

import pytest

from repro.corpus import index_model


@pytest.fixture(scope="session")
def stream_serial():
    return index_model("babelstream", "serial", coverage=True)


@pytest.fixture(scope="session")
def stream_omp():
    return index_model("babelstream", "omp", coverage=True)


@pytest.fixture(scope="session")
def stream_cuda():
    return index_model("babelstream", "cuda", coverage=True)


@pytest.fixture(scope="session")
def stream_sycl_usm():
    return index_model("babelstream", "sycl-usm", coverage=True)


@pytest.fixture(scope="session")
def stream_kokkos():
    return index_model("babelstream", "kokkos", coverage=True)


@pytest.fixture(scope="session")
def fortran_sequential():
    return index_model("babelstream-fortran", "sequential", coverage=True)


@pytest.fixture(scope="session")
def fortran_omp():
    return index_model("babelstream-fortran", "omp", coverage=True)


@pytest.fixture(scope="session")
def fortran_openacc():
    return index_model("babelstream-fortran", "openacc", coverage=True)
