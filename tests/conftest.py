"""Shared fixtures.

Corpus indexing is expensive (frontends + interpreter runs), so indexed
codebases are session-scoped and cached through the corpus registry.
"""

from __future__ import annotations

import os

import pytest

from repro.corpus import index_model


@pytest.fixture(scope="session", autouse=True)
def _artifact_root_env(tmp_path_factory):
    """Point the CLI's artifact root at a session tmp dir.

    Indexing subcommands default to a ``.silvervale-cache`` directory in the
    cwd; a session-scoped override keeps test runs from polluting the
    working tree and from warm-starting off a previous session's artifacts.
    Tests that pin the resolution order still monkeypatch per-test.
    """
    prev = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("artifact-root"))
    yield
    if prev is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = prev


@pytest.fixture(scope="session")
def stream_serial():
    return index_model("babelstream", "serial", coverage=True)


@pytest.fixture(scope="session")
def stream_omp():
    return index_model("babelstream", "omp", coverage=True)


@pytest.fixture(scope="session")
def stream_cuda():
    return index_model("babelstream", "cuda", coverage=True)


@pytest.fixture(scope="session")
def stream_sycl_usm():
    return index_model("babelstream", "sycl-usm", coverage=True)


@pytest.fixture(scope="session")
def stream_kokkos():
    return index_model("babelstream", "kokkos", coverage=True)


@pytest.fixture(scope="session")
def fortran_sequential():
    return index_model("babelstream-fortran", "sequential", coverage=True)


@pytest.fixture(scope="session")
def fortran_omp():
    return index_model("babelstream-fortran", "omp", coverage=True)


@pytest.fixture(scope="session")
def fortran_openacc():
    return index_model("babelstream-fortran", "openacc", coverage=True)
