"""Checkpoint store: roundtrip, atomicity, and the invalidation contract."""

import pytest

from repro import obs
from repro.ckpt import SCHEMA, CheckpointStore, resolve_checkpoint_dir, run_key_for
from repro.serde.container import read_blob, write_blob


KEYS = ["pair:Tsem:aaaa:bbbb", "pair:Tsem:aaaa:cccc", "pair:Tsem:bbbb:cccc"]


class TestRunKey:
    def test_deterministic(self):
        assert run_key_for(KEYS) == run_key_for(list(KEYS))

    def test_sensitive_to_order_content_and_keyspec(self):
        base = run_key_for(KEYS)
        assert run_key_for(list(reversed(KEYS))) != base
        assert run_key_for(KEYS[:-1]) != base
        assert run_key_for(KEYS, keyspec="div:other/v9") != base


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        store = CheckpointStore(tmp_path)
        rk = run_key_for(KEYS)
        entries = {KEYS[0]: 0.25, KEYS[1]: [0.5, 0.75]}
        path = store.save(rk, entries)
        assert path.exists()
        assert store.load(rk) == entries
        assert store.run_keys() == [rk]

    def test_missing_is_empty_not_invalid(self, tmp_path):
        with obs.collect() as col:
            assert CheckpointStore(tmp_path).load("deadbeef") == {}
        assert "ckpt.invalid" not in col.counters

    def test_discard_and_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("aaaa", {"k": 1.0})
        store.save("bbbb", {"k": 2.0})
        store.discard("aaaa")
        assert store.run_keys() == ["bbbb"]
        assert store.clear() == 1
        assert store.run_keys() == []

    def test_save_counts(self, tmp_path):
        with obs.collect() as col:
            CheckpointStore(tmp_path).save("aaaa", {"k": 1.0})
        assert col.counters["ckpt.saved"] == 1

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("aaaa", {"k": 1.0})
        assert not list(tmp_path.glob("*.tmp")) and not list(tmp_path.glob(".*"))


class TestInvalidation:
    def _store_with_payload(self, tmp_path, payload):
        store = CheckpointStore(tmp_path)
        write_blob(store.path_for("aaaa"), payload)
        return store

    @pytest.mark.parametrize(
        "mutation",
        [
            {"schema": "repro.ckpt/v0"},  # stale schema
            {"keyspec": "div:other/v9"},  # foreign keyspec
            {"run": "bbbb"},  # renamed/copied file
            {"entries": [1, 2]},  # malformed entries
        ],
    )
    def test_mismatch_counts_invalid_and_reads_empty(self, tmp_path, mutation):
        payload = {
            "schema": SCHEMA,
            "keyspec": CheckpointStore(tmp_path).keyspec,
            "run": "aaaa",
            "entries": {"k": 1.0},
        }
        payload.update(mutation)
        store = self._store_with_payload(tmp_path, payload)
        with obs.collect() as col:
            assert store.load("aaaa") == {}
        assert col.counters["ckpt.invalid"] == 1

    def test_corrupt_file_reads_empty(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path_for("aaaa").write_bytes(b"not a container at all")
        with obs.collect() as col:
            assert store.load("aaaa") == {}
        assert col.counters["ckpt.invalid"] == 1

    def test_valid_file_survives_roundtrip_reader(self, tmp_path):
        # the raw container stays readable by the generic serde layer, so
        # tooling can inspect checkpoints without this class
        store = CheckpointStore(tmp_path)
        store.save("aaaa", {"k": 0.5})
        payload = read_blob(store.path_for("aaaa"))
        assert payload["schema"] == SCHEMA and payload["entries"] == {"k": 0.5}


class TestResolveDir:
    def test_explicit_beats_env(self):
        assert resolve_checkpoint_dir("cli-dir", "env-dir", resume=True) == "cli-dir"

    def test_env_beats_default(self):
        assert resolve_checkpoint_dir(None, "env-dir", resume=False) == "env-dir"

    def test_bare_resume_gets_conventional_dir(self):
        assert resolve_checkpoint_dir(None, None, resume=True) == ".silvervale-ckpt"

    def test_nothing_means_no_checkpointing(self):
        assert resolve_checkpoint_dir(None, None, resume=False) is None
