"""ChunkedPool behaviour independent of the distance engine.

The engine suite covers checkpoint/cache integration and the chaos
harness covers worker deaths/hangs; these tests pin the reusable pool
contract: ordering, counter prefixes, degrade-vs-strict failure handling
and argument validation.
"""

import pytest

from repro import diag, obs
from repro.parallel import ChunkedPool, PoolResult
from repro.util.errors import ReproError


def _square(x):
    return x * x


def _count_and_square(x):
    obs.add("pooltest.calls")
    return x * x


def _explode_on_three(x):
    if x == 3:
        raise ValueError("task three always fails")
    return x * x


def _prepare_count(tasks):
    obs.add("pooltest.prepare_tasks", len(tasks))


def _prepare_boom(tasks):
    raise RuntimeError("warm-up exploded")


class TestSerial:
    def test_empty_tasks(self):
        res = ChunkedPool().run(_square, [])
        assert isinstance(res, PoolResult)
        assert res.values == [] and res.degraded == [] and res.parallel is False

    def test_preserves_order_and_reports_serial(self):
        res = ChunkedPool(jobs=1).run(_square, [3, 1, 2])
        assert res.values == [9, 1, 4]
        assert res.parallel is False

    def test_on_result_called_in_order(self):
        seen = []
        ChunkedPool().run(_square, [1, 2, 3], on_result=lambda i, v: seen.append((i, v)))
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_custom_prefix_gauges_workers(self):
        with obs.collect() as col:
            ChunkedPool(counter_prefix="myindex").run(_square, [1, 2])
        assert col.gauges["myindex.workers"] == 1
        assert "myindex.chunks" not in col.counters


class TestParallel:
    def test_matches_serial(self):
        tasks = list(range(23))
        serial = ChunkedPool(jobs=1).run(_square, tasks).values
        parallel = ChunkedPool(jobs=2, chunk_size=3).run(_square, tasks).values
        assert parallel == serial

    def test_prefix_applies_to_all_counters(self):
        with obs.collect() as col:
            res = ChunkedPool(jobs=2, chunk_size=2, counter_prefix="myindex").run(
                _square, list(range(10))
            )
        assert res.parallel is True
        assert col.counters["myindex.chunks"] == 5
        assert col.gauges["myindex.workers"] == 2

    def test_worker_counters_merge_into_parent(self):
        with obs.collect() as col:
            ChunkedPool(jobs=2, chunk_size=2).run(_count_and_square, list(range(8)))
        assert col.counters["pooltest.calls"] == 8

    def test_on_result_covers_every_index(self):
        seen = {}
        ChunkedPool(jobs=2, chunk_size=1).run(
            _square, [1, 2, 3, 4], on_result=lambda i, v: seen.setdefault(i, v)
        )
        assert seen == {0: 1, 1: 4, 2: 9, 3: 16}


class TestFailureHandling:
    def test_degrades_to_fail_value_with_custom_code(self):
        pool = ChunkedPool(
            jobs=2,
            chunk_size=1,
            retries=1,
            backoff_s=0.0,
            counter_prefix="myindex",
            label="my chunk",
            fail_code="mytest/chunk-failed",
        )
        with diag.capture() as sink, obs.collect() as col:
            res = pool.run(_explode_on_three, [1, 2, 3, 4], fail_value=-1.0)
        assert res.values == [1, 4, -1.0, 16]
        assert res.degraded == [2]
        assert sink.by_code().get("mytest/chunk-failed") == 1
        assert col.counters["myindex.retries"] >= 1
        assert col.counters["myindex.chunks_failed"] == 1

    def test_strict_raises_with_label(self):
        pool = ChunkedPool(
            jobs=2, chunk_size=1, retries=0, backoff_s=0.0, strict=True, label="my chunk"
        )
        with pytest.raises(ReproError, match="my chunk"):
            pool.run(_explode_on_three, [1, 2, 3, 4])


class TestValidation:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            ChunkedPool(jobs=0)
        with pytest.raises(ValueError, match="chunk_size must be >= 1"):
            ChunkedPool(chunk_size=0)
        with pytest.raises(ValueError, match="chunk_timeout must be > 0"):
            ChunkedPool(chunk_timeout=0.0)
        with pytest.raises(ValueError, match="wave_timeout must be > 0"):
            ChunkedPool(wave_timeout=0.0)
        with pytest.raises(ValueError, match="retries must be >= 0"):
            ChunkedPool(retries=-1)


def _sleepy(x):
    import time as _time

    _time.sleep(x)
    return x


class TestWaveTimeout:
    """Whole-wave wall-clock budget: unfinished chunks degrade at once so
    the calling thread (the serve daemon's engine thread) gets its result
    list back on a bounded schedule."""

    def test_expired_wave_degrades_remaining_chunks(self):
        pool = ChunkedPool(
            jobs=2,
            chunk_size=1,
            wave_timeout=0.5,
            retries=0,
            counter_prefix="myengine",
            fail_code="mytest/chunk-failed",
        )
        with diag.capture() as sink, obs.collect() as col:
            res = pool.run(_sleepy, [0.0, 0.0, 30.0, 30.0], fail_value=-1.0)
        # the fast tasks finished; the sleepers degraded when the wave expired
        assert res.values[0] == 0.0 and res.values[1] == 0.0
        assert res.values[2] == -1.0 and res.values[3] == -1.0
        assert sorted(res.degraded) == [2, 3]
        assert col.counters["myengine.wave_timeouts"] == 1
        assert col.counters["myengine.chunks_failed"] == 2
        assert sink.by_code().get("mytest/chunk-failed") == 2

    def test_strict_wave_timeout_raises(self):
        pool = ChunkedPool(
            jobs=2, chunk_size=1, wave_timeout=0.3, retries=0, strict=True
        )
        with pytest.raises(ReproError, match="wave_timeout"):
            pool.run(_sleepy, [30.0, 30.0])

    def test_fast_wave_unaffected(self):
        with obs.collect() as col:
            res = ChunkedPool(
                jobs=2, chunk_size=1, wave_timeout=30.0, counter_prefix="myengine"
            ).run(_square, [1, 2, 3])
        assert res.values == [1, 4, 9]
        assert res.degraded == []
        assert "myengine.wave_timeouts" not in col.counters


class TestPrepareHook:
    """Chunk-level warm-up: sees each chunk's task slice once, and a
    failure degrades to a counter without touching the values."""

    def test_serial_prepare_sees_all_tasks_once(self):
        with obs.collect() as col:
            res = ChunkedPool(jobs=1).run(_square, [1, 2, 3], prepare=_prepare_count)
        assert res.values == [1, 4, 9]
        assert col.counters["pooltest.prepare_tasks"] == 3

    def test_parallel_prepare_runs_per_chunk(self):
        with obs.collect() as col:
            res = ChunkedPool(jobs=2, chunk_size=2, counter_prefix="myindex").run(
                _square, list(range(6)), prepare=_prepare_count
            )
        assert res.values == [x * x for x in range(6)]
        # 3 chunks x one prepare each, together covering every task
        assert col.counters["pooltest.prepare_tasks"] == 6
        assert "myindex.prepare_errors" not in col.counters

    def test_prepare_failure_degrades_to_counter(self):
        with obs.collect() as col:
            res = ChunkedPool(jobs=1, counter_prefix="myindex").run(
                _square, [1, 2, 3], prepare=_prepare_boom
            )
        assert res.values == [1, 4, 9]
        assert res.degraded == []
        assert col.counters["myindex.prepare_errors"] == 1

    def test_parallel_prepare_failure_degrades_to_counter(self):
        with obs.collect() as col:
            res = ChunkedPool(jobs=2, chunk_size=2, counter_prefix="myindex").run(
                _square, [1, 2, 3, 4], prepare=_prepare_boom
            )
        assert res.values == [1, 4, 9, 16]
        assert col.counters["myindex.prepare_errors"] == 2


class TestWaveCounter:
    """`<prefix>.waves` — one increment per non-empty run(); the serve
    layer's request-coalescing tests gate on exactly this counter."""

    def test_one_wave_per_run(self):
        with obs.collect() as col:
            pool = ChunkedPool(counter_prefix="myengine")
            pool.run(_square, [1, 2, 3])
            pool.run(_square, [4])
        assert col.counters["myengine.waves"] == 2

    def test_empty_run_is_not_a_wave(self):
        with obs.collect() as col:
            ChunkedPool(counter_prefix="myengine").run(_square, [])
        assert "myengine.waves" not in col.counters

    def test_parallel_run_is_still_one_wave(self):
        with obs.collect() as col:
            ChunkedPool(jobs=2, chunk_size=1, counter_prefix="myengine").run(
                _square, [1, 2, 3, 4]
            )
        assert col.counters["myengine.waves"] == 1
