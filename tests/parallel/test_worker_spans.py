"""Distributed tracing: worker span/histogram capture and parent adoption.

The contract under test (DESIGN.md §"Span taxonomy", worker lanes):

* a collecting parent's trace contains every worker chunk span exactly
  once, tagged with the worker's real pid and parented under the pool
  span;
* worker histograms merge into the parent by bucket addition, so span
  latency distributions cover the whole fan-out;
* domain counters are bit-identical between a serial and a parallel run
  (scheduling counters — chunks/workers/retries — exist only in the
  parallel path and are excluded);
* capture is off when nobody collects: the worker returns no payload.
"""

import os

import pytest

from repro import obs
from repro.obs import chrome_trace
from repro.parallel import pool as pool_mod
from repro.parallel.pool import ChunkedPool, _run_chunk


def _square(x):
    with obs.span("task.sq", x=x):
        obs.add("work.calls")
        obs.observe("work.latency", 0.001 * (x + 1))
        return x * x


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


needs_fork = pytest.mark.skipif(not _fork_available(), reason="requires fork start method")


@needs_fork
class TestAdoption:
    def _run(self, n=8, jobs=2, chunk_size=2):
        pool = ChunkedPool(jobs=jobs, chunk_size=chunk_size, counter_prefix="engine")
        with obs.collect() as col:
            res = pool.run(_square, list(range(n)))
        assert res.values == [x * x for x in range(n)]
        return col

    def test_every_chunk_span_exactly_once(self):
        col = self._run(n=8, chunk_size=2)
        chunk_spans = [r for r in col.spans if r.name == "engine.chunk"]
        assert len(chunk_spans) == 4
        bounds = sorted((r.attrs["lo"], r.attrs["hi"]) for r in chunk_spans)
        assert bounds == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_chunk_spans_carry_foreign_worker_pids(self):
        col = self._run()
        pids = {r.pid for r in col.spans if r.name == "engine.chunk"}
        assert pids and all(p not in (0, os.getpid()) for p in pids)

    def test_chunk_spans_parent_under_pool_span(self):
        col = self._run()
        pool_span = next(r for r in col.spans if r.name == "engine.pool")
        for rec in col.spans:
            if rec.name == "engine.chunk":
                assert rec.parent == pool_span.index

    def test_task_spans_nest_under_their_chunk(self):
        col = self._run(n=4, chunk_size=2)
        by_index = {r.index: r for r in col.spans}
        task_spans = [r for r in col.spans if r.name == "task.sq"]
        assert len(task_spans) == 4
        for rec in task_spans:
            assert by_index[rec.parent].name == "engine.chunk"
            assert rec.pid == by_index[rec.parent].pid

    def test_worker_histograms_merge_into_parent(self):
        col = self._run(n=8)
        assert col.hists["task.sq"].count == 8
        assert col.hists["work.latency"].count == 8
        # explicit observations keep their exact moments through the merge
        assert col.hists["work.latency"].min == pytest.approx(0.001)
        assert col.hists["work.latency"].max == pytest.approx(0.008)

    def test_trace_export_has_one_lane_per_worker(self):
        col = self._run()
        tr = chrome_trace(col)
        worker_pids = {r.pid for r in col.spans if r.pid}
        lane_pids = {e["pid"] for e in tr["traceEvents"] if e.get("ph") == "X"}
        assert worker_pids <= lane_pids
        named = {
            e["pid"]: e["args"]["name"]
            for e in tr["traceEvents"]
            if e["name"] == "process_name"
        }
        for pid in worker_pids:
            assert named[pid] == f"silvervale worker {pid}"

    def test_adopted_spans_lie_inside_the_pool_span_window(self):
        col = self._run()
        pool_span = next(r for r in col.spans if r.name == "engine.pool")
        for rec in col.spans:
            if rec.name == "engine.chunk":
                # generous slack: wall-clock re-anchoring across processes
                assert rec.start >= pool_span.start - 0.25
                assert rec.end <= pool_span.end + 0.25


@needs_fork
class TestCounterIdentity:
    def _domain_counters(self, col):
        scheduling = ("engine.", "index.pool.")
        return {
            k: v
            for k, v in col.counters.items()
            if not any(k.startswith(p) for p in scheduling)
        }

    def test_serial_and_parallel_counters_bit_identical(self):
        tasks = list(range(11))
        with obs.collect() as serial:
            ChunkedPool(jobs=1, counter_prefix="engine").run(_square, tasks)
        with obs.collect() as parallel:
            ChunkedPool(jobs=2, chunk_size=3, counter_prefix="engine").run(_square, tasks)
        assert self._domain_counters(serial) == self._domain_counters(parallel)
        assert parallel.counters["engine.chunks"] == 4  # scheduling counters exist


@needs_fork
class TestBoundedCapture:
    def test_span_cap_reports_drops(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_MAX_CHUNK_SPANS", 3)
        with obs.collect() as col:
            ChunkedPool(jobs=2, chunk_size=4, counter_prefix="engine").run(
                _square, list(range(8))
            )
        # per chunk: 1 chunk span + 4 task spans = 5 recorded, 3 shipped
        assert col.counters["engine.spans_dropped"] == 4
        assert len([r for r in col.spans if r.name == "engine.chunk"]) == 2

    def test_earliest_spans_survive_the_cap(self):
        with obs.collect() as worker_col:
            with obs.span("outer"):
                for _ in range(5):
                    with obs.span("inner"):
                        pass
        spans, dropped = worker_col.export_spans(limit=2)
        assert dropped == 4
        names = [s[0] for s in spans]
        assert names == ["outer", "inner"]  # parents precede children


class TestDisabledPath:
    def test_worker_returns_no_payload_without_capture(self, monkeypatch):
        monkeypatch.setattr(
            pool_mod, "_STAGE", {"fn": lambda x: x, "tasks": [1, 2], "capture": False}
        )
        out, counters, payload = _run_chunk(((0, 2), 0))
        assert out == [1, 2]
        assert payload is None

    def test_worker_builds_payload_with_capture(self, monkeypatch):
        monkeypatch.setattr(
            pool_mod,
            "_STAGE",
            {"fn": lambda x: x, "tasks": [1, 2], "capture": True, "span_prefix": "p"},
        )
        out, counters, payload = _run_chunk(((0, 2), 0))
        assert payload is not None
        assert payload["pid"] == os.getpid()
        assert [s[0] for s in payload["spans"]] == ["p.chunk"]
        assert "p.chunk" in payload["hists"]
        assert payload["dropped"] == 0

    def test_pool_stages_capture_only_when_collecting(self):
        with obs.collect():
            run = pool_mod._PoolRun(1, None, None, None)
        assert run.collector is not None
        run2 = pool_mod._PoolRun(1, None, None, None)
        assert run2.collector is None
