"""Persistent TED cache store: shard format, invalidation, concurrency."""

import multiprocessing
import zlib

import pytest

from repro import obs
from repro.cache.store import KEY_SPEC, SCHEMA, TedCacheStore, pair_key
from repro.serde.container import write_blob
from repro.util.errors import SerdeError

H1 = "aa" + "0" * 62
H2 = "ab" + "0" * 62
H3 = "ba" + "0" * 62


class TestPairKey:
    def test_canonical_order(self):
        assert pair_key(H1, H2) == pair_key(H2, H1) == f"{H1}:{H2}"

    def test_self_pair(self):
        assert pair_key(H1, H1) == f"{H1}:{H1}"


class TestRoundTrip:
    def test_record_flush_lookup(self, tmp_path):
        store = TedCacheStore(tmp_path)
        store.record(H1, H2, 7.0)
        assert store.lookup(H1, H2) == 7.0  # pending entries visible pre-flush
        assert store.flush() == 1
        fresh = TedCacheStore(tmp_path)
        assert fresh.lookup(H2, H1) == 7.0  # either order hits
        assert fresh.lookup(H1, H3) is None

    def test_len_and_stats(self, tmp_path):
        store = TedCacheStore(tmp_path)
        store.record(H1, H2, 1.0)  # min hash aa.. -> shard "aa"
        store.record(H2, H3, 2.0)  # min hash ab.. -> shard "ab"
        store.flush()
        assert len(store) == 2
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["schema"] == SCHEMA and stats["keyspec"] == KEY_SPEC
        assert stats["shards"] == 2
        assert not stats["invalid_shards"]

    def test_clear_removes_shards(self, tmp_path):
        store = TedCacheStore(tmp_path)
        store.record(H1, H2, 1.0)
        store.flush()
        assert store.clear() == 1
        assert TedCacheStore(tmp_path).lookup(H1, H2) is None


class TestInvalidBlobs:
    """Corrupt and foreign files must surface as SerdeError on the strict
    path and behave as empty shards (recompute) on the lenient path."""

    def _shard(self, tmp_path) -> TedCacheStore:
        store = TedCacheStore(tmp_path)
        store.record(H1, H2, 3.0)
        store.flush()
        return store

    def test_truncated_container_is_serde_error(self, tmp_path):
        store = self._shard(tmp_path)
        path = store.shard_path("aa")
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(SerdeError):
            TedCacheStore(tmp_path).read_shard("aa")

    def test_corrupt_payload_is_serde_error_not_zlib(self, tmp_path):
        store = self._shard(tmp_path)
        path = store.shard_path("aa")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the compressed payload
        path.write_bytes(bytes(data))
        with pytest.raises(SerdeError):
            TedCacheStore(tmp_path).read_shard("aa")
        with pytest.raises(SerdeError):
            try:
                TedCacheStore(tmp_path).read_shard("aa")
            except zlib.error:  # pragma: no cover - the failure being tested
                pytest.fail("zlib.error escaped the serde layer")

    def test_foreign_file_is_serde_error(self, tmp_path):
        store = TedCacheStore(tmp_path)
        store.shard_path("aa").write_bytes(b"not a container at all")
        with pytest.raises(SerdeError):
            store.read_shard("aa")

    def test_valid_container_wrong_payload(self, tmp_path):
        store = TedCacheStore(tmp_path)
        write_blob(store.shard_path("aa"), ["something", "else"])
        with pytest.raises(SerdeError, match="not a TED cache shard"):
            store.read_shard("aa")

    def test_lenient_lookup_treats_corrupt_as_miss(self, tmp_path):
        store = self._shard(tmp_path)
        store.shard_path("aa").write_bytes(b"garbage")
        fresh = TedCacheStore(tmp_path)
        with obs.collect() as col:
            assert fresh.lookup(H1, H2) is None
        assert col.counters["cache.disk.invalid"] == 1

    def test_stats_reports_invalid_shards(self, tmp_path):
        store = self._shard(tmp_path)
        store.shard_path("aa").write_bytes(b"garbage")
        assert TedCacheStore(tmp_path).stats()["invalid_shards"] == ["aa"]


class TestVersionInvalidation:
    def test_schema_mismatch_invalidates(self, tmp_path):
        store = TedCacheStore(tmp_path)
        write_blob(
            store.shard_path("aa"),
            {"schema": "repro.cache/v0", "keyspec": KEY_SPEC, "entries": {pair_key(H1, H2): 3.0}},
        )
        with pytest.raises(SerdeError, match="schema"):
            store.read_shard("aa")
        assert store.lookup(H1, H2) is None  # lenient: stale shard = empty

    def test_keyspec_mismatch_invalidates(self, tmp_path):
        store = TedCacheStore(tmp_path)
        write_blob(
            store.shard_path("aa"),
            {"schema": SCHEMA, "keyspec": "ted:weighted:apted", "entries": {}},
        )
        with pytest.raises(SerdeError, match="keyspec"):
            store.read_shard("aa")

    def test_stale_shard_rewritten_on_flush(self, tmp_path):
        store = TedCacheStore(tmp_path)
        write_blob(
            store.shard_path("aa"),
            {"schema": "repro.cache/v0", "keyspec": KEY_SPEC, "entries": {pair_key(H1, H3): 9.0}},
        )
        store.record(H1, H2, 4.0)
        store.flush()
        fresh = TedCacheStore(tmp_path)
        assert fresh.read_shard("aa") == {pair_key(H1, H2): 4.0}  # v0 entry gone


class TestFlushQuietly:
    """Regression: a corrupted pending-write buffer raises a serializer
    error (SerdeError/ValueError), not OSError — the engine's quiet flush
    must swallow it with a ``cache/flush-failed`` diagnostic instead of
    letting it kill the run at exit."""

    def _poisoned_store(self, tmp_path):
        store = TedCacheStore(tmp_path)
        store.record(H1, H2, 1.0)
        # simulate in-memory corruption: an unpackable object in the buffer
        store._pending["aa"][pair_key(H1, H2)] = object()
        return store

    def test_poisoned_buffer_raises_from_flush(self, tmp_path):
        with pytest.raises(SerdeError, match="cannot pack"):
            self._poisoned_store(tmp_path).flush()

    def test_engine_flush_quietly_degrades_with_diagnostic(self, tmp_path):
        from repro import diag
        from repro.distance.engine import _flush_quietly

        store = self._poisoned_store(tmp_path)
        with diag.capture() as sink, obs.collect() as col:
            _flush_quietly(store)  # must not raise
        assert col.counters["cache.disk.flush_errors"] == 1
        assert sink.by_code() == {"cache/flush-failed": 1}

    def test_oserror_still_degrades(self, tmp_path, monkeypatch):
        from repro import diag
        from repro.distance.engine import _flush_quietly

        store = TedCacheStore(tmp_path)
        store.record(H1, H2, 1.0)
        monkeypatch.setattr(
            store, "flush", lambda: (_ for _ in ()).throw(OSError("disk full"))
        )
        with diag.capture() as sink, obs.collect() as col:
            _flush_quietly(store)
        assert col.counters["cache.disk.flush_errors"] == 1
        assert sink.by_code() == {"cache/flush-failed": 1}

    def test_keyboard_interrupt_not_swallowed(self, tmp_path, monkeypatch):
        from repro.distance.engine import _flush_quietly

        store = TedCacheStore(tmp_path)
        monkeypatch.setattr(
            store, "flush", lambda: (_ for _ in ()).throw(KeyboardInterrupt())
        )
        with pytest.raises(KeyboardInterrupt):
            _flush_quietly(store)


def _writer(root: str, writer_id: int, n: int) -> None:
    store = TedCacheStore(root)
    for j in range(n):
        # distinct synthetic hashes per writer/entry; all land in shard "cc"
        h = f"cc{writer_id:02x}{j:04x}" + "0" * 56
        store.record(h, h[:2] + "ff" + h[4:], float(writer_id * 1000 + j))
        store.flush()  # flush per entry to maximise interleaving


class TestConcurrentWriters:
    def test_parallel_flushes_never_corrupt(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_writer, args=(str(tmp_path), w, 8)) for w in range(3)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        store = TedCacheStore(tmp_path)
        entries = store.read_shard("cc")  # strict: raises if any write corrupted it
        assert entries  # at least the last merge survived
        for key, value in entries.items():
            writer_id = int(key[2:4], 16)
            j = int(key[4:8], 16)
            assert value == float(writer_id * 1000 + j)  # no cross-writer smearing
