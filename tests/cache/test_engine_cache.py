"""Engine + persistent cache integration: warm runs skip the DP entirely,
``--no-cache`` bypasses the store, and cached matrices are bit-identical."""

import argparse

import numpy as np
import pytest

from repro import obs
from repro.cache import TedCacheStore
from repro.distance.engine import DistanceEngine
from repro.distance.ted import clear_ted_cache, get_disk_cache
from repro.trees import from_sexpr
from repro.workflow.cli import _cache_dir_from_args, _engine_from_args

TREES = [
    "(a (b c) (d e))",
    "(a (b x) (d e f))",
    "(q (r s) (t u v))",
    "(a (b c) (d w))",
]


def _tasks():
    trees = [from_sexpr(s) for s in TREES]
    return [(trees[i], trees[j]) for i in range(len(trees)) for j in range(i + 1, len(trees))]


def _ted_task(task):
    from repro.distance.ted import ted

    a, b = task
    return ted(a, b).distance


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_ted_cache()
    yield
    clear_ted_cache()


class TestWarmRuns:
    def test_warm_run_performs_zero_zs_evaluations(self, tmp_path):
        store = TedCacheStore(tmp_path)
        with obs.collect() as cold:
            first = DistanceEngine(cache=store).map_tasks(_ted_task, _tasks())
        assert cold.counters["ted.zs.calls"] > 0
        assert cold.counters["cache.disk.miss"] == len(first)

        clear_ted_cache()  # drop the in-process memo: only the disk remains
        with obs.collect() as warm:
            second = DistanceEngine(cache=TedCacheStore(tmp_path)).map_tasks(
                _ted_task, _tasks()
            )
        assert warm.counters.get("ted.zs.calls", 0) == 0
        assert warm.counters["cache.disk.hit"] == len(second)
        assert np.array_equal(np.asarray(first), np.asarray(second))

    def test_cache_detached_after_run(self, tmp_path):
        DistanceEngine(cache=TedCacheStore(tmp_path)).map_tasks(_ted_task, _tasks())
        assert get_disk_cache() is None  # engine restored the previous (no) store

    def test_no_cache_engine_never_touches_disk(self, tmp_path):
        with obs.collect() as col:
            DistanceEngine().map_tasks(_ted_task, _tasks())
        assert "cache.disk.miss" not in col.counters
        assert not list(tmp_path.iterdir())


class TestCliResolution:
    def _args(self, **kw) -> argparse.Namespace:
        return argparse.Namespace(jobs=1, cache_dir=None, no_cache=False, **kw)

    def test_no_cache_flag_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        args = self._args()
        args.no_cache = True
        args.cache_dir = str(tmp_path)
        assert _cache_dir_from_args(args) is None
        assert _engine_from_args(args).cache is None

    def test_cache_dir_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/nonexistent/env/dir")
        args = self._args()
        args.cache_dir = str(tmp_path)
        engine = _engine_from_args(args)
        assert str(engine.cache.root) == str(tmp_path)

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        engine = _engine_from_args(self._args())
        assert engine.cache is not None
        assert str(engine.cache.root) == str(tmp_path)

    def test_default_is_uncached_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        engine = _engine_from_args(self._args())
        assert engine.cache is None and engine.jobs == 1

    def test_default_has_no_checkpoint_and_lenient_watchdog(self, monkeypatch):
        monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
        engine = _engine_from_args(self._args())
        assert engine.checkpoint is None and engine.resume is False
        assert engine.chunk_timeout is None and engine.retries == 2

    def test_fault_tolerance_flags_thread_through(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
        args = self._args(
            chunk_timeout=30.0,
            retries=5,
            strict=True,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        engine = _engine_from_args(args)
        assert engine.chunk_timeout == 30.0 and engine.retries == 5
        assert engine.strict is True and engine.resume is True
        assert str(engine.checkpoint.root) == str(tmp_path)

    def test_ckpt_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path))
        engine = _engine_from_args(self._args())
        assert str(engine.checkpoint.root) == str(tmp_path)
