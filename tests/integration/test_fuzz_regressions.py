"""Regression pins for crashes found while fuzzing the frontends.

Each test reproduces an input class that once crashed (or hung) the
recovering frontends — found by ``benchmarks/fuzz_frontends.py`` or while
hardening the parsers for it. The contract: recover mode returns a
partial tree, strict mode raises :class:`ParseError` — never an
``AssertionError``, ``RecursionError`` or infinite loop.
"""

import pytest

from repro import diag
from repro.lang.cpp.lexer import TokenType, lex
from repro.lang.cpp.parser import parse_tokens
from repro.lang.fortran.parser import parse_fortran
from repro.util.errors import ParseError, ReproError


def cpp_recover(src):
    toks = [
        t
        for t in lex(src, "t.cpp", tolerant=True)
        if not t.is_trivia and t.type is not TokenType.EOF
    ]
    with diag.capture() as sink:
        tu = parse_tokens(toks, "t.cpp", recover=True)
    return tu, sink


class TestCppRegressions:
    def test_namespace_closer_not_swallowed_by_decl_sync(self):
        # a failed decl inside a namespace once consumed the namespace's
        # closing brace during resync, cascading errors to EOF
        src = "namespace ns {\n) ) );\nint ok();\n}\nint after() { return 1; }\n"
        tu, sink = cpp_recover(src)
        assert sink.has_errors()
        names = [getattr(d, "name", "") for d in tu.decls]
        assert "after" in names

    def test_truncated_class_body_terminates(self):
        # EOF inside a class body once looped forever in _parse_class
        tu, sink = cpp_recover("class C {\nint x;\nvoid m();\n")
        assert sink.count() > 0

    def test_truncated_compound_terminates(self):
        # EOF inside a compound statement once looped forever
        tu, sink = cpp_recover("int f() { while (1) { g();\n")
        assert "parse/unclosed-brace" in sink.by_code()

    def test_truncated_directive_body_keeps_lexed_prefix(self):
        # a lex failure mid-directive once polluted the token list with a
        # partial lex of the body
        tu, sink = cpp_recover('#pragma omp parallel for reduction(+:sum\nint f() { return 0; }\n')
        names = [getattr(d, "name", "") for d in tu.decls]
        assert "f" in names

    def test_eof_in_declarator_raises_parse_error_not_assert(self):
        with pytest.raises(ParseError):
            parse_tokens(
                [
                    t
                    for t in lex("int f(", "t.cpp")
                    if not t.is_trivia and t.type is not TokenType.EOF
                ],
                "t.cpp",
            )

    def test_decl_sync_stops_at_type_keyword(self):
        # one bad top-level decl once swallowed every declaration after it
        tu, sink = cpp_recover(">>> <<< >>\nint f() { return 1; }\ndouble g() { return 2.0; }\n")
        names = [getattr(d, "name", "") for d in tu.decls]
        assert "f" in names and "g" in names


class TestFortranRegressions:
    def test_eof_in_statement_raises_parse_error_not_assert(self):
        with pytest.raises(ReproError):
            parse_fortran("program p\ndo i = 1,", "t.f90")

    def test_truncated_unit_header_terminates(self):
        with diag.capture() as sink:
            parse_fortran("subroutine s(", "t.f90", recover=True)
        assert sink.count() > 0

    def test_mismatched_closer_keeps_loop_body(self):
        # 'end program' reached inside a 'do' once discarded the whole
        # loop (body included) and ate the unit's own closer
        with diag.capture() as sink:
            f = parse_fortran(
                "program p\ndo i = 1, 10\ncall work(i)\nend program p\n",
                "t.f90",
                recover=True,
            )
        assert sink.by_code() == {"parse/missing-end": 1}
        assert f.units[0].body and f.units[0].body[0].body

    def test_orphan_end_do_does_not_lose_unit(self):
        src = "program p\nx = 1\nend do\ny = 2\nend program p\n"
        with diag.capture() as sink:
            f = parse_fortran(src, "t.f90", recover=True)
        assert f.units and f.units[0].name == "p"
        assert sink.count() > 0
