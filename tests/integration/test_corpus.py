"""Corpus integration: every port parses, runs, verifies and indexes.

Mirrors the paper's artefact-evaluation statement: "Each mini-app contains
built-in verification for correctness" and "SilverVale compares the base
model against itself; non-zero results will indicate an error".
"""

import pytest

from repro.corpus import APPS, app_models, build_fs, get_spec, index_model
from repro.metrics import sloc
from repro.workflow.comparer import MetricSpec, divergence

# the fast representative subset used for per-model checks
CPP_APPS = ["babelstream", "minibude"]


def all_pairs():
    out = []
    for app in APPS:
        for model in app_models(app):
            out.append((app, model))
    return out


@pytest.mark.parametrize("app,model", all_pairs())
def test_port_indexes_and_verifies(app, model):
    cb = index_model(app, model, coverage=True)
    unit = cb.units["main"]
    assert unit.t_sem is not None and unit.t_sem.size() > 50
    assert unit.t_src_pre is not None
    assert unit.t_ir is not None
    assert sloc(cb) > 10
    if cb.spec.lang == "cpp":
        # verification run must have passed (exit code 0)
        assert cb.run_value == 0, f"{app}/{model} failed verification"
        assert cb.coverage is not None and cb.coverage.total_hits() > 0


@pytest.mark.parametrize("app", CPP_APPS)
def test_self_divergence_is_zero(app):
    """The built-in self-check: base model vs itself must be exactly zero."""
    cb = index_model(app, "serial", coverage=True)
    for spec in (MetricSpec("Source"), MetricSpec("Tsrc"), MetricSpec("Tsem"), MetricSpec("Tir")):
        assert divergence(cb, cb, spec) == 0.0, spec.label


@pytest.mark.parametrize("app", CPP_APPS)
def test_every_model_diverges_from_serial(app):
    serial = index_model(app, "serial", coverage=True)
    for model in app_models(app):
        if model == "serial":
            continue
        cb = index_model(app, model, coverage=True)
        d = divergence(serial, cb, MetricSpec("Tsem"))
        assert d > 0.0, model


def test_shared_header_contributes_zero():
    """'any boilerplate code shared between all models will not have any
    impact on the metric' — shared headers hash identically."""
    from repro.trees.hashing import structural_hash
    from repro.lang.cpp.cst import build_cst
    from repro.lang.cpp.lexer import lex

    fs_a = build_fs("babelstream", "serial")
    fs_b = build_fs("babelstream", "omp")
    header_a = fs_a.get("stream_common.h").text
    header_b = fs_b.get("stream_common.h").text
    assert header_a == header_b
    ha = structural_hash(build_cst(lex(header_a, "h"), "h"))
    hb = structural_hash(build_cst(lex(header_b, "h"), "h"))
    assert ha == hb


def test_specs_are_consistent():
    for app in APPS:
        for model in app_models(app):
            spec = get_spec(app, model)
            fs = build_fs(app, model)
            for _role, path in spec.units.items():
                assert fs.exists(path), (app, model, path)


def test_fortran_models_have_static_coverage():
    cb = index_model("babelstream-fortran", "omp", coverage=True)
    assert cb.coverage is not None
    assert cb.coverage.total_hits() > 0
