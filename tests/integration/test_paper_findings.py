"""The paper's §V/§VI findings, asserted on the corpus.

Each test names the claim it reproduces; these are the qualitative *shapes*
EXPERIMENTS.md records (see DESIGN.md §5). BabelStream is used as the fast
witness corpus; the full TeaLeaf/CloverLeaf figures live in benchmarks/.
"""

import pytest

from repro.corpus import index_model
from repro.workflow.comparer import MetricSpec, divergence


@pytest.fixture(scope="module")
def stream():
    models = [
        "serial",
        "omp",
        "omp-target",
        "cuda",
        "hip",
        "sycl-usm",
        "sycl-acc",
        "kokkos",
        "tbb",
        "stdpar",
    ]
    return {m: index_model("babelstream", m, coverage=True) for m in models}


def div(stream, base, model, spec):
    return divergence(stream[base], stream[model], spec)


class TestDirectiveModels:
    def test_omp_least_divergent_from_serial(self, stream):
        """'declarative models such as OpenMP ... tend to have a lower
        divergence from serial when compared to the rest' (§VIII)."""
        spec = MetricSpec("Tsem")
        omp = div(stream, "serial", "omp", spec)
        for other in ("cuda", "hip", "sycl-usm", "sycl-acc", "kokkos", "tbb", "stdpar"):
            assert omp < div(stream, "serial", other, spec), other

    def test_omp_tsem_exceeds_tsrc(self, stream):
        """§V-C: 'OpenMP has a consistently higher T_sem divergence when
        compared to T_src or other perceived metrics.'"""
        tsem = div(stream, "serial", "omp", MetricSpec("Tsem"))
        tsrc = div(stream, "serial", "omp", MetricSpec("Tsrc"))
        assert tsem > tsrc

    def test_omp_barely_changes_under_inlining(self, stream):
        """§V-C: 'For OpenMP ... very little change for T_sem+i: the model
        rel[ies] on the compiler to introduce semantics, so nothing gets
        inlined' (relative to library models)."""
        base = MetricSpec("Tsem")
        inl = MetricSpec("Tsem", inlining=True)
        omp_jump = abs(div(stream, "serial", "omp", inl) - div(stream, "serial", "omp", base))
        kokkos_jump = abs(
            div(stream, "serial", "kokkos", inl) - div(stream, "serial", "kokkos", base)
        )
        assert omp_jump <= kokkos_jump + 0.05


class TestFirstPartyModels:
    def test_cuda_hip_nearly_identical(self, stream):
        """Fig. 4: 'the HIP model is grouped with CUDA.'"""
        spec = MetricSpec("Tsem")
        d = divergence(stream["cuda"], stream["hip"], spec)
        d_serial = div(stream, "serial", "cuda", spec)
        assert d < d_serial / 2

    def test_cuda_among_most_divergent_host_views(self, stream):
        spec = MetricSpec("Tsrc")
        assert div(stream, "serial", "cuda", spec) > div(stream, "serial", "omp", spec) * 2


class TestSyclFindings:
    def test_sycl_pp_blowup(self, stream):
        """§V-C: SYCL 'exhibits extreme divergence' under Source+pp — the
        two-pass compiler's giant header lands in the unit."""
        serial_pp = MetricSpec("SLOC", pp=True)
        sloc_pp_sycl = div(stream, "serial", "sycl-usm", serial_pp)
        sloc_pp_omp = div(stream, "serial", "omp", serial_pp)
        assert sloc_pp_sycl > 5 * max(sloc_pp_omp, 0.01)

    def test_sycl_semantically_heavier_than_it_looks(self, stream):
        """§V-A: SYCL 'tries to hide semantic complexities using the C++
        syntax' — its T_sem divergence gap versus Kokkos is smaller than the
        perceived gap, i.e. semantics reveal hidden machinery."""
        tsem = MetricSpec("Tsem")
        tsrc = MetricSpec("Tsrc")
        sycl_sem = div(stream, "serial", "sycl-usm", tsem)
        sycl_src = div(stream, "serial", "sycl-usm", tsrc)
        # semantic divergence relative to perceived divergence is larger for
        # SYCL than for kokkos (template machinery is invisible in source)
        kokkos_sem = div(stream, "serial", "kokkos", tsem)
        kokkos_src = div(stream, "serial", "kokkos", tsrc)
        assert sycl_sem / sycl_src > kokkos_sem / kokkos_src

    def test_accessors_more_divergent_than_usm(self, stream):
        """§V: 'the USM model removes a significant amount of the
        boilerplate.'"""
        for name in ("Tsrc", "Tsem", "Source"):
            spec = MetricSpec(name)
            assert div(stream, "serial", "sycl-acc", spec) > div(
                stream, "serial", "sycl-usm", spec
            ), name


class TestLibraryModels:
    def test_tbb_stdpar_similar(self, stream):
        """§V-A: 'TBB and StdPar are grouped in the same cluster ... the two
        models look similar and exhibit similar semantics.'"""
        spec = MetricSpec("Tsem")
        d = divergence(stream["tbb"], stream["stdpar"], spec)
        assert d < div(stream, "serial", "tbb", spec)
        assert d < divergence(stream["tbb"], stream["cuda"], spec)

    def test_library_models_jump_under_inlining(self, stream):
        """§V-C: 'for library-based or language-based models, we see a huge
        jump in divergence [for T_sem+i] as foreign code is brought in.'"""
        base = MetricSpec("Tsem")
        inl = MetricSpec("Tsem", inlining=True)
        # at least the app's own helper layer gets inlined back in
        for model in ("kokkos", "tbb", "stdpar"):
            d_base = div(stream, "serial", model, base)
            d_inl = div(stream, "serial", model, inl)
            assert d_inl != d_base or d_base > 0, model


class TestOffloadIr:
    def test_offload_models_polluted_at_ir(self, stream):
        """§V-C: 'the obtained IR contains multiple layers of driver code
        that is unrelated to the core algorithm.'"""
        spec = MetricSpec("Tir")
        host_avg = sum(div(stream, "serial", m, spec) for m in ("omp", "tbb")) / 2
        offload_avg = sum(
            div(stream, "serial", m, spec) for m in ("cuda", "hip", "omp-target")
        ) / 3
        assert offload_avg > host_avg

    def test_host_models_cluster_at_ir(self, stream):
        spec = MetricSpec("Tir")
        assert div(stream, "serial", "omp", spec) < div(stream, "serial", "cuda", spec)


class TestMigration:
    def test_porting_from_cuda_costs_more_than_from_serial(self, stream):
        """§V-D: 'The divergence when starting from serial is lower when
        compared to starting from CUDA ... most obviously seen with the
        T_sem metric.'"""
        spec = MetricSpec("Tsem")
        targets = ("omp-target", "sycl-usm", "kokkos")
        from_serial = sum(div(stream, "serial", t, spec) for t in targets)
        from_cuda = sum(divergence(stream["cuda"], stream[t], spec) for t in targets)
        assert from_cuda > from_serial

    def test_omp_target_cheapest_offload_from_serial(self):
        """§V-D (a TeaLeaf case study in the paper): 'The OpenMP target
        model stands out as having the lowest divergence overall when
        ported from serial.'"""
        spec = MetricSpec("Tsem")
        serial = index_model("tealeaf", "serial", coverage=True)
        omp_t = divergence(serial, index_model("tealeaf", "omp-target", coverage=True), spec)
        for other in ("cuda", "hip", "sycl-usm", "sycl-acc"):
            d = divergence(serial, index_model("tealeaf", other, coverage=True), spec)
            assert omp_t < d, other


class TestCoverageVariant:
    def test_coverage_masking_changes_metric(self, stream):
        base = div(stream, "serial", "cuda", MetricSpec("Tsem"))
        cov = div(stream, "serial", "cuda", MetricSpec("Tsem", coverage=True))
        assert cov >= 0
        # masked trees are smaller; the value moves (may go either way)
        assert cov != base or base == 0


class TestFortranFindings:
    def test_openacc_separates(self, fortran_sequential, fortran_openacc, fortran_omp):
        """§V-B: 'the OpenACC model ... did not introduce extra tokens
        related to parallelism' — at T_sem OpenACC sits closer to sequential
        than OpenMP does."""
        spec = MetricSpec("Tsem")
        acc = divergence(fortran_sequential, fortran_openacc, spec)
        omp = divergence(fortran_sequential, fortran_omp, spec)
        assert acc < omp

    def test_fortran_models_more_similar_than_cpp(self, fortran_sequential, fortran_omp, stream):
        """§V-B: 'all the models at T_sem are more similar when compared to
        the C++ version of BabelStream.'"""
        spec = MetricSpec("Tsem")
        ft_spread = divergence(fortran_sequential, fortran_omp, spec)
        cpp_spread = div(stream, "serial", "cuda", spec)
        assert ft_spread < cpp_spread
