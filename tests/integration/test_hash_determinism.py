"""Cross-process hash determinism.

Every persisted artifact key (structural hashes in the TED cache, unit
artifact keys, checkpoint run keys) must be identical across interpreter
invocations regardless of ``PYTHONHASHSEED`` — otherwise a warm cache from
one run would be invisible to the next. All key paths are built on sha256
over explicitly ordered inputs; this test pins that by actually running two
subprocesses with different hash seeds.
"""

import os
import subprocess
import sys
from pathlib import Path

SCRIPT = """
import json

from repro.ckpt.store import run_key_for
from repro.lang.source import VirtualFS
from repro.trees.hashing import structural_hash
from repro.trees.node import Node
from repro.workflow.codebase import ModelSpec
from repro.workflow.unitstore import unit_key

tree = Node("root", "decl", [
    Node("call", "expr", [Node("var", "expr"), Node("lit", "expr")]),
    Node("ret", "stmt"),
])

fs = VirtualFS()
fs.add("main.cpp", "int main() { return 0; }\\n")
fs.add("util.h", "int u();\\n")
spec = ModelSpec(
    app="a", model="m", lang="cpp",
    units={"main": "main.cpp"},
    defines={"B": "2", "A": "1"},
)

print(json.dumps({
    "tree": structural_hash(tree),
    "unit": unit_key(spec, fs, "main", "main.cpp", recover=True, coverage=False),
    "run": run_key_for(["k1", "k2", "k3"]),
}))
"""


def _keys_with_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.strip()


def test_keys_stable_across_hash_seeds():
    a = _keys_with_seed("0")
    b = _keys_with_seed("1")
    c = _keys_with_seed("424242")
    assert a == b == c
    # and non-trivial: all three key kinds present and distinct
    import json

    keys = json.loads(a)
    assert len({keys["tree"], keys["unit"], keys["run"]}) == 3
    assert all(v for v in keys.values())
