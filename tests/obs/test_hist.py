"""Histogram primitive: bucketing, moments, percentiles, merge, transport."""

import math
import random

import pytest

from repro.obs.hist import BOUNDS, Histogram, bucket_index


class TestBounds:
    def test_geometric_series_is_strictly_increasing(self):
        assert all(a < b for a, b in zip(BOUNDS, BOUNDS[1:]))

    def test_covers_100ns_to_10000s(self):
        assert BOUNDS[0] == pytest.approx(1e-7)
        assert BOUNDS[-1] == pytest.approx(1e4)

    def test_bucket_index_edges(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(BOUNDS[0]) == 0  # values <= first bound land in 0
        assert bucket_index(BOUNDS[-1] * 2) == len(BOUNDS)  # overflow bucket

    def test_relative_resolution_about_26_percent(self):
        ratios = [b / a for a, b in zip(BOUNDS, BOUNDS[1:])]
        assert all(abs(r - 10 ** 0.1) < 1e-9 for r in ratios)


class TestObserve:
    def test_exact_moments(self):
        h = Histogram()
        for v in (0.001, 0.004, 0.002):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.007)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.004)

    def test_single_value_percentiles_are_exact(self):
        h = Histogram()
        h.observe(0.123)
        for q in (1, 50, 90, 99, 100):
            assert h.percentile(q) == pytest.approx(0.123)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_percentile_within_bucket_resolution(self):
        h = Histogram()
        rng = random.Random(7)
        values = [rng.uniform(0.001, 1.0) for _ in range(500)]
        for v in values:
            h.observe(v)
        values.sort()
        true_p50 = values[len(values) // 2]
        # one geometric bucket is a ~26% step; allow one step either way
        assert h.percentile(50) == pytest.approx(true_p50, rel=0.3)

    def test_percentiles_clamped_to_observed_range(self):
        h = Histogram()
        h.observe(0.010)
        h.observe(0.011)
        assert h.min <= h.percentile(1) <= h.percentile(99) <= h.max

    def test_overflow_values_counted(self):
        h = Histogram()
        h.observe(1e6)  # beyond the last bound
        assert h.count == 1
        assert h.counts[-1] == 1
        assert h.percentile(99) == pytest.approx(1e6)

    def test_summary_keys_contract(self):
        h = Histogram()
        h.observe(0.5)
        s = h.summary()
        assert set(s) == {"count", "sum_s", "min_s", "max_s", "p50_s", "p90_s", "p99_s"}
        empty = Histogram().summary()
        assert empty == {"count": 0, "sum_s": 0.0, "min_s": 0.0, "max_s": 0.0}


class TestMerge:
    def test_merge_equals_combined_observation(self):
        rng = random.Random(3)
        values = [rng.uniform(1e-6, 10.0) for _ in range(200)]
        combined = Histogram()
        a, b = Histogram(), Histogram()
        for i, v in enumerate(values):
            combined.observe(v)
            (a if i % 2 else b).observe(v)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.sum == pytest.approx(combined.sum)
        assert a.min == combined.min
        assert a.max == combined.max

    def test_merge_with_empty_keeps_moments(self):
        h = Histogram()
        h.observe(0.25)
        h.merge(Histogram())
        assert h.count == 1
        assert h.min == pytest.approx(0.25)
        assert not math.isinf(h.min)


class TestTransport:
    def test_roundtrip(self):
        h = Histogram()
        for v in (1e-8, 0.003, 0.2, 1e5):
            h.observe(v)
        back = Histogram.from_obj(h.to_obj())
        assert back.counts == h.counts
        assert back.count == h.count
        assert back.sum == pytest.approx(h.sum)
        assert back.min == h.min and back.max == h.max

    def test_sparse_encoding_skips_empty_buckets(self):
        h = Histogram()
        h.observe(0.01)
        obj = h.to_obj()
        assert len(obj["buckets"]) == 1

    def test_from_obj_tolerates_garbage_bucket_indices(self):
        h = Histogram.from_obj({"buckets": [[-3, 5], [10 ** 6, 2], [4, 1]], "count": 1})
        assert h.counts[4] == 1
        assert sum(h.counts) == 1
