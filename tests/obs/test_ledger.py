"""Run ledger: snapshot persistence, run resolution, history, diffing."""

import pytest

from repro import obs
from repro.obs import ledger
from repro.obs.export import METRICS_SCHEMA
from repro.util.errors import ReproError


def make_snapshot(run_id, command="compare", duration=1.0, corpus="abc123", **kw):
    """A ledger snapshot with a real (tiny) collected metrics section."""
    with obs.collect() as col:
        with obs.span("ted"):
            pass
        obs.add("work.calls", 3)
    snap = ledger.snapshot_from_collector(
        col,
        command=command,
        argv=["silvervale", command],
        duration_s=duration,
        workload={"app": kw.pop("app", "tealeaf")},
        corpus=corpus,
        run_id=run_id,
    )
    snap.update(kw)
    return snap


@pytest.fixture
def store(tmp_path):
    return ledger.RunLedgerStore(tmp_path)


class TestStore:
    def test_run_ids_sorted_oldest_first(self, store):
        for rid in ("20260103T000000-000000-1", "20260101T000000-000000-1",
                    "20260102T000000-000000-1"):
            ledger.record_run(store, make_snapshot(rid))
        assert store.run_ids() == [
            "20260101T000000-000000-1",
            "20260102T000000-000000-1",
            "20260103T000000-000000-1",
        ]

    def test_roundtrip_preserves_snapshot(self, store):
        snap = make_snapshot("20260101T000000-000000-1")
        ledger.record_run(store, snap)
        back = store.load(snap["run"])
        assert back == snap
        assert back["metrics"]["schema"] == METRICS_SCHEMA
        assert back["metrics"]["counters"]["work.calls"] == 3
        assert "ted" in back["metrics"]["hists"]

    def test_new_run_ids_are_time_ordered(self):
        a = ledger.new_run_id(now=1000.0)
        b = ledger.new_run_id(now=2000.5)
        assert a < b

    def test_corpus_fingerprint_stable_and_model_sensitive(self):
        full = ledger.corpus_fingerprint("tealeaf")
        assert full == ledger.corpus_fingerprint("tealeaf")
        assert len(full) == 16
        sliced = ledger.corpus_fingerprint("tealeaf", models=["omp"])
        assert sliced != full

    def test_corpus_fingerprint_unknown_app_is_none(self):
        assert ledger.corpus_fingerprint("no-such-app") is None


class TestResolveRun:
    def test_empty_ledger_raises(self, store):
        with pytest.raises(ReproError, match="empty"):
            ledger.resolve_run(store, "last")

    def test_last_and_prev(self, store):
        for rid in ("20260101T000000-000000-1", "20260102T000000-000000-1"):
            ledger.record_run(store, make_snapshot(rid))
        assert ledger.resolve_run(store, "last") == "20260102T000000-000000-1"
        assert ledger.resolve_run(store, "latest") == "20260102T000000-000000-1"
        assert ledger.resolve_run(store, "prev") == "20260101T000000-000000-1"
        assert ledger.resolve_run(store, "previous") == "20260101T000000-000000-1"

    def test_prev_requires_two_runs(self, store):
        ledger.record_run(store, make_snapshot("20260101T000000-000000-1"))
        with pytest.raises(ReproError, match="previous"):
            ledger.resolve_run(store, "prev")

    def test_unique_prefix_resolves(self, store):
        ledger.record_run(store, make_snapshot("20260101T000000-000000-1"))
        ledger.record_run(store, make_snapshot("20260215T000000-000000-1"))
        assert ledger.resolve_run(store, "202602") == "20260215T000000-000000-1"

    def test_ambiguous_prefix_raises(self, store):
        ledger.record_run(store, make_snapshot("20260101T000000-000000-1"))
        ledger.record_run(store, make_snapshot("20260102T000000-000000-1"))
        with pytest.raises(ReproError, match="ambiguous"):
            ledger.resolve_run(store, "2026")

    def test_no_match_raises(self, store):
        ledger.record_run(store, make_snapshot("20260101T000000-000000-1"))
        with pytest.raises(ReproError, match="no ledger snapshot"):
            ledger.resolve_run(store, "1999")


class TestHistory:
    def test_filters_and_limit(self, store):
        ledger.record_run(store, make_snapshot("20260101T000000-000000-1", command="index"))
        ledger.record_run(store, make_snapshot("20260102T000000-000000-1", command="compare"))
        ledger.record_run(
            store, make_snapshot("20260103T000000-000000-1", command="compare", app="babelstream")
        )
        assert [s["run"][:8] for s in ledger.history(store)] == [
            "20260101", "20260102", "20260103",
        ]
        assert len(ledger.history(store, command="compare")) == 2
        assert len(ledger.history(store, app="babelstream")) == 1
        newest = ledger.history(store, limit=1)
        assert [s["run"][:8] for s in newest] == ["20260103"]  # keeps the newest

    def test_unreadable_snapshot_skipped(self, store, tmp_path):
        ledger.record_run(store, make_snapshot("20260101T000000-000000-1"))
        (tmp_path / "obs-20260102T000000-000000-1.svc").write_text("not json {")
        assert len(ledger.history(store)) == 1


class TestDiff:
    def test_counter_and_latency_deltas(self, store):
        a = make_snapshot("20260101T000000-000000-1", duration=2.0)
        b = make_snapshot("20260102T000000-000000-1", duration=1.0)
        b["metrics"]["counters"]["work.calls"] = 5
        d = ledger.diff_snapshots(a, b)
        assert d["schema_ok"] is True
        assert d["comparable"] is True  # same corpus + command
        assert d["counters"]["work.calls"] == {"before": 3, "after": 5, "delta": 2}
        assert d["duration_s"]["delta"] == pytest.approx(-1.0)
        assert "ted" in d["hists"]

    def test_schema_mismatch_is_flagged(self):
        a = make_snapshot("20260101T000000-000000-1")
        b = make_snapshot("20260102T000000-000000-1")
        b["metrics"]["schema"] = "repro.obs/v1"
        d = ledger.diff_snapshots(a, b)
        assert d["schema_ok"] is False
        assert d["schemas"] == {"before": METRICS_SCHEMA, "after": "repro.obs/v1"}

    def test_different_corpus_not_comparable(self):
        a = make_snapshot("20260101T000000-000000-1", corpus="aaaa")
        b = make_snapshot("20260102T000000-000000-1", corpus="bbbb")
        assert ledger.diff_snapshots(a, b)["comparable"] is False

    def test_missing_corpus_not_comparable(self):
        a = make_snapshot("20260101T000000-000000-1", corpus=None)
        b = make_snapshot("20260102T000000-000000-1", corpus=None)
        assert ledger.diff_snapshots(a, b)["comparable"] is False

    def test_regression_detection_respects_frac_and_floor(self):
        a = make_snapshot("20260101T000000-000000-1")
        b = make_snapshot("20260102T000000-000000-1")
        a["metrics"]["hists"] = {
            "slow": {"count": 10, "p50_s": 0.10, "p99_s": 0.100},
            "tiny": {"count": 10, "p50_s": 0.0001, "p99_s": 0.0001},
            "steady": {"count": 10, "p50_s": 0.10, "p99_s": 0.100},
        }
        b["metrics"]["hists"] = {
            # +50% and above the absolute floor -> regression
            "slow": {"count": 10, "p50_s": 0.15, "p99_s": 0.150},
            # +900% but below REGRESSION_FLOOR_S absolute -> ignored
            "tiny": {"count": 10, "p50_s": 0.001, "p99_s": 0.001},
            # +10% -> below REGRESSION_FRAC -> ignored
            "steady": {"count": 10, "p50_s": 0.11, "p99_s": 0.110},
        }
        assert ledger.diff_snapshots(a, b)["regressions"] == ["slow"]

    def test_empty_hists_do_not_crash(self):
        a = make_snapshot("20260101T000000-000000-1")
        b = make_snapshot("20260102T000000-000000-1")
        a["metrics"]["hists"]["ted"] = {"count": 0, "sum_s": 0.0, "min_s": 0.0, "max_s": 0.0}
        d = ledger.diff_snapshots(a, b)
        assert "ted" not in d["hists"]


class TestHarnessEnvelope:
    def test_artifact_shape(self):
        art = ledger.harness_artifact("bench", {"cases": []})
        assert art["schema"] == ledger.HARNESS_SCHEMA
        assert art["kind"] == "bench"
        assert art["metrics_schema"] == METRICS_SCHEMA
        assert art["report"] == {"cases": []}

    def test_write_harness_artifact(self, tmp_path):
        import json

        p = ledger.write_harness_artifact(tmp_path / "X.json", "fuzz", {"crashes": []})
        data = json.loads(p.read_text())
        assert data["schema"] == ledger.HARNESS_SCHEMA
        assert data["report"] == {"crashes": []}

    def test_record_harness_run_lands_in_ledger(self, tmp_path):
        rid = ledger.record_harness_run(str(tmp_path), "chaos", None, {"ok": True}, duration_s=2.5)
        store = ledger.RunLedgerStore(tmp_path)
        snap = store.load(rid)
        assert snap["command"] == "harness:chaos"
        assert snap["report"] == {"ok": True}
        assert snap["duration_s"] == 2.5

    def test_record_harness_run_never_raises(self, tmp_path, capsys):
        target = tmp_path / "blocked"
        target.write_text("a file where a directory must go")
        assert ledger.record_harness_run(str(target), "bench", None, {}) is None
        assert "warning" in capsys.readouterr().err

    def test_record_harness_run_noop_without_dir(self):
        assert ledger.record_harness_run(None, "bench", None, {}) is None
