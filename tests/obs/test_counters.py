"""Counter/gauge accumulation and the instrumented hot paths."""

from repro import obs
from repro.distance.ted import cache_stats, clear_ted_cache, ted, ted_lower_bound
from repro.trees import from_sexpr


class TestAccumulation:
    def test_add_accumulates(self):
        with obs.collect() as c:
            obs.add("n")
            obs.add("n", 2)
            obs.add("other", 0.5)
        assert c.counters == {"n": 3.0, "other": 0.5}

    def test_gauge_overwrites(self):
        with obs.collect() as c:
            obs.gauge("size", 1)
            obs.gauge("size", 9)
        assert c.gauges == {"size": 9}

    def test_get_reads_active_counter(self):
        with obs.collect():
            obs.add("x", 4)
            assert obs.get("x") == 4.0
            assert obs.get("missing") == 0.0
        assert obs.get("x") == 0.0  # no collector -> 0

    def test_get_is_counter_only(self):
        # gauges and histograms are separate namespaces: get() must treat a
        # gauge name exactly like an unknown counter, not read through
        with obs.collect():
            obs.gauge("size", 9)
            obs.observe("lat", 0.5)
            assert obs.get("size") == 0.0
            assert obs.get("lat") == 0.0
            assert obs.get_gauge("size") == 9.0
            assert obs.get_gauge("missing", default=-1.0) == -1.0
            assert obs.get_histogram("lat").count == 1
            assert obs.get_histogram("missing") is None
        assert obs.get_gauge("size") == 0.0  # no collector -> default
        assert obs.get_histogram("lat") is None

    def test_observe_records_distribution(self):
        with obs.collect() as c:
            obs.observe("lat", 0.002)
            obs.observe("lat", 0.004)
        assert c.hists["lat"].count == 2
        assert c.hists["lat"].sum == 0.006

    def test_noop_without_collector(self):
        obs.add("ignored")
        obs.gauge("ignored", 1)  # must not raise or leak anywhere
        obs.observe("ignored", 0.1)


class TestTedCounters:
    def test_hit_miss_shortcut_distinct(self):
        clear_ted_cache()
        a = from_sexpr("(a (b c) (d e))")
        b = from_sexpr("(a (b x) (d e f))")
        with obs.collect() as c:
            ted(a, b)  # miss (DP runs)
            ted(a, b)  # memo hit
            ted(a, a.copy())  # identical-hash shortcut
        assert c.counters["ted.cache.miss"] == 1
        assert c.counters["ted.cache.hit"] == 1
        assert c.counters["ted.shortcut"] == 1
        assert c.gauges["ted.cache.size"] == 2

    def test_lower_bound_emits_no_filter_counters(self):
        # the old ted.filter.* taxonomy is retired: pruning effectiveness is
        # now tracked per cascade stage as ted.pruned.<stage>
        with obs.collect() as c:
            same = from_sexpr("(a b)")
            assert ted_lower_bound(same, same.copy()) == 0
            assert ted_lower_bound(from_sexpr("(a b)"), from_sexpr("(x y z)")) > 0
        assert not any(k.startswith("ted.filter.") for k in c.counters)

    def test_hash_prune_counter(self):
        clear_ted_cache()
        a = from_sexpr("(a (b c) (d e))")
        with obs.collect() as c:
            ted(a, a.copy())
        assert c.counters["ted.pruned.hash"] == 1
        assert c.counters["ted.shortcut"] == 1

    def test_zs_work_counters(self):
        clear_ted_cache()
        with obs.collect() as c:
            ted(from_sexpr("(a (b c) (d e))"), from_sexpr("(a (b x) (d e f))"))
        assert c.counters["zs.calls"] == 1
        assert c.counters["zs.keyroot_pairs"] > 0
        assert c.counters["zs.dp_cells"] > 0

    def test_module_stats_always_on(self):
        clear_ted_cache()
        a = from_sexpr("(m n)")
        b = from_sexpr("(m o p)")
        ted(a, b)  # no collector installed
        ted(a, b)
        s = cache_stats()
        assert s["miss"] == 1 and s["hit"] == 1


class TestLexCounters:
    def test_cpp_tokens_counted(self):
        from repro.lang.cpp.lexer import lex

        with obs.collect() as c:
            toks = lex("int x = 1;\n", "t.cpp")
        assert c.counters["lex.cpp.calls"] == 1
        assert c.counters["lex.cpp.tokens"] == len(toks)

    def test_fortran_tokens_counted(self):
        from repro.lang.fortran.lexer import lex_fortran

        with obs.collect() as c:
            toks = lex_fortran("x = 1\n", "t.f90")
        assert c.counters["lex.fortran.calls"] == 1
        assert c.counters["lex.fortran.tokens"] == len(toks)
