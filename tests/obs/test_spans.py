"""Span semantics: nesting, ordering, no-op behaviour, thread fallback."""

import threading

from repro import obs
from repro.obs.spans import _NOOP


class TestDisabled:
    def test_span_is_shared_noop_when_no_collector(self):
        assert obs.span("x") is _NOOP
        assert obs.span("y") is _NOOP  # same object, no allocation

    def test_noop_span_supports_protocol(self):
        with obs.span("x") as s:
            s.set(foo=1)  # must not raise

    def test_enabled_flag(self):
        assert not obs.enabled()
        with obs.collect():
            assert obs.enabled()
        assert not obs.enabled()

    def test_traced_calls_through_when_disabled(self):
        @obs.traced("f")
        def f(x):
            return x + 1

        assert f(1) == 2

    def test_current_collector_none_when_disabled(self):
        assert obs.current_collector() is None

    def test_noop_span_index_is_minus_one(self):
        # pool code reads span.index to re-parent adopted worker spans;
        # the disabled path must yield the "no parent" sentinel
        assert obs.span("x").index == -1

    def test_live_span_index_matches_record(self):
        with obs.collect() as c:
            with obs.span("a") as sa:
                assert sa.index == 0
                with obs.span("b") as sb:
                    assert sb.index == 1
        assert [r.index for r in c.spans] == [0, 1]


class TestNesting:
    def test_parent_child_links(self):
        with obs.collect() as c:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        outer = [r for r in c.spans if r.name == "outer"]
        inner = [r for r in c.spans if r.name == "inner"]
        assert len(outer) == 1 and len(inner) == 2
        assert outer[0].parent == -1
        assert all(r.parent == outer[0].index for r in inner)

    def test_sibling_order_preserved(self):
        with obs.collect() as c:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        names = [r.name for r in c.spans]
        assert names == ["a", "b"]

    def test_durations_nonnegative_and_nested_fit(self):
        with obs.collect() as c:
            with obs.span("outer"):
                with obs.span("inner"):
                    sum(range(1000))
        outer = next(r for r in c.spans if r.name == "outer")
        inner = next(r for r in c.spans if r.name == "inner")
        assert inner.duration >= 0
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_span_attrs_recorded(self):
        with obs.collect() as c:
            with obs.span("stage", path="f.cpp") as s:
                s.set(tokens=7)
        rec = c.spans[0]
        assert rec.attrs == {"path": "f.cpp", "tokens": 7}

    def test_traced_uses_qualname_by_default(self):
        @obs.traced()
        def my_stage():
            return 3

        with obs.collect() as c:
            assert my_stage() == 3
        assert any("my_stage" in r.name for r in c.spans)

    def test_exception_still_closes_span(self):
        with obs.collect() as c:
            try:
                with obs.span("boom"):
                    raise ValueError("x")
            except ValueError:
                pass
            with obs.span("after"):
                pass
        after = next(r for r in c.spans if r.name == "after")
        assert after.parent == -1  # "boom" was popped despite the exception


class TestResetSemantics:
    def test_each_collect_window_starts_clean(self):
        with obs.collect() as c1:
            with obs.span("x"):
                pass
            obs.add("k")
        with obs.collect() as c2:
            pass
        assert len(c1.spans) == 1 and c1.counters == {"k": 1.0}
        assert c2.spans == [] and c2.counters == {}

    def test_nested_collect_shadows_outer(self):
        with obs.collect() as outer:
            with obs.span("for-outer"):
                pass
            with obs.collect() as inner:
                with obs.span("for-inner"):
                    pass
        assert [r.name for r in outer.spans] == ["for-outer"]
        assert [r.name for r in inner.spans] == ["for-inner"]


class TestThreads:
    def test_worker_thread_spans_fall_back_to_installed_collector(self):
        def work():
            with obs.span("worker"):
                pass

        with obs.collect() as c:
            t = threading.Thread(target=work)
            t.start()
            t.join()
        recs = [r for r in c.spans if r.name == "worker"]
        assert len(recs) == 1
        assert recs[0].parent == -1  # roots at the collector, not the main stack
