"""Export surfaces: aggregation, Chrome trace schema, metrics JSON."""

import json

from repro import obs
from repro.viz.ascii import ascii_counters, ascii_span_tree


def _sample_collector() -> obs.Collector:
    with obs.collect() as c:
        with obs.span("pipeline"):
            for _ in range(3):
                with obs.span("stage", path="a.cpp"):
                    pass
            with obs.span("other"):
                pass
        obs.add("tokens", 42)
        obs.gauge("cache.size", 7)
    return c


class TestAggregation:
    def test_sibling_spans_merge_by_name(self):
        c = _sample_collector()
        roots = obs.aggregate_spans(c)
        assert [r.name for r in roots] == ["pipeline"]
        pipeline = roots[0]
        assert set(pipeline.children) == {"stage", "other"}
        assert pipeline.children["stage"].count == 3
        assert pipeline.children["other"].count == 1

    def test_self_time_excludes_children(self):
        c = _sample_collector()
        pipeline = obs.aggregate_spans(c)[0]
        child_total = sum(ch.total for ch in pipeline.children.values())
        assert abs(pipeline.self_time - (pipeline.total - child_total)) < 1e-9

    def test_ascii_tree_renders_counts_and_names(self):
        c = _sample_collector()
        text = ascii_span_tree(obs.aggregate_spans(c))
        assert "pipeline" in text and "stage" in text and "×3" in text

    def test_ascii_counters_renders(self):
        c = _sample_collector()
        text = ascii_counters(c.counters, c.gauges)
        assert "tokens" in text and "42" in text and "(gauge)" in text


class TestChromeTrace:
    def test_schema_round_trip(self, tmp_path):
        c = _sample_collector()
        path = obs.write_chrome_trace(c, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(c.spans)
        for e in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            assert e["dur"] >= 0
        counters = [e for e in data["traceEvents"] if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {"tokens"}

    def test_span_attrs_become_args(self):
        c = _sample_collector()
        trace = obs.chrome_trace(c)
        stage_events = [e for e in trace["traceEvents"] if e["name"] == "stage"]
        assert all(e["args"] == {"path": "a.cpp"} for e in stage_events)

    def test_timestamps_are_relative_microseconds(self):
        c = _sample_collector()
        trace = obs.chrome_trace(c)
        ts = [e["ts"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(ts) >= 0.0


class TestMetricsJson:
    def test_flat_snapshot_shape(self, tmp_path):
        c = _sample_collector()
        path = obs.write_metrics(c, tmp_path / "metrics.json", extra={"app": "demo"})
        data = json.loads(path.read_text())
        assert data["schema"] == obs.METRICS_SCHEMA
        assert data["app"] == "demo"
        assert data["counters"] == {"tokens": 42.0}
        assert data["gauges"] == {"cache.size": 7}
        stage = data["spans"]["stage"]
        assert stage["count"] == 3
        assert stage["total_s"] >= stage["min_s"] >= 0
        assert stage["max_s"] >= stage["min_s"]

    def test_self_time_in_flat_spans(self):
        c = _sample_collector()
        data = obs.metrics_json(c)
        pipeline = data["spans"]["pipeline"]
        children = data["spans"]["stage"]["total_s"] + data["spans"]["other"]["total_s"]
        assert abs(pipeline["self_s"] - max(pipeline["total_s"] - children, 0.0)) < 1e-9

    def test_v2_hists_section(self):
        c = _sample_collector()
        data = obs.metrics_json(c)
        assert data["schema"] == "repro.obs/v2"
        # every span name doubles as a latency histogram (auto-observed)
        assert set(data["hists"]) == {"pipeline", "stage", "other"}
        stage = data["hists"]["stage"]
        assert stage["count"] == 3
        assert {"p50_s", "p90_s", "p99_s"} <= set(stage)

    def test_empty_collector_exports_cleanly(self):
        with obs.collect() as c:
            pass
        assert obs.metrics_json(c)["spans"] == {}
        assert obs.metrics_json(c)["hists"] == {}
        assert obs.chrome_trace(c)["traceEvents"][0]["ph"] == "M"
