"""Coverage profile and GCov report tests."""

from repro.coverage import CoverageProfile, gcov_report, merge_profiles, profile_from_run
from repro.exec import run_program
from repro.lang.cpp.parser import parse_unit
from repro.lang.cpp.sema import analyze
from repro.lang.source import VirtualFS


SRC = "int main() {\nint a = 1;\nif (a > 5) {\nint dead = 0;\n}\nreturn a;\n}"


def run_src():
    fs = VirtualFS().add("main.cpp", SRC)
    tu = parse_unit(fs, "main.cpp")
    return fs, run_program(tu, analyze(tu))


class TestProfile:
    def test_from_run(self):
        _, res = run_src()
        p = profile_from_run(res)
        assert p.hits[("main.cpp", 2)] >= 1
        assert ("main.cpp", 4) not in p.hits

    def test_line_mask_unknown_uncovered(self):
        _, res = run_src()
        mask = profile_from_run(res).line_mask()
        assert not mask.covered("other.cpp", 1)

    def test_merge(self):
        a = CoverageProfile()
        a.record("f", 1)
        b = CoverageProfile()
        b.record("f", 2)
        b.record("f", 1)
        m = merge_profiles([a, b])
        assert m.hits[("f", 1)] == 2 and m.hits[("f", 2)] == 1

    def test_covered_lines(self):
        p = CoverageProfile()
        p.record("f", 3)
        p.record("f", 7)
        assert p.covered_lines("f") == {3, 7}
        assert p.covered_lines("g") == set()


class TestGcovReport:
    def test_format(self):
        fs, res = run_src()
        report = gcov_report(profile_from_run(res), fs, "main.cpp")
        lines = report.splitlines()
        assert lines[0].endswith("Source:main.cpp")
        # executed line shows a count
        assert any(":    2:" in row and row.strip()[0].isdigit() for row in lines)
        # dead line shows #####
        assert any("#####" in row and ":    4:" in row for row in lines)
