"""Compressed container format tests."""

import pytest

from repro.serde import MAGIC, read_blob, write_blob
from repro.util.errors import SerdeError


class TestContainer:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.svdb"
        obj = {"trees": [1, 2, 3], "meta": {"app": "babelstream"}}
        n = write_blob(path, obj)
        assert n > 0
        assert read_blob(path) == obj

    def test_magic_present(self, tmp_path):
        path = tmp_path / "x.svdb"
        write_blob(path, [1])
        assert path.read_bytes().startswith(MAGIC)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not.svdb"
        path.write_bytes(b"definitely not a db")
        with pytest.raises(SerdeError, match="not a Codebase DB"):
            read_blob(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "x.svdb"
        write_blob(path, {"k": "v"})
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(SerdeError):
            read_blob(path)

    def test_corrupt_payload_rejected(self, tmp_path):
        path = tmp_path / "x.svdb"
        write_blob(path, {"k": "v"})
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SerdeError):
            read_blob(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "x.svdb"
        write_blob(path, 1)
        data = bytearray(path.read_bytes())
        data[len(MAGIC)] = 99
        path.write_bytes(bytes(data))
        with pytest.raises(SerdeError, match="version"):
            read_blob(path)

    def test_compression_effective(self, tmp_path):
        path = tmp_path / "x.svdb"
        obj = ["the same line of text"] * 500
        n = write_blob(path, obj)
        from repro.serde import pack

        assert n < len(pack(obj)) / 4  # highly repetitive data compresses
