"""MessagePack codec: spec golden bytes + round-trip properties."""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.serde import pack, unpack
from repro.util.errors import SerdeError


class TestGoldenBytes:
    """Wire-format checks against the MessagePack specification."""

    @pytest.mark.parametrize(
        "obj,expected",
        [
            (None, b"\xc0"),
            (False, b"\xc2"),
            (True, b"\xc3"),
            (0, b"\x00"),
            (127, b"\x7f"),
            (-1, b"\xff"),
            (-32, b"\xe0"),
            (128, b"\xcc\x80"),
            (256, b"\xcd\x01\x00"),
            (65536, b"\xce\x00\x01\x00\x00"),
            (-33, b"\xd0\xdf"),
            (-129, b"\xd1\xff\x7f"),
            ("", b"\xa0"),
            ("abc", b"\xa3abc"),
            ([], b"\x90"),
            ([1, 2], b"\x92\x01\x02"),
            ({}, b"\x80"),
            ({"a": 1}, b"\x81\xa1a\x01"),
            (b"\x01\x02", b"\xc4\x02\x01\x02"),
        ],
    )
    def test_encoding(self, obj, expected):
        assert pack(obj) == expected

    def test_float64_encoding(self):
        import struct

        assert pack(1.5) == b"\xcb" + struct.pack(">d", 1.5)
        assert unpack(pack(1.5)) == 1.5

    def test_str8(self):
        s = "x" * 40
        data = pack(s)
        assert data[0] == 0xD9 and data[1] == 40

    def test_str16(self):
        s = "x" * 300
        assert pack(s)[0] == 0xDA

    def test_array16(self):
        data = pack(list(range(20)))
        assert data[0] == 0xDC

    def test_map16(self):
        data = pack({f"k{i}": i for i in range(20)})
        assert data[0] == 0xDE

    def test_uint64(self):
        v = 2**63
        assert unpack(pack(v)) == v

    def test_int64_min(self):
        v = -(2**63)
        assert unpack(pack(v)) == v


class TestErrors:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(SerdeError):
            unpack(pack(1) + b"\x00")

    def test_truncated_rejected(self):
        with pytest.raises(SerdeError):
            unpack(b"\xa5ab")

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerdeError):
            pack(object())

    def test_out_of_range_int_rejected(self):
        with pytest.raises(SerdeError):
            pack(2**64)

    def test_ext_tag_rejected(self):
        with pytest.raises(SerdeError):
            unpack(b"\xc1")


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=60),
    st.binary(max_size=60),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=10), children, max_size=6),
    ),
    max_leaves=25,
)


@settings(max_examples=150, deadline=None)
@given(_values)
def test_round_trip(obj):
    back = unpack(pack(obj))
    assert back == obj


@settings(max_examples=60, deadline=None)
@given(st.floats(allow_nan=True, allow_infinity=True))
def test_float_round_trip_bitexact(x):
    back = unpack(pack(x))
    assert (math.isnan(x) and math.isnan(back)) or back == x
