"""Token-stream line summaries shared by the C++ and Fortran indexers.

Both frontends reduce a token stream to the same three line
representations (Fig. 3 of the paper):

* ``sig`` — file → significant (code-bearing) line numbers,
* ``lines`` — whitespace/comment-normalised token text per logical line,
* ``tags`` — the ``(file, line)`` origin of each normalised line.

They differ only in how logical lines are delimited: the C++ tokeniser
carries no newline tokens, so a new ``(file, line)`` key starts a new
group (``auto_break=True``); the Fortran tokeniser has explicit
``NEWLINE``/``EOF`` tokens, so the indexer calls :meth:`break_line`
itself (``auto_break=False``) and reads the statement count back as
``len(summary.lines)``.
"""

from __future__ import annotations

from typing import Optional


class LineSummary:
    """Accumulates line representations from one significant-token stream.

    Feed only semantic-bearing tokens (no trivia, comments or EOF); call
    :meth:`finish` once to flush the trailing group.
    """

    def __init__(self, auto_break: bool = True) -> None:
        self.auto_break = auto_break
        #: file -> set of significant line numbers
        self.sig: dict[str, set[int]] = {}
        #: normalised token text, one entry per logical line group
        self.lines: list[str] = []
        #: (file, line) of each group's first token, aligned with ``lines``
        self.tags: list[tuple[str, int]] = []
        self._cur: list[str] = []
        self._tag: Optional[tuple[str, int]] = None

    def feed(self, file: str, line: int, text: str) -> None:
        """Add one significant token at ``(file, line)``."""
        self.sig.setdefault(file, set()).add(line)
        key = (file, line)
        if self.auto_break and self._cur and key != self._tag:
            self.break_line()
        if not self._cur:
            self._tag = key
        self._cur.append(text)

    def break_line(self) -> None:
        """Close the current group (explicit delimiter, e.g. a NEWLINE)."""
        if self._cur and self._tag is not None:
            self.lines.append(" ".join(self._cur))
            self.tags.append(self._tag)
            self._cur = []

    def finish(self) -> "LineSummary":
        """Flush the trailing group; returns self for chaining."""
        self.break_line()
        return self
