"""Compilation Database ingestion (paper §IV).

SilverVale "ingests a Compilation DB file from a codebase that has been
successfully compiled previously" — the CMake/Meson/Bear
``compile_commands.json`` format. We parse the same format and derive
MiniC++ compile options from the recorded flags.
"""

from __future__ import annotations

import json
import shlex
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.compiler.lower import CompileOptions
from repro.util.errors import WorkflowError


@dataclass
class CompileCommand:
    """One entry of a compile_commands.json."""

    file: str
    arguments: list[str] = field(default_factory=list)
    directory: str = "."
    output: str = ""


def parse_compile_db(source: Union[str, Path]) -> list[CompileCommand]:
    """Parse compile_commands.json text or a path to it."""
    text: str
    p = Path(str(source))
    if "\n" not in str(source) and p.suffix == ".json" and p.exists():
        text = p.read_text()
    else:
        text = str(source)
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as e:
        raise WorkflowError(f"invalid compile DB JSON: {e}") from e
    if not isinstance(raw, list):
        raise WorkflowError("compile DB must be a JSON array")
    out: list[CompileCommand] = []
    for entry in raw:
        if "file" not in entry:
            raise WorkflowError("compile DB entry missing 'file'")
        args = entry.get("arguments")
        if args is None and "command" in entry:
            args = shlex.split(entry["command"])
        out.append(
            CompileCommand(
                file=entry["file"],
                arguments=list(args or []),
                directory=entry.get("directory", "."),
                output=entry.get("output", ""),
            )
        )
    return out


def options_from_command(cmd: CompileCommand) -> tuple[CompileOptions, dict[str, str]]:
    """Derive (CompileOptions, -D defines) from recorded compiler flags."""
    dialect = "host"
    openmp = False
    defines: dict[str, str] = {}
    args = cmd.arguments
    for i, a in enumerate(args):
        if a == "-x" and i + 1 < len(args):
            nxt = args[i + 1]
            if nxt in ("cuda", "hip"):
                dialect = nxt
        elif a in ("-fsycl", "--sycl"):
            dialect = "sycl"
        elif a in ("--hip", "-hip"):
            dialect = "hip"
        elif a in ("-fopenmp", "-qopenmp", "-fopenmp=libomp"):
            openmp = True
        elif a.startswith("-fopenmp-targets"):
            openmp = True
        elif a.startswith("-D"):
            body = a[2:]
            if "=" in body:
                k, v = body.split("=", 1)
                defines[k] = v
            elif body:
                defines[body] = "1"
    if dialect == "host":
        if cmd.file.endswith(".cu"):
            dialect = "cuda"
        elif cmd.file.endswith(".hip"):
            dialect = "hip"
    name = cmd.file.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return CompileOptions(dialect=dialect, openmp=openmp, name=name), defines
