"""``silvervale`` command-line interface.

Subcommands mirror the paper's workflow:

* ``index``   — index a corpus app/model into a Codebase DB file,
* ``compare`` — divergence of one model from a baseline under a metric,
* ``cluster`` — dendrogram of all models of an app under a metric,
* ``nearest`` — k nearest models by symmetrized divergence (metric index),
* ``heatmap`` — divergence-from-serial heatmap rows,
* ``phi``     — Φ table / cascade data from the performance model,
* ``stats``   — run a workload and dump spans / counters / cache stats,
* ``cache``   — inspect or clear the persistent TED cache,
* ``obs``     — run-ledger trend tools: ``history``, ``diff``, ``report``,
* ``serve``   — long-lived HTTP daemon serving the same analyses as JSON,
* ``apps``    — list corpus apps and models.

Every subcommand accepts ``--profile`` (print a nested span report, the
counter table and per-span latency percentiles after the run),
``--trace-out FILE`` (Chrome trace-event JSON — load in
``chrome://tracing`` / Perfetto; pool workers appear as their own pid
lanes) and ``--metrics-out FILE`` (flat metrics JSON the benchmark
harness diffs across PRs).

Run ledger: every workload subcommand (``index``, ``compare``,
``cluster``, ``heatmap``, ``figures``, ``stats``) records a metrics
snapshot into the ``obs`` namespace of the shared artifact root on
completion (``--no-ledger`` opts out); ``silvervale obs history`` tabulates
recent runs, ``obs diff prev last`` shows counter and latency deltas with
regression highlighting, and ``obs report`` summarises one run.

Matrix-sweeping subcommands additionally accept ``--jobs N`` (parallel
distance engine; default serial), ``--cache-dir DIR`` (persistent TED cache,
also settable via ``REPRO_CACHE_DIR``) and ``--no-cache`` (ignore any
configured cache for this run), plus the fault-tolerance options:
``--chunk-timeout S`` (watchdog deadline per scheduled chunk),
``--retries N`` (rescheduling budget for timed-out/crashed chunks),
``--checkpoint-dir DIR`` (periodic atomic partial-matrix checkpoints, also
settable via ``REPRO_CKPT_DIR``) and ``--resume`` (adopt a previous
interrupted run's checkpoint and recompute only unfinished work). An
interrupted run (Ctrl-C or SIGTERM) terminates its workers, flushes cache
and checkpoint, and names the resumable checkpoint on stderr.

Incremental indexing: subcommands that index (``index``, ``compare``,
``cluster``, ``heatmap``, ``figures``, ``stats``) persist per-unit index
artifacts in the shared artifact root (``--cache-dir`` / ``REPRO_CACHE_DIR``
/ ``.silvervale-cache``) and replay unchanged units from disk on the next
run — a warm re-index of an unchanged corpus runs zero frontend work.
``--no-incremental`` opts out; ``--strict`` implies a fresh, serial index.
``--jobs N`` also fans changed units across worker processes.

Error handling: indexing subcommands run with recovering frontends by
default — damaged units are quarantined, the run completes, and the
collected diagnostics are summarised on stderr (exit 0). ``--strict``
restores fail-fast behaviour: the first frontend error aborts the run with
exit 1.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import diag, obs
from repro.analysis.cluster import cluster_codebases
from repro.analysis.heatmap import HEATMAP_SPECS, divergence_heatmap
from repro.cache import TedCacheStore
from repro.ckpt import CheckpointStore, resolve_checkpoint_dir
from repro.corpus import APPS, app_models, index_app, index_model
from repro.distance.engine import DistanceEngine
from repro.distance.ted import cache_stats
from repro.perfport.cascade import cascade
from repro.perfport.perfmodel import PerfModel
from repro.perfport.pp_metric import phi_table
from repro.obs import ledger as runledger
from repro.viz.ascii import (
    ascii_bars,
    ascii_counters,
    ascii_dendrogram,
    ascii_heatmap,
    ascii_hist_table,
    ascii_span_tree,
)
from repro.util.errors import ReproError
from repro.artifacts import scan_namespaces
from repro.metricindex import VpIndexStore
from repro.workflow.codebasedb import save_codebase_db
from repro.workflow.comparer import (
    MetricSpec,
    divergence_matrix,
    divergence_row,
    nearest_brute_force,
    parse_metric,
    tree_metric_kind,
)
from repro.workflow.unitstore import UnitArtifactStore


def _metric_spec(name: str) -> MetricSpec:
    # shared with the serve endpoints so both surfaces parse "Tsem+cov"
    # and friends identically (part of the bit-identity contract)
    return parse_metric(name)


def _cache_dir_from_args(args: argparse.Namespace) -> str | None:
    """Resolve the cache directory: ``--no-cache`` beats ``--cache-dir``
    beats the ``REPRO_CACHE_DIR`` environment default."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None) or os.environ.get("REPRO_CACHE_DIR") or None


def _artifacts_from_args(args: argparse.Namespace) -> UnitArtifactStore | None:
    """Unit-artifact store for incremental indexing.

    ``--no-incremental`` disables it; otherwise the root is ``--cache-dir``
    beats ``REPRO_CACHE_DIR`` beats the conventional local directory.
    ``--no-cache`` only disables the TED cache — incremental indexing has
    its own switch. An unusable root degrades to non-incremental indexing.
    """
    if not getattr(args, "incremental", True) or getattr(args, "strict", False):
        return None
    root = (
        getattr(args, "cache_dir", None)
        or os.environ.get("REPRO_CACHE_DIR")
        or ".silvervale-cache"
    )
    try:
        return UnitArtifactStore(root)
    except OSError:
        return None


def _index_kwargs(args: argparse.Namespace) -> dict:
    """Keyword arguments shared by every indexing subcommand."""
    return {
        "strict": _strict(args),
        "artifacts": _artifacts_from_args(args),
        "jobs": getattr(args, "jobs", 1),
    }


def _checkpoint_from_args(args: argparse.Namespace):
    """Build the checkpoint store when checkpointing is requested:
    ``--checkpoint-dir`` beats ``REPRO_CKPT_DIR``; bare ``--resume`` uses
    the conventional local directory."""
    ckpt_dir = resolve_checkpoint_dir(
        explicit=getattr(args, "checkpoint_dir", None),
        env=os.environ.get("REPRO_CKPT_DIR"),
        resume=getattr(args, "resume", False),
    )
    return CheckpointStore(ckpt_dir) if ckpt_dir else None


def _engine_from_args(args: argparse.Namespace) -> DistanceEngine:
    cache_dir = _cache_dir_from_args(args)
    cache = TedCacheStore(cache_dir) if cache_dir else None
    return DistanceEngine(
        jobs=getattr(args, "jobs", 1),
        cache=cache,
        chunk_timeout=getattr(args, "chunk_timeout", None),
        wave_timeout=getattr(args, "wave_timeout_s", None) or None,
        retries=getattr(args, "retries", 2),
        strict=getattr(args, "strict", False),
        checkpoint=_checkpoint_from_args(args),
        resume=getattr(args, "resume", False),
    )


def cmd_apps(args: argparse.Namespace) -> int:
    for app in APPS:
        print(f"{app}: {', '.join(app_models(app))}")
    return 0


def _strict(args: argparse.Namespace) -> bool:
    return getattr(args, "strict", False)


def cmd_index(args: argparse.Namespace) -> int:
    cb = index_model(args.app, args.model, coverage=args.coverage, **_index_kwargs(args))
    out = args.output or f"{args.app}-{args.model}.svdb"
    size = save_codebase_db(cb, out)
    print(f"indexed {args.app}/{args.model}: {len(cb.units)} unit(s), {size} bytes -> {out}")
    if cb.run_value is not None:
        print(f"verification run returned {cb.run_value}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    spec = _metric_spec(args.metric)
    kw = _index_kwargs(args)
    base = index_model(args.app, args.baseline, coverage=spec.coverage, **kw)
    other = index_model(args.app, args.model, coverage=spec.coverage, **kw)
    # routed through the engine so a configured persistent cache is consulted
    d = divergence_row(base, [other], spec, engine=_engine_from_args(args))[other.model]
    print(f"{args.app}: divergence({args.baseline} -> {args.model}, {spec.label}) = {d:.4f}")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    spec = _metric_spec(args.metric)
    cbs = index_app(args.app, coverage=spec.coverage, **_index_kwargs(args))
    names = list(cbs)
    pinner = None
    if getattr(args, "use_index", True) and tree_metric_kind(spec) is not None:
        # index-backed candidate pruning: matrix cells whose value pins
        # exactly from stored unit geometry skip the engine (bit-identical
        # by construction; index.matrix.pinned counts the skipped cells)
        from repro.metricindex import PairPinner

        pinner = PairPinner(spec)
    dend = cluster_codebases(
        [cbs[m] for m in names], names, spec, engine=_engine_from_args(args), index=pinner
    )
    print(f"{args.app} clustering under {spec.label} (complete linkage, Euclidean):")
    print(ascii_dendrogram(dend))
    return 0


def cmd_nearest(args: argparse.Namespace) -> int:
    """k nearest models by symmetrized divergence, through the metric index.

    Tree metrics ride the ``vpindex``-persisted VP tree plus the bound
    oracle; ``--brute-force`` runs the reference linear scan instead (the
    smoke harness diffs the two — they must be bit-identical). Non-tree
    metrics always scan (``index/fallback`` diagnostic).
    """
    import json

    spec = _metric_spec(args.metric)
    if args.k < 1:
        raise ReproError(f"k must be >= 1, got {args.k}")
    cbs = index_app(args.app, coverage=spec.coverage, **_index_kwargs(args))
    if args.model not in cbs:
        raise ReproError(
            f"unknown model {args.model!r} for {args.app}; have {sorted(cbs)}"
        )
    engine = _engine_from_args(args)
    mode = "index"
    stats = None
    if tree_metric_kind(spec) is None:
        diag.note(
            "index/fallback",
            f"{spec.label} is not a tree metric; nearest uses the linear scan",
        )
        mode = "scan"
    elif args.brute_force:
        mode = "brute"
    if mode == "index":
        from repro.metricindex import (
            MetricIndex,
            load_index,
            nearest_via_index,
            save_index,
        )

        artifacts = _artifacts_from_args(args)
        store = VpIndexStore(artifacts.root) if artifacts is not None else None
        with engine.cache_session():
            index = load_index(store, args.app, spec) if store is not None else None
            if index is not None:
                dirty = any(index.refresh(cbs).values())
            else:
                index = MetricIndex.build(args.app, cbs, spec)
                dirty = True
            if store is not None and dirty:
                save_index(store, index)
            result = nearest_via_index(index, cbs[args.model], cbs, args.k)
        neighbors = result.neighbors
        stats = result.stats
    else:
        others = [cb for m, cb in cbs.items() if m != args.model]
        neighbors = nearest_brute_force(cbs[args.model], others, spec, engine=engine)[
            : args.k
        ]
    if args.json:
        payload = {
            "app": args.app,
            "model": args.model,
            "metric": spec.label,
            "k": args.k,
            "mode": mode,
            "neighbors": [{"model": m, "divergence": d} for d, m in neighbors],
        }
        if stats is not None:
            payload["index"] = stats
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    print(f"{args.app}: {args.k} nearest to {args.model} under {spec.label} ({mode}):")
    for rank, (d, m) in enumerate(neighbors, 1):
        print(f"  {rank}. {m:<20} {d:.4f}")
    if stats is not None:
        pruned = sum(stats["pruned"].values())
        print(
            f"  ({stats['exact_calls']} exact evaluation(s) over "
            f"{stats['candidates']} candidate(s), {pruned} pruned)"
        )
    return 0


def cmd_heatmap(args: argparse.Namespace) -> int:
    cbs = index_app(args.app, coverage=True, **_index_kwargs(args))
    baseline = cbs[args.baseline]
    models = [cb for m, cb in cbs.items() if m != args.baseline]
    data = divergence_heatmap(baseline, models, HEATMAP_SPECS, engine=_engine_from_args(args))
    print(f"{args.app}: divergence from {args.baseline}")
    print(ascii_heatmap(data))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Render every figure family for one app into a directory."""
    from pathlib import Path

    from repro.perfport.navigation import navigation_chart_from_codebases
    from repro.perfport.pp_metric import phi_table
    from repro.viz import (
        render_cascade_svg,
        render_dendrogram_svg,
        render_heatmap_svg,
        render_navigation_svg,
    )

    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    engine = _engine_from_args(args)
    cbs = index_app(args.app, coverage=True, **_index_kwargs(args))
    names = list(cbs)
    spec = _metric_spec(args.metric)

    dend = cluster_codebases([cbs[m] for m in names], names, spec, engine=engine)
    (out / f"{args.app}_dendrogram_{spec.label}.svg").write_text(
        render_dendrogram_svg(dend, f"{args.app}: {spec.label} clustering")
    )

    baseline = cbs.get(args.baseline)
    if baseline is not None:
        data = divergence_heatmap(baseline, [cbs[m] for m in names], HEATMAP_SPECS, engine=engine)
        (out / f"{args.app}_heatmap.svg").write_text(
            render_heatmap_svg(data, f"{args.app}: divergence from {args.baseline}")
        )
        (out / f"{args.app}_heatmap.csv").write_text(data.to_csv())

    models = [m for m in names if m != args.baseline]
    eff = PerfModel().efficiency_matrix(args.app, models)
    (out / f"{args.app}_cascade.svg").write_text(
        render_cascade_svg(cascade(eff), f"{args.app}: cascade")
    )
    if baseline is not None:
        chart = navigation_chart_from_codebases(
            args.app, phi_table(eff), baseline, [cbs[m] for m in models], engine=engine
        )
        (out / f"{args.app}_navchart.svg").write_text(
            render_navigation_svg(chart, f"{args.app}: Φ vs TBMD")
        )
    print(f"figures written to {out}/")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Index an app, sweep the divergence matrix, and dump observability data.

    This is the quickest way to see the TED cache behave: memo hits
    (``ted.cache.hit``) are reported separately from identical-hash
    shortcuts (``ted.shortcut``), alongside span timings and the legacy
    timer registry.
    """
    import json

    from repro.util.timing import all_timers

    collector = obs.current_collector()
    assert collector is not None  # installed by main() for this subcommand
    spec = _metric_spec(args.metric)
    cbs = index_app(args.app, coverage=spec.coverage, **_index_kwargs(args))
    names = list(cbs)
    divergence_matrix([cbs[m] for m in names], spec, engine=_engine_from_args(args))
    # process-lifetime cache state rides along as gauges (the window-scoped
    # ted.cache.hit / ted.cache.miss / ted.shortcut counters are collected
    # by the TED layer itself during the sweep above)
    for k in ("size", "limit"):
        collector.gauge(f"ted.cache.{k}", float(cache_stats()[k]))
    for k in (
        "ted.cache.hit",
        "ted.cache.miss",
        "ted.cache.evicted",
        "ted.shortcut",
        # zero-valued keys are a benchmark-harness contract: a warm-cache
        # run proves itself by ted.zs.calls == 0, so the key must exist
        "ted.zs.calls",
        "cache.disk.hit",
        "cache.disk.miss",
        "ted.pairs",
    ):
        collector.counters.setdefault(k, 0.0)
    if args.json:
        print(json.dumps(obs.metrics_json(collector), indent=1, sort_keys=True))
        return 0
    print(f"{args.app}: {len(names)} models under {spec.label}")
    print()
    print("spans:")
    print(ascii_span_tree(obs.aggregate_spans(collector)))
    print()
    print("counters:")
    print(ascii_counters(collector.counters, collector.gauges))
    if collector.hists:
        print()
        print("latency percentiles:")
        print(ascii_hist_table({k: h.summary() for k, h in collector.hists.items()}))
    timers = all_timers()
    if timers:
        print()
        print("timers (legacy registry):")
        for name in sorted(timers):
            t = timers[name]
            print(f"{name:<16}{t.elapsed * 1e3:10.2f} ms  ×{t.calls}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect (``stats``) or empty (``clear``) the shared artifact root.

    The root holds every artifact namespace side by side — TED cache shards
    (``ted``), partial-matrix checkpoints (``ckpt``), per-unit index
    artifacts (``unit``), run-ledger snapshots (``obs``) and metric indexes
    (``vpindex``). ``stats``
    keeps the historical top-level TED keys
    (the CI warm-cache gate reads ``entries``) and adds a ``namespaces``
    section; ``clear`` empties every namespace unless ``--namespace``
    narrows it.
    """
    import json

    cache_dir = getattr(args, "cache_dir", None) or os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        print("no cache directory: pass --cache-dir or set REPRO_CACHE_DIR", file=sys.stderr)
        return 2
    stores = {
        "ted": TedCacheStore(cache_dir),
        "ckpt": CheckpointStore(cache_dir),
        "unit": UnitArtifactStore(cache_dir),
        "obs": runledger.RunLedgerStore(cache_dir),
        "vpindex": VpIndexStore(cache_dir),
    }
    if args.cache_command == "clear":
        namespace = getattr(args, "namespace", None)
        if namespace:
            if namespace not in stores:
                print(
                    f"unknown namespace {namespace!r}; have {sorted(stores)}",
                    file=sys.stderr,
                )
                return 2
            removed = stores[namespace].clear()
            print(f"cleared {removed} {namespace} artifact file(s) from {stores['ted'].root}")
        else:
            removed = sum(store.clear() for store in stores.values())
            print(f"cleared {removed} artifact file(s) from {stores['ted'].root}")
        return 0
    # top-level keys stay the TED shard summary (back-compat contract);
    # the namespaces section enumerates everything under the root
    stats = stores["ted"].stats()
    namespaces = scan_namespaces(cache_dir)
    for ns, store in stores.items():
        if ns in namespaces:
            namespaces[ns]["entries"] = store.stats()["entries"]
    stats["namespaces"] = namespaces
    if getattr(args, "json", False):
        print(json.dumps(stats, indent=1, sort_keys=True))
        return 0
    print(f"cache root : {stats['root']}")
    print(f"schema     : {stats['schema']} ({stats['keyspec']})")
    print(f"shards     : {stats['shards']}")
    print(f"entries    : {stats['entries']}")
    print(f"bytes      : {stats['bytes']}")
    if stats["invalid_shards"]:
        print(f"invalid    : {', '.join(stats['invalid_shards'])} (clear to rebuild)")
    if namespaces:
        print("namespaces :")
        for ns in sorted(namespaces):
            rec = namespaces[ns]
            entries = f", {rec['entries']} entr{'y' if rec['entries'] == 1 else 'ies'}" \
                if "entries" in rec else ""
            print(f"  {ns:<5} {rec['files']} file(s), {rec['bytes']} bytes{entries}")
    return 0


def _ledger_root(args: argparse.Namespace) -> str:
    """Run-ledger root: the same resolution as incremental indexing, so
    snapshots live next to the unit/ted/ckpt namespaces. ``--no-cache``
    only affects the TED cache, not the ledger."""
    return (
        getattr(args, "cache_dir", None)
        or os.environ.get("REPRO_CACHE_DIR")
        or ".silvervale-cache"
    )


def _record_ledger(
    args: argparse.Namespace,
    collector: obs.Collector,
    rc: int,
    duration_s: float,
    argv: list[str] | None,
) -> None:
    """Persist one run snapshot; a broken ledger never fails the run."""
    try:
        store = runledger.RunLedgerStore(_ledger_root(args))
        workload = {
            k: getattr(args, k)
            for k in ("app", "model", "baseline", "metric", "jobs")
            if getattr(args, k, None) is not None
        }
        # commands may stash extra workload fields (the serve daemon's
        # lifetime summary) to ride along in the snapshot
        workload.update(getattr(args, "_workload_extra", None) or {})
        corpus = (
            runledger.corpus_fingerprint(args.app) if getattr(args, "app", None) else None
        )
        snap = runledger.snapshot_from_collector(
            collector,
            command=args.command,
            argv=argv if argv is not None else sys.argv[1:],
            duration_s=duration_s,
            workload=workload,
            corpus=corpus,
            exit_code=rc,
        )
        run_id = runledger.record_run(store, snap)
        if getattr(args, "profile", False):
            print(f"ledger snapshot {run_id} -> {store.root}")
    except Exception as e:
        print(f"warning: run ledger not recorded: {e}", file=sys.stderr)


def _hist_summaries(snap: dict) -> dict:
    return snap.get("metrics", {}).get("hists", {})


def cmd_obs(args: argparse.Namespace) -> int:
    """Read the run ledger: ``history`` (trend table), ``diff`` (counter and
    latency deltas between two runs), ``report`` (one run's summary)."""
    import json

    store = runledger.RunLedgerStore(_ledger_root(args))
    if args.obs_command == "history":
        snaps = runledger.history(
            store,
            command=getattr(args, "command_filter", None),
            app=getattr(args, "app", None),
            limit=getattr(args, "limit", None),
        )
        if args.json:
            print(json.dumps(snaps, indent=1, sort_keys=True))
            return 0
        if not snaps:
            print("run ledger is empty (workload runs record snapshots automatically)")
            return 0
        w = max(len(s["run"]) for s in snaps) + 1
        print(
            f"{'run':<{w}}{'command':<10}{'app':<14}{'corpus':<10}"
            f"{'jobs':>4}{'dur(s)':>9}{'exit':>5}"
        )
        for s in snaps:
            wl = s.get("workload", {})
            print(
                f"{s['run']:<{w}}{s.get('command', '?'):<10}"
                f"{wl.get('app', '-') or '-':<14}"
                f"{(s.get('corpus') or '-')[:8]:<10}"
                f"{wl.get('jobs', 1):>4}{s.get('duration_s', 0.0):>9.2f}"
                f"{s.get('exit_code', 0):>5}"
            )
        return 0
    if args.obs_command == "diff":
        ids = store.run_ids()
        if len(ids) < 2:
            # nothing to compare is a normal state for a fresh checkout /
            # fresh CI cache, not an error: exit 0 so advisory ledger steps
            # can run unconditionally
            msg = (
                f"run ledger has {len(ids)} snapshot(s); need two to diff "
                "(workload runs record snapshots automatically)"
            )
            if args.json:
                print(
                    json.dumps(
                        {"skipped": True, "reason": msg, "runs": len(ids)},
                        indent=1,
                        sort_keys=True,
                    )
                )
            else:
                print(msg)
            return 0
        a = store.load(runledger.resolve_run(store, args.run_a))
        b = store.load(runledger.resolve_run(store, args.run_b))
        d = runledger.diff_snapshots(a, b)
        if args.json:
            print(json.dumps(d, indent=1, sort_keys=True))
            return 0 if d["schema_ok"] else 1
        print(f"diff {d['before']} -> {d['after']}")
        if not d["schema_ok"]:
            sch = d["schemas"]
            print(
                f"error: metrics schemas differ ({sch['before']} vs {sch['after']}); "
                "numbers are not comparable across schema versions",
                file=sys.stderr,
            )
            return 1
        if not d["comparable"]:
            print(
                "note: runs differ in command or corpus fingerprint; "
                "latency deltas may reflect workload changes, not regressions"
            )
        dur = d["duration_s"]
        print(f"wall time: {dur['before']:.2f}s -> {dur['after']:.2f}s ({dur['delta']:+.2f}s)")
        if d["counters"]:
            print("counters:")
            w = max(len(k) for k in d["counters"]) + 1
            for name, rec in d["counters"].items():
                print(f"  {name:<{w}}{rec['before']:>12g} -> {rec['after']:<12g}({rec['delta']:+g})")
        else:
            print("counters: no changes")
        if d["hists"]:
            print("latency (p50/p99 ms):")
            w = max(len(k) for k in d["hists"]) + 1
            for name, rec in d["hists"].items():
                flag = "  ← regressed" if name in d["regressions"] else ""
                p50, p99 = rec.get("p50_s"), rec.get("p99_s")
                parts = [f"  {name:<{w}}"]
                if p50:
                    parts.append(f"p50 {p50['before'] * 1e3:.3f}->{p50['after'] * 1e3:.3f}")
                if p99:
                    parts.append(f"  p99 {p99['before'] * 1e3:.3f}->{p99['after'] * 1e3:.3f}")
                print("".join(parts) + flag)
        if d["regressions"]:
            print(
                f"warning: {len(d['regressions'])} span(s) regressed "
                f"(p99 grew >{int(runledger.REGRESSION_FRAC * 100)}%): "
                + ", ".join(d["regressions"]),
                file=sys.stderr,
            )
        return 0
    # report
    snap = store.load(runledger.resolve_run(store, args.run))
    if args.json:
        print(json.dumps(snap, indent=1, sort_keys=True))
        return 0
    wl = snap.get("workload", {})
    print(f"run      : {snap['run']}")
    print(f"command  : {snap.get('command', '?')}  argv: {' '.join(snap.get('argv', []))}")
    if wl:
        print(f"workload : {', '.join(f'{k}={v}' for k, v in sorted(wl.items()))}")
    if snap.get("corpus"):
        print(f"corpus   : {snap['corpus']}")
    print(f"wall time: {snap.get('duration_s', 0.0):.2f}s  exit {snap.get('exit_code', 0)}")
    counters = snap.get("metrics", {}).get("counters", {})
    if counters:
        print()
        print("counters:")
        print(ascii_counters(counters, snap.get("metrics", {}).get("gauges", {})))
    hists = _hist_summaries(snap)
    if hists:
        print()
        print("latency percentiles:")
        print(ascii_hist_table(hists))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the divergence service daemon until shutdown.

    Serves the ``compare``/``cluster``/``heatmap`` analyses (plus ``nearest``
    and index/stats introspection) as JSON over HTTP, from a shared hot tier
    with request coalescing; see ``repro/serve`` and README §"Running as a
    service". Blocks until SIGINT/SIGTERM or ``POST /v1/shutdown``, then
    drains gracefully and records the session's ledger snapshot like any
    batch command.
    """
    from repro.serve.daemon import ServeDaemon

    daemon = ServeDaemon(
        _engine_from_args(args),
        host=args.host,
        port=args.port,
        artifacts=_artifacts_from_args(args),
        strict=_strict(args),
        jobs=getattr(args, "jobs", 1),
        warm=args.warm or [],
        window_s=args.batch_window_ms / 1000.0,
        port_file=args.port_file,
        grace_s=args.grace,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        request_timeout_s=args.request_timeout_s,
        io_timeout_s=args.io_timeout_s,
        # batcher watchdog sits behind the pool-level wave timeout with
        # headroom: the pool degrading is the normal path, the batcher
        # poisoning + engine restart is the backstop for a wedged thread
        wave_timeout_s=(args.wave_timeout_s * 2) if args.wave_timeout_s else None,
        hot_max_codebases=args.hot_max_codebases,
        hot_max_entries=args.hot_max_entries,
        hot_max_indexes=args.hot_max_indexes,
    )
    daemon.run()
    # the session collector is still open here; stash the serve-lifetime
    # summary so _record_ledger folds it into the snapshot's workload
    args._workload_extra = dict(daemon.summary)
    return 0


def cmd_phi(args: argparse.Namespace) -> int:
    models = app_models(args.app)
    matrix = PerfModel().efficiency_matrix(args.app, models)
    bars = phi_table(matrix)
    print(f"Φ over all six platforms ({args.app}):")
    print(ascii_bars(bars))
    if args.cascade:
        data = cascade(matrix)
        print()
        print(data.to_csv())
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="silvervale", description=__doc__)
    # profiling options shared by every subcommand (parents= so they can be
    # given after the subcommand name, the natural spot)
    prof = argparse.ArgumentParser(add_help=False)
    g = prof.add_argument_group("profiling")
    g.add_argument(
        "--profile",
        action="store_true",
        help="print a nested span report and counter table after the run",
    )
    g.add_argument("--trace-out", metavar="FILE", help="write Chrome trace-event JSON")
    g.add_argument("--metrics-out", metavar="FILE", help="write flat metrics JSON")
    g.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip recording this run's metrics snapshot in the obs run ledger",
    )
    # error-handling option shared by every indexing subcommand
    tol = argparse.ArgumentParser(add_help=False)
    tol.add_argument(
        "--strict",
        action="store_true",
        help="fail fast on frontend errors instead of quarantining damaged units",
    )
    # distance-engine options shared by every matrix-sweeping subcommand
    eng = argparse.ArgumentParser(add_help=False)
    ge = eng.add_argument_group("distance engine")
    ge.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the distance engine (default: 1, serial)",
    )
    ge.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent TED cache directory (default: $REPRO_CACHE_DIR if set)",
    )
    ge.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any configured persistent TED cache for this run",
    )
    gf = eng.add_argument_group("fault tolerance")
    gf.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="S",
        help="watchdog wall-clock deadline per scheduled chunk in seconds "
        "(default: none); timed-out chunks are rescheduled on other workers",
    )
    gf.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="extra attempts per chunk after a timeout or worker crash "
        "(default: 2); an exhausted chunk degrades to NaN cells unless --strict",
    )
    gf.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write periodic partial-matrix checkpoints to this directory "
        "(default: $REPRO_CKPT_DIR if set)",
    )
    gf.add_argument(
        "--resume",
        action="store_true",
        help="adopt a matching checkpoint from a previous interrupted run and "
        "recompute only unfinished work",
    )
    gi = eng.add_argument_group("incremental indexing")
    gi.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="replay unchanged units from per-unit index artifacts in the "
        "cache directory (default: on; --no-incremental re-runs every "
        "frontend)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    pa = sub.add_parser("apps", help="list corpus apps and models", parents=[prof])
    pa.set_defaults(fn=cmd_apps)

    pi = sub.add_parser(
        "index", help="index one model port into a Codebase DB", parents=[prof, eng, tol]
    )
    pi.add_argument("app")
    pi.add_argument("model")
    pi.add_argument("-o", "--output")
    pi.add_argument("--coverage", action="store_true", help="run for coverage first")
    pi.set_defaults(fn=cmd_index, _ledger=True)

    pc = sub.add_parser(
        "compare", help="divergence of a model from a baseline", parents=[prof, eng, tol]
    )
    pc.add_argument("app")
    pc.add_argument("model")
    pc.add_argument("-b", "--baseline", default="serial")
    pc.add_argument("-m", "--metric", default="Tsem")
    pc.set_defaults(fn=cmd_compare, _ledger=True)

    pk = sub.add_parser(
        "cluster", help="dendrogram of all models under a metric", parents=[prof, eng, tol]
    )
    pk.add_argument("app")
    pk.add_argument("-m", "--metric", default="Tsem")
    pk.add_argument(
        "--index",
        dest="use_index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="skip matrix cells the metric index pins exactly from stored "
        "unit geometry (default: on; values are bit-identical either way)",
    )
    pk.set_defaults(fn=cmd_cluster, _ledger=True)

    pn = sub.add_parser(
        "nearest",
        help="k nearest models by symmetrized divergence (metric-space index)",
        parents=[prof, eng, tol],
    )
    pn.add_argument("app")
    pn.add_argument("model")
    pn.add_argument(
        "-k", type=int, default=3, metavar="N", help="neighbors to report (default: 3)"
    )
    pn.add_argument("-m", "--metric", default="Tsem")
    pn.add_argument(
        "--brute-force",
        action="store_true",
        help="reference linear scan instead of the VP-tree index "
        "(results are gated to be bit-identical)",
    )
    pn.add_argument("--json", action="store_true", help="print the result as JSON")
    pn.set_defaults(fn=cmd_nearest, _ledger=True)

    ph = sub.add_parser(
        "heatmap", help="divergence-from-baseline heatmap", parents=[prof, eng, tol]
    )
    ph.add_argument("app")
    ph.add_argument("-b", "--baseline", default="serial")
    ph.set_defaults(fn=cmd_heatmap, _ledger=True)

    psv = sub.add_parser(
        "serve",
        help="long-lived HTTP daemon serving compare/cluster/heatmap as JSON",
        parents=[prof, eng, tol],
    )
    psv.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    psv.add_argument(
        "--port", type=int, default=8787, help="TCP port; 0 picks a free one (default: 8787)"
    )
    psv.add_argument(
        "--warm",
        action="append",
        metavar="APP",
        help="index APP's models (and preload the TED disk memo) before "
        "accepting traffic; repeatable; 'all' warms every app",
    )
    psv.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="demand-coalescing window after the first demand of a wave "
        "(default: 5.0; 0 still folds same-iteration demands)",
    )
    psv.add_argument(
        "--port-file",
        metavar="FILE",
        help="write the bound port here once ready (for --port 0 harnesses)",
    )
    psv.add_argument(
        "--grace",
        type=float,
        default=2.0,
        metavar="S",
        help="shutdown grace window for in-flight responses (default: 2.0)",
    )
    ov = psv.add_argument_group("overload and failure hardening")
    ov.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="admission budget: concurrent requests past health/stats "
        "(default: 64; 0 disables admission control)",
    )
    ov.add_argument(
        "--max-queue",
        type=int,
        default=128,
        metavar="N",
        help="requests allowed to queue for an admission slot before the "
        "daemon sheds with 429 (default: 128; 0 sheds immediately at budget)",
    )
    ov.add_argument(
        "--request-timeout-s",
        type=float,
        default=300.0,
        metavar="S",
        help="per-request deadline; expiry is a 504 with a serve/deadline "
        "diagnostic. Clients may lower it per-request with X-Timeout-Ms "
        "(default: 300; 0 disables)",
    )
    ov.add_argument(
        "--io-timeout-s",
        type=float,
        default=30.0,
        metavar="S",
        help="slow-client guard: header/body read and response write "
        "deadline; a started-then-stalled request gets 408, an idle "
        "keep-alive closes silently (default: 30; 0 disables)",
    )
    ov.add_argument(
        "--wave-timeout-s",
        type=float,
        default=300.0,
        metavar="S",
        help="engine wave wall-clock budget: past it the pool degrades the "
        "wave's unfinished chunks, and at 2x the batcher declares the wave "
        "poisoned and the daemon restarts its engine thread "
        "(default: 300; 0 disables)",
    )
    ov.add_argument(
        "--hot-max-codebases",
        type=int,
        default=64,
        metavar="N",
        help="LRU cap on hot-tier indexed codebases (default: 64; 0 = unbounded)",
    )
    ov.add_argument(
        "--hot-max-entries",
        type=int,
        default=65536,
        metavar="N",
        help="LRU cap on hot-tier divergence memo entries "
        "(default: 65536; 0 = unbounded)",
    )
    ov.add_argument(
        "--hot-max-indexes",
        type=int,
        default=8,
        metavar="N",
        help="LRU cap on hot-tier metric indexes (default: 8; 0 = unbounded)",
    )
    psv.set_defaults(fn=cmd_serve, _always_collect=True, _ledger=True)

    pp = sub.add_parser("phi", help="Φ table from the performance model", parents=[prof])
    pp.add_argument("app")
    pp.add_argument("--cascade", action="store_true")
    pp.set_defaults(fn=cmd_phi)

    ps = sub.add_parser(
        "stats",
        help="run an index+compare workload and dump spans/counters/cache stats",
        parents=[prof, eng, tol],
    )
    ps.add_argument("app")
    ps.add_argument("-m", "--metric", default="Tsem")
    ps.add_argument("--json", action="store_true", help="print the metrics JSON instead of text")
    ps.set_defaults(fn=cmd_stats, _always_collect=True, _ledger=True)

    pf = sub.add_parser(
        "figures", help="render all figure SVGs for an app", parents=[prof, eng, tol]
    )
    pf.add_argument("app")
    pf.add_argument("-o", "--output", default="figures")
    pf.add_argument("-b", "--baseline", default="serial")
    pf.add_argument("-m", "--metric", default="Tsem")
    pf.set_defaults(fn=cmd_figures, _ledger=True)

    pcache = sub.add_parser("cache", help="persistent TED cache maintenance", parents=[prof])
    cache_sub = pcache.add_subparsers(dest="cache_command", required=True)
    pcs = cache_sub.add_parser("stats", help="entry/shard/byte counts for the cache")
    pcs.add_argument("--cache-dir", metavar="DIR")
    pcs.add_argument("--json", action="store_true", help="print stats as JSON")
    pcs.set_defaults(fn=cmd_cache)
    pcc = cache_sub.add_parser("clear", help="delete artifact files from the cache root")
    pcc.add_argument("--cache-dir", metavar="DIR")
    pcc.add_argument(
        "--namespace",
        metavar="NS",
        help="clear only one namespace (ted, ckpt, unit, obs or vpindex; "
        "default: all)",
    )
    pcc.set_defaults(fn=cmd_cache)

    po = sub.add_parser(
        "obs", help="run-ledger trend tools: history, diff, report", parents=[prof]
    )
    obs_sub = po.add_subparsers(dest="obs_command", required=True)
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="artifact root holding the ledger (default: $REPRO_CACHE_DIR "
        "or .silvervale-cache)",
    )
    common.add_argument("--json", action="store_true", help="print JSON instead of a table")
    poh = obs_sub.add_parser("history", help="trend table of recorded runs", parents=[common])
    poh.add_argument(
        "--command", dest="command_filter", metavar="CMD", help="only runs of this subcommand"
    )
    poh.add_argument("--app", metavar="APP", help="only runs over this corpus app")
    poh.add_argument(
        "--limit", type=int, default=20, metavar="N", help="newest N runs (default: 20)"
    )
    poh.set_defaults(fn=cmd_obs)
    pod = obs_sub.add_parser(
        "diff",
        help="counter and latency deltas between two runs (tokens: run-id "
        "prefix, 'last', 'prev')",
        parents=[common],
    )
    pod.add_argument("run_a", help="before run (id prefix, 'last' or 'prev')")
    pod.add_argument("run_b", help="after run (id prefix, 'last' or 'prev')")
    pod.set_defaults(fn=cmd_obs)
    por = obs_sub.add_parser("report", help="summary of one recorded run", parents=[common])
    por.add_argument(
        "run", nargs="?", default="last", help="run id prefix, 'last' (default) or 'prev'"
    )
    por.set_defaults(fn=cmd_obs)
    return p


def _emit_reports(args: argparse.Namespace, collector: obs.Collector) -> None:
    if getattr(args, "profile", False) and not getattr(args, "_always_collect", False):
        print()
        print("── profile ─────────────────────────────────────────")
        roots = obs.aggregate_spans(collector)
        print(ascii_span_tree(roots) if roots else "(no spans recorded)")
        if collector.counters or collector.gauges:
            print()
            print(ascii_counters(collector.counters, collector.gauges))
        if collector.hists:
            print()
            print("latency percentiles:")
            print(ascii_hist_table({k: h.summary() for k, h in collector.hists.items()}))
    if getattr(args, "trace_out", None):
        path = obs.write_chrome_trace(collector, args.trace_out)
        print(f"trace written to {path}")
    if getattr(args, "metrics_out", None):
        path = obs.write_metrics(collector, args.metrics_out)
        print(f"metrics written to {path}")


def _emit_diagnostics(sink: diag.DiagnosticSink, limit: int = 50) -> None:
    """Print collected diagnostics and a one-line summary on stderr."""
    if sink.count() == 0:
        return
    for d in sink.diagnostics[:limit]:
        print(d.format(), file=sys.stderr)
    hidden = len(sink.diagnostics) - limit
    if hidden > 0:
        print(f"... {hidden} more diagnostic(s) not shown", file=sys.stderr)
    print(f"completed with {sink.summary()}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    import time

    args = build_parser().parse_args(argv)
    wants_ledger = getattr(args, "_ledger", False) and not getattr(args, "no_ledger", False)
    wants_collect = (
        getattr(args, "profile", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "_always_collect", False)
        or wants_ledger
    )
    t0 = time.perf_counter()
    try:
        with diag.capture() as sink:
            try:
                if not wants_collect:
                    rc = args.fn(args)
                else:
                    with obs.collect() as collector:
                        rc = args.fn(args)
                        _emit_reports(args, collector)
                        if wants_ledger:
                            # snapshot before the save, so the ledger's own
                            # obs.ledger.saved counter never pollutes it;
                            # interrupted/failed runs record nothing
                            _record_ledger(args, collector, rc, time.perf_counter() - t0, argv)
            finally:
                _emit_diagnostics(sink)
    except ReproError as e:
        # strict-mode failures (and genuine workflow misconfiguration)
        # abort with a distinct exit status; quarantined runs return 0 above
        print(f"error: {e}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # engine runs already terminated their pool and flushed cache +
        # checkpoint; the distance/interrupted diagnostic above names the
        # resumable checkpoint file when one was written
        print("interrupted: re-run with --resume to continue", file=sys.stderr)
        return 130
    return rc


if __name__ == "__main__":
    sys.exit(main())
