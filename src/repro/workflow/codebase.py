"""Indexed-codebase data model.

An :class:`IndexedUnit` is the paper's ``unit_C(x)`` (Eq. 1): one main
source file plus its dependency closure, summarised into every tree and
line representation the metrics need. An :class:`IndexedCodebase` is one
programming-model port of one application — the object all relative metrics
compare pairwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.coverage.profile import CoverageProfile
from repro.lang.source import VirtualFS, is_system_path
from repro.trees.coverage_mask import LineMask, mask_tree
from repro.trees.node import Node


@dataclass
class ModelSpec:
    """Declarative description of one model port (corpus registry entry)."""

    app: str
    model: str
    lang: str  # "cpp" | "fortran"
    dialect: str = "host"  # host | cuda | hip | sycl
    openmp: bool = False
    #: role -> main file path within the codebase's VirtualFS
    units: dict[str, str] = field(default_factory=dict)
    defines: dict[str, str] = field(default_factory=dict)
    #: entry point for the coverage run (None = not runnable)
    entry: Optional[str] = "main"


@dataclass
class IndexedUnit:
    """All representations of one translation unit."""

    role: str
    path: str
    deps: list[str] = field(default_factory=list)
    #: True when the frontend failed and the unit was quarantined: only the
    #: raw-text line representations below are populated; all trees are None
    #: (``tree_distance`` treats a missing tree as pure insert/delete cost).
    degraded: bool = False
    # -- line representations ------------------------------------------------
    #: file -> significant (code-bearing) line numbers, pre-preprocessor
    sig_lines_pre: dict[str, set[int]] = field(default_factory=dict)
    #: file -> significant line numbers seen in the post-preprocessor stream
    sig_lines_post: dict[str, set[int]] = field(default_factory=dict)
    #: logical lines per file (LLOC), pre-preprocessor
    lloc_pre: dict[str, int] = field(default_factory=dict)
    lloc_post: dict[str, int] = field(default_factory=dict)
    #: normalised token-text per logical line (whole unit; Source metric)
    source_lines_pre: list[str] = field(default_factory=list)
    source_lines_post: list[str] = field(default_factory=list)
    #: (file, line) tags aligned with source_lines_* (coverage filtering)
    source_tags_pre: list[tuple[str, int]] = field(default_factory=list)
    source_tags_post: list[tuple[str, int]] = field(default_factory=list)
    # -- trees -----------------------------------------------------------------
    t_src_pre: Optional[Node] = None
    t_src_post: Optional[Node] = None
    t_sem: Optional[Node] = None
    t_sem_inlined: Optional[Node] = None
    t_ir: Optional[Node] = None

    def tree(self, which: str) -> Optional[Node]:
        return {
            "src": self.t_src_pre,
            "src+pp": self.t_src_post,
            "sem": self.t_sem,
            "sem+i": self.t_sem_inlined,
            "ir": self.t_ir,
        }[which]

    def masked_tree(self, which: str, mask: LineMask) -> Optional[Node]:
        t = self.tree(which)
        return mask_tree(t, mask) if t is not None else None


@dataclass
class IndexedCodebase:
    """One model port, fully summarised."""

    spec: ModelSpec
    fs: VirtualFS
    units: dict[str, IndexedUnit] = field(default_factory=dict)
    coverage: Optional[CoverageProfile] = None
    #: interpreter exit status of the verification run (None = not run)
    run_value: Optional[object] = None

    @property
    def app(self) -> str:
        return self.spec.app

    @property
    def model(self) -> str:
        return self.spec.model

    def mask(self) -> Optional[LineMask]:
        return self.coverage.line_mask() if self.coverage is not None else None

    def roles(self) -> list[str]:
        return sorted(self.units)


def match_units(
    a: IndexedCodebase, b: IndexedCodebase
) -> list[tuple[Optional[IndexedUnit], Optional[IndexedUnit]]]:
    """The paper's ``match`` function: pair units implementing the same part.

    Primary key is the registry-assigned role; units present on only one
    side are paired with ``None`` (pure insertion/deletion cost).
    """
    roles = sorted(set(a.units) | set(b.units))
    return [(a.units.get(r), b.units.get(r)) for r in roles]


def user_files(unit: IndexedUnit) -> list[str]:
    """Unit files excluding the modelled system-include tree."""
    return [f for f in [unit.path, *unit.deps] if not is_system_path(f)]
