"""The index step: codebase → per-unit semantic-bearing representations.

For every translation unit this extracts (Fig. 3 of the paper):

* pre/post-preprocessor significant-line sets (SLOC ±pp),
* logical line counts (LLOC ±pp),
* normalised text lines with (file, line) tags (Source metric ± coverage),
* ``T_src`` pre/post, ``T_sem``, ``T_sem+i`` and ``T_ir`` trees,

and optionally executes the unit's verification run in the interpreter to
obtain the coverage profile.

Fault tolerance: by default each unit is indexed with recovering frontends
(tolerant lexing + panic-mode parsing), and a unit whose frontend still
fails is *quarantined* — it degrades to raw-text SLOC metrics with no
trees, the failure is reported via :mod:`repro.diag`
(``index/quarantined`` / ``index/internal-error``), and the rest of the
codebase indexes normally. ``strict=True`` restores fail-fast behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro import diag, obs
from repro.compiler import CompileOptions, bundle_to_tree, lower_unit
from repro.coverage.profile import CoverageProfile, profile_from_run
from repro.exec.interpreter import run_program
from repro.lang.cpp.asttree import ast_to_tree
from repro.lang.cpp.cst import build_cst, normalized_src_tree
from repro.lang.cpp.lexer import Token, TokenType, lex
from repro.lang.cpp.parser import parse_tokens
from repro.lang.cpp.preprocessor import preprocess
from repro.lang.cpp.sema import analyze
from repro.lang.fortran.cst import fortran_cst, fortran_src_tree
from repro.lang.fortran.lexer import FtTokenType, lex_fortran
from repro.lang.fortran.parser import parse_fortran
from repro.lang.fortran.asttree import fortran_to_tree
from repro.lang.fortran.lower import lower_fortran
from repro.lang.source import VirtualFS
from repro.trees.inline import collect_definitions, inline_calls
from repro.trees.normalize import normalize_names, strip_non_semantic
from repro.util.errors import ReproError
from repro.util.timing import timed
from repro.workflow.codebase import IndexedCodebase, IndexedUnit, ModelSpec

_CTRL_KEYWORDS = frozenset({"for", "if", "while", "do", "switch", "case"})


# ---------------------------------------------------------------------------
# C++ line summaries
# ---------------------------------------------------------------------------


def _cpp_sig_lines(tokens: list[Token]) -> dict[str, set[int]]:
    out: dict[str, set[int]] = {}
    for t in tokens:
        if t.is_trivia or t.type is TokenType.EOF:
            continue
        out.setdefault(t.file, set()).add(t.line)
    return out


def _cpp_lloc(tokens: list[Token]) -> int:
    """Nguyen-style logical lines: statements + control constructs."""
    semis = 0
    fors = 0
    ctrl = 0
    for t in tokens:
        if t.type is TokenType.PUNCT and t.text == ";":
            semis += 1
        elif t.type is TokenType.KEYWORD and t.text in _CTRL_KEYWORDS:
            ctrl += 1
            if t.text == "for":
                fors += 1
        elif t.type is TokenType.DIRECTIVE:
            ctrl += 1  # a retained pragma is one logical line
    return max(semis - 2 * fors + ctrl, 0)


def _cpp_norm_lines(tokens: list[Token]) -> tuple[list[str], list[tuple[str, int]]]:
    """Whitespace/comment-normalised text lines with (file, line) tags."""
    lines: list[str] = []
    tags: list[tuple[str, int]] = []
    cur_key: Optional[tuple[str, int]] = None
    cur: list[str] = []
    for t in tokens:
        if t.is_trivia or t.type is TokenType.EOF:
            continue
        key = (t.file, t.line)
        if key != cur_key:
            if cur:
                lines.append(" ".join(cur))
                tags.append(cur_key)  # type: ignore[arg-type]
            cur = []
            cur_key = key
        cur.append(t.text)
    if cur and cur_key is not None:
        lines.append(" ".join(cur))
        tags.append(cur_key)
    return lines, tags


@timed("index.cpp")
def index_cpp_unit(
    fs: VirtualFS,
    role: str,
    path: str,
    options: CompileOptions,
    defines: Optional[dict[str, str]] = None,
    recover: bool = False,
) -> IndexedUnit:
    """Index one MiniC++ translation unit.

    ``recover=True`` lexes tolerantly and parses with panic-mode recovery,
    so damaged sources yield partial trees plus diagnostics.
    """
    unit = IndexedUnit(role=role, path=path)
    with obs.span("preprocess", path=path):
        pp = preprocess(fs, path, defines)
    unit.deps = list(pp.dependencies)

    # pre-preprocessor: lex every file of the unit separately
    with obs.span("lex", path=path):
        pre_tokens: list[Token] = []
        for f in [path, *unit.deps]:
            toks = lex(fs.get(f).text, f, tolerant=recover)
            pre_tokens.extend(toks)
            unit.lloc_pre[f] = _cpp_lloc(toks)
    unit.sig_lines_pre = _cpp_sig_lines(pre_tokens)
    unit.source_lines_pre, unit.source_tags_pre = _cpp_norm_lines(pre_tokens)

    # post-preprocessor
    unit.sig_lines_post = _cpp_sig_lines(pp.tokens)
    unit.lloc_post[path] = _cpp_lloc(pp.tokens)
    unit.source_lines_post, unit.source_tags_post = _cpp_norm_lines(pp.tokens)

    # trees
    with obs.span("trees.src", path=path):
        unit.t_src_pre = normalize_names(
            normalized_src_tree(build_cst(lex(fs.get(path).text, path, tolerant=recover), path))
        )
        unit.t_src_post = normalize_names(normalized_src_tree(build_cst(pp.tokens, path)))
    with obs.span("parse", path=path):
        tu = parse_tokens(pp.tokens, path, recover=recover)
    with obs.span("sema", path=path):
        sema = analyze(tu)
    with obs.span("trees.sem", path=path):
        sem_raw = strip_non_semantic(ast_to_tree(tu, sema))
        sem_named = normalize_names(sem_raw)
        unit.t_sem = sem_named
        defs = collect_definitions(sem_named)
        unit.t_sem_inlined = inline_calls(sem_named, defs)
    with obs.span("lower", path=path):
        bundle = lower_unit(tu, sema, options)
        unit.t_ir = bundle_to_tree(bundle)
    obs.add("index.units")
    # keep handles for the coverage step
    unit_attrs = {"tu": tu, "sema": sema}
    unit.__dict__["_frontend"] = unit_attrs
    return unit


# ---------------------------------------------------------------------------
# Fortran line summaries
# ---------------------------------------------------------------------------


@timed("index.fortran")
def index_fortran_unit(fs: VirtualFS, role: str, path: str, recover: bool = False) -> IndexedUnit:
    """Index one MiniFortran file (Fortran has no preprocessing phase here:
    the pre/post representations coincide)."""
    unit = IndexedUnit(role=role, path=path)
    text = fs.get(path).text
    with obs.span("lex", path=path):
        toks = lex_fortran(text, path, tolerant=recover)
    sig: dict[str, set[int]] = {}
    lloc = 0
    lines: list[str] = []
    tags: list[tuple[str, int]] = []
    cur: list[str] = []
    cur_line = 0
    for t in toks:
        if t.type is FtTokenType.COMMENT:
            continue
        if t.type in (FtTokenType.NEWLINE, FtTokenType.EOF):
            if cur:
                lloc += 1
                lines.append(" ".join(cur))
                tags.append((path, cur_line))
                cur = []
            continue
        sig.setdefault(t.file, set()).add(t.line)
        if not cur:
            cur_line = t.line
        cur.append(t.text)
    unit.sig_lines_pre = sig
    unit.sig_lines_post = {f: set(ls) for f, ls in sig.items()}
    unit.lloc_pre[path] = lloc
    unit.lloc_post[path] = lloc
    unit.source_lines_pre = lines
    unit.source_tags_pre = tags
    unit.source_lines_post = list(lines)
    unit.source_tags_post = list(tags)

    with obs.span("trees.src", path=path):
        cst = fortran_cst(text, path, tolerant=recover)
        unit.t_src_pre = normalize_names(fortran_src_tree(cst))
        unit.t_src_post = unit.t_src_pre
    with obs.span("parse", path=path):
        ftfile = parse_fortran(text, path, recover=recover)
    with obs.span("trees.sem", path=path):
        sem = normalize_names(fortran_to_tree(ftfile))
        unit.t_sem = sem
        unit.t_sem_inlined = sem  # the paper omits T_sem+i for the GCC pipeline
    with obs.span("lower", path=path):
        unit.t_ir = bundle_to_tree(lower_fortran(ftfile))
    obs.add("index.units")
    unit.__dict__["_frontend"] = {"ftfile": ftfile}
    return unit


def _fortran_static_profile(spec: ModelSpec, units: dict[str, IndexedUnit]) -> CoverageProfile:
    """Fallback profile for Fortran units the interpreter cannot run: every
    statement span recorded in ``T_sem`` is marked executed."""
    profile = CoverageProfile()
    for unit in units.values():
        if unit.t_sem is None:
            continue
        for node in unit.t_sem.preorder():
            if node.span is not None:
                profile.record(node.span.file, node.span.line_start)
    return profile


def _fortran_coverage(cb: IndexedCodebase) -> CoverageProfile:
    """Real interpreted run where possible; static profile otherwise."""
    from repro.exec.ft_interpreter import run_fortran

    profile = CoverageProfile()
    ran = False
    for unit in cb.units.values():
        fe = unit.__dict__.get("_frontend")
        if not fe or "ftfile" not in fe:
            continue
        try:
            result = run_fortran(fe["ftfile"])
        except ReproError as e:
            cb.run_value = f"coverage run failed: {e}"
            continue
        cb.run_value = result.value
        for key, c in result.coverage.items():
            profile.hits[key] += c
        ran = True
    if not ran:
        return _fortran_static_profile(cb.spec, cb.units)
    return profile


# ---------------------------------------------------------------------------
# whole-codebase indexing
# ---------------------------------------------------------------------------


def _degraded_unit(fs: VirtualFS, role: str, path: str) -> IndexedUnit:
    """SLOC-only fallback for a quarantined unit.

    Populates the raw-text line representations (approximate: non-blank,
    non-comment physical lines) and leaves every tree ``None`` —
    ``tree_distance`` treats a missing tree as pure insert/delete cost, so
    the unit stays comparable.
    """
    unit = IndexedUnit(role=role, path=path, degraded=True)
    try:
        text = fs.get(path).text
    except (KeyError, OSError, ReproError):
        text = ""
    sig: set[int] = set()
    lines: list[str] = []
    tags: list[tuple[str, int]] = []
    for no, raw in enumerate(text.splitlines(), start=1):
        stripped = " ".join(raw.split())
        low = stripped.lower()
        if not stripped:
            continue
        if stripped.startswith(("//", "/*", "*")):
            continue
        if stripped.startswith("!") and not low.startswith(("!$omp", "!$acc")):
            continue
        sig.add(no)
        lines.append(stripped)
        tags.append((path, no))
    unit.sig_lines_pre = {path: sig}
    unit.sig_lines_post = {path: set(sig)}
    unit.lloc_pre[path] = len(lines)
    unit.lloc_post[path] = len(lines)
    unit.source_lines_pre = lines
    unit.source_tags_pre = tags
    unit.source_lines_post = list(lines)
    unit.source_tags_post = list(tags)
    obs.add("index.quarantined")
    return unit


def index_codebase(
    spec: ModelSpec,
    fs: VirtualFS,
    run_coverage: bool = False,
    strict: bool = False,
) -> IndexedCodebase:
    """Index every unit of one model port; optionally run for coverage.

    Non-strict (default): frontends run in recovery mode and a unit whose
    frontend still raises is quarantined into a SLOC-only degraded unit,
    with the failure reported through :mod:`repro.diag`. ``strict=True``
    disables recovery and re-raises the first failure.
    """
    cb = IndexedCodebase(spec=spec, fs=fs)
    options = CompileOptions(dialect=spec.dialect, openmp=spec.openmp, name=spec.model)
    with obs.span("index.codebase", app=spec.app, model=spec.model):
        for role, path in sorted(spec.units.items()):
            if spec.lang not in ("cpp", "fortran"):
                raise ReproError(
                    f"unknown language {spec.lang!r} for unit {role!r} ({path}) "
                    f"in spec {spec.app}/{spec.model}"
                )
            try:
                if spec.lang == "cpp":
                    cb.units[role] = index_cpp_unit(
                        fs, role, path, options, spec.defines, recover=not strict
                    )
                else:
                    cb.units[role] = index_fortran_unit(fs, role, path, recover=not strict)
            except ReproError as e:
                if strict:
                    raise
                diag.emit_exception("index/quarantined", e)
                diag.note(
                    "index/quarantined",
                    f"unit {role!r} degraded to SLOC-only metrics",
                    path,
                )
                cb.units[role] = _degraded_unit(fs, role, path)
            except Exception as e:  # noqa: BLE001 — quarantine wall: an
                # unexpected frontend bug must degrade the unit, not kill
                # the whole run; the type name keeps it debuggable.
                if strict:
                    raise
                diag.error(
                    "index/internal-error",
                    f"{type(e).__name__} while indexing unit {role!r}: {e}",
                    path,
                )
                cb.units[role] = _degraded_unit(fs, role, path)
    if run_coverage:
        with obs.span("coverage", app=spec.app, model=spec.model):
            _run_coverage(cb, spec)
    return cb


def _run_coverage(cb: IndexedCodebase, spec: ModelSpec) -> None:
    """The optional coverage-run step, split out so it traces as one span."""
    if spec.lang == "fortran":
        cb.coverage = _fortran_coverage(cb)
        return
    if spec.entry is None:
        return
    profile = CoverageProfile()
    ran = False
    for unit in cb.units.values():
        fe = unit.__dict__.get("_frontend")
        if not fe:
            continue
        sema = fe["sema"]
        entry_fn = sema.functions.get(spec.entry)
        if entry_fn is not None and entry_fn.body is not None:
            try:
                result = run_program(fe["tu"], sema, spec.entry)
            except ReproError as e:
                # the program may call across translation units the
                # per-TU interpreter cannot link; index without
                # coverage rather than failing the whole step
                cb.run_value = f"coverage run failed: {e}"
                break
            cb.run_value = result.value
            profile = profile_from_run(result)
            ran = True
            break
    if ran:
        cb.coverage = profile
