"""The index step: codebase → per-unit semantic-bearing representations.

For every translation unit this extracts (Fig. 3 of the paper):

* pre/post-preprocessor significant-line sets (SLOC ±pp),
* logical line counts (LLOC ±pp),
* normalised text lines with (file, line) tags (Source metric ± coverage),
* ``T_src`` pre/post, ``T_sem``, ``T_sem+i`` and ``T_ir`` trees,

and optionally executes the unit's verification run in the interpreter to
obtain the coverage profile.

Fault tolerance: by default each unit is indexed with recovering frontends
(tolerant lexing + panic-mode parsing), and a unit whose frontend still
fails is *quarantined* — it degrades to raw-text SLOC metrics with no
trees, the failure is reported via :mod:`repro.diag`
(``index/quarantined`` / ``index/internal-error``), and the rest of the
codebase indexes normally. ``strict=True`` restores fail-fast behaviour.

Incremental builds: indexing is a pure function of (source content,
frontend configuration), so each unit's output can be persisted as a
content-addressed artifact (:mod:`repro.workflow.unitstore`) and replayed
on the next run. Pass ``artifacts=UnitArtifactStore(...)`` to enable;
unchanged units load from disk with **zero** lex/parse/sema work
(``index.unit.hit``), changed units re-index (``index.unit.miss``) and,
with ``jobs > 1``, fan out across a :class:`repro.parallel.ChunkedPool`.
Strict mode bypasses the store entirely (fail-fast implies fresh
frontends) and indexes serially.
"""

from __future__ import annotations

from typing import Optional

from repro import diag, obs
from repro.compiler import CompileOptions, bundle_to_tree, lower_unit
from repro.coverage.profile import CoverageProfile, profile_from_run
from repro.exec.interpreter import run_program
from repro.lang.cpp.asttree import ast_to_tree
from repro.lang.cpp.cst import build_cst, normalized_src_tree
from repro.lang.cpp.lexer import Token, TokenType, lex
from repro.lang.cpp.parser import parse_tokens
from repro.lang.cpp.preprocessor import preprocess
from repro.lang.cpp.sema import analyze
from repro.lang.fortran.cst import fortran_cst, fortran_src_tree
from repro.lang.fortran.lexer import FtTokenType, lex_fortran
from repro.lang.fortran.parser import parse_fortran
from repro.lang.fortran.asttree import fortran_to_tree
from repro.lang.fortran.lower import lower_fortran
from repro.lang.source import VirtualFS
from repro.parallel import ChunkedPool
from repro.trees.inline import collect_definitions, inline_calls
from repro.trees.normalize import normalize_names, strip_non_semantic
from repro.util.errors import ReproError
from repro.util.timing import timed
from repro.workflow.codebase import IndexedCodebase, IndexedUnit, ModelSpec
from repro.workflow.linesummary import LineSummary
from repro.workflow.unitstore import UnitArtifactStore, load_unit, save_unit, unit_key

_CTRL_KEYWORDS = frozenset({"for", "if", "while", "do", "switch", "case"})


# ---------------------------------------------------------------------------
# C++ line summaries
# ---------------------------------------------------------------------------


def _cpp_line_summary(tokens: list[Token]) -> LineSummary:
    """Sig-line sets and normalised lines from one C++ token stream. The
    tokeniser has no newline tokens, so groups auto-break on (file, line)."""
    ls = LineSummary(auto_break=True)
    for t in tokens:
        if t.is_trivia or t.type is TokenType.EOF:
            continue
        ls.feed(t.file, t.line, t.text)
    return ls.finish()


def _cpp_lloc(tokens: list[Token]) -> int:
    """Nguyen-style logical lines: statements + control constructs."""
    semis = 0
    fors = 0
    ctrl = 0
    for t in tokens:
        if t.type is TokenType.PUNCT and t.text == ";":
            semis += 1
        elif t.type is TokenType.KEYWORD and t.text in _CTRL_KEYWORDS:
            ctrl += 1
            if t.text == "for":
                fors += 1
        elif t.type is TokenType.DIRECTIVE:
            ctrl += 1  # a retained pragma is one logical line
    return max(semis - 2 * fors + ctrl, 0)


@timed("index.cpp")
def index_cpp_unit(
    fs: VirtualFS,
    role: str,
    path: str,
    options: CompileOptions,
    defines: Optional[dict[str, str]] = None,
    recover: bool = False,
) -> IndexedUnit:
    """Index one MiniC++ translation unit.

    ``recover=True`` lexes tolerantly and parses with panic-mode recovery,
    so damaged sources yield partial trees plus diagnostics.
    """
    unit = IndexedUnit(role=role, path=path)
    with obs.span("preprocess", path=path):
        pp = preprocess(fs, path, defines)
    unit.deps = list(pp.dependencies)

    # pre-preprocessor: lex every file of the unit separately
    with obs.span("lex", path=path):
        pre_tokens: list[Token] = []
        for f in [path, *unit.deps]:
            toks = lex(fs.get(f).text, f, tolerant=recover)
            pre_tokens.extend(toks)
            unit.lloc_pre[f] = _cpp_lloc(toks)
    pre = _cpp_line_summary(pre_tokens)
    unit.sig_lines_pre = pre.sig
    unit.source_lines_pre, unit.source_tags_pre = pre.lines, pre.tags

    # post-preprocessor
    post = _cpp_line_summary(pp.tokens)
    unit.sig_lines_post = post.sig
    unit.lloc_post[path] = _cpp_lloc(pp.tokens)
    unit.source_lines_post, unit.source_tags_post = post.lines, post.tags

    # trees
    with obs.span("trees.src", path=path):
        unit.t_src_pre = normalize_names(
            normalized_src_tree(build_cst(lex(fs.get(path).text, path, tolerant=recover), path))
        )
        unit.t_src_post = normalize_names(normalized_src_tree(build_cst(pp.tokens, path)))
    with obs.span("parse", path=path):
        tu = parse_tokens(pp.tokens, path, recover=recover)
    with obs.span("sema", path=path):
        sema = analyze(tu)
    with obs.span("trees.sem", path=path):
        sem_raw = strip_non_semantic(ast_to_tree(tu, sema))
        sem_named = normalize_names(sem_raw)
        unit.t_sem = sem_named
        defs = collect_definitions(sem_named)
        unit.t_sem_inlined = inline_calls(sem_named, defs)
    with obs.span("lower", path=path):
        bundle = lower_unit(tu, sema, options)
        unit.t_ir = bundle_to_tree(bundle)
    obs.add("index.units")
    # keep handles for the coverage step
    unit_attrs = {"tu": tu, "sema": sema}
    unit.__dict__["_frontend"] = unit_attrs
    return unit


# ---------------------------------------------------------------------------
# Fortran line summaries
# ---------------------------------------------------------------------------


@timed("index.fortran")
def index_fortran_unit(fs: VirtualFS, role: str, path: str, recover: bool = False) -> IndexedUnit:
    """Index one MiniFortran file (Fortran has no preprocessing phase here:
    the pre/post representations coincide)."""
    unit = IndexedUnit(role=role, path=path)
    text = fs.get(path).text
    with obs.span("lex", path=path):
        toks = lex_fortran(text, path, tolerant=recover)
    # explicit NEWLINE/EOF tokens delimit logical lines, so the summary
    # groups on break_line() rather than (file, line) changes
    ls = LineSummary(auto_break=False)
    for t in toks:
        if t.type is FtTokenType.COMMENT:
            continue
        if t.type in (FtTokenType.NEWLINE, FtTokenType.EOF):
            ls.break_line()
            continue
        ls.feed(t.file, t.line, t.text)
    ls.finish()
    unit.sig_lines_pre = ls.sig
    unit.sig_lines_post = {f: set(lines) for f, lines in ls.sig.items()}
    unit.lloc_pre[path] = len(ls.lines)
    unit.lloc_post[path] = len(ls.lines)
    unit.source_lines_pre = ls.lines
    unit.source_tags_pre = ls.tags
    unit.source_lines_post = list(ls.lines)
    unit.source_tags_post = list(ls.tags)

    with obs.span("trees.src", path=path):
        cst = fortran_cst(text, path, tolerant=recover)
        unit.t_src_pre = normalize_names(fortran_src_tree(cst))
        unit.t_src_post = unit.t_src_pre
    with obs.span("parse", path=path):
        ftfile = parse_fortran(text, path, recover=recover)
    with obs.span("trees.sem", path=path):
        sem = normalize_names(fortran_to_tree(ftfile))
        unit.t_sem = sem
        unit.t_sem_inlined = sem  # the paper omits T_sem+i for the GCC pipeline
    with obs.span("lower", path=path):
        unit.t_ir = bundle_to_tree(lower_fortran(ftfile))
    obs.add("index.units")
    unit.__dict__["_frontend"] = {"ftfile": ftfile}
    return unit


def _fortran_static_profile(spec: ModelSpec, units: dict[str, IndexedUnit]) -> CoverageProfile:
    """Fallback profile for Fortran units the interpreter cannot run: every
    statement span recorded in ``T_sem`` is marked executed."""
    profile = CoverageProfile()
    for unit in units.values():
        if unit.t_sem is None:
            continue
        for node in unit.t_sem.preorder():
            if node.span is not None:
                profile.record(node.span.file, node.span.line_start)
    return profile


# ---------------------------------------------------------------------------
# per-unit coverage records
# ---------------------------------------------------------------------------
#
# The verification run is part of the per-unit pass (it only needs that
# unit's frontend handles), recorded as a plain-data "covrec" so it can ride
# inside the unit's persisted artifact. The codebase-level coverage profile
# and run value are then *merged* from the covrecs — identically whether a
# unit was freshly indexed or replayed from disk.


def _record_hits(hits) -> list[list]:
    return [[f, ln, c] for (f, ln), c in hits.items()]


def _cpp_coverage_record(unit: IndexedUnit, spec: ModelSpec) -> Optional[dict]:
    fe = unit.__dict__.get("_frontend")
    if not fe or spec.entry is None:
        return None
    sema = fe["sema"]
    entry_fn = sema.functions.get(spec.entry)
    if entry_fn is None or entry_fn.body is None:
        return None
    rec: dict = {"attempted": True, "failed": None, "value": None, "hits": []}
    try:
        result = run_program(fe["tu"], sema, spec.entry)
    except ReproError as e:
        # the program may call across translation units the per-TU
        # interpreter cannot link; index without coverage rather than
        # failing the whole step
        rec["failed"] = f"coverage run failed: {e}"
        return rec
    if isinstance(result.value, (int, float, str)):
        rec["value"] = result.value
    rec["hits"] = _record_hits(profile_from_run(result).hits)
    return rec


def _fortran_coverage_record(unit: IndexedUnit) -> Optional[dict]:
    from repro.exec.ft_interpreter import run_fortran

    fe = unit.__dict__.get("_frontend")
    if not fe or "ftfile" not in fe:
        return None
    rec: dict = {"attempted": True, "failed": None, "value": None, "hits": []}
    try:
        result = run_fortran(fe["ftfile"])
    except ReproError as e:
        rec["failed"] = f"coverage run failed: {e}"
        return rec
    if isinstance(result.value, (int, float, str)):
        rec["value"] = result.value
    rec["hits"] = _record_hits(result.coverage)
    return rec


def _unit_coverage(unit: IndexedUnit, spec: ModelSpec, run_coverage: bool) -> Optional[dict]:
    if not run_coverage:
        return None
    if spec.lang == "fortran":
        return _fortran_coverage_record(unit)
    return _cpp_coverage_record(unit, spec)


def _merge_coverage(cb: IndexedCodebase, spec: ModelSpec, covrecs: dict) -> None:
    """Replay the per-unit coverage records into the codebase profile.

    Preserves the historical semantics exactly: C++ uses the first unit
    whose entry point was runnable (a failed run leaves ``coverage`` unset);
    Fortran accumulates every runnable unit and falls back to the static
    all-statements profile when none ran.
    """
    if spec.lang == "fortran":
        profile = CoverageProfile()
        ran = False
        for role in sorted(cb.units):
            rec = covrecs.get(role)
            if not rec or not rec.get("attempted"):
                continue
            if rec.get("failed"):
                cb.run_value = rec["failed"]
                continue
            cb.run_value = rec.get("value")
            for f, ln, c in rec.get("hits", []):
                profile.hits[(f, ln)] += c
            ran = True
        cb.coverage = profile if ran else _fortran_static_profile(cb.spec, cb.units)
        return
    if spec.entry is None:
        return
    for role in sorted(cb.units):
        rec = covrecs.get(role)
        if not rec or not rec.get("attempted"):
            continue
        if rec.get("failed"):
            cb.run_value = rec["failed"]
        else:
            cb.run_value = rec.get("value")
            profile = CoverageProfile()
            for f, ln, c in rec.get("hits", []):
                profile.hits[(f, ln)] += c
            cb.coverage = profile
        break


# ---------------------------------------------------------------------------
# whole-codebase indexing
# ---------------------------------------------------------------------------


def _degraded_unit(fs: VirtualFS, role: str, path: str) -> IndexedUnit:
    """SLOC-only fallback for a quarantined unit.

    Populates the raw-text line representations (approximate: non-blank,
    non-comment physical lines) and leaves every tree ``None`` —
    ``tree_distance`` treats a missing tree as pure insert/delete cost, so
    the unit stays comparable.
    """
    unit = IndexedUnit(role=role, path=path, degraded=True)
    try:
        text = fs.get(path).text
    except (KeyError, OSError, ReproError):
        text = ""
    sig: set[int] = set()
    lines: list[str] = []
    tags: list[tuple[str, int]] = []
    for no, raw in enumerate(text.splitlines(), start=1):
        stripped = " ".join(raw.split())
        low = stripped.lower()
        if not stripped:
            continue
        if stripped.startswith(("//", "/*", "*")):
            continue
        if stripped.startswith("!") and not low.startswith(("!$omp", "!$acc")):
            continue
        sig.add(no)
        lines.append(stripped)
        tags.append((path, no))
    unit.sig_lines_pre = {path: sig}
    unit.sig_lines_post = {path: set(sig)}
    unit.lloc_pre[path] = len(lines)
    unit.lloc_post[path] = len(lines)
    unit.source_lines_pre = lines
    unit.source_tags_pre = tags
    unit.source_lines_post = list(lines)
    unit.source_tags_post = list(tags)
    obs.add("index.quarantined")
    return unit


def _front_unit(
    spec: ModelSpec,
    fs: VirtualFS,
    options: CompileOptions,
    role: str,
    path: str,
    recover: bool,
) -> IndexedUnit:
    if spec.lang == "cpp":
        return index_cpp_unit(fs, role, path, options, spec.defines, recover=recover)
    return index_fortran_unit(fs, role, path, recover=recover)


def _make_unit_worker(spec: ModelSpec, fs: VirtualFS, options: CompileOptions, run_coverage: bool):
    """Self-contained per-unit pass: front, run coverage, quarantine on
    failure. Diagnostics are captured and returned alongside the unit so
    the parent can replay them into its own sink (essential when the pass
    runs in a pool worker, and harmless in-process)."""

    def work(task: tuple[str, str]):
        role, path = task
        with diag.capture() as sink:
            try:
                unit = _front_unit(spec, fs, options, role, path, recover=True)
                covrec = _unit_coverage(unit, spec, run_coverage)
            except ReproError as e:
                diag.emit_exception("index/quarantined", e)
                diag.note(
                    "index/quarantined",
                    f"unit {role!r} degraded to SLOC-only metrics",
                    path,
                )
                unit, covrec = _degraded_unit(fs, role, path), None
            except Exception as e:  # noqa: BLE001 — quarantine wall: an
                # unexpected frontend bug must degrade the unit, not kill
                # the whole run; the type name keeps it debuggable.
                diag.error(
                    "index/internal-error",
                    f"{type(e).__name__} while indexing unit {role!r}: {e}",
                    path,
                )
                unit, covrec = _degraded_unit(fs, role, path), None
            # the tu/sema/ftfile handles served the coverage run above and
            # must not cross the process boundary (or reach an artifact)
            unit.__dict__.pop("_frontend", None)
        return unit, covrec, list(sink.diagnostics)

    return work


def _absorb_result(fs: VirtualFS, role: str, path: str, res):
    """Integrate one worker result; returns (unit, covrec, pristine)."""
    if res is None:  # pool chunk exhausted its retries (worker death etc.)
        diag.error(
            "index/internal-error",
            f"worker failed while indexing unit {role!r}",
            path,
        )
        return _degraded_unit(fs, role, path), None, False
    unit, covrec, diags = res
    sink = diag.current_sink()
    if sink is not None:
        for d in diags:
            # direct sink append: the diag.<severity> counters were already
            # bumped where the diagnostic was emitted (and merged from pool
            # workers), so routing through diag.emit would double-count
            sink.emit(d)
    return unit, covrec, not diags and not unit.degraded


def index_codebase(
    spec: ModelSpec,
    fs: VirtualFS,
    run_coverage: bool = False,
    strict: bool = False,
    artifacts: Optional[UnitArtifactStore] = None,
    jobs: int = 1,
) -> IndexedCodebase:
    """Index every unit of one model port; optionally run for coverage.

    Non-strict (default): frontends run in recovery mode and a unit whose
    frontend still raises is quarantined into a SLOC-only degraded unit,
    with the failure reported through :mod:`repro.diag`. ``strict=True``
    disables recovery and re-raises the first failure.

    With ``artifacts`` set (and not strict), unchanged units replay from
    the store (``index.unit.hit``) and only changed units re-run their
    frontends; freshly indexed units that produced no diagnostics are
    persisted back. ``jobs > 1`` fans the misses across worker processes.
    """
    cb = IndexedCodebase(spec=spec, fs=fs)
    options = CompileOptions(dialect=spec.dialect, openmp=spec.openmp, name=spec.model)
    recover = not strict
    store = artifacts if (artifacts is not None and not strict) else None
    covrecs: dict[str, Optional[dict]] = {}
    with obs.span("index.codebase", app=spec.app, model=spec.model):
        roles = sorted(spec.units.items())
        for role, path in roles:
            if spec.lang not in ("cpp", "fortran"):
                raise ReproError(
                    f"unknown language {spec.lang!r} for unit {role!r} ({path}) "
                    f"in spec {spec.app}/{spec.model}"
                )
        units: dict[str, IndexedUnit] = {}
        keys: dict[str, Optional[str]] = {}
        misses: list[tuple[str, str]] = []
        for role, path in roles:
            key = (
                unit_key(spec, fs, role, path, recover=recover, coverage=run_coverage)
                if store is not None
                else None
            )
            keys[role] = key
            hit = load_unit(store, key, fs) if key is not None else None
            if hit is not None:
                units[role], covrecs[role] = hit
                obs.add("index.unit.hit")
            else:
                if store is not None:
                    obs.add("index.unit.miss")
                misses.append((role, path))
        if misses and strict:
            for role, path in misses:
                unit = _front_unit(spec, fs, options, role, path, recover=False)
                covrecs[role] = _unit_coverage(unit, spec, run_coverage)
                unit.__dict__.pop("_frontend", None)
                units[role] = unit
        elif misses:
            worker = _make_unit_worker(spec, fs, options, run_coverage)
            # fork even for a single miss: a one-unit model still gets its
            # own worker lane in the trace, and compare --jobs N visibly
            # fans its per-model cold indexes across distinct pids
            if jobs > 1 and misses:
                pool = ChunkedPool(
                    jobs=jobs,
                    chunk_size=1,
                    counter_prefix="index.pool",
                    label="index chunk",
                    fail_code="index/chunk-failed",
                )
                results = pool.run(worker, misses, fail_value=None).values
            else:
                results = [worker(t) for t in misses]
            for (role, path), res in zip(misses, results):
                unit, covrec, pristine = _absorb_result(fs, role, path, res)
                units[role] = unit
                covrecs[role] = covrec
                key = keys.get(role)
                if store is not None and key is not None and pristine:
                    try:
                        save_unit(store, key, unit, covrec, fs)
                    except (OSError, ReproError) as e:
                        diag.warning(
                            "index/artifact-write-failed",
                            f"could not persist unit artifact: {e}",
                            path,
                        )
        cb.units = {role: units[role] for role, _ in roles}
    if run_coverage:
        with obs.span("coverage", app=spec.app, model=spec.model):
            _merge_coverage(cb, spec, covrecs)
    return cb
