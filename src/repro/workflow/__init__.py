"""End-to-end workflow (paper Fig. 2).

``compile_commands.json`` → index (per-unit semantic-bearing trees +
metadata, persistable as a compressed Codebase DB) → compare (cartesian
product of models) → analyse (clustering, heatmaps, navigation charts).
"""

from repro.workflow.codebase import IndexedUnit, IndexedCodebase, ModelSpec
from repro.workflow.compiledb import CompileCommand, parse_compile_db, options_from_command
from repro.workflow.indexer import index_codebase, index_cpp_unit, index_fortran_unit
from repro.workflow.comparer import (
    divergence,
    divergence_row,
    divergence_matrix,
    MetricSpec,
    DEFAULT_METRICS,
)

__all__ = [
    "IndexedUnit",
    "IndexedCodebase",
    "ModelSpec",
    "CompileCommand",
    "parse_compile_db",
    "options_from_command",
    "index_codebase",
    "index_cpp_unit",
    "index_fortran_unit",
    "divergence",
    "divergence_row",
    "divergence_matrix",
    "MetricSpec",
    "DEFAULT_METRICS",
]
