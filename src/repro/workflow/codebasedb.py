"""Codebase DB persistence (paper Fig. 2).

The index step's output — "a portable set of semantic-bearing trees and
metadata files" — serialised with the from-scratch MessagePack codec into
the compressed container, and restored without re-running the frontends.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.coverage.profile import CoverageProfile
from repro.lang.source import VirtualFS
from repro.serde.container import read_blob, write_blob
from repro.trees.node import Node
from repro.util.errors import SerdeError
from repro.workflow.codebase import IndexedCodebase, IndexedUnit, ModelSpec

_FORMAT = 2


def _unit_to_obj(u: IndexedUnit) -> dict:
    def tree(t):
        return t.to_dict() if t is not None else None

    return {
        "role": u.role,
        "path": u.path,
        "deps": u.deps,
        "degraded": u.degraded,
        "sig_pre": {f: sorted(ls) for f, ls in u.sig_lines_pre.items()},
        "sig_post": {f: sorted(ls) for f, ls in u.sig_lines_post.items()},
        "lloc_pre": u.lloc_pre,
        "lloc_post": u.lloc_post,
        "src_lines_pre": u.source_lines_pre,
        "src_lines_post": u.source_lines_post,
        "src_tags_pre": [list(t) for t in u.source_tags_pre],
        "src_tags_post": [list(t) for t in u.source_tags_post],
        "t_src_pre": tree(u.t_src_pre),
        "t_src_post": tree(u.t_src_post),
        "t_sem": tree(u.t_sem),
        "t_sem_i": tree(u.t_sem_inlined),
        "t_ir": tree(u.t_ir),
    }


def _unit_from_obj(o: dict) -> IndexedUnit:
    def tree(d):
        return Node.from_dict(d) if d is not None else None

    u = IndexedUnit(
        role=o["role"],
        path=o["path"],
        deps=list(o["deps"]),
        degraded=bool(o.get("degraded", False)),
    )
    u.sig_lines_pre = {f: set(ls) for f, ls in o["sig_pre"].items()}
    u.sig_lines_post = {f: set(ls) for f, ls in o["sig_post"].items()}
    u.lloc_pre = dict(o["lloc_pre"])
    u.lloc_post = dict(o["lloc_post"])
    u.source_lines_pre = list(o["src_lines_pre"])
    u.source_lines_post = list(o["src_lines_post"])
    u.source_tags_pre = [tuple(t) for t in o["src_tags_pre"]]
    u.source_tags_post = [tuple(t) for t in o["src_tags_post"]]
    u.t_src_pre = tree(o["t_src_pre"])
    u.t_src_post = tree(o["t_src_post"])
    u.t_sem = tree(o["t_sem"])
    u.t_sem_inlined = tree(o["t_sem_i"])
    u.t_ir = tree(o["t_ir"])
    return u


def save_codebase_db(cb: IndexedCodebase, path: Union[str, Path]) -> int:
    """Persist an indexed codebase; returns bytes written."""
    obj = {
        "format": _FORMAT,
        "spec": {
            "app": cb.spec.app,
            "model": cb.spec.model,
            "lang": cb.spec.lang,
            "dialect": cb.spec.dialect,
            "openmp": cb.spec.openmp,
            "units": cb.spec.units,
            "defines": cb.spec.defines,
            "entry": cb.spec.entry,
        },
        "files": dict(cb.fs.files),
        "units": {role: _unit_to_obj(u) for role, u in cb.units.items()},
        "coverage": (
            [[f, ln, c] for (f, ln), c in cb.coverage.hits.items()]
            if cb.coverage is not None
            else None
        ),
        "run_value": cb.run_value if isinstance(cb.run_value, (int, float, str)) else None,
    }
    return write_blob(path, obj)


def load_codebase_db(path: Union[str, Path]) -> IndexedCodebase:
    """Restore an indexed codebase from disk."""
    obj = read_blob(path)
    if obj.get("format") != _FORMAT:
        raise SerdeError(f"{path}: unsupported Codebase DB format {obj.get('format')!r}")
    s = obj["spec"]
    spec = ModelSpec(
        app=s["app"],
        model=s["model"],
        lang=s["lang"],
        dialect=s["dialect"],
        openmp=s["openmp"],
        units=dict(s["units"]),
        defines=dict(s["defines"]),
        entry=s["entry"],
    )
    fs = VirtualFS(files=dict(obj["files"]))
    cb = IndexedCodebase(spec=spec, fs=fs)
    cb.units = {role: _unit_from_obj(o) for role, o in obj["units"].items()}
    if obj["coverage"] is not None:
        prof = CoverageProfile()
        for f, ln, c in obj["coverage"]:
            prof.hits[(f, ln)] = c
        cb.coverage = prof
    cb.run_value = obj.get("run_value")
    return cb
