"""The compare step: divergences over the cartesian product of models.

§V-A: "We run the comparison step over the cartesian product of all models
to yield a correlation matrix" — :func:`divergence_matrix` is that matrix
for any metric; :func:`divergence_row` produces divergence-from-baseline
rows (Figs. 7–10).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.distance.engine import DistanceEngine
from repro.trees.hashing import cached_structural_hash
from repro.workflow.codebase import IndexedCodebase

#: NaN pair used when a chunk of pair evaluations exhausts its retries in
#: non-strict mode — the matrix keeps its shape, the cells are honest holes.
_NAN_PAIR = (float("nan"), float("nan"))


@dataclass(frozen=True)
class MetricSpec:
    """A metric + variant selection, e.g. ``MetricSpec("Tsem")`` or
    ``MetricSpec("Source", pp=True, coverage=True)``."""

    name: str  # SLOC | LLOC | Source | Tsrc | Tsem | Tir
    pp: bool = False
    coverage: bool = False
    inlining: bool = False
    include_system: bool = False

    @property
    def label(self) -> str:
        s = self.name
        if self.inlining:
            s += "+i"
        if self.pp:
            s += "+pp"
        if self.coverage:
            s += "+cov"
        return s


def parse_metric(name: str) -> MetricSpec:
    """Parse the CLI/HTTP metric syntax (``Tsem``, ``Source+pp+cov``,
    ``Tsem+i``) into a :class:`MetricSpec`.

    One parser shared by the batch CLI and ``silvervale serve`` — part of
    the bit-identity-with-CLI guarantee: both surfaces cannot drift in how
    they read a metric name.
    """
    base = name
    pp = cov = inl = False
    for suffix, flag in (("+pp", "pp"), ("+cov", "cov"), ("+i", "inl")):
        if suffix in base:
            base = base.replace(suffix, "")
            if flag == "pp":
                pp = True
            elif flag == "cov":
                cov = True
            else:
                inl = True
    return MetricSpec(base, pp=pp, coverage=cov, inlining=inl)


#: The six metrics of the Fig. 5/6 dendrogram panels.
DEFAULT_METRICS: tuple[MetricSpec, ...] = (
    MetricSpec("LLOC"),
    MetricSpec("SLOC"),
    MetricSpec("Source"),
    MetricSpec("Tsrc"),
    MetricSpec("Tsem"),
    MetricSpec("Tir"),
)


def divergence(a: IndexedCodebase, b: IndexedCodebase, spec: MetricSpec) -> float:
    """Normalised divergence of ``b`` from ``a`` under ``spec`` (0 = identical)."""
    with obs.span("compare.divergence", metric=spec.label, base=a.model, other=b.model):
        return _divergence(a, b, spec)


def _tree_kind(spec: MetricSpec) -> Optional[str]:
    """The tree variant a tree-metric spec compares, or ``None`` for
    non-tree metrics. One resolver shared by :func:`_divergence` and
    :func:`divergence_prepare` so the warm-up can never batch a different
    tree than the evaluation reads."""
    if spec.name not in ("Tsrc", "Tsem", "Tir"):
        return None
    which = {"Tsrc": "src", "Tsem": "sem", "Tir": "ir"}[spec.name]
    if spec.pp and spec.name == "Tsrc":
        which = "src+pp"
    if spec.inlining and spec.name == "Tsem":
        which = "sem+i"
    return which


#: Public name for the tree-variant resolver: the metric index and the
#: serve/CLI nearest paths all ask "is this a tree metric, and which tree?"
#: through this single function.
def tree_metric_kind(spec: MetricSpec) -> Optional[str]:
    return _tree_kind(spec)


def _divergence(a: IndexedCodebase, b: IndexedCodebase, spec: MetricSpec) -> float:
    # deferred imports: repro.metrics consumes the codebase model this
    # package defines, so importing it at module scope would be circular
    from repro.metrics.lloc import lloc
    from repro.metrics.sloc import sloc
    from repro.metrics.source_dist import source_distance
    from repro.metrics.treemetrics import tree_distance

    mask_a = a.mask() if spec.coverage else None
    mask_b = b.mask() if spec.coverage else None
    variant = "pp" if spec.pp else "pre"
    if spec.name == "SLOC":
        va = sloc(a, variant, mask_a)
        vb = sloc(b, variant, mask_b)
        return abs(vb - va) / max(va, vb, 1)
    if spec.name == "LLOC":
        va = lloc(a, variant, mask_a)
        vb = lloc(b, variant, mask_b)
        return abs(vb - va) / max(va, vb, 1)
    if spec.name == "Source":
        d, dmax = source_distance(a, b, variant, mask_a, mask_b)
        return d / dmax if dmax else 0.0
    which = _tree_kind(spec)
    if which is not None:
        d, dmax = tree_distance(a, b, which, mask_a, mask_b, spec.include_system)
        return d / dmax if dmax else 0.0
    raise ValueError(f"unknown metric {spec.name!r}")


def divergence_prepare(tasks: Sequence[tuple]) -> None:
    """Chunk-level warm-up: batch all of a chunk's TED pairs at once.

    Accepts the same ``(a, b, spec)`` task tuples as :func:`divergence_task`
    / :func:`divergence_pair_task` (both directions share one symmetric
    memo entry, so one pass covers pair tasks too). Tree-metric tasks
    contribute their matched unit-tree pairs; everything is handed to
    :func:`repro.distance.ted.ted_many`, which prunes via the cascade and
    packs the small survivors into one cross-pair row sweep. Purely a memo
    warmer — the per-task evaluation recomputes anything missing, so
    results are identical with or without it.
    """
    from repro.distance.ted import ted_many
    from repro.metrics.treemetrics import tree_ted_demands

    demands: list[tuple] = []
    for task in tasks:
        a, b, spec = task
        which = _tree_kind(spec)
        if which is None:
            continue
        mask_a = a.mask() if spec.coverage else None
        mask_b = b.mask() if spec.coverage else None
        demands.extend(
            tree_ted_demands(a, b, which, mask_a, mask_b, spec.include_system)
        )
    if demands:
        ted_many(demands)


def divergence_task(task: tuple[IndexedCodebase, IndexedCodebase, MetricSpec]) -> float:
    """One directed divergence evaluation (engine task form)."""
    a, b, spec = task
    return divergence(a, b, spec)


def divergence_pair_task(
    task: tuple[IndexedCodebase, IndexedCodebase, MetricSpec],
) -> tuple[float, float]:
    """Both directions of one unordered pair; the underlying TED results are
    shared through the memo, so computing them together halves kernel work."""
    a, b, spec = task
    return divergence(a, b, spec), divergence(b, a, spec)


#: Historical internal name (pre-serve); the engine task registry and tests
#: still reach it here.
_pair_task = divergence_pair_task


def symmetrized_divergence(d_ab: float, d_ba: float) -> float:
    """The symmetrized matrix-cell value: the average of both directions.

    TED with unit costs is symmetric but ``dmax`` normalisation is not;
    this single helper is what the cluster matrix band, ``/v1/nearest``,
    ``silvervale nearest`` and the metric index all apply, so the float
    arithmetic producing a "symmetrized divergence" exists in exactly one
    place — the bit-identity-across-surfaces guarantee depends on it.
    """
    return (d_ab + d_ba) / 2.0


def nearest_brute_force(
    target: IndexedCodebase,
    others: Sequence[IndexedCodebase],
    spec: MetricSpec,
    engine: Optional[DistanceEngine] = None,
) -> list[tuple[float, str]]:
    """The reference linear scan behind every nearest-neighbor surface.

    One exact pair evaluation per candidate through ``engine`` (the same
    :func:`divergence_pair_task` / :func:`pair_task_key` demands the serve
    batcher schedules), scored with :func:`symmetrized_divergence` and
    sorted by ``(score, model)``. The metric index's answers are gated to
    be bit-identical to this list.
    """
    eng = engine if engine is not None else DistanceEngine()
    tasks = [(target, cb, spec) for cb in others]
    keys = [pair_task_key(target, cb, spec) for cb in others]
    values = eng.map_tasks(
        divergence_pair_task,
        tasks,
        keys=keys,
        fail_value=_NAN_PAIR,
        prepare=divergence_prepare,
    )
    return sorted(
        (
            (symmetrized_divergence(d_ab, d_ba), cb.model)
            for cb, (d_ab, d_ba) in zip(others, values)
        ),
        key=lambda t: (t[0], t[1]),
    )


# ---------------------------------------------------------------------------
# Task identity (checkpoint/resume keys)
# ---------------------------------------------------------------------------


def _tree_hash(t) -> str:
    """Structural hash with the same root-attr memo the TED layer uses."""
    return cached_structural_hash(t)


def codebase_fingerprint(cb: IndexedCodebase, spec: MetricSpec) -> str:
    """Stable content identity of one codebase *as this spec compares it*.

    Digest over every representation a divergence evaluation can read:
    per-unit structural hashes of all five trees plus the line/source
    summaries, and — when the spec is coverage-filtered — the executed-line
    mask. Any reindex that changes a compared tree, a line count or the
    coverage data changes the fingerprint, which is what makes checkpoints
    keyed by these fingerprints self-invalidating (same contract as the TED
    cache's structural-hash keys; see DESIGN.md).

    Fingerprints are memoised per (codebase, coverage-flag): the trees are
    frozen once indexed, exactly like the TED layer assumes.
    """
    memo = getattr(cb, "_fingerprints", None)
    if memo is None:
        memo = {}
        cb._fingerprints = memo
    cached = memo.get(spec.coverage)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(f"{cb.app}/{cb.model}".encode())
    for role in cb.roles():
        u = cb.units[role]
        h.update(b"\x00")
        h.update(role.encode())
        h.update(b"1" if u.degraded else b"0")
        for t in (u.t_src_pre, u.t_src_post, u.t_sem, u.t_sem_inlined, u.t_ir):
            h.update(b"\x01")
            h.update(_tree_hash(t).encode() if t is not None else b"-")
        for lines in (u.sig_lines_pre, u.sig_lines_post):
            for f in sorted(lines):
                h.update(f.encode())
                h.update(str(sorted(lines[f])).encode())
        h.update(str(sorted(u.lloc_pre.items())).encode())
        h.update(str(sorted(u.lloc_post.items())).encode())
        for src in (u.source_lines_pre, u.source_lines_post):
            for line in src:
                h.update(b"\x02")
                h.update(line.encode())
    if spec.coverage:
        mask = cb.mask()
        h.update(b"\x03")
        h.update(mask.digest().encode() if mask is not None else b"-")
    fp = h.hexdigest()[:16]
    memo[spec.coverage] = fp
    return fp


def directed_task_key(a: IndexedCodebase, b: IndexedCodebase, spec: MetricSpec) -> str:
    """Checkpoint key of one directed divergence evaluation (a → b)."""
    fa = codebase_fingerprint(a, spec)
    fb = codebase_fingerprint(b, spec)
    return f"dir:{spec.label}:{fa}:{fb}"


def pair_task_key(a: IndexedCodebase, b: IndexedCodebase, spec: MetricSpec) -> str:
    """Checkpoint key of one unordered pair evaluation (both directions).

    Sorted like the TED cache's pair keys: the pair is one unit of work
    regardless of orientation.
    """
    fa = codebase_fingerprint(a, spec)
    fb = codebase_fingerprint(b, spec)
    lo, hi = (fa, fb) if fa <= fb else (fb, fa)
    return f"pair:{spec.label}:{lo}:{hi}"


def divergence_row(
    base: IndexedCodebase,
    others: Sequence[IndexedCodebase],
    spec: MetricSpec,
    engine: Optional[DistanceEngine] = None,
) -> dict[str, float]:
    """Divergence of every model from ``base`` (one heatmap row)."""
    eng = engine if engine is not None else DistanceEngine()
    values = eng.map_tasks(
        divergence_task,
        [(base, cb, spec) for cb in others],
        keys=[directed_task_key(base, cb, spec) for cb in others],
        prepare=divergence_prepare,
    )
    return {cb.model: v for cb, v in zip(others, values)}


def matrix_demands(
    codebases: Sequence[IndexedCodebase], spec: MetricSpec
) -> tuple[list[tuple[int, int]], list[tuple], list[str]]:
    """Upper-triangle pair demand list of one divergence matrix.

    Returns ``(pairs, tasks, keys)``: ``pairs`` are ``(i, j)`` index tuples,
    ``tasks`` the matching :func:`divergence_pair_task` inputs, ``keys`` the
    matching :func:`pair_task_key` identities. Shared by the batch path
    below and the serve layer's request batcher so both schedule the *same*
    work under the *same* checkpoint/memo keys — the matrix a service
    assembles from these demands is bit-identical to the batch one.
    """
    n = len(codebases)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    tasks = [(codebases[i], codebases[j], spec) for i, j in pairs]
    keys = [pair_task_key(codebases[i], codebases[j], spec) for i, j in pairs]
    return pairs, tasks, keys


def matrix_from_pair_values(
    n: int,
    pairs: Sequence[tuple[int, int]],
    values: Sequence[tuple[float, float]],
    symmetrize: bool = True,
) -> np.ndarray:
    """Assemble the dense matrix from per-pair ``(d_ij, d_ji)`` values —
    the (deterministic) second half of :func:`divergence_matrix`."""
    m = np.zeros((n, n))
    for (i, j), (d_ij, d_ji) in zip(pairs, values):
        m[i, j] = d_ij
        m[j, i] = d_ji
    if symmetrize:
        # cell-by-cell through the one shared helper (IEEE addition is
        # commutative, so this is bit-identical to the historical
        # whole-matrix (m + m.T) / 2 band)
        for (i, j), (d_ij, d_ji) in zip(pairs, values):
            s = symmetrized_divergence(d_ij, d_ji)
            m[i, j] = s
            m[j, i] = s
    return m


def divergence_matrix(
    codebases: Sequence[IndexedCodebase],
    spec: MetricSpec,
    symmetrize: bool = True,
    engine: Optional[DistanceEngine] = None,
    index=None,
) -> np.ndarray:
    """Dense divergence matrix over all model pairs.

    TED with unit costs is symmetric but ``dmax`` normalisation is not;
    ``symmetrize`` averages the two directions so clustering sees a proper
    dissimilarity (the paper's correlation-matrix step does the same
    cartesian product).

    The upper-triangle pair list is scheduled through ``engine`` (a default
    serial :class:`DistanceEngine` when none is given). Every pair is a pure
    function of its two codebases, so serial and parallel schedules produce
    bit-identical matrices.

    ``index`` (anything with a ``pin_pair(a, b) -> (d_ab, d_ba) | None``
    method — a :class:`repro.metricindex.MetricIndex` or
    :class:`~repro.metricindex.PairPinner`) enables the index-backed
    candidate pruning path: pairs whose value pins *exactly* from stored
    unit geometry (hash-identical matched units, unmatched size sums)
    never reach the engine. Pinned values are bit-identical to evaluated
    ones by construction, so the matrix is unchanged — only cheaper
    (``index.matrix.pinned`` counts the skipped cells).
    """
    eng = engine if engine is not None else DistanceEngine()
    n = len(codebases)
    with obs.span("compare.matrix", metric=spec.label, models=n, jobs=eng.jobs):
        pairs, tasks, keys = matrix_demands(codebases, spec)
        pinned: dict[int, tuple[float, float]] = {}
        if index is not None:
            for at, (i, j) in enumerate(pairs):
                hit = index.pin_pair(codebases[i], codebases[j])
                if hit is not None:
                    pinned[at] = hit
        if pinned:
            live = [at for at in range(len(pairs)) if at not in pinned]
            fresh = eng.map_tasks(
                divergence_pair_task,
                [tasks[at] for at in live],
                keys=[keys[at] for at in live],
                fail_value=_NAN_PAIR,
                prepare=divergence_prepare,
            )
            values: list[tuple[float, float]] = [None] * len(pairs)  # type: ignore[list-item]
            for at, v in zip(live, fresh):
                values[at] = v
            for at, v in pinned.items():
                values[at] = v
        else:
            values = eng.map_tasks(
                divergence_pair_task,
                tasks,
                keys=keys,
                fail_value=_NAN_PAIR,
                prepare=divergence_prepare,
            )
        obs.add("compare.pairs", n * (n - 1))
        return matrix_from_pair_values(n, pairs, values, symmetrize=symmetrize)
