"""The compare step: divergences over the cartesian product of models.

§V-A: "We run the comparison step over the cartesian product of all models
to yield a correlation matrix" — :func:`divergence_matrix` is that matrix
for any metric; :func:`divergence_row` produces divergence-from-baseline
rows (Figs. 7–10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.distance.engine import DistanceEngine
from repro.workflow.codebase import IndexedCodebase


@dataclass(frozen=True)
class MetricSpec:
    """A metric + variant selection, e.g. ``MetricSpec("Tsem")`` or
    ``MetricSpec("Source", pp=True, coverage=True)``."""

    name: str  # SLOC | LLOC | Source | Tsrc | Tsem | Tir
    pp: bool = False
    coverage: bool = False
    inlining: bool = False
    include_system: bool = False

    @property
    def label(self) -> str:
        s = self.name
        if self.inlining:
            s += "+i"
        if self.pp:
            s += "+pp"
        if self.coverage:
            s += "+cov"
        return s


#: The six metrics of the Fig. 5/6 dendrogram panels.
DEFAULT_METRICS: tuple[MetricSpec, ...] = (
    MetricSpec("LLOC"),
    MetricSpec("SLOC"),
    MetricSpec("Source"),
    MetricSpec("Tsrc"),
    MetricSpec("Tsem"),
    MetricSpec("Tir"),
)


def divergence(a: IndexedCodebase, b: IndexedCodebase, spec: MetricSpec) -> float:
    """Normalised divergence of ``b`` from ``a`` under ``spec`` (0 = identical)."""
    with obs.span("compare.divergence", metric=spec.label, base=a.model, other=b.model):
        return _divergence(a, b, spec)


def _divergence(a: IndexedCodebase, b: IndexedCodebase, spec: MetricSpec) -> float:
    # deferred imports: repro.metrics consumes the codebase model this
    # package defines, so importing it at module scope would be circular
    from repro.metrics.lloc import lloc
    from repro.metrics.sloc import sloc
    from repro.metrics.source_dist import source_distance
    from repro.metrics.treemetrics import tree_distance

    mask_a = a.mask() if spec.coverage else None
    mask_b = b.mask() if spec.coverage else None
    variant = "pp" if spec.pp else "pre"
    if spec.name == "SLOC":
        va = sloc(a, variant, mask_a)
        vb = sloc(b, variant, mask_b)
        return abs(vb - va) / max(va, vb, 1)
    if spec.name == "LLOC":
        va = lloc(a, variant, mask_a)
        vb = lloc(b, variant, mask_b)
        return abs(vb - va) / max(va, vb, 1)
    if spec.name == "Source":
        d, dmax = source_distance(a, b, variant, mask_a, mask_b)
        return d / dmax if dmax else 0.0
    if spec.name in ("Tsrc", "Tsem", "Tir"):
        which = {"Tsrc": "src", "Tsem": "sem", "Tir": "ir"}[spec.name]
        if spec.pp and spec.name == "Tsrc":
            which = "src+pp"
        if spec.inlining and spec.name == "Tsem":
            which = "sem+i"
        d, dmax = tree_distance(a, b, which, mask_a, mask_b, spec.include_system)
        return d / dmax if dmax else 0.0
    raise ValueError(f"unknown metric {spec.name!r}")


def divergence_task(task: tuple[IndexedCodebase, IndexedCodebase, MetricSpec]) -> float:
    """One directed divergence evaluation (engine task form)."""
    a, b, spec = task
    return divergence(a, b, spec)


def _pair_task(
    task: tuple[IndexedCodebase, IndexedCodebase, MetricSpec],
) -> tuple[float, float]:
    """Both directions of one unordered pair; the underlying TED results are
    shared through the memo, so computing them together halves kernel work."""
    a, b, spec = task
    return divergence(a, b, spec), divergence(b, a, spec)


def divergence_row(
    base: IndexedCodebase,
    others: Sequence[IndexedCodebase],
    spec: MetricSpec,
    engine: Optional[DistanceEngine] = None,
) -> dict[str, float]:
    """Divergence of every model from ``base`` (one heatmap row)."""
    eng = engine if engine is not None else DistanceEngine()
    values = eng.map_tasks(divergence_task, [(base, cb, spec) for cb in others])
    return {cb.model: v for cb, v in zip(others, values)}


def divergence_matrix(
    codebases: Sequence[IndexedCodebase],
    spec: MetricSpec,
    symmetrize: bool = True,
    engine: Optional[DistanceEngine] = None,
) -> np.ndarray:
    """Dense divergence matrix over all model pairs.

    TED with unit costs is symmetric but ``dmax`` normalisation is not;
    ``symmetrize`` averages the two directions so clustering sees a proper
    dissimilarity (the paper's correlation-matrix step does the same
    cartesian product).

    The upper-triangle pair list is scheduled through ``engine`` (a default
    serial :class:`DistanceEngine` when none is given). Every pair is a pure
    function of its two codebases, so serial and parallel schedules produce
    bit-identical matrices.
    """
    eng = engine if engine is not None else DistanceEngine()
    n = len(codebases)
    m = np.zeros((n, n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    with obs.span("compare.matrix", metric=spec.label, models=n, jobs=eng.jobs):
        tasks = [(codebases[i], codebases[j], spec) for i, j in pairs]
        for (i, j), (d_ij, d_ji) in zip(pairs, eng.map_tasks(_pair_task, tasks)):
            m[i, j] = d_ij
            m[j, i] = d_ji
        obs.add("compare.pairs", n * (n - 1))
    if symmetrize:
        m = (m + m.T) / 2.0
    return m
