"""Per-unit index artifacts: the incremental-build half of the Codebase DB.

Each successfully indexed translation unit is persisted as one
content-addressed artifact in the shared artifact root (namespace
``unit``, next to the ``ted`` cache shards and ``ckpt`` checkpoint
files). The key fingerprints everything that can change the unit's
representations:

* the key spec version (bump on any indexer output change),
* the model spec (app, model, lang, dialect, openmp, entry, defines),
* the frontend mode (``recover``) and whether a coverage run rides along,
* the unit identity (role, main path) and the main file's content hash,
* the filesystem *layout* (sorted path names) — include resolution can
  pick a different file when one appears or disappears, even if every
  previously used dependency is unchanged.

Dependency *contents* are validated at load time against hashes stored
in the artifact payload (a depfile, in Make terms): a changed header is
a plain miss, never a stale hit. Corrupt or foreign artifacts are
reported as ``index/artifact-invalid`` warnings and treated as misses.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro import diag
from repro.artifacts import BlobStore
from repro.lang.source import VirtualFS
from repro.workflow.codebase import IndexedUnit, ModelSpec
from repro.workflow.codebasedb import _unit_from_obj, _unit_to_obj

SCHEMA = "repro.index/v1"
KEY_SPEC = "unit:frontend:v1"


def _text_hash(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def fs_layout_digest(fs: VirtualFS) -> str:
    """Digest of the file *names* (not contents) visible to the frontends."""
    h = hashlib.sha256()
    for path in sorted(fs.files):
        h.update(path.encode())
        h.update(b"\x00")
    return h.hexdigest()


def unit_key(
    spec: ModelSpec,
    fs: VirtualFS,
    role: str,
    path: str,
    recover: bool,
    coverage: bool,
) -> Optional[str]:
    """Content-addressed artifact key for one unit, or ``None`` when the
    unit's main file is absent (nothing to fingerprint — index normally
    and let the frontend report the failure)."""
    text = fs.files.get(path)
    if text is None:
        return None
    h = hashlib.sha256()
    parts = [
        KEY_SPEC,
        spec.app,
        spec.model,
        spec.lang,
        spec.dialect,
        "1" if spec.openmp else "0",
        spec.entry or "",
        "1" if recover else "0",
        "1" if coverage else "0",
        role,
        path,
        _text_hash(text),
        fs_layout_digest(fs),
    ]
    for k in sorted(spec.defines):
        parts.append(f"{k}={spec.defines[k]}")
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()[:32]


class UnitArtifactStore(BlobStore):
    """One ``unit-<key>.svc`` artifact per indexed translation unit."""

    NAMESPACE = "unit"
    SCHEMA = SCHEMA
    KEY_SPEC = KEY_SPEC
    DESCRIPTION = "unit artifact"
    KIND = "unit artifact"
    INVALID_COUNTER = "index.unit.invalid"
    SAVED_COUNTER = "index.unit.saved"


def save_unit(
    store: UnitArtifactStore,
    key: str,
    unit: IndexedUnit,
    covrec: Optional[dict],
    fs: VirtualFS,
) -> None:
    """Persist one pristine unit (plus its coverage record and depfile)."""
    deps = {
        p: _text_hash(fs.files[p])
        for p in [unit.path, *unit.deps]
        if p in fs.files
    }
    store.save(key, {"unit": _unit_to_obj(unit), "deps": deps, "cov": covrec})


def load_unit(
    store: UnitArtifactStore, key: str, fs: VirtualFS
) -> Optional[tuple[IndexedUnit, Optional[dict]]]:
    """Load one unit artifact; ``None`` on any kind of miss.

    A missing file is a silent miss; a changed dependency is a silent
    miss (the depfile caught it); a corrupt/foreign/misshapen artifact is
    a miss *with* an ``index/artifact-invalid`` warning so operators know
    the store needs a ``silvervale cache clear``.
    """
    if not store.path_for(key).exists():
        return None
    value = store.load(key)
    if not value:
        diag.warning(
            "index/artifact-invalid",
            f"unreadable unit artifact {store.path_for(key).name}; re-indexing",
        )
        return None
    deps = value.get("deps")
    if not isinstance(deps, dict):
        diag.warning(
            "index/artifact-invalid",
            f"unit artifact {store.path_for(key).name} has no depfile; re-indexing",
        )
        return None
    for p, digest in deps.items():
        text = fs.files.get(p)
        if text is None or _text_hash(text) != digest:
            return None  # a dependency changed: plain miss
    try:
        unit = _unit_from_obj(value["unit"])
    except (KeyError, TypeError, ValueError):
        diag.warning(
            "index/artifact-invalid",
            f"malformed unit artifact {store.path_for(key).name}; re-indexing",
        )
        return None
    cov = value.get("cov")
    return unit, cov if isinstance(cov, dict) else None
