"""SVG renderers for every figure family in the paper."""

from __future__ import annotations

from typing import Mapping, Optional


from repro.analysis.cluster import Dendrogram
from repro.analysis.heatmap import HeatmapData
from repro.perfport.cascade import CascadeData
from repro.perfport.navigation import NavigationChart
from repro.viz.svg import SvgCanvas, viridis

_PALETTE = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
    "#aa3377", "#bbbbbb", "#000000", "#e07b39", "#5d5d9e",
]


def render_dendrogram_svg(dend: Dendrogram, title: str = "") -> str:
    """Horizontal dendrogram (Figs. 4–6 panels)."""
    leaves = dend.leaf_order()
    n = len(leaves)
    row_h = 24.0
    label_w = 120.0
    plot_w = 320.0
    height = n * row_h + 50
    canvas = SvgCanvas(label_w + plot_w + 40, height)
    if title:
        canvas.text(10, 18, title, size=13)
    ypos = {leaf: 35 + i * row_h for i, leaf in enumerate(leaves)}
    max_h = max(dend.merge_heights(), default=1.0) or 1.0

    def x_of(h: float) -> float:
        return label_w + plot_w * (1.0 - h / max_h)

    for leaf in leaves:
        canvas.text(label_w - 6, ypos[leaf] + 4, leaf, anchor="end")
    # cluster positions: id -> (x, y)
    pos: dict[int, tuple[float, float]] = {
        i: (label_w, ypos[dend.labels[i]]) for i in range(len(dend.labels))
    }
    for k, (a, b, h, _cnt) in enumerate(dend.linkage):
        (xa, ya) = pos[int(a)]
        (xb, yb) = pos[int(b)]
        x = x_of(float(h))
        canvas.line(xa, ya, x, ya)
        canvas.line(xb, yb, x, yb)
        canvas.line(x, ya, x, yb)
        pos[len(dend.labels) + k] = (x, (ya + yb) / 2.0)
    canvas.line(label_w, height - 18, label_w + plot_w, height - 18, stroke="#999")
    canvas.text(label_w, height - 4, f"{max_h:.2f}", size=9)
    canvas.text(label_w + plot_w, height - 4, "0", size=9, anchor="end")
    return canvas.to_svg()


def render_heatmap_svg(data: HeatmapData, title: str = "", vmax: float = 1.0) -> str:
    """Heatmap with row/column labels (Figs. 4, 7, 8)."""
    cell = 34.0
    label_w = 110.0
    top = 90.0
    width = label_w + cell * len(data.col_labels) + 30
    height = top + cell * len(data.row_labels) + 20
    canvas = SvgCanvas(width, height)
    if title:
        canvas.text(10, 18, title, size=13)
    for j, col in enumerate(data.col_labels):
        canvas.text(label_w + j * cell + cell / 2, top - 8, col, size=10, anchor="start", rotate=-45.0)
    for i, row in enumerate(data.row_labels):
        canvas.text(label_w - 6, top + i * cell + cell / 2 + 4, row, anchor="end", size=10)
        for j in range(len(data.col_labels)):
            v = float(data.values[i, j])
            canvas.rect(label_w + j * cell, top + i * cell, cell, cell, fill=viridis(v / vmax if vmax else v))
            tcol = "#fff" if (v / vmax if vmax else v) < 0.6 else "#000"
            canvas.text(
                label_w + j * cell + cell / 2,
                top + i * cell + cell / 2 + 4,
                f"{v:.2f}",
                size=8,
                anchor="middle",
                fill=tcol,
            )
    return canvas.to_svg()


def render_cascade_svg(data: CascadeData, title: str = "") -> str:
    """Cascade plot with efficiency lines and final-Φ bars (Figs. 11, 12)."""
    plot_w, plot_h = 360.0, 240.0
    bar_w = 160.0
    left, top = 60.0, 50.0
    width = left + plot_w + 60 + bar_w + 30
    height = top + plot_h + 70
    canvas = SvgCanvas(width, height)
    canvas.text(10, 20, title or f"Cascade: {data.app}", size=13)
    nplat = max((len(s.order) for s in data.series), default=1)

    def x_of(k: int) -> float:
        return left + plot_w * (k / max(nplat - 1, 1))

    def y_of(v: float) -> float:
        return top + plot_h * (1.0 - v)

    # axes
    canvas.line(left, top, left, top + plot_h)
    canvas.line(left, top + plot_h, left + plot_w, top + plot_h)
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        canvas.text(left - 8, y_of(frac) + 4, f"{frac:.2f}", size=9, anchor="end")
        canvas.line(left - 3, y_of(frac), left, y_of(frac))
    canvas.text(left + plot_w / 2, top + plot_h + 30, "platforms (per-model cascade order)", size=10, anchor="middle")
    for i, s in enumerate(data.series):
        color = _PALETTE[i % len(_PALETTE)]
        pts = [(x_of(k), y_of(e)) for k, e in enumerate(s.efficiencies)]
        if pts:
            canvas.polyline(pts, stroke=color)
            for x, y in pts:
                canvas.circle(x, y, 2.5, fill=color)
        canvas.text(left + plot_w + 8, top + 14 * i + 10, s.model, size=10, fill=color)
    # Φ bars
    bx = left + plot_w + 120
    bars = data.phi_bars()
    bh = plot_h / max(len(bars), 1)
    canvas.text(bx, top - 10, "Φ", size=12)
    for i, (model, val) in enumerate(bars.items()):
        color = _PALETTE[i % len(_PALETTE)]
        canvas.rect(bx, top + i * bh + 2, bar_w * val, bh - 4, fill=color, stroke="none")
        canvas.text(bx + bar_w * val + 4, top + i * bh + bh / 2 + 3, f"{val:.2f}", size=9)
    return canvas.to_svg()


def render_navigation_svg(chart: NavigationChart, title: str = "") -> str:
    """Navigation chart: Φ vs divergence, ★ = T_sem, ● = T_src (Figs. 13–15)."""
    plot_w, plot_h = 420.0, 300.0
    left, top = 60.0, 50.0
    width = left + plot_w + 170
    height = top + plot_h + 60
    canvas = SvgCanvas(width, height)
    canvas.text(10, 20, title or f"Navigation chart: {chart.app}", size=13)
    dmax = max([max(p.tsem, p.tsrc) for p in chart.points] + [1.0])

    def x_of(div: float) -> float:
        # x grows towards zero divergence on the right (top-right = ideal)
        return left + plot_w * (1.0 - div / dmax)

    def y_of(p: float) -> float:
        return top + plot_h * (1.0 - p)

    canvas.line(left, top, left, top + plot_h)
    canvas.line(left, top + plot_h, left + plot_w, top + plot_h)
    canvas.text(left + plot_w, top + plot_h + 28, "0 (≡ serial)", size=9, anchor="end")
    canvas.text(left, top + plot_h + 28, f"{dmax:.2f} ◀ towards no resemblance of serial code", size=9)
    canvas.text(left - 30, top + plot_h / 2, "Φ", size=12)
    for frac in (0.0, 0.5, 1.0):
        canvas.text(left - 8, y_of(frac) + 4, f"{frac:.1f}", size=9, anchor="end")
    for i, p in enumerate(chart.points):
        color = _PALETTE[i % len(_PALETTE)]
        y = y_of(p.phi)
        xs, xc = x_of(p.tsem), x_of(p.tsrc)
        canvas.line(xs, y, xc, y, stroke=color, width=1.0, dash="3,2")
        canvas.star(xs, y, 6, fill=color)
        canvas.circle(xc, y, 3.5, fill=color)
        canvas.text(left + plot_w + 10, top + 16 * i + 10, f"{p.model} (Φ={p.phi:.2f})", size=10, fill=color)
    canvas.text(left + plot_w + 10, top + 16 * len(chart.points) + 20, "★ T_sem   ● T_src", size=10)
    return canvas.to_svg()


def render_bars_svg(
    values: Mapping[str, float],
    title: str = "",
    vmax: Optional[float] = None,
) -> str:
    """Simple horizontal bar chart (Φ bars, SLOC comparisons, ablations)."""
    bar_h = 22.0
    label_w = 130.0
    plot_w = 300.0
    height = 40 + bar_h * len(values) + 20
    canvas = SvgCanvas(label_w + plot_w + 80, height)
    if title:
        canvas.text(10, 18, title, size=13)
    top = 35.0
    m = vmax if vmax is not None else max(list(values.values()) + [1e-9])
    for i, (label, v) in enumerate(values.items()):
        color = _PALETTE[i % len(_PALETTE)]
        canvas.text(label_w - 6, top + i * bar_h + bar_h / 2 + 4, label, anchor="end", size=10)
        canvas.rect(label_w, top + i * bar_h + 3, plot_w * (v / m if m else 0), bar_h - 6, fill=color, stroke="none")
        canvas.text(label_w + plot_w * (v / m if m else 0) + 5, top + i * bar_h + bar_h / 2 + 4, f"{v:.3f}", size=9)
    return canvas.to_svg()
