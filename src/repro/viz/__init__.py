"""Figure rendering without matplotlib: SVG and ASCII backends.

Each renderer consumes the plain data models from ``repro.analysis`` /
``repro.perfport`` and emits either a standalone SVG document or a terminal
rendering, so every paper figure is regenerable as an artefact on disk and
as console output inside the benches.
"""

from repro.viz.svg import SvgCanvas
from repro.viz.charts import (
    render_dendrogram_svg,
    render_heatmap_svg,
    render_cascade_svg,
    render_navigation_svg,
    render_bars_svg,
)
from repro.viz.ascii import ascii_dendrogram, ascii_heatmap, ascii_bars

__all__ = [
    "SvgCanvas",
    "render_dendrogram_svg",
    "render_heatmap_svg",
    "render_cascade_svg",
    "render_navigation_svg",
    "render_bars_svg",
    "ascii_dendrogram",
    "ascii_heatmap",
    "ascii_bars",
]
