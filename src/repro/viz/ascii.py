"""Terminal renderings of the figure data (bench console output)."""

from __future__ import annotations

from typing import Mapping

from repro.analysis.cluster import Dendrogram
from repro.analysis.heatmap import HeatmapData

_SHADES = " ░▒▓█"


def ascii_dendrogram(dend: Dendrogram, width: int = 48) -> str:
    """Indented text dendrogram (children of later merges nest deeper)."""
    n = len(dend.labels)
    # Build a nested structure from the linkage.
    trees: dict[int, object] = {i: dend.labels[i] for i in range(n)}
    heights: dict[int, float] = {i: 0.0 for i in range(n)}
    for k, (a, b, h, _c) in enumerate(dend.linkage):
        trees[n + k] = (trees[int(a)], trees[int(b)], float(h))
        heights[n + k] = float(h)
    root = trees[n + len(dend.linkage) - 1] if len(dend.linkage) else trees[0]
    lines: list[str] = []

    def walk(node, prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        if isinstance(node, str):
            lines.append(prefix + connector + node)
            return
        a, b, h = node
        lines.append(prefix + connector + f"[h={h:.3f}]")
        ext = "   " if is_last else "│  "
        walk(a, prefix + ext, False)
        walk(b, prefix + ext, True)

    walk(root, "", True)
    return "\n".join(lines)


def ascii_heatmap(data: HeatmapData, vmax: float = 1.0) -> str:
    label_w = max((len(r) for r in data.row_labels), default=8) + 1
    head = " " * label_w + " ".join(f"{c[:7]:>7}" for c in data.col_labels)
    lines = [head]
    for label, row in zip(data.row_labels, data.values):
        cells = []
        for v in row:
            frac = min(max(float(v) / vmax if vmax else float(v), 0.0), 1.0)
            shade = _SHADES[min(int(frac * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)]
            cells.append(f"{shade}{float(v):6.2f}")
        lines.append(f"{label:<{label_w}}" + " ".join(cells))
    return "\n".join(lines)


def ascii_bars(values: Mapping[str, float], width: int = 40, vmax: float = 1.0) -> str:
    label_w = max((len(k) for k in values), default=8) + 1
    lines = []
    for k, v in values.items():
        frac = min(max(v / vmax if vmax else v, 0.0), 1.0)
        bar = "█" * int(frac * width)
        lines.append(f"{k:<{label_w}}|{bar:<{width}}| {v:.3f}")
    return "\n".join(lines)
