"""Terminal renderings of the figure data (bench console output)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.cluster import Dendrogram
from repro.analysis.heatmap import HeatmapData
from repro.obs import SpanAggregate

_SHADES = " ░▒▓█"


def ascii_dendrogram(dend: Dendrogram, width: int = 48) -> str:
    """Indented text dendrogram (children of later merges nest deeper)."""
    n = len(dend.labels)
    # Build a nested structure from the linkage.
    trees: dict[int, object] = {i: dend.labels[i] for i in range(n)}
    heights: dict[int, float] = {i: 0.0 for i in range(n)}
    for k, (a, b, h, _c) in enumerate(dend.linkage):
        trees[n + k] = (trees[int(a)], trees[int(b)], float(h))
        heights[n + k] = float(h)
    root = trees[n + len(dend.linkage) - 1] if len(dend.linkage) else trees[0]
    lines: list[str] = []

    def walk(node, prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        if isinstance(node, str):
            lines.append(prefix + connector + node)
            return
        a, b, h = node
        lines.append(prefix + connector + f"[h={h:.3f}]")
        ext = "   " if is_last else "│  "
        walk(a, prefix + ext, False)
        walk(b, prefix + ext, True)

    walk(root, "", True)
    return "\n".join(lines)


def ascii_heatmap(data: HeatmapData, vmax: float = 1.0) -> str:
    label_w = max((len(r) for r in data.row_labels), default=8) + 1
    head = " " * label_w + " ".join(f"{c[:7]:>7}" for c in data.col_labels)
    lines = [head]
    for label, row in zip(data.row_labels, data.values):
        cells = []
        for v in row:
            frac = min(max(float(v) / vmax if vmax else float(v), 0.0), 1.0)
            shade = _SHADES[min(int(frac * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)]
            cells.append(f"{shade}{float(v):6.2f}")
        lines.append(f"{label:<{label_w}}" + " ".join(cells))
    return "\n".join(lines)


def ascii_span_tree(roots: Sequence[SpanAggregate], min_frac: float = 0.0) -> str:
    """Nested span report for ``--profile`` output.

    One line per (parent, name) aggregate: total wall time, call count when
    > 1, and self time when children leave a meaningful gap. ``min_frac``
    hides aggregates below that fraction of the grand total (0 = show all).
    """
    grand = sum(r.total for r in roots) or 1.0
    lines: list[str] = []

    def fmt(agg: SpanAggregate) -> str:
        parts = [f"{agg.name}  {agg.total * 1e3:9.2f} ms"]
        if agg.count > 1:
            parts.append(f"×{agg.count}")
        if agg.children and agg.self_time > 0.0005 * grand:
            parts.append(f"(self {agg.self_time * 1e3:.2f} ms)")
        parts.append(f"{100.0 * agg.total / grand:5.1f}%")
        return "  ".join(parts)

    def walk(agg: SpanAggregate, prefix: str, is_last: bool) -> None:
        if agg.total < min_frac * grand:
            return
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + fmt(agg))
        kids = [c for c in agg.children.values() if c.total >= min_frac * grand]
        ext = "   " if is_last else "│  "
        for k, child in enumerate(kids):
            walk(child, prefix + ext, k == len(kids) - 1)

    for k, root in enumerate(roots):
        walk(root, "", k == len(roots) - 1)
    return "\n".join(lines)


def ascii_counters(
    counters: Mapping[str, float], gauges: Mapping[str, float] | None = None
) -> str:
    """Aligned counter/gauge table for ``--profile`` and ``stats`` output."""
    rows = [(k, v, "") for k, v in sorted(counters.items())]
    rows += [(k, v, " (gauge)") for k, v in sorted((gauges or {}).items())]
    if not rows:
        return "(no counters)"
    w = max(len(k) for k, _v, _t in rows) + 1
    out = []
    for k, v, tag in rows:
        val = f"{int(v)}" if float(v).is_integer() else f"{v:.3f}"
        out.append(f"{k:<{w}}{val:>12}{tag}")
    return "\n".join(out)


def ascii_hist_table(summaries: Mapping[str, Mapping[str, float]]) -> str:
    """Aligned latency-percentile table for ``--profile``/``obs report``.

    ``summaries`` maps histogram name → :meth:`repro.obs.Histogram.summary`
    (count/sum/min/max/p50/p90/p99 in seconds); empty histograms are
    skipped so the table only shows distributions that actually recorded.
    """
    rows = [(k, s) for k, s in sorted(summaries.items()) if s.get("count")]
    if not rows:
        return "(no latency samples)"
    w = max(len(k) for k, _s in rows) + 1

    def ms(s: Mapping[str, float], key: str) -> str:
        return f"{s.get(key, 0.0) * 1e3:10.3f}"

    head = f"{'':<{w}}{'count':>8}{'p50 ms':>11}{'p90 ms':>11}{'p99 ms':>11}{'max ms':>11}"
    out = [head]
    for k, s in rows:
        out.append(
            f"{k:<{w}}{int(s['count']):>8}"
            f"{ms(s, 'p50_s')}{ms(s, 'p90_s')}{ms(s, 'p99_s')}{ms(s, 'max_s')}"
        )
    return "\n".join(out)


def ascii_bars(values: Mapping[str, float], width: int = 40, vmax: float = 1.0) -> str:
    label_w = max((len(k) for k in values), default=8) + 1
    lines = []
    for k, v in values.items():
        frac = min(max(v / vmax if vmax else v, 0.0), 1.0)
        bar = "█" * int(frac * width)
        lines.append(f"{k:<{label_w}}|{bar:<{width}}| {v:.3f}")
    return "\n".join(lines)
