"""A minimal SVG document builder."""

from __future__ import annotations

from typing import Optional
from xml.sax.saxutils import escape


class SvgCanvas:
    """Accumulates SVG elements and serialises a standalone document."""

    def __init__(self, width: float, height: float, background: str = "white"):
        self.width = width
        self.height = height
        self.elements: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # -- primitives ---------------------------------------------------------
    def line(self, x1: float, y1: float, x2: float, y2: float, stroke: str = "#333", width: float = 1.0, dash: Optional[str] = None) -> None:
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"{d}/>'
        )

    def rect(self, x: float, y: float, w: float, h: float, fill: str = "#ccc", stroke: str = "#333", width: float = 0.5) -> None:
        self.elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{width}"/>'
        )

    def circle(self, cx: float, cy: float, r: float, fill: str = "#333", stroke: str = "none") -> None:
        self.elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" fill="{fill}" stroke="{stroke}"/>'
        )

    def star(self, cx: float, cy: float, r: float, fill: str = "#333") -> None:
        import math

        pts = []
        for k in range(10):
            rad = r if k % 2 == 0 else r * 0.45
            ang = -math.pi / 2 + k * math.pi / 5
            pts.append(f"{cx + rad * math.cos(ang):.2f},{cy + rad * math.sin(ang):.2f}")
        self.elements.append(f'<polygon points="{" ".join(pts)}" fill="{fill}"/>')

    def polyline(self, points: list[tuple[float, float]], stroke: str = "#333", width: float = 1.5) -> None:
        pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self.elements.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" stroke-width="{width}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 11,
        anchor: str = "start",
        rotate: Optional[float] = None,
        fill: str = "#111",
    ) -> None:
        t = f' transform="rotate({rotate:.1f} {x:.2f} {y:.2f})"' if rotate is not None else ""
        self.elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" font-family="Helvetica,Arial,sans-serif" '
            f'text-anchor="{anchor}" fill="{fill}"{t}>{escape(content)}</text>'
        )

    # -- output ----------------------------------------------------------------
    def to_svg(self) -> str:
        body = "\n".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width:.0f}" '
            f'height="{self.height:.0f}" viewBox="0 0 {self.width:.0f} {self.height:.0f}">\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_svg())


def viridis(v: float) -> str:
    """Viridis-like colormap for heatmaps; v in [0, 1]."""
    v = min(max(v, 0.0), 1.0)
    stops = [
        (0.0, (68, 1, 84)),
        (0.25, (59, 82, 139)),
        (0.5, (33, 145, 140)),
        (0.75, (94, 201, 98)),
        (1.0, (253, 231, 37)),
    ]
    for (p0, c0), (p1, c1) in zip(stops, stops[1:]):
        if v <= p1:
            t = (v - p0) / (p1 - p0) if p1 > p0 else 0.0
            rgb = tuple(round(a + t * (b - a)) for a, b in zip(c0, c1))
            return f"rgb({rgb[0]},{rgb[1]},{rgb[2]})"
    return "rgb(253,231,37)"
