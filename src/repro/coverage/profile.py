"""Coverage profile container."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.trees.coverage_mask import LineMask


@dataclass
class CoverageProfile:
    """Per-(file, line) hit counts plus conversion to a tree mask."""

    hits: Counter = field(default_factory=Counter)

    def record(self, file: str, line: int, count: int = 1) -> None:
        self.hits[(file, line)] += count

    def line_mask(self, unknown_covered: bool = False) -> LineMask:
        per_file: dict[str, set[int]] = {}
        for (f, line), c in self.hits.items():
            if c > 0:
                per_file.setdefault(f, set()).add(line)
        return LineMask(per_file, unknown_covered=unknown_covered)

    def files(self) -> list[str]:
        return sorted({f for f, _ in self.hits})

    def covered_lines(self, file: str) -> set[int]:
        return {ln for (f, ln), c in self.hits.items() if f == file and c > 0}

    def total_hits(self) -> int:
        return sum(self.hits.values())


def profile_from_run(result) -> CoverageProfile:
    """Build a profile from an :class:`~repro.exec.interpreter.ExecutionResult`."""
    p = CoverageProfile()
    for key, c in result.coverage.items():
        p.hits[key] += c
    return p


def merge_profiles(profiles: Iterable[CoverageProfile]) -> CoverageProfile:
    """Union of several runs (e.g. multiple input decks)."""
    out = CoverageProfile()
    for p in profiles:
        out.hits.update(p.hits)
    return out
