"""GCov-style textual coverage report."""

from __future__ import annotations

from repro.coverage.profile import CoverageProfile
from repro.lang.source import VirtualFS


def gcov_report(profile: CoverageProfile, fs: VirtualFS, path: str) -> str:
    """Annotated source in the classic ``gcov`` column format.

    Lines with hits show the count; never-hit lines with code show
    ``#####``; blank/comment lines show ``-``.
    """
    src = fs.get(path)
    covered = profile.covered_lines(path)
    hits = {ln: profile.hits[(path, ln)] for ln in covered}
    out = [f"        -:    0:Source:{path}"]
    for i, line in enumerate(src.lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("//") or stripped.startswith("!"):
            col = "-"
        elif i in hits:
            col = str(hits[i])
        else:
            col = "#####"
        out.append(f"{col:>9}:{i:>5}:{line}")
    return "\n".join(out)
