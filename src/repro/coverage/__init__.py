"""Coverage profiles and GCov-style reporting (paper §IV-D).

Profiles come from the MiniC++ interpreter (real reduced-problem runs) or
can be synthesised for languages without an interpreter. Internally a
profile is "converted to a line-based mask that can be toggled for any tree
structure or source file" — :class:`repro.trees.coverage_mask.LineMask`.
"""

from repro.coverage.profile import CoverageProfile, profile_from_run, merge_profiles
from repro.coverage.report import gcov_report

__all__ = ["CoverageProfile", "profile_from_run", "merge_profiles", "gcov_report"]
