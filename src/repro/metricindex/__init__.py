"""Metric-space indexing: sub-quadratic nearest-model queries.

Public surface: :class:`MetricIndex` (build/query/refresh/pin),
:class:`PairPinner` (the cluster path's entry-level exact pinning),
:class:`NearestResult`, and the ``vpindex`` persistence helpers
(:class:`VpIndexStore`, :func:`load_index`, :func:`save_index`,
:func:`index_key`). See :mod:`repro.metricindex.index` for the design
notes and the bit-identity contract.
"""

from repro.metricindex.index import (
    MetricIndex,
    NearestResult,
    PairPinner,
    model_distance,
    nearest_via_index,
    unit_entries,
)
from repro.metricindex.store import VpIndexStore, index_key, load_index, save_index

__all__ = [
    "MetricIndex",
    "NearestResult",
    "PairPinner",
    "VpIndexStore",
    "index_key",
    "load_index",
    "model_distance",
    "nearest_via_index",
    "save_index",
    "unit_entries",
]
