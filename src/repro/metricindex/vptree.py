"""A deterministic vantage-point tree over named points in a metric space.

The tree is pure data — nested dicts of plain ints/strings — so it
round-trips through the ``vpindex`` artifact store without a custom codec.
Shape of one node::

    {"v": "<point name>",
     "bands": [{"lo": int, "hi": int, "max_w": int, "node": {...}}, ...]}

Every point appears as exactly one node's vantage ``v``; a band groups the
subtree of points whose distance to this vantage fell inside ``[lo, hi]``
at insertion time, and ``max_w`` upper-bounds the *weight* (total tree
size, for the metric index) of any point in the band's subtree.

Correctness contract — the **containment invariant**: for every band and
every point ``p`` in its subtree, ``lo <= d(v, p) <= hi`` and
``weight(p) <= max_w``. Bands are allowed to be *conservative* (wider than
the tightest enclosure): triangle-inequality pruning derived from a wider
band is weaker but never wrong. That is what makes cheap incremental
maintenance sound — removal detaches a subtree and re-inserts its other
members without re-tightening ancestor bands, insertion widens the
cheapest band on the descent path — while queries stay exact.

Determinism: vantage selection is the lexicographically smallest name,
splits are at the median distance, group recursion is name-ordered, and
insertion widens the first band needing the least widening. The same
(points, metric) always build the same tree, and ``build → serialize →
deserialize`` is the identity.
"""

from __future__ import annotations

from typing import Callable, Iterator

Dist = Callable[[str, str], int]
Weight = Callable[[str], int]


def build(names: list[str], dist: Dist, weight: Weight) -> dict | None:
    """Build a VP tree over ``names`` (``None`` for an empty point set)."""
    order = sorted(names)
    if not order:
        return None
    vantage, rest = order[0], order[1:]
    node: dict = {"v": vantage, "bands": []}
    if not rest:
        return node
    ds = {m: int(dist(vantage, m)) for m in rest}
    cut = sorted(ds.values())[(len(rest) - 1) // 2]  # median distance
    near = [m for m in rest if ds[m] <= cut]
    far = [m for m in rest if ds[m] > cut]
    for group in (near, far):
        if not group:
            continue
        child = build(group, dist, weight)
        node["bands"].append(
            {
                "lo": min(ds[m] for m in group),
                "hi": max(ds[m] for m in group),
                "max_w": max(weight(m) for m in group),
                "node": child,
            }
        )
    return node


def members(node: dict | None) -> Iterator[str]:
    """Every point name in the subtree rooted at ``node``."""
    if node is None:
        return
    yield node["v"]
    for band in node["bands"]:
        yield from members(band["node"])


def count(node: dict | None) -> int:
    return sum(1 for _ in members(node))


def insert(root: dict | None, name: str, dist: Dist, weight: Weight) -> dict:
    """Insert one point, widening bands along the descent path.

    Descends into the band whose ``[lo, hi]`` needs the least widening to
    admit the new point's distance (first band on ties — deterministic),
    stretching ``lo``/``hi``/``max_w`` as it goes; a node with no bands
    grows a fresh exact band. Returns the (possibly new) root.
    """
    if root is None:
        return {"v": name, "bands": []}
    w = weight(name)
    node = root
    while True:
        d = int(dist(name, node["v"]))
        bands = node["bands"]
        if not bands:
            bands.append({"lo": d, "hi": d, "max_w": w, "node": {"v": name, "bands": []}})
            return root
        best = None
        best_widen = None
        for band in bands:
            widen = max(0, band["lo"] - d) + max(0, d - band["hi"])
            if best is None or widen < best_widen:
                best, best_widen = band, widen
        best["lo"] = min(best["lo"], d)
        best["hi"] = max(best["hi"], d)
        best["max_w"] = max(best["max_w"], w)
        node = best["node"]


def remove(root: dict | None, name: str, dist: Dist, weight: Weight) -> dict | None:
    """Remove one point; returns the new root (``None`` if now empty).

    The removed point's node is detached and its subtree's *other* members
    are rebuilt in place (a fresh deterministic sub-build); ancestor bands
    keep their — now possibly conservative — extents, which the
    containment invariant explicitly allows. A missing name is a no-op.
    """
    if root is None:
        return None
    if root["v"] == name:
        rest = [m for m in members(root) if m != name]
        return build(rest, dist, weight)
    node = root
    while True:
        hit = None
        for band in node["bands"]:
            if name in set(members(band["node"])):
                hit = band
                break
        if hit is None:
            return root  # not present: no-op
        if hit["node"]["v"] == name:
            rest = [m for m in members(hit["node"]) if m != name]
            if rest:
                hit["node"] = build(rest, dist, weight)
            else:
                node["bands"].remove(hit)
            return root
        node = hit["node"]


def check_invariant(node: dict | None, dist: Dist, weight: Weight) -> list[str]:
    """Containment-invariant violations (empty list = sound tree).

    Test/debug helper: verifies every band encloses its subtree's
    distances-to-vantage and weights. O(n²) — never on a hot path.
    """
    problems: list[str] = []
    if node is None:
        return problems
    for band in node["bands"]:
        for m in members(band["node"]):
            d = int(dist(node["v"], m))
            if not band["lo"] <= d <= band["hi"]:
                problems.append(
                    f"{m}: d({node['v']},{m})={d} outside [{band['lo']},{band['hi']}]"
                )
            if weight(m) > band["max_w"]:
                problems.append(f"{m}: weight {weight(m)} > band max_w {band['max_w']}")
        problems.extend(check_invariant(band["node"], dist, weight))
    return problems
