"""The metric-space index: sub-quadratic nearest-model queries.

``/v1/nearest`` and ``silvervale nearest`` ask "which models are closest
to this one under a tree metric?" — the brute-force answer evaluates one
exact symmetrized divergence per candidate, O(n) Zhang–Shasha sweeps per
query. But the underlying distance is a *metric*: per role, unit-cost TED
(extended with the empty tree for unmatched units — ``d(t, ∅) = size(t)``)
satisfies the triangle inequality, and the codebase distance ``D`` is the
role-wise sum of those metrics. So program space can be organised
geometrically: a vantage-point tree over the corpus (:mod:`.vptree`) gives
triangle bounds in raw-``D`` space, and the shared bound oracle
(:mod:`repro.distance.bounds`) gives cheap per-candidate lower bounds —
together they discard most candidates without any exact TED.

Scores vs. distances: the reported score is the *normalised symmetrized
divergence*, which is not itself a metric (``dmax`` varies per pair).
The search therefore prunes in exact integer ``D`` space and converts a
``D`` lower bound into a score lower bound by dividing by an *upper*
bound on the pair's ``dmax`` (exactly computable from stored unit sizes)
— monotone float division keeps every score bound admissible.

Bit-identity contract (gated by ``benchmarks/nearest_smoke.py`` and the
determinism harness): pruning only ever discards a candidate whose score
lower bound strictly exceeds the current k-th best *exact* score, so ties
always survive to exact evaluation; survivors are scored by the very same
``tree_distance`` floats the brute-force scan uses; the final ordering is
the brute scan's ``(score, model)`` sort. Counters:
``index.exact_calls``, ``index.pruned.triangle`` / ``.stats`` /
``.histogram`` / ``.sequence``, ``index.build.distances``,
``index.units.reinserted``, ``index.matrix.pinned``.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass, field, replace
from typing import Optional

from repro import obs
from repro.distance.bounds import BoundOracle, get_oracle, sequence_lower_bound
from repro.metricindex import vptree
from repro.trees.hashing import cached_structural_hash
from repro.trees.stats import (
    cached_label_histogram,
    cached_tree_stats,
    histogram_lower_bound,
)
from repro.workflow.codebase import IndexedCodebase
from repro.workflow.comparer import (
    MetricSpec,
    codebase_fingerprint,
    parse_metric,
    tree_metric_kind,
)

_INF = float("inf")


def model_distance(
    a: IndexedCodebase, b: IndexedCodebase, spec: MetricSpec
) -> tuple[float, float]:
    """Raw ``(D, dmax)`` of one model pair — exactly the floats
    :func:`repro.metrics.treemetrics.tree_distance` produces, so an
    index-evaluated score can never drift from a brute-force one."""
    from repro.metrics.treemetrics import tree_distance

    which = tree_metric_kind(spec)
    if which is None:
        raise ValueError(f"{spec.label} is not a tree metric")
    mask_a = a.mask() if spec.coverage else None
    mask_b = b.mask() if spec.coverage else None
    return tree_distance(a, b, which, mask_a, mask_b, spec.include_system)


def unit_entries(cb: IndexedCodebase, spec: MetricSpec) -> dict[str, dict]:
    """Per-unit derived-tree geometry: ``role -> {hash, size, depth,
    leaves}`` of the tree *as this spec compares it* (post system-strip,
    post coverage-mask). Units whose derived tree is absent are omitted —
    mirroring exactly which pairs :func:`tree_distance` skips. Memoised on
    the codebase (frozen-tree contract)."""
    from repro.metrics.treemetrics import unit_trees

    memo = getattr(cb, "_vpentries", None)
    if memo is None:
        memo = {}
        cb._vpentries = memo
    key = (spec.label, spec.include_system)
    hit = memo.get(key)
    if hit is not None:
        return hit
    which = tree_metric_kind(spec)
    if which is None:
        raise ValueError(f"{spec.label} is not a tree metric")
    mask = cb.mask() if spec.coverage else None
    units: dict[str, dict] = {}
    for role in cb.roles():
        t = unit_trees(cb.units[role], which, mask, spec.include_system)
        if t is None:
            continue
        st = cached_tree_stats(t)
        units[role] = {
            "hash": cached_structural_hash(t),
            "size": st.size,
            "depth": st.depth,
            "leaves": st.leaves,
        }
    memo[key] = units
    return units


def _entry_dmax(ua: dict[str, dict], ub: dict[str, dict]) -> int:
    """Exact ``dmax`` of a pair from stored unit sizes (matched roles
    contribute ``max(size_a, size_b)``, unmatched their own size) —
    integer-for-integer what :func:`tree_distance` accumulates."""
    total = 0
    for role in set(ua) | set(ub):
        a, b = ua.get(role), ub.get(role)
        if a is None:
            total += b["size"]
        elif b is None:
            total += a["size"]
        else:
            total += max(a["size"], b["size"])
    return total


def _entry_lower(ua: dict[str, dict], ub: dict[str, dict]) -> int:
    """Admissible ``D`` lower bound from stored geometry alone (the
    *stats* stage — zero tree access): unmatched units cost exactly their
    size; matched units with equal structural hashes cost exactly 0;
    differing matched units cost at least ``max(1, |Δsize|, |Δdepth|,
    |Δleaves|)``."""
    lb = 0
    for role in set(ua) | set(ub):
        a, b = ua.get(role), ub.get(role)
        if a is None:
            lb += b["size"]
        elif b is None:
            lb += a["size"]
        elif a["hash"] != b["hash"]:
            lb += max(
                1,
                abs(a["size"] - b["size"]),
                abs(a["depth"] - b["depth"]),
                abs(a["leaves"] - b["leaves"]),
            )
    return lb


class PairPinner:
    """Entry-level exact pinning: the cluster path's candidate pruning.

    A matrix cell can be pinned without any kernel when the oracle's
    cheap interval has width zero from stored geometry alone: every
    matched unit pair is hash-identical (TED exactly 0) and unmatched
    units cost exactly their size. The pinned value is bit-identical to
    what :func:`divergence_pair_task` would compute (integer sums and the
    same float division), so index-pruned matrices stay exact by
    construction. Counter: ``index.matrix.pinned``.
    """

    def __init__(self, spec: MetricSpec):
        self.spec = spec

    def pin_pair(
        self, a: IndexedCodebase, b: IndexedCodebase
    ) -> Optional[tuple[float, float]]:
        """``(d_ab, d_ba)`` when the pair pins exactly, else ``None``."""
        if tree_metric_kind(self.spec) is None:
            return None
        ua = unit_entries(a, self.spec)
        ub = unit_entries(b, self.spec)
        d = 0
        dmax = 0
        for role in set(ua) | set(ub):
            ea, eb = ua.get(role), ub.get(role)
            if ea is None:
                d += eb["size"]
                dmax += eb["size"]
            elif eb is None:
                d += ea["size"]
                dmax += ea["size"]
            elif ea["hash"] == eb["hash"]:
                dmax += max(ea["size"], eb["size"])
            else:
                return None  # a real TED: not pinnable from geometry
        v = float(d) / float(dmax) if dmax else 0.0
        obs.add("index.matrix.pinned")
        return v, v


@dataclass
class NearestResult:
    """One query's answer plus its pruning ledger."""

    #: ``(score, model)`` ascending — the brute scan's exact ordering.
    neighbors: list[tuple[float, str]]
    #: exact evaluations and per-stage prune counts for this query
    stats: dict = field(default_factory=dict)


class MetricIndex(PairPinner):
    """A persistent VP-tree index over one app's models under one metric.

    ``models`` maps model name to ``{"fingerprint", "total", "units"}``
    (content fingerprint, total derived-tree size, per-unit geometry);
    ``root`` is the :mod:`.vptree` node. Everything serializes to plain
    dicts (:meth:`to_payload`) for the ``vpindex`` artifact namespace.
    """

    def __init__(
        self,
        app: str,
        spec: MetricSpec,
        models: Optional[dict[str, dict]] = None,
        root: Optional[dict] = None,
    ):
        super().__init__(spec)
        self.app = app
        self.models = models if models is not None else {}
        self.root = root

    # -- construction / persistence -----------------------------------------

    @classmethod
    def build(
        cls, app: str, codebases: dict[str, IndexedCodebase], spec: MetricSpec
    ) -> "MetricIndex":
        """Build from scratch over ``codebases`` (name → codebase)."""
        idx = cls(app, spec)
        for name in sorted(codebases):
            idx.models[name] = idx._entry(codebases[name])
        dist = idx._dist_fn(codebases)
        idx.root = vptree.build(sorted(codebases), dist, idx._weight)
        return idx

    def to_payload(self) -> dict:
        return {
            "app": self.app,
            "metric": self.spec.label,
            "include_system": bool(self.spec.include_system),
            "models": self.models,
            "tree": self.root,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MetricIndex":
        spec = replace(
            parse_metric(payload["metric"]),
            include_system=bool(payload["include_system"]),
        )
        models = payload["models"]
        if not isinstance(models, dict):
            raise ValueError("malformed metric index payload: models")
        for entry in models.values():
            if not isinstance(entry, dict) or "units" not in entry or "total" not in entry:
                raise ValueError("malformed metric index payload: model entry")
        tree = payload.get("tree")
        names = set(models)
        if names and (tree is None or set(vptree.members(tree)) != names):
            raise ValueError("malformed metric index payload: tree/models disagree")
        return cls(payload["app"], spec, models=models, root=tree)

    # -- internals -----------------------------------------------------------

    def _entry(self, cb: IndexedCodebase) -> dict:
        units = unit_entries(cb, self.spec)
        return {
            "fingerprint": codebase_fingerprint(cb, self.spec),
            "total": sum(u["size"] for u in units.values()),
            "units": units,
        }

    def _weight(self, name: str) -> int:
        return self.models[name]["total"]

    def _dist_fn(self, codebases: dict[str, IndexedCodebase]):
        def dist(a: str, b: str) -> int:
            d, _dmax = model_distance(codebases[a], codebases[b], self.spec)
            obs.add("index.build.distances")
            return int(d)

        return dist

    # -- incremental maintenance ---------------------------------------------

    def refresh(self, codebases: dict[str, IndexedCodebase]) -> dict[str, int]:
        """Reconcile the index with the live corpus; re-insert only what
        changed. Returns ``{"added", "removed", "models_reinserted",
        "units_reinserted"}`` — the touch-one gate asserts
        ``units_reinserted == 1``.

        A model whose content fingerprint moved but whose derived-tree
        geometry did not (a comment-only edit) refreshes its stored
        fingerprint without touching the tree: the index is keyed by what
        the metric *compares*, and a comment is trivia to every tree.
        """
        counts = {"added": 0, "removed": 0, "models_reinserted": 0, "units_reinserted": 0}
        stale = sorted(set(self.models) - set(codebases))
        changed: list[str] = []
        added: list[str] = []
        for name in sorted(codebases):
            entry = self._entry(codebases[name])
            old = self.models.get(name)
            if old is None:
                added.append(name)
                counts["units_reinserted"] += len(entry["units"])
            elif old["units"] != entry["units"]:
                changed.append(name)
                roles = set(old["units"]) | set(entry["units"])
                counts["units_reinserted"] += sum(
                    1
                    for r in roles
                    if old["units"].get(r, {}).get("hash")
                    != entry["units"].get(r, {}).get("hash")
                )
            self.models[name] = entry
        counts["added"] = len(added)
        counts["removed"] = len(stale)
        counts["models_reinserted"] = len(changed)
        for name in stale:
            del self.models[name]
        dist = self._dist_fn(codebases)
        if stale:
            # a vanished model may sit anywhere in the tree and its
            # distances cannot be re-derived; rebuild over the survivors
            # (unchanged pairs replay from the TED memo/disk cache)
            self.root = vptree.build(sorted(self.models), dist, self._weight)
        else:
            for name in changed:
                self.root = vptree.remove(self.root, name, dist, self._weight)
                self.root = vptree.insert(self.root, name, dist, self._weight)
            for name in added:
                self.root = vptree.insert(self.root, name, dist, self._weight)
        if counts["units_reinserted"]:
            obs.add("index.units.reinserted", counts["units_reinserted"])
        return counts

    # -- query ---------------------------------------------------------------

    def query(
        self,
        target: IndexedCodebase,
        codebases: dict[str, IndexedCodebase],
        k: int,
        oracle: Optional[BoundOracle] = None,
    ) -> NearestResult:
        """k nearest models to ``target`` (itself excluded), bit-identical
        to the brute-force scan's ``(score, model)`` ordering.

        Best-first search over the VP tree: subtrees are cut by triangle
        bounds in ``D`` space, surviving leaf candidates by the oracle's
        staged lower bounds (stats from stored geometry, then histogram
        and capped Levenshtein on the actual trees), and only survivors
        pay an exact :func:`tree_distance`. Pruning is strict-inequality
        only, so ties always reach exact evaluation. Passing a
        :class:`~repro.distance.bounds.BruteForceOracle` disables the
        candidate stages (the ``--brute-force`` oracle mode).
        """
        orc = oracle if oracle is not None else get_oracle()
        exclude = target.model
        tgt_units = unit_entries(target, self.spec)
        stats = {
            "exact_calls": 0,
            "pruned": {"triangle": 0, "stats": 0, "histogram": 0, "sequence": 0},
            "candidates": max(0, len([m for m in self.models if m != exclude])),
        }
        best: list[tuple[float, str]] = []  # kept sorted by (score, model)

        def tau() -> float:
            return best[k - 1][0] if len(best) >= k else _INF

        def exact(name: str) -> float:
            d, dmax = model_distance(target, codebases[name], self.spec)
            stats["exact_calls"] += 1
            obs.add("index.exact_calls")
            score = d / dmax if dmax else 0.0
            if name != exclude:
                insort(best, (score, name))
            return d

        def prune(stage: str, n: int = 1) -> None:
            stats["pruned"][stage] += n
            obs.add(f"index.pruned.{stage}", n)

        def leaf_survives(name: str) -> bool:
            """Staged candidate check; False when some admissible score
            lower bound strictly exceeds the current k-th best score."""
            if not orc.prunes:
                return True  # brute-force oracle: every candidate goes exact
            t = tau()
            if t == _INF:
                return True
            entry = self.models[name]
            dmax_pair = _entry_dmax(tgt_units, entry["units"])
            if not dmax_pair:
                return True  # both empty: exact score is 0.0, never prunable
            lb = _entry_lower(tgt_units, entry["units"])
            if lb / dmax_pair > t:
                prune("stats")
                return False
            # refine matched differing pairs on the actual trees
            pairs = self._tree_pairs(target, codebases[name], entry)
            if pairs is None:
                return True
            base = lb - sum(p[2] for p in pairs)  # unmatched + hash-equal part
            cap = int(t * dmax_pair) + 2  # any-stage bail budget (valid: over-capping only weakens)
            lbs = [
                max(p[2], histogram_lower_bound(cached_label_histogram(p[0]), cached_label_histogram(p[1])))
                for p in pairs
            ]
            if (base + sum(lbs)) / dmax_pair > t:
                prune("histogram")
                return False
            for i, (ta, tb, _lb0) in enumerate(pairs):
                lbs[i] = max(lbs[i], sequence_lower_bound(ta, tb, cap=cap))
                if (base + sum(lbs)) / dmax_pair > t:
                    prune("sequence")
                    return False
            return True

        if self.root is None:
            return NearestResult(neighbors=[], stats=stats)
        sx = sum(u["size"] for u in tgt_units.values())
        heap: list[tuple[float, str, dict]] = [(0.0, self.root["v"], self.root)]
        while heap:
            prio, _vname, node = heapq.heappop(heap)
            t = tau()
            if prio > t:
                prune("triangle", sum(1 for m in vptree.members(node) if m != exclude))
                continue
            v = node["v"]
            if not node["bands"]:
                if v != exclude and leaf_survives(v):
                    exact(v)
                continue
            # an internal vantage must be evaluated exactly regardless of
            # candidate bounds: its D anchors the children's triangle bounds
            if v == exclude and self.models[v]["units"] == tgt_units:
                d_v = 0.0  # the target itself: every unit pair is hash-identical
            else:
                d_v = exact(v)
            for band in node["bands"]:
                lb_d = max(0.0, band["lo"] - d_v, d_v - band["hi"])
                dmax_ub = sx + band["max_w"]
                score_lb = lb_d / dmax_ub if dmax_ub else 0.0
                heapq.heappush(heap, (score_lb, band["node"]["v"], band["node"]))
        return NearestResult(neighbors=best[: max(0, k)], stats=stats)

    def _tree_pairs(self, target: IndexedCodebase, cand: IndexedCodebase, entry: dict):
        """Matched differing unit-tree pairs ``(ta, tb, stats_lb)`` for
        candidate-stage refinement, or ``None`` when a tree is unexpectedly
        absent (stale entry: skip refinement, fall through to exact)."""
        from repro.metrics.treemetrics import unit_trees

        which = tree_metric_kind(self.spec)
        mask_t = target.mask() if self.spec.coverage else None
        mask_c = cand.mask() if self.spec.coverage else None
        tgt_units = unit_entries(target, self.spec)
        out = []
        for role in set(tgt_units) & set(entry["units"]):
            ea, eb = tgt_units[role], entry["units"][role]
            if ea["hash"] == eb["hash"]:
                continue
            ta = unit_trees(target.units[role], which, mask_t, self.spec.include_system)
            ub_unit = cand.units.get(role)
            tb = (
                unit_trees(ub_unit, which, mask_c, self.spec.include_system)
                if ub_unit is not None
                else None
            )
            if ta is None or tb is None:
                return None
            lb0 = max(
                1,
                abs(ea["size"] - eb["size"]),
                abs(ea["depth"] - eb["depth"]),
                abs(ea["leaves"] - eb["leaves"]),
            )
            out.append((ta, tb, lb0))
        return out

    def __len__(self) -> int:
        return len(self.models)


def nearest_via_index(
    index: MetricIndex,
    target: IndexedCodebase,
    codebases: dict[str, IndexedCodebase],
    k: int,
    oracle: Optional[BoundOracle] = None,
) -> NearestResult:
    """Query helper with the span/counter envelope the CLI and serve share."""
    with obs.span(
        "index.query", app=index.app, metric=index.spec.label, model=target.model, k=k
    ):
        return index.query(target, codebases, k, oracle=oracle)
