"""Persistence for metric indexes: the ``vpindex`` artifact namespace.

One ``vpindex-<app>.<metric>.svc`` blob per (app, metric-variant) pair in
the shared artifact root, next to the ``ted``/``ckpt``/``unit``/``obs``
namespaces (``silvervale cache stats`` enumerates it; ``cache clear
--namespace vpindex`` empties it). The payload is the
:meth:`~repro.metricindex.index.MetricIndex.to_payload` dict: per-model
content fingerprints and per-unit derived-tree geometry plus the VP tree.

Invalidation is the PR5 unit-store recipe: the *file* self-invalidates on
any schema/keyspec bump or corruption (lenient load + an
``index/artifact-invalid`` diagnostic so operators know to ``cache
clear``), and the *content* self-invalidates through the per-model
fingerprints — :meth:`MetricIndex.refresh` compares them against the live
codebases and re-inserts exactly the units whose derived trees moved.
"""

from __future__ import annotations

from typing import Optional

from repro import diag
from repro.artifacts import BlobStore
from repro.metricindex.index import MetricIndex

SCHEMA = "repro.vpindex/v1"
KEY_SPEC = "vpindex:v1"


class VpIndexStore(BlobStore):
    """One ``vpindex-<key>.svc`` artifact per persisted metric index."""

    NAMESPACE = "vpindex"
    SCHEMA = SCHEMA
    KEY_SPEC = KEY_SPEC
    DESCRIPTION = "metric index artifact"
    KIND = "metric index"
    INVALID_COUNTER = "index.artifact.invalid"
    SAVED_COUNTER = "index.artifact.saved"


def index_key(app: str, spec) -> str:
    """Artifact key of one (app, metric-variant) index.

    ``include_system`` is not part of the metric label, so it gets its own
    suffix — two variants must never share an artifact.
    """
    key = f"{app}.{spec.label}"
    if spec.include_system:
        key += ".sys"
    return key


def load_index(store: VpIndexStore, app: str, spec) -> Optional[MetricIndex]:
    """Load one persisted index; ``None`` on any kind of miss.

    A missing file is a silent miss; a corrupt/foreign/misshapen artifact
    is a miss *with* an ``index/artifact-invalid`` warning (same contract
    as the unit store). The caller rebuilds and re-saves.
    """
    key = index_key(app, spec)
    if not store.path_for(key).exists():
        return None
    value = store.load(key)
    if not value:
        diag.warning(
            "index/artifact-invalid",
            f"unreadable metric index artifact {store.path_for(key).name}; rebuilding",
        )
        return None
    try:
        return MetricIndex.from_payload(value)
    except (KeyError, TypeError, ValueError):
        diag.warning(
            "index/artifact-invalid",
            f"malformed metric index artifact {store.path_for(key).name}; rebuilding",
        )
        return None


def save_index(store: VpIndexStore, index: MetricIndex) -> None:
    """Persist one index (atomic write, ``index.artifact.saved`` counter)."""
    store.save(index_key(index.app, index.spec), index.to_payload())
