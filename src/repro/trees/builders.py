"""Convenience constructors and an s-expression reader/writer for trees.

The s-expression form is used throughout the test suite to state expected
trees compactly: ``(fn (params (var) (var)) (body (ret (add (var) (lit)))))``.
"""

from __future__ import annotations

from typing import Optional

from repro.trees.node import Node, SourceSpan
from repro.util.errors import ReproError


def leaf(label: str, kind: str = "tok", span: Optional[SourceSpan] = None) -> Node:
    """A childless node."""
    return Node(label, kind, None, span)


def tree(label: str, *children: Node, kind: str = "node", span: Optional[SourceSpan] = None) -> Node:
    """An internal node with the given children."""
    return Node(label, kind, list(children), span)


def from_sexpr(text: str, kind: str = "node") -> Node:
    """Parse a tree from an s-expression.

    Labels are bare atoms; ``(a b (c d))`` is a root ``a`` with leaf child
    ``b`` and internal child ``c`` having leaf child ``d``.
    """
    tokens = text.replace("(", " ( ").replace(")", " ) ").split()
    pos = 0

    def parse() -> Node:
        nonlocal pos
        if pos >= len(tokens):
            raise ReproError("unexpected end of s-expression")
        tok = tokens[pos]
        if tok == "(":
            pos += 1
            if pos >= len(tokens) or tokens[pos] in "()":
                raise ReproError("expected label after '('")
            node = Node(tokens[pos], kind)
            pos += 1
            while pos < len(tokens) and tokens[pos] != ")":
                node.children.append(parse())
            if pos >= len(tokens):
                raise ReproError("unbalanced s-expression: missing ')'")
            pos += 1
            return node
        if tok == ")":
            raise ReproError("unexpected ')'")
        pos += 1
        return Node(tok, kind)

    root = parse()
    if pos != len(tokens):
        raise ReproError("trailing tokens after s-expression")
    return root


def to_sexpr(node: Node) -> str:
    """Render a tree back to the compact s-expression form."""
    if node.is_leaf:
        return node.label
    inner = " ".join(to_sexpr(c) for c in node.children)
    return f"({node.label} {inner})"
