"""Coverage masking of trees (paper §III-A, §IV-D).

Runtime coverage data is converted to a per-file line mask; tree nodes whose
source span falls entirely on unexecuted lines are pruned. The paper uses
this to "eliminate parts of the tree that were never executed".
"""

from __future__ import annotations

from typing import Mapping, Optional, Set

from repro.trees.node import Node


class LineMask:
    """Executed-line sets per file.

    ``covered(file, line)`` is True when the line executed at least once.
    Files absent from the mask are treated as *fully covered* by default
    (``unknown_covered=True``) because compilers only emit coverage for
    instrumented translation units; headers pulled in by an instrumented
    unit inherit its records.
    """

    def __init__(self, lines: Mapping[str, Set[int]], unknown_covered: bool = True):
        self._lines = {f: set(ls) for f, ls in lines.items()}
        self.unknown_covered = unknown_covered

    def covered(self, file: str, line: int) -> bool:
        if file not in self._lines:
            return self.unknown_covered
        return line in self._lines[file]

    def covered_span(self, file: str, line_start: int, line_end: int) -> bool:
        """True when *any* line of the span executed."""
        if file not in self._lines:
            return self.unknown_covered
        hit = self._lines[file]
        return any(ln in hit for ln in range(line_start, line_end + 1))

    def files(self) -> list[str]:
        return sorted(self._lines)

    def union(self, other: "LineMask") -> "LineMask":
        merged = {f: set(ls) for f, ls in self._lines.items()}
        for f, ls in other._lines.items():
            merged.setdefault(f, set()).update(ls)
        return LineMask(merged, self.unknown_covered or other.unknown_covered)

    def digest(self) -> str:
        """Stable content hash of the mask (checkpoint/cache fingerprints:
        coverage-filtered metrics change whenever the executed-line sets
        change, so the mask must be part of any persisted-result key)."""
        import hashlib

        h = hashlib.sha256()
        h.update(b"1" if self.unknown_covered else b"0")
        for f in sorted(self._lines):
            h.update(b"\x00")
            h.update(f.encode())
            for ln in sorted(self._lines[f]):
                h.update(b"\x01")
                h.update(str(ln).encode())
        return h.hexdigest()[:16]


def mask_tree(root: Node, mask: LineMask) -> Optional[Node]:
    """Prune subtrees whose spans never executed.

    A node is kept when it has no span (structural nodes), when any line of
    its span is covered, or when any *descendant* survives — parents of
    covered code are always retained so the tree stays connected.
    """

    def prune(node: Node) -> Optional[Node]:
        kept_children = []
        for c in node.children:
            pc = prune(c)
            if pc is not None:
                kept_children.append(pc)
        self_covered = node.span is None or mask.covered_span(
            node.span.file, node.span.line_start, node.span.line_end
        )
        if not self_covered and not kept_children:
            return None
        return Node(node.label, node.kind, kept_children, node.span, dict(node.attrs))

    return prune(root)
