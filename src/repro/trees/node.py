"""The n-ary tree node used for all semantic-bearing trees.

Design notes
------------
Nodes are deliberately small (``__slots__``) because TED working sets are
dominated by tree storage; the paper's future-work section calls out TED
memory pressure explicitly, so we keep per-node overhead minimal and convert
to flat postorder arrays inside the distance kernels.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional


class SourceSpan:
    """Back-reference from a tree node to the source text it came from.

    ``line_start``/``line_end`` are 1-based and inclusive, matching compiler
    diagnostics and GCov line records.
    """

    __slots__ = ("file", "line_start", "line_end")

    def __init__(self, file: str, line_start: int, line_end: Optional[int] = None):
        if line_end is None:
            line_end = line_start
        if line_end < line_start:
            raise ValueError(f"span end {line_end} before start {line_start}")
        self.file = file
        self.line_start = line_start
        self.line_end = line_end

    def __repr__(self) -> str:
        return f"SourceSpan({self.file!r}, {self.line_start}, {self.line_end})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceSpan)
            and self.file == other.file
            and self.line_start == other.line_start
            and self.line_end == other.line_end
        )

    def __hash__(self) -> int:
        return hash((self.file, self.line_start, self.line_end))

    def contains_line(self, file: str, line: int) -> bool:
        """True when (file, line) falls inside this span."""
        return self.file == file and self.line_start <= line <= self.line_end

    def union(self, other: "SourceSpan") -> "SourceSpan":
        """Smallest single-file span covering both spans (files must match)."""
        if self.file != other.file:
            raise ValueError("cannot union spans from different files")
        return SourceSpan(
            self.file,
            min(self.line_start, other.line_start),
            max(self.line_end, other.line_end),
        )

    def to_tuple(self) -> tuple:
        return (self.file, self.line_start, self.line_end)

    @classmethod
    def from_tuple(cls, t: tuple) -> "SourceSpan":
        return cls(t[0], t[1], t[2])


class Node:
    """An n-ary labelled tree node.

    Attributes
    ----------
    label:
        The node label used by TED relabel costs. After name normalisation
        this is a token *type* ("var", "call", ...), never a programmer name.
    kind:
        Coarse category ("decl", "stmt", "expr", "tok", "instr", ...); kept
        separate from label so analyses can filter without string parsing.
    children:
        Ordered children (TED is an ordered-tree distance).
    span:
        Optional :class:`SourceSpan` back-reference.
    attrs:
        Free-form metadata (symbol names before normalisation, callee links
        for inlining, semantic flags). Not consulted by distance kernels.
    """

    __slots__ = ("label", "kind", "children", "span", "attrs")

    def __init__(
        self,
        label: str,
        kind: str = "node",
        children: Optional[Iterable["Node"]] = None,
        span: Optional[SourceSpan] = None,
        attrs: Optional[dict] = None,
    ):
        self.label = label
        self.kind = kind
        self.children: list[Node] = list(children) if children else []
        self.span = span
        self.attrs: dict[str, Any] = attrs or {}

    # -- construction -----------------------------------------------------
    def add(self, child: "Node") -> "Node":
        """Append ``child`` and return ``self`` (builder chaining)."""
        self.children.append(child)
        return self

    def copy(self, deep: bool = True) -> "Node":
        """Clone this node; ``deep`` clones the entire subtree."""
        kids = [c.copy(True) for c in self.children] if deep else list(self.children)
        return Node(self.label, self.kind, kids, self.span, dict(self.attrs))

    # -- traversal --------------------------------------------------------
    def preorder(self) -> Iterator["Node"]:
        """Yield nodes root-first (iterative; safe for deep trees)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def postorder(self) -> Iterator["Node"]:
        """Yield nodes children-first (iterative left-to-right postorder)."""
        stack: list[tuple[Node, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for c in reversed(node.children):
                    stack.append((c, False))

    def walk_with_parent(self) -> Iterator[tuple["Node", Optional["Node"]]]:
        """Preorder traversal yielding (node, parent) pairs."""
        stack: list[tuple[Node, Optional[Node]]] = [(self, None)]
        while stack:
            node, parent = stack.pop()
            yield node, parent
            for c in reversed(node.children):
                stack.append((c, node))

    # -- queries ----------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return not self.children

    def size(self) -> int:
        """Total number of nodes in the subtree (|T| in the paper, Eq. 7)."""
        return sum(1 for _ in self.preorder())

    def depth(self) -> int:
        """Height of the subtree; a single node has depth 1."""
        best = 0
        stack = [(self, 1)]
        while stack:
            node, d = stack.pop()
            if d > best:
                best = d
            for c in node.children:
                stack.append((c, d + 1))
        return best

    def find_all(self, predicate: Callable[["Node"], bool]) -> list["Node"]:
        """All nodes in preorder for which ``predicate`` holds."""
        return [n for n in self.preorder() if predicate(n)]

    def find_labels(self, label: str) -> list["Node"]:
        """All nodes with the exact label ``label``."""
        return self.find_all(lambda n: n.label == label)

    # -- transformation ---------------------------------------------------
    def map_nodes(self, fn: Callable[["Node"], "Node"]) -> "Node":
        """Rebuild the tree bottom-up, applying ``fn`` to a shallow copy of
        every node after its children have been transformed."""
        new_children = [c.map_nodes(fn) for c in self.children]
        clone = Node(self.label, self.kind, new_children, self.span, dict(self.attrs))
        return fn(clone)

    def filter_subtrees(self, keep: Callable[["Node"], bool]) -> Optional["Node"]:
        """Drop every subtree whose root fails ``keep``.

        Returns ``None`` when the root itself is dropped.
        """
        if not keep(self):
            return None
        kept = []
        for c in self.children:
            fc = c.filter_subtrees(keep)
            if fc is not None:
                kept.append(fc)
        return Node(self.label, self.kind, kept, self.span, dict(self.attrs))

    # -- dunder -----------------------------------------------------------
    def __repr__(self) -> str:
        return f"Node({self.label!r}, kind={self.kind!r}, children={len(self.children)})"

    def __eq__(self, other: object) -> bool:
        """Structural equality on (label, kind, children); ignores span/attrs."""
        if not isinstance(other, Node):
            return NotImplemented
        # Iterative pairwise comparison to avoid recursion limits.
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a.label != b.label or a.kind != b.kind or len(a.children) != len(b.children):
                return False
            stack.extend(zip(a.children, b.children))
        return True

    def __hash__(self) -> int:  # pragma: no cover - nodes are mutable
        return id(self)

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form used by the Codebase DB serialiser (iterative)."""
        root: dict = {}
        stack: list[tuple[Node, dict]] = [(self, root)]
        while stack:
            node, d = stack.pop()
            d["l"] = node.label
            d["k"] = node.kind
            if node.span is not None:
                d["s"] = list(node.span.to_tuple())
            if node.attrs:
                d["a"] = {
                    k: v for k, v in node.attrs.items() if isinstance(v, (str, int, float, bool))
                }
            kids: list[dict] = [{} for _ in node.children]
            if kids:
                d["c"] = kids
            stack.extend(zip(node.children, kids))
        return root

    @classmethod
    def from_dict(cls, d: dict) -> "Node":
        """Inverse of :meth:`to_dict` (iterative)."""

        def make(dd: dict) -> Node:
            span = SourceSpan.from_tuple(tuple(dd["s"])) if "s" in dd else None
            return cls(dd["l"], dd.get("k", "node"), None, span, dict(dd.get("a", {})))

        root = make(d)
        stack: list[tuple[dict, Node]] = [(d, root)]
        while stack:
            dd, node = stack.pop()
            for cd in dd.get("c", []):
                child = make(cd)
                node.children.append(child)
                stack.append((cd, child))
        return root

    def pretty(self, indent: int = 0, max_depth: int = 50) -> str:
        """Human-readable indented dump (for debugging and docs)."""
        lines: list[str] = []
        stack: list[tuple[Node, int]] = [(self, indent)]
        while stack:
            node, d = stack.pop()
            loc = f"  @{node.span.file}:{node.span.line_start}" if node.span else ""
            lines.append("  " * d + f"{node.kind}:{node.label}{loc}")
            if d - indent < max_depth:
                for c in reversed(node.children):
                    stack.append((c, d + 1))
        return "\n".join(lines)
