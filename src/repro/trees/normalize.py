"""Name normalisation and non-semantic-node stripping (paper §III-B, §IV-A).

The paper normalises programmer-introduced names to their token *type* so
that TED "preserv[es] the overall semantic structure and control flow graph";
a subtree with the closest structure then has the minimal distance. It also
discards non-semantic ClangAST noise (implicit casts, value-category nodes)
when forming ``T_sem``.
"""

from __future__ import annotations

from repro.trees.node import Node

#: Node kinds whose labels are programmer-introduced names. Normalisation
#: replaces the label with the kind itself ("var", "call", "fn", ...).
NAMED_KINDS = frozenset(
    {
        "var",
        "param",
        "field",
        "fn",
        "call",
        "type-name",
        "class",
        "struct",
        "module",
        "label",
        "namespace-ref",
        "kernel",
        "member",
    }
)

#: Labels of nodes the frontend emits for C++ nuance but that carry no
#: semantics of their own (ClangAST's implicit casts et al.).
NON_SEMANTIC_LABELS = frozenset(
    {
        "implicit-cast",
        "lvalue-to-rvalue",
        "paren",
        "exprstmt-cleanup",
        "materialize-temporary",
    }
)


def normalize_names(root: Node) -> Node:
    """Return a copy of ``root`` with programmer names erased.

    Nodes whose ``kind`` appears in :data:`NAMED_KINDS` get their label
    replaced by the kind; the original name is preserved in
    ``attrs["name"]`` for tooling but is invisible to TED.
    """

    def fix(node: Node) -> Node:
        if node.kind in NAMED_KINDS and node.label != node.kind:
            node.attrs.setdefault("name", node.label)
            node.label = node.kind
        return node

    return root.map_nodes(fix)


def strip_non_semantic(root: Node) -> Node:
    """Return a copy of ``root`` with non-semantic wrapper nodes spliced out.

    A non-semantic node is replaced by its children (hoisted into the
    parent), mirroring how the paper discards implicit/value-category casts
    when generating ``T_sem``. The root is never spliced.
    """

    def rebuild(node: Node) -> Node:
        new_children: list[Node] = []
        for c in node.children:
            rc = rebuild(c)
            if rc.label in NON_SEMANTIC_LABELS:
                new_children.extend(rc.children)
            else:
                new_children.append(rc)
        return Node(node.label, node.kind, new_children, node.span, dict(node.attrs))

    return rebuild(root)
