"""Call inlining for the ``T_sem+i`` metric variant (paper §IV-A, §V-C).

``T_sem+i`` inlines every function invocation *that originated from the same
codebase at the tree level* — system headers and external libraries are
excluded. This captures the case where a codebase abstracts over a parallel
programming model: library-based models (Kokkos, SYCL, TBB, StdPar) pull
large amounts of foreign code into the tree, while compiler-directive models
(OpenMP) barely change.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.trees.node import Node

#: Default recursion fuel: a call chain deeper than this stops inlining, which
#: also terminates (mutually) recursive functions.
DEFAULT_MAX_DEPTH = 8


def inline_calls(
    root: Node,
    definitions: Mapping[str, Node],
    is_local: Optional[Callable[[Node], bool]] = None,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> Node:
    """Return a copy of ``root`` with local call sites expanded in place.

    Parameters
    ----------
    root:
        A ``T_sem`` tree. Call sites are nodes with ``kind == "call"`` whose
        ``attrs["callee"]`` names the invoked function.
    definitions:
        Map from function name to the *body* subtree of its definition.
        Bodies are cloned on insertion, so sharing is safe.
    is_local:
        Predicate deciding whether a given call node refers to codebase-local
        code (default: the callee has a definition and the call is not marked
        ``attrs["system"]``).
    max_depth:
        Inlining fuel; bounds recursive expansion.
    """
    if is_local is None:

        def is_local(node: Node) -> bool:
            return not node.attrs.get("system", False)

    def expand(node: Node, depth: int, active: frozenset[str]) -> Node:
        new_children = [expand(c, depth, active) for c in node.children]
        clone = Node(node.label, node.kind, new_children, node.span, dict(node.attrs))
        callee = clone.attrs.get("callee")
        if (
            clone.kind == "call"
            and callee is not None
            and callee in definitions
            and callee not in active
            and depth < max_depth
            and is_local(clone)
        ):
            body = expand(definitions[callee].copy(), depth + 1, active | {callee})
            inlined = Node("inlined-body", "inline", [body], clone.span, {"callee": callee})
            clone.children.append(inlined)
            clone.attrs["inlined"] = True
        return clone

    return expand(root, 0, frozenset())


def collect_definitions(root: Node) -> dict[str, Node]:
    """Harvest function-name → body-subtree from a ``T_sem`` tree.

    Recognises nodes with ``kind == "fn"`` and an ``attrs["name"]`` (set by
    name normalisation) or a label that is the function name; the body is
    the last child (our frontends emit ``fn(params..., body)``).
    """
    defs: dict[str, Node] = {}
    for node in root.preorder():
        if node.kind == "fn" and node.children:
            name = node.attrs.get("name", node.label)
            if name and name != "fn":
                defs[name] = node.children[-1]
    return defs
