"""Semantic-bearing tree core (paper §III-A).

Every codebase summary in this library — ``T_src`` (normalised concrete
syntax), ``T_sem`` (frontend AST) and ``T_ir`` (backend IR) — is an n-ary
:class:`Node` tree whose nodes carry a back-reference to the originating
source location (:class:`SourceSpan`). The back references enable dependency
closure, coverage masking and pruning exactly as §III-A of the paper
requires.
"""

from repro.trees.node import Node, SourceSpan
from repro.trees.builders import leaf, tree, from_sexpr, to_sexpr
from repro.trees.normalize import normalize_names, strip_non_semantic
from repro.trees.inline import inline_calls
from repro.trees.coverage_mask import mask_tree
from repro.trees.stats import TreeStats, tree_stats, label_histogram
from repro.trees.hashing import structural_hash

__all__ = [
    "Node",
    "SourceSpan",
    "leaf",
    "tree",
    "from_sexpr",
    "to_sexpr",
    "normalize_names",
    "strip_non_semantic",
    "inline_calls",
    "mask_tree",
    "TreeStats",
    "tree_stats",
    "label_histogram",
    "structural_hash",
]
