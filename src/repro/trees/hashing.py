"""Deterministic structural hashing of trees.

Used for cheap identical-tree detection (divergence of zero without running
TED — the paper notes boilerplate shared between models "simply evaluate[s]
to a divergence of zero as the trees will be identical") and for Codebase DB
content addressing.
"""

from __future__ import annotations

import hashlib

from repro.trees.node import Node


def structural_hash(root: Node) -> str:
    """SHA-256 over the (label, kind, shape) structure; ignores spans/attrs.

    Computed iteratively over the postorder so deep trees don't recurse.
    """
    memo: dict[int, str] = {}
    for node in root.postorder():
        h = hashlib.sha256()
        h.update(node.label.encode())
        h.update(b"\x00")
        h.update(node.kind.encode())
        for c in node.children:
            h.update(b"\x01")
            h.update(memo[id(c)].encode())
        memo[id(node)] = h.hexdigest()
    return memo[id(root)]


def cached_structural_hash(root: Node) -> str:
    """Structural hash memoised on the root's attrs (``_shash``).

    Metric-pipeline trees are frozen once built; callers who mutate a tree
    after it has been hashed must drop the ``_shash`` attr (or rebuild the
    tree, which is the idiomatic path). Shared by the TED memo, checkpoint
    task keys and unit-artifact fingerprints so they all agree on tree
    identity.
    """
    h = root.attrs.get("_shash")
    if h is None:
        h = structural_hash(root)
        root.attrs["_shash"] = h
    return h
