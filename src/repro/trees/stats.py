"""Secondary tree metrics: size, depth, fanout, label histograms.

The paper mentions "overall tree complexity" as a secondary metric enabled
by source back-references; these statistics also power the TED
label-histogram lower bound used to prefilter distance computations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.trees.node import Node


@dataclass(frozen=True)
class TreeStats:
    """Summary statistics of one tree."""

    size: int
    depth: int
    leaves: int
    max_fanout: int
    mean_fanout: float
    distinct_labels: int


def tree_stats(root: Node) -> TreeStats:
    """Compute :class:`TreeStats` in a single traversal."""
    size = 0
    leaves = 0
    max_fanout = 0
    internal = 0
    child_total = 0
    labels: set[str] = set()
    depth = 0
    stack = [(root, 1)]
    while stack:
        node, d = stack.pop()
        size += 1
        labels.add(node.label)
        if d > depth:
            depth = d
        n = len(node.children)
        if n == 0:
            leaves += 1
        else:
            internal += 1
            child_total += n
            if n > max_fanout:
                max_fanout = n
        for c in node.children:
            stack.append((c, d + 1))
    mean_fanout = child_total / internal if internal else 0.0
    return TreeStats(size, depth, leaves, max_fanout, mean_fanout, len(labels))


def cached_tree_stats(root: Node) -> TreeStats:
    """:func:`tree_stats` memoised on the root's attrs (``_tstats``).

    Metric-pipeline trees are frozen once built (same contract as
    :func:`repro.trees.hashing.cached_structural_hash`); divergence matrices
    revisit the same unit trees across every pair, so the pruning cascade's
    size/depth stage reads these statistics through this memo.
    """
    s = root.attrs.get("_tstats")
    if s is None:
        s = tree_stats(root)
        root.attrs["_tstats"] = s
    return s


def label_histogram(root: Node) -> Counter:
    """Multiset of node labels; basis of the TED lower bound."""
    return Counter(n.label for n in root.preorder())


def cached_label_histogram(root: Node) -> Counter:
    """:func:`label_histogram` memoised on the root's attrs (``_lhist``);
    same frozen-tree contract as :func:`cached_tree_stats`."""
    h = root.attrs.get("_lhist")
    if h is None:
        h = label_histogram(root)
        root.attrs["_lhist"] = h
    return h


def histogram_lower_bound(h1: Counter, h2: Counter) -> int:
    """A valid lower bound on unit-cost TED from label multisets.

    TED must at least account for the size difference (insertions or
    deletions) and for every label present in one multiset but not the
    other (each such node must be relabelled, inserted, or deleted). The
    bound ``max(|n1-n2|, multiset_symmetric_difference/2)`` is classic and
    cheap: O(distinct labels).
    """
    n1 = sum(h1.values())
    n2 = sum(h2.values())
    sym = sum((h1 - h2).values()) + sum((h2 - h1).values())
    return max(abs(n1 - n2), (sym + 1) // 2)
