"""MiniC++ abstract syntax tree node definitions.

Modelled after ClangAST at the granularity TBMD needs: declarations,
statements and expressions, with dialect nodes for OpenMP/OpenACC pragmas
(first-class ``PragmaStmt``/``PragmaDecl``) and CUDA/HIP kernel launches.
Every node records its source span for coverage masking and dependency
closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.trees.node import SourceSpan


@dataclass
class AstNode:
    """Base: every node carries a span (None for synthesised nodes)."""

    span: Optional[SourceSpan] = field(default=None, kw_only=True)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass
class TypeRef(AstNode):
    """A (possibly qualified, possibly templated) type reference.

    ``name`` holds the qualified name parts, e.g. ``["sycl", "range"]``;
    ``template_args`` holds nested :class:`TypeRef` or :class:`Expr`
    arguments; ``pointer`` counts ``*``; ``is_ref``/``is_const`` record
    ``&``/``const``.
    """

    name: list[str] = field(default_factory=list)
    template_args: list[Union["TypeRef", "Expr"]] = field(default_factory=list)
    pointer: int = 0
    is_ref: bool = False
    is_const: bool = False

    @property
    def base_name(self) -> str:
        return "::".join(self.name)

    def __str__(self) -> str:
        s = ("const " if self.is_const else "") + self.base_name
        if self.template_args:
            s += "<" + ", ".join(str(a) for a in self.template_args) + ">"
        s += "*" * self.pointer + ("&" if self.is_ref else "")
        return s


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(AstNode):
    pass


@dataclass
class IdentExpr(Expr):
    """Possibly-qualified name use: ``x``, ``std::execution::par_unseq``."""

    parts: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return "::".join(self.parts)


@dataclass
class LiteralExpr(Expr):
    kind: str = "int"  # int | float | string | char | bool | nullptr
    value: str = ""


@dataclass
class BinaryExpr(Expr):
    op: str = "+"
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class UnaryExpr(Expr):
    op: str = "-"
    operand: Optional[Expr] = None
    prefix: bool = True


@dataclass
class AssignExpr(Expr):
    op: str = "="  # =, +=, -=, ...
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class CondExpr(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    other: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    callee: Optional[Expr] = None
    args: list[Expr] = field(default_factory=list)
    template_args: list[Union[TypeRef, Expr]] = field(default_factory=list)


@dataclass
class KernelLaunchExpr(Expr):
    """CUDA/HIP triple-chevron launch: ``k<<<grid, block>>>(args)``."""

    callee: Optional[Expr] = None
    config: list[Expr] = field(default_factory=list)
    args: list[Expr] = field(default_factory=list)


@dataclass
class MemberExpr(Expr):
    base: Optional[Expr] = None
    member: str = ""
    arrow: bool = False


@dataclass
class SubscriptExpr(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class LambdaExpr(Expr):
    """``[capture](params) { body }`` — the workhorse of library models."""

    capture: str = "="  # "=", "&", "", or explicit list text
    params: list["ParamDecl"] = field(default_factory=list)
    body: Optional["CompoundStmt"] = None


@dataclass
class CastExpr(Expr):
    type: Optional[TypeRef] = None
    operand: Optional[Expr] = None
    kind: str = "c"  # c | static | reinterpret


@dataclass
class NewExpr(Expr):
    type: Optional[TypeRef] = None
    array_size: Optional[Expr] = None
    ctor_args: list[Expr] = field(default_factory=list)


@dataclass
class DeleteExpr(Expr):
    operand: Optional[Expr] = None
    is_array: bool = False


@dataclass
class SizeofExpr(Expr):
    type: Optional[TypeRef] = None
    operand: Optional[Expr] = None


@dataclass
class InitListExpr(Expr):
    items: list[Expr] = field(default_factory=list)


@dataclass
class ThisExpr(Expr):
    pass


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(AstNode):
    pass


@dataclass
class CompoundStmt(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    decls: list["VarDecl"] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    other: Optional[Stmt] = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None  # DeclStmt or ExprStmt
    cond: Optional[Expr] = None
    inc: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoStmt(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ErrorStmt(Stmt):
    """Placeholder emitted by panic-mode recovery for an unparseable
    statement. Converts to an ordinary ``error-node`` leaf in all tree
    views so degraded trees stay TED-comparable (DESIGN.md)."""

    message: str = ""


@dataclass
class PragmaClause(AstNode):
    """One clause of a retained pragma, e.g. ``reduction(+ : sum)``."""

    name: str = ""
    arguments: list[str] = field(default_factory=list)


@dataclass
class PragmaStmt(Stmt):
    """A retained ``#pragma omp``/``acc`` directive as a semantic AST token.

    This is the behaviour §V-C of the paper highlights: directives carry
    semantics "above the laws of the host language", so they live in the
    AST (and hence in ``T_sem``) rather than vanishing as trivia.
    """

    family: str = "omp"  # omp | acc
    directives: list[str] = field(default_factory=list)  # e.g. ["target","teams","distribute"]
    clauses: list[PragmaClause] = field(default_factory=list)
    body: Optional[Stmt] = None  # attached structured block, when applicable


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl(AstNode):
    pass


@dataclass
class ParamDecl(Decl):
    name: str = ""
    type: Optional[TypeRef] = None
    #: Default argument — "non-visible but semantic-bearing" (§V-A): SYCL's
    #: defaulted template/call parameters inflate T_sem without appearing
    #: at call sites.
    default: Optional[Expr] = None


@dataclass
class VarDecl(Decl):
    name: str = ""
    type: Optional[TypeRef] = None
    init: Optional[Expr] = None
    ctor_args: Optional[list[Expr]] = None  # T x(a, b);
    is_static: bool = False


@dataclass
class FieldDecl(Decl):
    name: str = ""
    type: Optional[TypeRef] = None
    init: Optional[Expr] = None


@dataclass
class TemplateParam(Decl):
    kind: str = "type"  # type | nontype
    name: str = ""
    value_type: Optional[TypeRef] = None  # for nontype params


@dataclass
class FunctionDecl(Decl):
    name: str = ""
    ret: Optional[TypeRef] = None
    params: list[ParamDecl] = field(default_factory=list)
    body: Optional[CompoundStmt] = None
    attrs: list[str] = field(default_factory=list)  # __global__, __device__, inline, static...
    template_params: list[TemplateParam] = field(default_factory=list)
    is_method: bool = False
    is_ctor: bool = False
    is_operator: bool = False
    qualifiers: list[str] = field(default_factory=list)  # const etc.

    @property
    def is_kernel(self) -> bool:
        """True for CUDA/HIP ``__global__`` device entry points."""
        return "__global__" in self.attrs


@dataclass
class ClassDecl(Decl):
    name: str = ""
    kind: str = "class"  # class | struct
    bases: list[TypeRef] = field(default_factory=list)
    fields: list[FieldDecl] = field(default_factory=list)
    methods: list[FunctionDecl] = field(default_factory=list)
    template_params: list[TemplateParam] = field(default_factory=list)


@dataclass
class NamespaceDecl(Decl):
    name: str = ""
    decls: list[Decl] = field(default_factory=list)


@dataclass
class UsingDecl(Decl):
    text: str = ""
    alias: str = ""
    target: Optional[TypeRef] = None


@dataclass
class TypedefDecl(Decl):
    name: str = ""
    type: Optional[TypeRef] = None


@dataclass
class PragmaDecl(Decl):
    """A retained pragma at file scope."""

    family: str = "omp"
    directives: list[str] = field(default_factory=list)
    clauses: list[PragmaClause] = field(default_factory=list)


@dataclass
class ErrorDecl(Decl):
    """Placeholder emitted by panic-mode recovery for an unparseable
    declaration (see :class:`ErrorStmt`)."""

    message: str = ""


@dataclass
class TranslationUnit(AstNode):
    """Root of a parsed unit (main file + its preprocessed includes)."""

    path: str = "<memory>"
    decls: list[Decl] = field(default_factory=list)
