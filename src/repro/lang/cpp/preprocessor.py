"""MiniC++ preprocessor.

Supports the directive set the corpus uses: ``#include`` (quoted/angled,
resolved through the :class:`~repro.lang.source.VirtualFS`), object- and
function-like ``#define`` with rescanning, ``#undef``, the conditional
family (``#if/#ifdef/#ifndef/#elif/#else/#endif`` with ``defined()`` and
integer expressions), and ``#pragma``.

Two behaviours the paper depends on are modelled explicitly:

* **Pragma retention** — ``#pragma omp``/``#pragma acc`` lines survive
  preprocessing as first-class tokens so the parser can turn them into
  semantic AST nodes ("OpenMP pragmas are identified and retained even
  after preprocessing and normalisation steps", §III-C).
* **Expansion bookkeeping** — every emitted token keeps its *original*
  file/line, so the post-preprocessor CST attributes included/expanded
  code to the header it came from. This is what makes the SYCL
  ``Source+pp`` blow-up (§V-C) measurable: the 20 MB ``<CL/sycl.hpp>``
  analogue lands in the unit.

Simplification (documented): all headers behave as if they start with
``#pragma once`` — repeated inclusion of the same path is a no-op. Every
header in the corpus uses include guards anyway, so this is behaviour-
preserving while keeping the conditional stack simpler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang.cpp.lexer import Token, TokenType, lex
from repro.lang.source import VirtualFS
from repro.util.errors import ParseError


@dataclass
class Macro:
    name: str
    params: Optional[list[str]]  # None = object-like
    body: list[Token]
    variadic: bool = False


@dataclass
class PreprocessResult:
    """Output of preprocessing one translation unit."""

    tokens: list[Token]  # significant tokens + retained pragma DIRECTIVEs
    dependencies: list[str]  # every file pulled in, in first-include order
    macros: dict[str, Macro]
    #: (file, line) pairs of lines removed by failed conditionals
    skipped_lines: list[tuple[str, int]] = field(default_factory=list)


_PRAGMA_KEEP_PREFIXES = ("omp", "acc")


def preprocess(
    fs: VirtualFS,
    path: str,
    defines: Optional[dict[str, str]] = None,
) -> PreprocessResult:
    """Run the preprocessor over ``path`` within ``fs``.

    ``defines`` are ``-D`` style command-line macros (value defaults "1").
    """
    pp = _Preprocessor(fs)
    for name, val in (defines or {}).items():
        body = [t for t in lex(val or "1", "<cmdline>") if not t.is_trivia and t.type != TokenType.EOF]
        pp.macros[name] = Macro(name, None, body)
    tokens = pp.process_file(path)
    return PreprocessResult(tokens, pp.dependencies, pp.macros, pp.skipped)


class _Preprocessor:
    def __init__(self, fs: VirtualFS):
        self.fs = fs
        self.macros: dict[str, Macro] = {}
        self.dependencies: list[str] = []
        self.included: set[str] = set()
        self.skipped: list[tuple[str, int]] = []

    # -- file / line structure --------------------------------------------
    def process_file(self, path: str) -> list[Token]:
        src = self.fs.get(path)
        raw = lex(src.text, path)
        out: list[Token] = []
        # conditional stack: (taking, any_branch_taken)
        cond: list[tuple[bool, bool]] = []
        line_buf: list[Token] = []

        def active() -> bool:
            return all(t for t, _ in cond)

        def flush_line() -> None:
            if line_buf:
                out.extend(self.expand(line_buf))
                line_buf.clear()

        for tok in raw:
            if tok.type is TokenType.DIRECTIVE:
                flush_line()
                self._directive(tok, cond, out, active)
                continue
            if tok.type is TokenType.EOF:
                break
            if tok.is_trivia:
                if tok.type is TokenType.NEWLINE:
                    flush_line()
                continue
            if not active():
                self.skipped.append((tok.file, tok.line))
                continue
            line_buf.append(tok)
        flush_line()
        if cond:
            raise ParseError("unterminated #if block", path, 0, 0)
        return out

    # -- directives ---------------------------------------------------------
    def _directive(self, tok: Token, cond: list, out: list[Token], active) -> None:
        body = tok.text.lstrip()[1:].replace("\\\n", " ")  # drop '#', join continuations
        parts = body.strip().split(None, 1)
        if not parts:
            return  # null directive
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""

        if name in ("ifdef", "ifndef"):
            sym = rest.split()[0] if rest.split() else ""
            truth = (sym in self.macros) if name == "ifdef" else (sym not in self.macros)
            taking = active() and truth
            cond.append((taking, taking))
            return
        if name == "if":
            truth = bool(self._eval_expr(rest, tok)) if active() else False
            taking = active() and truth
            cond.append((taking, taking))
            return
        if name == "elif":
            if not cond:
                raise ParseError("#elif without #if", tok.file, tok.line, tok.col)
            _, taken = cond[-1]
            cond.pop()
            outer_active = all(t for t, _ in cond)
            truth = (not taken) and outer_active and bool(self._eval_expr(rest, tok))
            cond.append((truth, taken or truth))
            return
        if name == "else":
            if not cond:
                raise ParseError("#else without #if", tok.file, tok.line, tok.col)
            _, taken = cond[-1]
            cond.pop()
            outer_active = all(t for t, _ in cond)
            cond.append((outer_active and not taken, True))
            return
        if name == "endif":
            if not cond:
                raise ParseError("#endif without #if", tok.file, tok.line, tok.col)
            cond.pop()
            return

        if not active():
            self.skipped.append((tok.file, tok.line))
            return

        if name == "include":
            self._include(rest.strip(), tok, out)
            return
        if name == "define":
            self._define(rest, tok)
            return
        if name == "undef":
            sym = rest.split()[0] if rest.split() else ""
            self.macros.pop(sym, None)
            return
        if name == "pragma":
            arg = rest.strip()
            if arg == "once":
                self.included.add(tok.file)
                return
            first = arg.split()[0] if arg.split() else ""
            if first in _PRAGMA_KEEP_PREFIXES:
                # Retained pragma: pass through for the parser (expanded so
                # macros inside clauses work).
                out.append(tok)
            return
        if name in ("error", "warning"):
            if name == "error":
                raise ParseError(f"#error {rest}", tok.file, tok.line, tok.col)
            return
        raise ParseError(f"unknown directive #{name}", tok.file, tok.line, tok.col)

    def _include(self, spec: str, tok: Token, out: list[Token]) -> None:
        spec = spec.strip()
        if spec.startswith('"') and spec.endswith('"'):
            name, angled = spec[1:-1], False
        elif spec.startswith("<") and spec.endswith(">"):
            name, angled = spec[1:-1], True
        else:
            raise ParseError(f"malformed #include {spec!r}", tok.file, tok.line, tok.col)
        resolved = self.fs.resolve_include(name, tok.file, angled)
        if resolved is None:
            raise ParseError(f"include not found: {spec}", tok.file, tok.line, tok.col)
        if resolved in self.included:
            return
        self.included.add(resolved)
        if resolved not in self.dependencies:
            self.dependencies.append(resolved)
        out.extend(self.process_file(resolved))

    def _define(self, rest: str, tok: Token) -> None:
        toks = [t for t in lex(rest, tok.file) if not t.is_trivia and t.type != TokenType.EOF]
        if not toks:
            raise ParseError("#define needs a name", tok.file, tok.line, tok.col)
        name = toks[0].text
        # function-like iff '(' immediately follows the name in the raw text
        stripped = rest.lstrip()
        after = stripped[len(name) :]
        params: Optional[list[str]] = None
        body_start = 1
        variadic = False
        if after.startswith("("):
            params = []
            i = 1
            depth = 0
            while i < len(toks):
                t = toks[i]
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                    if depth == 0:
                        body_start = i + 1
                        break
                elif t.text == "...":
                    variadic = True
                elif t.type in (TokenType.IDENT, TokenType.KEYWORD):
                    params.append(t.text)
                i += 1
            else:
                raise ParseError("unterminated macro parameter list", tok.file, tok.line, tok.col)
        body = toks[body_start:]
        # Rebase body token locations onto the definition site.
        body = [Token(t.type, t.text, tok.file, tok.line, t.col) for t in body]
        self.macros[name] = Macro(name, params, body, variadic)

    # -- macro expansion ----------------------------------------------------
    def expand(self, tokens: list[Token], banned: frozenset[str] = frozenset()) -> list[Token]:
        """Expand macros in a token run, with self-reference protection."""
        out: list[Token] = []
        i = 0
        n = len(tokens)
        while i < n:
            t = tokens[i]
            if t.type in (TokenType.IDENT, TokenType.KEYWORD) and t.text in self.macros and t.text not in banned:
                macro = self.macros[t.text]
                if macro.params is None:
                    expanded = [Token(b.type, b.text, t.file, t.line, t.col) for b in macro.body]
                    out.extend(self.expand(expanded, banned | {macro.name}))
                    i += 1
                    continue
                # function-like: require '('
                if i + 1 < n and tokens[i + 1].text == "(":
                    args, consumed = self._collect_args(tokens, i + 1, t)
                    sub = self._substitute(macro, args, t)
                    out.extend(self.expand(sub, banned | {macro.name}))
                    i += consumed + 1
                    continue
            out.append(t)
            i += 1
        return out

    def _collect_args(self, tokens: list[Token], open_idx: int, use: Token) -> tuple[list[list[Token]], int]:
        """Collect macro-call arguments; returns (args, tokens consumed incl. parens)."""
        args: list[list[Token]] = [[]]
        depth = 0
        i = open_idx
        while i < len(tokens):
            t = tokens[i]
            if t.text == "(":
                depth += 1
                if depth > 1:
                    args[-1].append(t)
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    if args == [[]]:
                        args = []
                    return args, i - open_idx + 1
                args[-1].append(t)
            elif t.text == "," and depth == 1:
                args.append([])
            else:
                args[-1].append(t)
            i += 1
        raise ParseError("unterminated macro call", use.file, use.line, use.col)

    def _substitute(self, macro: Macro, args: list[list[Token]], use: Token) -> list[Token]:
        if not macro.variadic and len(args) != len(macro.params or []):
            if not (len(macro.params or []) == 0 and args == []):
                raise ParseError(
                    f"macro {macro.name} expects {len(macro.params or [])} args, got {len(args)}",
                    use.file,
                    use.line,
                    use.col,
                )
        table = {}
        for idx, p in enumerate(macro.params or []):
            table[p] = args[idx] if idx < len(args) else []
        if macro.variadic:
            extra = args[len(macro.params or []) :]
            va: list[Token] = []
            for k, a in enumerate(extra):
                if k:
                    va.append(Token(TokenType.PUNCT, ",", use.file, use.line, use.col))
                va.extend(a)
            table["__VA_ARGS__"] = va
        out: list[Token] = []
        for b in macro.body:
            if b.type in (TokenType.IDENT, TokenType.KEYWORD) and b.text in table:
                out.extend(
                    Token(a.type, a.text, use.file, use.line, use.col) for a in table[b.text]
                )
            else:
                out.append(Token(b.type, b.text, use.file, use.line, use.col))
        return out

    # -- #if expression evaluation -------------------------------------------
    def _eval_expr(self, text: str, tok: Token) -> int:
        toks = [t for t in lex(text, tok.file) if not t.is_trivia and t.type != TokenType.EOF]
        # resolve defined(X) / defined X before macro expansion
        resolved: list[Token] = []
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.type is TokenType.IDENT and t.text == "defined":
                if i + 1 < len(toks) and toks[i + 1].text == "(":
                    sym = toks[i + 2].text if i + 2 < len(toks) else ""
                    i += 4  # defined ( X )
                else:
                    sym = toks[i + 1].text if i + 1 < len(toks) else ""
                    i += 2
                val = "1" if sym in self.macros else "0"
                resolved.append(Token(TokenType.INT, val, t.file, t.line, t.col))
                continue
            resolved.append(t)
            i += 1
        expanded = self.expand(resolved)
        # remaining identifiers evaluate to 0 (C semantics)
        ev = _CondEval(expanded, tok)
        return ev.parse()


class _CondEval:
    """Recursive-descent evaluator for #if expressions."""

    _BINOPS = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def __init__(self, tokens: list[Token], origin: Token):
        self.toks = tokens
        self.i = 0
        self.origin = origin

    def parse(self) -> int:
        v = self._level(0)
        return v

    def _peek(self) -> Optional[Token]:
        return self.toks[self.i] if self.i < len(self.toks) else None

    def _level(self, lvl: int) -> int:
        if lvl >= len(self._BINOPS):
            return self._unary()
        v = self._level(lvl + 1)
        ops = self._BINOPS[lvl]
        while (t := self._peek()) is not None and t.text in ops:
            self.i += 1
            rhs = self._level(lvl + 1)
            v = self._apply(t.text, v, rhs)
        return v

    @staticmethod
    def _apply(op: str, a: int, b: int) -> int:
        if op == "||":
            return 1 if (a or b) else 0
        if op == "&&":
            return 1 if (a and b) else 0
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "&":
            return a & b
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        if op == "<":
            return int(a < b)
        if op == "<=":
            return int(a <= b)
        if op == ">":
            return int(a > b)
        if op == ">=":
            return int(a >= b)
        if op == "<<":
            return a << b
        if op == ">>":
            return a >> b
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return a // b if b else 0
        if op == "%":
            return a % b if b else 0
        raise AssertionError(op)

    def _unary(self) -> int:
        t = self._peek()
        if t is None:
            raise ParseError("bad #if expression", self.origin.file, self.origin.line, 0)
        if t.text == "!":
            self.i += 1
            return int(not self._unary())
        if t.text == "-":
            self.i += 1
            return -self._unary()
        if t.text == "+":
            self.i += 1
            return self._unary()
        if t.text == "~":
            self.i += 1
            return ~self._unary()
        if t.text == "(":
            self.i += 1
            v = self._level(0)
            nxt = self._peek()
            if nxt is None or nxt.text != ")":
                raise ParseError("missing ')' in #if", self.origin.file, self.origin.line, 0)
            self.i += 1
            return v
        if t.type is TokenType.INT:
            self.i += 1
            txt = t.text.rstrip("uUlL")
            return int(txt, 0)
        if t.type in (TokenType.IDENT, TokenType.KEYWORD):
            self.i += 1
            if t.text == "true":
                return 1
            return 0
        raise ParseError(
            f"unexpected {t.text!r} in #if expression", self.origin.file, self.origin.line, t.col
        )
