"""Concrete syntax trees and the normalised ``T_src`` (paper §III-A, §IV-C).

The paper obtains CSTs from tree-sitter because compiler plugin APIs expose
no parse tree. Our from-scratch analogue builds a lossless bracket-structure
tree over the full token stream (every token kept, trivia included), then
``normalized_src_tree`` filters it the way the paper filters tree-sitter
output: whitespace, comments and "anonymous" control tokens (punctuation)
are dropped, leaving the tokenised view a syntax highlighter would show.

Two CST flavours exist per unit, matching "languages that include a
preprocessing phase will yield two T_src": ``pre`` (the raw file, with
directives as nodes) and ``post`` (the preprocessed token stream, where
included headers and macro expansions are visible).
"""

from __future__ import annotations

from typing import Optional

from repro import diag
from repro.lang.cpp.lexer import Token, TokenType, lex
from repro.lang.cpp.preprocessor import preprocess
from repro.lang.source import VirtualFS
from repro.trees.node import Node, SourceSpan
from repro.util.errors import ParseError

_OPEN = {"(": ")", "[": "]", "{": "}"}
_CLOSE = {")", "]", "}"}

#: Group labels by their opening bracket.
_GROUP_LABEL = {"(": "paren-group", "[": "bracket-group", "{": "brace-group"}


def _token_node(tok: Token) -> Node:
    """One CST leaf per token, labelled by lexical class."""
    span = SourceSpan(tok.file, tok.line)
    if tok.type is TokenType.KEYWORD:
        return Node(tok.text, "kw", None, span)
    if tok.type is TokenType.IDENT:
        return Node(tok.text, "ident", None, span)
    if tok.type is TokenType.INT:
        return Node("int-lit", "lit", None, span, {"text": tok.text})
    if tok.type is TokenType.FLOAT:
        return Node("float-lit", "lit", None, span, {"text": tok.text})
    if tok.type is TokenType.STRING:
        return Node("str-lit", "lit", None, span, {"text": tok.text})
    if tok.type is TokenType.CHAR:
        return Node("char-lit", "lit", None, span, {"text": tok.text})
    if tok.type is TokenType.COMMENT:
        return Node("comment", "trivia", None, span)
    if tok.type in (TokenType.WHITESPACE, TokenType.NEWLINE):
        return Node("ws", "trivia", None, span)
    if tok.type is TokenType.DIRECTIVE:
        return _directive_node(tok)
    return Node(tok.text, "punct", None, span)


def _directive_node(tok: Token) -> Node:
    """Directives become small subtrees so pragma words stay visible.

    OpenMP/OpenACC semantic words are retained with their text (the paper
    makes "special provisions for language that store semantic-bearing
    information in unusual places").
    """
    body = tok.text.lstrip()[1:].replace("\\\n", " ").strip()
    span = SourceSpan(tok.file, tok.line)
    words = body.split()
    name = words[0] if words else ""
    node = Node(f"directive:{name}", "directive", None, span)
    rest = body[len(name) :].strip()
    if rest:
        try:
            children = []
            for t in lex(rest, tok.file):
                if t.is_trivia or t.type is TokenType.EOF:
                    continue
                children.append(_token_node(Token(t.type, t.text, tok.file, tok.line, t.col)))
            node.children.extend(children)
        except ParseError as e:
            # The directive body does not lex as C++ (e.g. an include path
            # with a stray quote). Keep the raw text — word per node — so
            # T_src still sees the directive's content, and say so.
            diag.warning(
                "lex/directive-body",
                f"directive body does not lex as C++ ({e}); keeping raw text",
                tok.file, tok.line, tok.col,
            )
            for word in rest.split():
                node.children.append(Node(word, "tok", None, span))
    return node


def build_cst(tokens: list[Token], path: str = "<memory>") -> Node:
    """Lossless bracket-structure CST over a token stream."""
    root = Node("file", "cst", None, None, {"path": path})
    stack = [root]
    for tok in tokens:
        if tok.type is TokenType.EOF:
            continue
        if tok.text in _OPEN and tok.type is TokenType.PUNCT:
            group = Node(
                _GROUP_LABEL[tok.text], "group", None, SourceSpan(tok.file, tok.line)
            )
            stack[-1].children.append(group)
            stack.append(group)
            continue
        if tok.text in _CLOSE and tok.type is TokenType.PUNCT:
            if len(stack) > 1:
                top = stack.pop()
                if top.span is not None and tok.file == top.span.file:
                    top.span = SourceSpan(
                        top.span.file, top.span.line_start, max(tok.line, top.span.line_start)
                    )
            continue
        stack[-1].children.append(_token_node(tok))
    return root


def cst_pre(fs: VirtualFS, path: str) -> Node:
    """Pre-preprocessor CST of one file (directives visible as nodes)."""
    return build_cst(lex(fs.get(path).text, path), path)


def cst_post(fs: VirtualFS, path: str, defines: Optional[dict[str, str]] = None) -> Node:
    """Post-preprocessor CST of a unit (headers/macros expanded in)."""
    pp = preprocess(fs, path, defines)
    return build_cst(pp.tokens, path)


#: Labels of CST nodes removed by T_src normalisation.
_ANON_KINDS = frozenset({"trivia", "punct"})


def normalized_src_tree(cst: Node) -> Node:
    """``T_src``: drop trivia and anonymous punctuation, keep the rest.

    Group nodes survive (they carry nesting structure, as tree-sitter's
    named nodes do); keyword, identifier, literal and directive nodes
    survive. Identifier *names* are erased later by the shared TED name
    normalisation.
    """

    def rebuild(node: Node) -> Optional[Node]:
        if node.kind in _ANON_KINDS:
            return None
        kept = []
        for c in node.children:
            rc = rebuild(c)
            if rc is not None:
                kept.append(rc)
        return Node(node.label, node.kind, kept, node.span, dict(node.attrs))

    out = rebuild(cst)
    assert out is not None
    return out
