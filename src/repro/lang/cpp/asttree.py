"""AST → ``T_sem`` tree conversion (the ClangAST-extraction analogue).

Produces the semantic-bearing tree of §III-A: node types, literals and
operator names are recorded; programmer-introduced names stay on the node
until the shared TED name normalisation erases them (they are preserved in
``attrs`` for tooling). Dialect semantics get dedicated node labels:

* OpenMP/OpenACC pragmas → ``omp-…``/``acc-…`` directive nodes with clause
  subtrees (the "unique AST tokens [that] possess semantic information
  above the laws of the host language" finding),
* CUDA/HIP launches → ``cuda-kernel-launch`` nodes, ``__global__`` etc. →
  attribute nodes,
* resolved calls into templated API surfaces → ``template-instantiation``
  subtrees carrying the callee signature, its default arguments included.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.cpp.astnodes import (
    AssignExpr,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    ClassDecl,
    CompoundStmt,
    CondExpr,
    ContinueStmt,
    Decl,
    DeclStmt,
    DeleteExpr,
    DoStmt,
    ErrorDecl,
    ErrorStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    IdentExpr,
    IfStmt,
    InitListExpr,
    KernelLaunchExpr,
    LambdaExpr,
    LiteralExpr,
    MemberExpr,
    NamespaceDecl,
    NewExpr,
    ParamDecl,
    PragmaClause,
    PragmaDecl,
    PragmaStmt,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    SubscriptExpr,
    ThisExpr,
    TranslationUnit,
    TypedefDecl,
    TypeRef,
    UnaryExpr,
    UsingDecl,
    VarDecl,
    WhileStmt,
)
from repro.lang.cpp.sema import SemaResult
from repro.trees.node import Node

#: Cap on instantiation-signature expansion depth (guards mutual recursion
#: in header API surfaces).
_INST_DEPTH_LIMIT = 2


def ast_to_tree(tu: TranslationUnit, sema: Optional[SemaResult] = None) -> Node:
    """Convert a translation unit into its ``T_sem`` tree."""
    conv = _Converter(sema)
    root = Node("translation-unit", "tu", None, None, {"path": tu.path})
    for d in tu.decls:
        root.children.append(conv.decl(d))
    return root


def _respan(node: Node, span) -> Node:
    """Copy a subtree with every span replaced by the instantiation site.

    Template expansions belong to the *use* site, exactly as ClangAST
    attributes implicit instantiations to the expression that triggered
    them — and it keeps them visible after system-header masking.
    """
    return Node(
        node.label,
        node.kind,
        [_respan(c, span) for c in node.children],
        span,
        dict(node.attrs),
    )


class _Converter:
    def __init__(self, sema: Optional[SemaResult]):
        self.sema = sema

    # -- declarations ------------------------------------------------------
    def decl(self, d: Decl) -> Node:
        if isinstance(d, FunctionDecl):
            return self.function(d)
        if isinstance(d, ClassDecl):
            return self.klass(d)
        if isinstance(d, NamespaceDecl):
            n = Node(d.name or "<anon>", "module", None, d.span)
            for sub in d.decls:
                n.children.append(self.decl(sub))
            return n
        if isinstance(d, VarDecl):
            return self.var(d)
        if isinstance(d, UsingDecl):
            return Node("using", "using", None, d.span, {"text": d.text})
        if isinstance(d, TypedefDecl):
            n = Node(d.name, "type-name", None, d.span)
            if d.type is not None:
                n.children.append(self.type(d.type))
            return n
        if isinstance(d, PragmaDecl):
            return self.pragma_node(d.family, d.directives, d.clauses, None, d.span)
        if isinstance(d, ParamDecl):
            return self.param(d)
        if isinstance(d, ErrorDecl):
            # Ordinary labelled leaf: degraded trees stay TED-comparable
            # (DESIGN.md "Error-node semantics").
            return Node("error-node", "error", None, d.span)
        return Node(type(d).__name__, "decl", None, d.span)

    def function(self, d: FunctionDecl) -> Node:
        kind = "kernel" if d.is_kernel else "fn"
        n = Node(d.name, kind, None, d.span)
        for a in d.attrs:
            n.children.append(Node(f"attr:{a}", "attr", None, d.span))
        for tp in d.template_params:
            n.children.append(Node(f"tparam:{tp.kind}", "tparam", None, tp.span))
        if d.ret is not None:
            n.children.append(self.type(d.ret))
        for p in d.params:
            n.children.append(self.param(p))
        if d.body is not None:
            n.children.append(self.stmt(d.body))
        return n

    def param(self, p: ParamDecl) -> Node:
        n = Node(p.name or "param", "param", None, p.span)
        if p.type is not None:
            n.children.append(self.type(p.type))
        if p.default is not None:
            n.children.append(Node("default-arg", "default", [self.expr(p.default)], p.span))
        return n

    def klass(self, d: ClassDecl) -> Node:
        n = Node(d.name, "class", None, d.span, {"key": d.kind})
        for tp in d.template_params:
            n.children.append(Node(f"tparam:{tp.kind}", "tparam", None, tp.span))
        for b in d.bases:
            n.children.append(Node("base", "base", [self.type(b)], d.span))
        for f in d.fields:
            if f.name == "<error>":
                n.children.append(Node("error-node", "error", None, f.span))
                continue
            fn_ = Node(f.name, "field", None, f.span)
            if f.type is not None:
                fn_.children.append(self.type(f.type))
            if f.init is not None:
                fn_.children.append(self.expr(f.init))
            n.children.append(fn_)
        for m in d.methods:
            n.children.append(self.function(m))
        return n

    def var(self, d: VarDecl) -> Node:
        n = Node(d.name, "var", None, d.span)
        if d.type is not None:
            n.children.append(self.type(d.type))
        if d.init is not None:
            n.children.append(self.expr(d.init))
        for a in d.ctor_args or []:
            n.children.append(Node("ctor-arg", "ctor-arg", [self.expr(a)], d.span))
        # constructing a templated (system) type adds its instantiation
        if d.type is not None and d.type.template_args and self.sema is not None:
            hit = self.sema.classes.get(d.type.base_name)
            if hit is None:
                short = d.type.base_name.rsplit("::", 1)[-1]
                for q, c in self.sema.classes.items():
                    if q.rsplit("::", 1)[-1] == short:
                        hit = c
                        break
            if hit is not None and hit.template_params:
                n.children.append(self._class_instantiation(hit, d))
        return n

    def _class_instantiation(self, cls: ClassDecl, site: VarDecl) -> Node:
        """Signature-level expansion of a templated class at a declaration."""
        inst = Node("template-instantiation", "instantiation", None, site.span, {"of": cls.name})
        for tp in cls.template_params:
            inst.children.append(Node(f"tparam:{tp.kind}", "tparam", None, site.span))
        for m in cls.methods[:6]:  # signature surface, not the whole class
            sig = Node(m.name, "fn", None, site.span)
            if m.ret is not None:
                sig.children.append(_respan(self.type(m.ret), site.span))
            for p in m.params:
                sig.children.append(_respan(self.param(p), site.span))
            inst.children.append(sig)
        return inst

    # -- types ---------------------------------------------------------------
    def type(self, t: TypeRef) -> Node:
        n = Node(t.base_name or "type", "type-name", None, t.span)
        for a in t.template_args:
            if isinstance(a, TypeRef):
                n.children.append(self.type(a))
            else:
                n.children.append(self.expr(a))
        out = n
        for _ in range(t.pointer):
            out = Node("ptr", "type-op", [out], t.span)
        if t.is_ref:
            out = Node("ref", "type-op", [out], t.span)
        if t.is_const:
            out = Node("const", "type-op", [out], t.span)
        return out

    # -- statements ------------------------------------------------------------
    def stmt(self, s: Optional[Stmt]) -> Node:
        if s is None:
            return Node("null-stmt", "stmt")
        if isinstance(s, CompoundStmt):
            return Node("compound", "stmt", [self.stmt(x) for x in s.stmts], s.span)
        if isinstance(s, ExprStmt):
            if s.expr is None:
                return Node("empty-stmt", "stmt", None, s.span)
            return Node("expr-stmt", "stmt", [self.expr(s.expr)], s.span)
        if isinstance(s, DeclStmt):
            return Node("decl-stmt", "stmt", [self.var(v) for v in s.decls], s.span)
        if isinstance(s, IfStmt):
            kids = [self.expr(s.cond), self.stmt(s.then)]
            if s.other is not None:
                kids.append(self.stmt(s.other))
            return Node("if", "stmt", kids, s.span)
        if isinstance(s, ForStmt):
            kids = [
                self.stmt(s.init) if s.init else Node("null-init", "stmt"),
                self.expr(s.cond) if s.cond else Node("null-cond", "expr"),
                self.expr(s.inc) if s.inc else Node("null-inc", "expr"),
                self.stmt(s.body),
            ]
            return Node("for", "stmt", kids, s.span)
        if isinstance(s, WhileStmt):
            return Node("while", "stmt", [self.expr(s.cond), self.stmt(s.body)], s.span)
        if isinstance(s, DoStmt):
            return Node("do", "stmt", [self.stmt(s.body), self.expr(s.cond)], s.span)
        if isinstance(s, ReturnStmt):
            kids = [self.expr(s.value)] if s.value is not None else []
            return Node("return", "stmt", kids, s.span)
        if isinstance(s, BreakStmt):
            return Node("break", "stmt", None, s.span)
        if isinstance(s, ContinueStmt):
            return Node("continue", "stmt", None, s.span)
        if isinstance(s, PragmaStmt):
            return self.pragma_node(s.family, s.directives, s.clauses, s.body, s.span)
        if isinstance(s, ErrorStmt):
            return Node("error-node", "error", None, s.span)
        return Node(type(s).__name__, "stmt", None, s.span)

    def pragma_node(
        self,
        family: str,
        directives: list[str],
        clauses: list[PragmaClause],
        body: Optional[Stmt],
        span,
    ) -> Node:
        """Directive → semantic AST token with *implicit* semantic structure.

        ClangAST's OpenMP nodes carry far more than the pragma text: captured
        statements, implicit data-sharing, schedule/iteration-space
        modelling, reduction init/combine trees, device data environments.
        "The semantic meaning is ascribed in a way that is opaque in the
        source" (§V-C) — this is why OpenMP's ``T_sem`` divergence exceeds
        its ``T_src`` divergence, so we model those implicit nodes.
        """
        label = f"{family}-{'-'.join(directives)}" if directives else family
        n = Node(label, f"{family}-directive", None, span)
        dirs = set(directives)
        for c in clauses:
            cn = Node(f"clause:{c.name}", f"{family}-clause", None, c.span)
            for a in c.arguments:
                cn.children.append(Node(a, "clause-arg", None, c.span))
            if c.name == "reduction":
                for a in c.arguments:
                    cn.children.append(Node("reduction-init", f"{family}-implicit", None, c.span))
                    cn.children.append(Node("reduction-combine", f"{family}-implicit", None, c.span))
            if c.name.startswith("map") or c.name in ("copy", "copyin", "copyout", "to", "from"):
                for a in c.arguments:
                    cn.children.append(Node("mapper", f"{family}-implicit", None, c.span))
            n.children.append(cn)
        def imp(label: str, children: Optional[list[Node]] = None) -> Node:
            return Node(label, f"{family}-implicit", children, span)

        implicit: list[Node] = []
        if "parallel" in dirs:
            implicit += [
                imp("thread-team"),
                imp("implicit-barrier"),
                imp("data-sharing"),
                imp("omp-outlined-decl", [imp("outlined-tid-param"), imp("outlined-bound-param")]),
                imp("omp-captured-decl", [imp("captured-record")]),
            ]
        if "for" in dirs or "loop" in dirs or "distribute" in dirs:
            # Clang's OMPLoopDirective materialises the full loop-transform
            # helper set: each helper is itself an expression subtree.
            implicit.append(
                imp(
                    "iteration-space",
                    [
                        imp("omp-iv", [imp("iv-init")]),
                        imp("omp-lb", [imp("lb-expr")]),
                        imp("omp-ub", [imp("ub-expr")]),
                        imp("omp-stride", [imp("stride-expr")]),
                        imp("omp-lastiter"),
                        imp("omp-precond", [imp("precond-expr")]),
                    ],
                )
            )
            implicit.append(imp("loop-schedule", [imp("omp-chunk")]))
        if "simd" in dirs:
            implicit += [imp("simd-lanes"), imp("simd-aligned")]
        if "target" in dirs:
            implicit.append(
                imp("device-data-environment", [imp("omp-device-id"), imp("omp-offload-entry")])
            )
            implicit += [imp("target-task"), imp("host-device-mapping")]
        if "teams" in dirs:
            implicit.append(imp("league-of-teams", [imp("omp-num-teams"), imp("omp-thread-limit")]))
        if "task" in dirs or "taskloop" in dirs:
            implicit += [imp("task-data-environment"), imp("implicit-taskgroup"), imp("omp-task-alloc")]
        if family == "acc" and ("parallel" in dirs or "kernels" in dirs):
            implicit += [imp("gang-worker-vector"), imp("data-sharing")]
        n.children.extend(implicit)
        if body is not None:
            body_tree = self.stmt(body)
            captured = Node("captured-stmt", f"{family}-captured", [body_tree], span)
            # implicit data-sharing captures: one per distinct variable the
            # region references (Clang materialises these as implicit
            # firstprivate/shared DeclRefs plus their init expressions).
            if family == "omp":
                seen: set[str] = set()
                for node in body_tree.preorder():
                    if node.kind == "var":
                        name = node.attrs.get("name", node.label)
                        seen.add(name)
                for name in sorted(seen)[:8]:
                    captured.children.append(
                        Node(
                            "implicit-capture",
                            "omp-implicit",
                            [imp("capture-init")],
                            span,
                            {"name": name},
                        )
                    )
            n.children.append(captured)
        return n

    # -- expressions --------------------------------------------------------------
    def expr(self, e: Optional[Expr]) -> Node:
        if e is None:
            return Node("null-expr", "expr")
        if isinstance(e, LiteralExpr):
            return Node(e.value, "lit", None, e.span, {"lit_kind": e.kind})
        if isinstance(e, IdentExpr):
            if len(e.parts) > 1:
                return Node(e.name, "namespace-ref", None, e.span, {"parts": "::".join(e.parts)})
            return Node(e.name, "var", None, e.span)
        if isinstance(e, BinaryExpr):
            return Node(f"binop:{e.op}", "binop", [self.expr(e.lhs), self.expr(e.rhs)], e.span)
        if isinstance(e, AssignExpr):
            return Node(f"assign:{e.op}", "assign", [self.expr(e.lhs), self.expr(e.rhs)], e.span)
        if isinstance(e, UnaryExpr):
            pos = "pre" if e.prefix else "post"
            return Node(f"unop:{e.op}:{pos}", "unop", [self.expr(e.operand)], e.span)
        if isinstance(e, CondExpr):
            return Node(
                "cond-expr",
                "expr",
                [self.expr(e.cond), self.expr(e.then), self.expr(e.other)],
                e.span,
            )
        if isinstance(e, CallExpr):
            return self.call(e)
        if isinstance(e, KernelLaunchExpr):
            kids = [self.expr(e.callee)]
            cfg = Node("launch-config", "launch-config", [self.expr(c) for c in e.config], e.span)
            kids.append(cfg)
            for a in e.args:
                kids.append(self.expr(a))
            return Node("cuda-kernel-launch", "kernel-launch", kids, e.span)
        if isinstance(e, MemberExpr):
            arrow = "arrow" if e.arrow else "dot"
            n = Node(e.member, "member", [self.expr(e.base)], e.span, {"access": arrow})
            return n
        if isinstance(e, SubscriptExpr):
            return Node("subscript", "expr", [self.expr(e.base), self.expr(e.index)], e.span)
        if isinstance(e, LambdaExpr):
            cap = Node(f"capture:{e.capture or 'none'}", "capture", None, e.span)
            kids: list[Node] = [cap]
            for p in e.params:
                kids.append(self.param(p))
            if e.body is not None:
                kids.append(self.stmt(e.body))
            return Node("lambda", "lambda", kids, e.span)
        if isinstance(e, CastExpr):
            kids = []
            if e.type is not None:
                kids.append(self.type(e.type))
            kids.append(self.expr(e.operand))
            return Node(f"cast:{e.kind}", "cast", kids, e.span)
        if isinstance(e, NewExpr):
            kids = [self.type(e.type)] if e.type is not None else []
            if e.array_size is not None:
                kids.append(self.expr(e.array_size))
            for a in e.ctor_args:
                kids.append(self.expr(a))
            label = "new-array" if e.array_size is not None else "new"
            return Node(label, "alloc", kids, e.span)
        if isinstance(e, DeleteExpr):
            label = "delete-array" if e.is_array else "delete"
            return Node(label, "alloc", [self.expr(e.operand)], e.span)
        if isinstance(e, SizeofExpr):
            kids = [self.type(e.type)] if e.type is not None else [self.expr(e.operand)]
            return Node("sizeof", "expr", kids, e.span)
        if isinstance(e, InitListExpr):
            return Node("init-list", "expr", [self.expr(x) for x in e.items], e.span)
        if isinstance(e, ThisExpr):
            return Node("this", "expr", None, e.span)
        return Node(type(e).__name__, "expr", None, e.span)

    def call(self, e: CallExpr) -> Node:
        # label: best-effort callee name; kind 'call' gets name-normalised.
        name = "call"
        if isinstance(e.callee, IdentExpr):
            name = e.callee.name
        elif isinstance(e.callee, MemberExpr):
            name = e.callee.member
        n = Node(name, "call", None, e.span)
        if isinstance(e.callee, MemberExpr):
            n.children.append(self.expr(e.callee))
        elif not isinstance(e.callee, IdentExpr):
            n.children.append(self.expr(e.callee))
        for ta in e.template_args:
            if isinstance(ta, TypeRef):
                n.children.append(Node("targ", "targ", [self.type(ta)], e.span))
            else:
                n.children.append(Node("targ", "targ", [self.expr(ta)], e.span))
        for a in e.args:
            n.children.append(self.expr(a))
        if self.sema is not None:
            r = self.sema.resolved.get(id(e))
            if r is not None:
                qname, decl, is_sys = r
                n.attrs["callee"] = qname
                n.attrs["system"] = is_sys
                if decl is not None and decl.template_params:
                    n.children.append(self._fn_instantiation(decl, e))
            else:
                cr = self.sema.ctor_resolved.get(id(e))
                if cr is not None and cr[1].template_params:
                    # materialised templated temporary (sycl::range<1>(n)):
                    # the instantiation machinery lands in the AST.
                    inst = Node(
                        "template-instantiation",
                        "instantiation",
                        None,
                        e.span,
                        {"of": cr[0]},
                    )
                    for tp in cr[1].template_params:
                        inst.children.append(Node(f"tparam:{tp.kind}", "tparam", None, e.span))
                    for m in cr[1].methods[:2]:
                        sig = Node(m.name, "fn", None, e.span)
                        for p in m.params:
                            sig.children.append(_respan(self.param(p), e.span))
                        inst.children.append(sig)
                    n.children.append(inst)
        return n

    def _fn_instantiation(self, decl: FunctionDecl, site: CallExpr, depth: int = 0) -> Node:
        """Signature-level template expansion at a call site."""
        inst = Node(
            "template-instantiation", "instantiation", None, site.span, {"of": decl.name}
        )
        if depth >= _INST_DEPTH_LIMIT:
            return inst
        for tp in decl.template_params:
            inst.children.append(Node(f"tparam:{tp.kind}", "tparam", None, site.span))
        if decl.ret is not None:
            inst.children.append(_respan(self.type(decl.ret), site.span))
        for p in decl.params:
            inst.children.append(_respan(self.param(p), site.span))
        return inst
