"""MiniC++ lexer.

Produces the *complete* token stream including trivia (whitespace and
comments) so the same lexer feeds four consumers with different needs:

* the pre/post-preprocessor CSTs (``T_src`` wants comments and control
  tokens identified so normalisation can strip them),
* SLOC/LLOC counting (Nguyen-style whitespace/comment normalisation),
* the preprocessor (line structure matters for directives), and
* the parser (skips trivia).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro import diag, obs
from repro.util.errors import ParseError


class TokenType(Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int-lit"
    FLOAT = "float-lit"
    STRING = "str-lit"
    CHAR = "char-lit"
    PUNCT = "punct"
    DIRECTIVE = "directive"  # a whole preprocessor line, tokenized lazily
    COMMENT = "comment"
    WHITESPACE = "ws"
    NEWLINE = "nl"
    EOF = "eof"


#: C++ keywords recognised by MiniC++ (subset + dialect extensions).
KEYWORDS = frozenset(
    """
    auto bool break case char class const constexpr continue default delete
    do double else enum extern false float for if inline int long namespace
    new nullptr operator private public return short signed sizeof static
    struct switch template this true typedef typename union unsigned using
    void volatile while
    __global__ __device__ __host__ __shared__ __restrict__
    """.split()
)

#: Multi-character punctuators, longest-match-first.
_PUNCTS = [
    "<<<", ">>>",
    "<<=", ">>=", "...", "->*", "::",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", ".", "#",
]


@dataclass(frozen=True)
class Token:
    """One lexical token with its original source location."""

    type: TokenType
    text: str
    file: str
    line: int
    col: int

    @property
    def is_trivia(self) -> bool:
        return self.type in (TokenType.WHITESPACE, TokenType.NEWLINE, TokenType.COMMENT)

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.text!r}, {self.file}:{self.line})"


def lex(text: str, file: str = "<memory>", tolerant: bool = False) -> list[Token]:
    """Tokenise MiniC++ source; raises :class:`ParseError` on bad input.

    With ``tolerant=True``, lexical errors (unterminated comments/literals,
    unexpected characters) are repaired in place — the broken region is
    kept as the nearest sensible token, a diagnostic is emitted, and lexing
    continues. Used by the fault-tolerant indexing path.
    """
    tokens = list(_lex_iter(text, file, tolerant))
    if obs.enabled():
        obs.add("lex.cpp.calls")
        obs.add("lex.cpp.tokens", len(tokens))
    return tokens


def _lex_iter(text: str, file: str, tolerant: bool = False) -> Iterator[Token]:
    i = 0
    n = len(text)
    line = 1
    col = 1
    at_line_start = True

    def make(tt: TokenType, s: str, ln: int, c: int) -> Token:
        return Token(tt, s, file, ln, c)

    while i < n:
        ch = text[i]
        start_line, start_col = line, col

        # newline
        if ch == "\n":
            yield make(TokenType.NEWLINE, "\n", line, col)
            i += 1
            line += 1
            col = 1
            at_line_start = True
            continue

        # horizontal whitespace
        if ch in " \t\r":
            j = i
            while j < n and text[j] in " \t\r":
                j += 1
            yield make(TokenType.WHITESPACE, text[i:j], start_line, start_col)
            col += j - i
            i = j
            continue

        # preprocessor directive: '#' first non-ws on the line; consume the
        # whole (possibly continued) line as one DIRECTIVE token.
        if ch == "#" and at_line_start:
            j = i
            while j < n:
                if text[j] == "\\" and j + 1 < n and text[j + 1] == "\n":
                    j += 2
                    line += 1
                    continue
                if text[j] == "\n":
                    break
                j += 1
            raw = text[i:j]
            yield make(TokenType.DIRECTIVE, raw, start_line, start_col)
            col = 1  # continuation handling resets precision; directives end lines
            i = j
            at_line_start = False
            continue

        at_line_start = False

        # comments
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            yield make(TokenType.COMMENT, text[i:j], start_line, start_col)
            col += j - i
            i = j
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                if not tolerant:
                    raise ParseError("unterminated block comment", file, start_line, start_col)
                diag.warning(
                    "lex/unterminated-comment",
                    "unterminated block comment (treated as running to end of file)",
                    file, start_line, start_col,
                )
                j = n - 2  # consume to EOF
            j += 2
            segment = text[i:j]
            yield make(TokenType.COMMENT, segment, start_line, start_col)
            nl = segment.count("\n")
            if nl:
                line += nl
                col = len(segment) - segment.rfind("\n")
            else:
                col += len(segment)
            i = j
            continue

        # string / char literals
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            broken = False
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                if j < n and text[j] == "\n":
                    broken = True
                    break
                j += 1
            if j >= n:
                broken = True
                j = n
            if broken:
                if not tolerant:
                    raise ParseError("unterminated literal", file, start_line, start_col)
                diag.warning(
                    "lex/unterminated-literal",
                    "unterminated literal (closed at end of line)",
                    file, start_line, start_col,
                )
            else:
                j += 1  # include the closing quote
            tt = TokenType.STRING if quote == '"' else TokenType.CHAR
            yield make(tt, text[i:j], start_line, start_col)
            col += j - i
            i = j
            continue

        # numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            is_float = False
            if text[j : j + 2].lower() == "0x":
                j += 2
                while j < n and (text[j].isalnum()):
                    j += 1
            else:
                while j < n and text[j].isdigit():
                    j += 1
                if j < n and text[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and text[j].isdigit():
                        j += 1
                if j < n and text[j] in "eE":
                    k = j + 1
                    if k < n and text[k] in "+-":
                        k += 1
                    if k < n and text[k].isdigit():
                        is_float = True
                        j = k
                        while j < n and text[j].isdigit():
                            j += 1
                # suffixes
                while j < n and text[j] in "fFlLuU":
                    if text[j] in "fF":
                        is_float = True
                    j += 1
            tt = TokenType.FLOAT if is_float else TokenType.INT
            yield make(tt, text[i:j], start_line, start_col)
            col += j - i
            i = j
            continue

        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            tt = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            yield make(tt, word, start_line, start_col)
            col += j - i
            i = j
            continue

        # punctuation (longest match first)
        for p in _PUNCTS:
            if text.startswith(p, i):
                yield make(TokenType.PUNCT, p, start_line, start_col)
                col += len(p)
                i += len(p)
                break
        else:
            if not tolerant:
                raise ParseError(f"unexpected character {ch!r}", file, start_line, start_col)
            diag.warning(
                "lex/unexpected-char",
                f"unexpected character {ch!r} (skipped)",
                file, start_line, start_col,
            )
            col += 1
            i += 1

    yield Token(TokenType.EOF, "", file, line, col)


def significant(tokens: list[Token]) -> list[Token]:
    """Strip trivia (whitespace/comments/newlines) for the parser."""
    return [t for t in tokens if not t.is_trivia and t.type is not TokenType.EOF]
