"""MiniC++ semantic analysis.

Resolves names to declarations across the whole translation unit (including
decls that arrived from headers via preprocessing), propagates variable
types far enough to resolve method calls, and records *template
instantiations* at call sites.

The instantiation record is the mechanism behind a key paper finding: "the
core SYCL API surface is heavily templated with non-visible but
semantic-bearing elements such as default values of parameters or even
templates" (§V-A) — every call into a templated API contributes an
instantiation subtree to ``T_sem``, so library-based models diverge more
semantically than they look in source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import diag
from repro.lang.cpp.astnodes import (
    AssignExpr,
    BinaryExpr,
    CallExpr,
    CastExpr,
    ClassDecl,
    CompoundStmt,
    CondExpr,
    Decl,
    DeclStmt,
    DeleteExpr,
    DoStmt,
    ErrorDecl,
    ErrorStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    IdentExpr,
    IfStmt,
    InitListExpr,
    KernelLaunchExpr,
    LambdaExpr,
    MemberExpr,
    NamespaceDecl,
    NewExpr,
    PragmaStmt,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    SubscriptExpr,
    TranslationUnit,
    TypeRef,
    UnaryExpr,
    VarDecl,
    WhileStmt,
)
from repro.lang.source import is_system_path


@dataclass
class Instantiation:
    """One template instantiation observed at a call site."""

    callee: str  # qualified function/method name
    template_args: list[str]  # stringified
    arg_types: list[str]
    site_file: str
    site_line: int
    decl: Optional[FunctionDecl] = None


@dataclass
class SemaResult:
    """Symbol tables and derived facts for one translation unit."""

    tu: TranslationUnit
    functions: dict[str, FunctionDecl] = field(default_factory=dict)
    classes: dict[str, ClassDecl] = field(default_factory=dict)
    instantiations: list[Instantiation] = field(default_factory=list)
    #: call-graph edges (caller qualified name -> callee qualified name)
    calls: list[tuple[str, str]] = field(default_factory=list)
    #: resolution map: id(CallExpr) -> (qualified name, decl, is_system)
    resolved: dict[int, tuple[str, Optional[FunctionDecl], bool]] = field(default_factory=dict)
    #: constructor-expression resolution: id(CallExpr) -> (qname, ClassDecl)
    ctor_resolved: dict[int, tuple[str, ClassDecl]] = field(default_factory=dict)
    diagnostics: list[str] = field(default_factory=list)

    def function_bodies(self) -> dict[str, FunctionDecl]:
        """Functions that have definitions (used by inlining and coverage)."""
        return {k: v for k, v in self.functions.items() if v.body is not None}


class _Scope:
    """Lexical scope chain mapping variable name -> TypeRef."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: dict[str, TypeRef] = {}

    def define(self, name: str, ty: Optional[TypeRef]) -> None:
        if name and ty is not None:
            self.vars[name] = ty

    def lookup(self, name: str) -> Optional[TypeRef]:
        s: Optional[_Scope] = self
        while s is not None:
            if name in s.vars:
                return s.vars[name]
            s = s.parent
        return None


def analyze(tu: TranslationUnit) -> SemaResult:
    """Run semantic analysis over a parsed translation unit."""
    res = SemaResult(tu)
    _collect(tu.decls, "", res)
    an = _Analyzer(res)
    for qname, fn in list(res.functions.items()):
        if fn.body is not None:
            an.visit_function(qname, fn)
    for cname, cls in res.classes.items():
        for m in cls.methods:
            if m.body is not None:
                an.visit_function(f"{cname}::{m.name}", m, owner=cls)
    return res


def _collect(decls: list[Decl], prefix: str, res: SemaResult) -> None:
    for d in decls:
        if isinstance(d, ErrorDecl):
            # Parser recovery placeholder: analysis proceeds around it, but
            # the degradation is recorded so downstream metrics can tell.
            res.diagnostics.append(f"skipped unparseable declaration: {d.message}")
            diag.note(
                "sema/error-decl",
                "declaration skipped by semantic analysis (parser recovery placeholder)",
                d.span.file if d.span else "",
                d.span.line_start if d.span else 0,
            )
        elif isinstance(d, NamespaceDecl):
            sub = f"{prefix}{d.name}::" if d.name else prefix
            _collect(d.decls, sub, res)
        elif isinstance(d, FunctionDecl):
            q = prefix + d.name
            existing = res.functions.get(q)
            # A definition wins over a forward declaration.
            if existing is None or (existing.body is None and d.body is not None):
                res.functions[q] = d
        elif isinstance(d, ClassDecl):
            res.classes[prefix + d.name] = d


def _decl_is_system(d: Optional[Decl]) -> bool:
    return d is not None and d.span is not None and is_system_path(d.span.file)


class _Analyzer:
    def __init__(self, res: SemaResult):
        self.res = res
        # unqualified-name index for lookup fallbacks
        self.fn_short: dict[str, str] = {}
        for q in res.functions:
            short = q.rsplit("::", 1)[-1]
            self.fn_short.setdefault(short, q)
        self.cls_short: dict[str, str] = {}
        for q in res.classes:
            short = q.rsplit("::", 1)[-1]
            self.cls_short.setdefault(short, q)

    # -- lookup helpers -----------------------------------------------------
    def find_function(self, name: str) -> Optional[tuple[str, FunctionDecl]]:
        if name in self.res.functions:
            return name, self.res.functions[name]
        if name in self.fn_short:
            q = self.fn_short[name]
            return q, self.res.functions[q]
        return None

    def find_class(self, name: str) -> Optional[tuple[str, ClassDecl]]:
        if name in self.res.classes:
            return name, self.res.classes[name]
        short = name.rsplit("::", 1)[-1]
        if short in self.cls_short:
            q = self.cls_short[short]
            return q, self.res.classes[q]
        return None

    def find_method(self, class_name: str, method: str) -> Optional[tuple[str, FunctionDecl]]:
        hit = self.find_class(class_name)
        if hit is None:
            return None
        cname, cls = hit
        for m in cls.methods:
            if m.name == method:
                return f"{cname}::{method}", m
        # single level of base-class lookup
        for b in cls.bases:
            base_hit = self.find_method(b.base_name, method)
            if base_hit is not None:
                return base_hit
        return None

    # -- traversal ------------------------------------------------------------
    def visit_function(self, qname: str, fn: FunctionDecl, owner: Optional[ClassDecl] = None) -> None:
        scope = _Scope()
        for p in fn.params:
            scope.define(p.name, p.type)
        if owner is not None:
            for f in owner.fields:
                scope.define(f.name, f.type)
        if fn.body is not None:
            self.visit_stmt(fn.body, scope, qname)

    def visit_stmt(self, s: Optional[Stmt], scope: _Scope, caller: str) -> None:
        if s is None:
            return
        if isinstance(s, CompoundStmt):
            inner = _Scope(scope)
            for st in s.stmts:
                self.visit_stmt(st, inner, caller)
        elif isinstance(s, DeclStmt):
            for v in s.decls:
                self.visit_var(v, scope, caller)
        elif isinstance(s, ExprStmt):
            self.visit_expr(s.expr, scope, caller)
        elif isinstance(s, IfStmt):
            self.visit_expr(s.cond, scope, caller)
            self.visit_stmt(s.then, scope, caller)
            self.visit_stmt(s.other, scope, caller)
        elif isinstance(s, ForStmt):
            inner = _Scope(scope)
            self.visit_stmt(s.init, inner, caller)
            self.visit_expr(s.cond, inner, caller)
            self.visit_expr(s.inc, inner, caller)
            self.visit_stmt(s.body, inner, caller)
        elif isinstance(s, WhileStmt):
            self.visit_expr(s.cond, scope, caller)
            self.visit_stmt(s.body, scope, caller)
        elif isinstance(s, DoStmt):
            self.visit_stmt(s.body, scope, caller)
            self.visit_expr(s.cond, scope, caller)
        elif isinstance(s, ReturnStmt):
            self.visit_expr(s.value, scope, caller)
        elif isinstance(s, PragmaStmt):
            self.visit_stmt(s.body, scope, caller)
        elif isinstance(s, ErrorStmt):
            self.res.diagnostics.append(f"skipped unparseable statement in {caller}: {s.message}")
        # break/continue: nothing to do

    def visit_var(self, v: VarDecl, scope: _Scope, caller: str) -> None:
        scope.define(v.name, v.type)
        if v.init is not None:
            self.visit_expr(v.init, scope, caller)
        for a in v.ctor_args or []:
            self.visit_expr(a, scope, caller)
        # constructing a templated class instantiates it
        if v.type is not None and v.type.template_args:
            hit = self.find_class(v.type.base_name)
            if hit is not None and _decl_is_system(hit[1]):
                self.res.instantiations.append(
                    Instantiation(
                        callee=hit[0],
                        template_args=[str(a) for a in v.type.template_args],
                        arg_types=[],
                        site_file=v.span.file if v.span else "?",
                        site_line=v.span.line_start if v.span else 0,
                    )
                )

    # -- expressions -----------------------------------------------------------
    def visit_expr(self, e: Optional[Expr], scope: _Scope, caller: str) -> None:
        if e is None:
            return
        if isinstance(e, (BinaryExpr, AssignExpr)):
            self.visit_expr(e.lhs, scope, caller)
            self.visit_expr(e.rhs, scope, caller)
        elif isinstance(e, UnaryExpr):
            self.visit_expr(e.operand, scope, caller)
        elif isinstance(e, CondExpr):
            self.visit_expr(e.cond, scope, caller)
            self.visit_expr(e.then, scope, caller)
            self.visit_expr(e.other, scope, caller)
        elif isinstance(e, CallExpr):
            self.visit_call(e, scope, caller)
        elif isinstance(e, KernelLaunchExpr):
            for c in e.config:
                self.visit_expr(c, scope, caller)
            for a in e.args:
                self.visit_expr(a, scope, caller)
            if isinstance(e.callee, IdentExpr):
                hit = self.find_function(e.callee.name)
                if hit is not None:
                    self.res.resolved[id(e)] = (hit[0], hit[1], _decl_is_system(hit[1]))
                    self.res.calls.append((caller, hit[0]))
        elif isinstance(e, MemberExpr):
            self.visit_expr(e.base, scope, caller)
        elif isinstance(e, SubscriptExpr):
            self.visit_expr(e.base, scope, caller)
            self.visit_expr(e.index, scope, caller)
        elif isinstance(e, LambdaExpr):
            inner = _Scope(scope)
            for p in e.params:
                inner.define(p.name, p.type)
            self.visit_stmt(e.body, inner, caller)
        elif isinstance(e, CastExpr):
            self.visit_expr(e.operand, scope, caller)
        elif isinstance(e, (NewExpr,)):
            self.visit_expr(e.array_size, scope, caller)
            for a in e.ctor_args:
                self.visit_expr(a, scope, caller)
        elif isinstance(e, DeleteExpr):
            self.visit_expr(e.operand, scope, caller)
        elif isinstance(e, SizeofExpr):
            self.visit_expr(e.operand, scope, caller)
        elif isinstance(e, InitListExpr):
            for item in e.items:
                self.visit_expr(item, scope, caller)
        # Ident/Literal/This: leaves

    def visit_call(self, e: CallExpr, scope: _Scope, caller: str) -> None:
        for a in e.args:
            self.visit_expr(a, scope, caller)
        qname: Optional[str] = None
        decl: Optional[FunctionDecl] = None

        callee = e.callee
        if isinstance(callee, IdentExpr):
            hit = self.find_function(callee.name)
            if hit is not None:
                qname, decl = hit
            else:
                # constructor expression: range<1>(n), dim3(64), plus<T>()
                chit = self.find_class(callee.name)
                if chit is not None:
                    cq, cls = chit
                    self.res.ctor_resolved[id(e)] = (cq, cls)
                    if cls.template_params and _decl_is_system(cls):
                        self.res.instantiations.append(
                            Instantiation(
                                callee=cq,
                                template_args=[str(a) for a in e.template_args],
                                arg_types=[],
                                site_file=e.span.file if e.span else "?",
                                site_line=e.span.line_start if e.span else 0,
                            )
                        )
        elif isinstance(callee, MemberExpr):
            self.visit_expr(callee.base, scope, caller)
            base_ty = self.infer_type(callee.base, scope)
            if base_ty is not None:
                mhit = self.find_method(base_ty.base_name, callee.member)
                if mhit is not None:
                    qname, decl = mhit
        if qname is not None:
            is_sys = _decl_is_system(decl)
            self.res.resolved[id(e)] = (qname, decl, is_sys)
            self.res.calls.append((caller, qname))
            if decl is not None and decl.template_params:
                self.res.instantiations.append(
                    Instantiation(
                        callee=qname,
                        template_args=[str(a) for a in e.template_args],
                        arg_types=[str(self.infer_type(a, scope) or "?") for a in e.args],
                        site_file=e.span.file if e.span else "?",
                        site_line=e.span.line_start if e.span else 0,
                        decl=decl,
                    )
                )

    # -- light type inference ---------------------------------------------------
    def infer_type(self, e: Optional[Expr], scope: _Scope) -> Optional[TypeRef]:
        if e is None:
            return None
        if isinstance(e, IdentExpr):
            t = scope.lookup(e.parts[-1]) or scope.lookup(e.name)
            return t
        if isinstance(e, MemberExpr):
            base = self.infer_type(e.base, scope)
            if base is not None:
                # method call results / field types: one-level field lookup
                hit = self.find_class(base.base_name)
                if hit is not None:
                    for f in hit[1].fields:
                        if f.name == e.member:
                            return f.type
            return None
        if isinstance(e, CallExpr):
            # return type of resolved callee when known
            r = self.res.resolved.get(id(e))
            if r is not None and r[1] is not None:
                return r[1].ret
            return None
        if isinstance(e, SubscriptExpr):
            base = self.infer_type(e.base, scope)
            if base is not None and base.pointer > 0:
                return TypeRef(
                    name=base.name, template_args=base.template_args, pointer=base.pointer - 1
                )
            return None
        if isinstance(e, UnaryExpr) and e.op == "*":
            base = self.infer_type(e.operand, scope)
            if base is not None and base.pointer > 0:
                return TypeRef(name=base.name, pointer=base.pointer - 1)
            return None
        if isinstance(e, CastExpr):
            return e.type
        if isinstance(e, NewExpr):
            if e.type is None:
                return None
            return TypeRef(name=e.type.name, pointer=e.type.pointer + 1)
        return None
