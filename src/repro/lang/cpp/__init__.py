"""MiniC++ — a from-scratch C++-subset frontend.

Pipeline (mirrors Fig. 3 of the paper):

``lexer`` → raw token stream (trivia preserved, for the pre-preprocessor
CST and SLOC) → ``preprocessor`` (includes, macros, conditionals; OpenMP
pragmas survive) → ``parser`` → AST → ``sema`` (symbol resolution, template
instantiation, implicit nodes) → ``T_sem`` via :func:`ast_to_tree`.

The supported subset covers everything the mini-app corpus uses: functions,
classes/structs with methods, namespaces, templates (declarations plus
call-site instantiation), lambdas, pointers/references, control flow,
OpenMP/OpenACC pragmas as first-class statements, and the CUDA/HIP dialect
(``__global__``, ``<<<...>>>`` launches).
"""

from repro.lang.cpp.lexer import lex, Token, TokenType
from repro.lang.cpp.preprocessor import preprocess, PreprocessResult
from repro.lang.cpp.parser import parse_tokens, parse_unit
from repro.lang.cpp.cst import build_cst, normalized_src_tree
from repro.lang.cpp.sema import analyze, SemaResult
from repro.lang.cpp.asttree import ast_to_tree

__all__ = [
    "lex",
    "Token",
    "TokenType",
    "preprocess",
    "PreprocessResult",
    "parse_tokens",
    "parse_unit",
    "build_cst",
    "normalized_src_tree",
    "analyze",
    "SemaResult",
    "ast_to_tree",
]
