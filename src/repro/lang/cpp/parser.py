"""MiniC++ recursive-descent parser.

Consumes the significant token stream (post-preprocessor, with retained
pragma directives interleaved) and produces a :class:`TranslationUnit`.

Ambiguity handling follows the pragmatic conventions real frontends use,
scaled to the MiniC++ subset:

* *declaration vs expression statements* — tentative parse with
  backtracking: a statement parses as a declaration only if a type parses
  cleanly and is followed by a plain identifier and one of ``= ( ; , [``.
* *template argument lists vs less-than* — tentative parse of the argument
  list; on failure the ``<`` is an operator. Nested ``>>`` closers are
  split into two ``>`` tokens on demand.
* *CUDA launches* — ``<<<`` is unambiguous and parsed eagerly.

With ``recover=True`` the parser runs in panic-mode error-recovery:
a :class:`ParseError` inside a declaration or statement is recorded as a
diagnostic, an :class:`ErrorDecl`/:class:`ErrorStmt` placeholder is
appended, and parsing resynchronises on ``;`` / ``}`` / statement
keywords (tracking bracket depth, always making forward progress), so a
partial tree is produced for any input. The default remains fail-fast.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.lang.cpp.astnodes import (
    AssignExpr,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    ClassDecl,
    CompoundStmt,
    CondExpr,
    ContinueStmt,
    Decl,
    DeclStmt,
    DeleteExpr,
    DoStmt,
    ErrorDecl,
    ErrorStmt,
    Expr,
    ExprStmt,
    FieldDecl,
    ForStmt,
    FunctionDecl,
    IdentExpr,
    IfStmt,
    InitListExpr,
    KernelLaunchExpr,
    LambdaExpr,
    LiteralExpr,
    MemberExpr,
    NamespaceDecl,
    NewExpr,
    ParamDecl,
    PragmaClause,
    PragmaDecl,
    PragmaStmt,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    SubscriptExpr,
    TemplateParam,
    ThisExpr,
    TranslationUnit,
    TypedefDecl,
    TypeRef,
    UnaryExpr,
    UsingDecl,
    VarDecl,
    WhileStmt,
)
from repro import diag
from repro.lang.cpp.lexer import Token, TokenType, lex
from repro.lang.source import VirtualFS
from repro.lang.cpp.preprocessor import preprocess
from repro.trees.node import SourceSpan
from repro.util.errors import ParseError

_TYPE_KEYWORDS = frozenset(
    "void bool char short int long float double auto unsigned signed".split()
)
_FN_ATTRS = frozenset(
    "__global__ __device__ __host__ inline static constexpr extern".split()
)

#: OpenMP/OpenACC directive words (vs clause words) for pragma parsing.
_DIRECTIVE_WORDS = frozenset(
    """
    parallel for simd target teams distribute task taskloop taskwait barrier
    sections section single master critical atomic flush declare end data
    enter exit update kernels loop routine serial wait
    """.split()
)

#: Directives that never take an attached structured block.
_STANDALONE = frozenset(
    "barrier taskwait flush declare routine update enter exit wait".split()
)


#: Keywords a statement-level resync can safely stop in front of.
_STMT_SYNC = frozenset("if for while do return break continue switch".split())

#: Keywords a declaration-level resync can safely stop in front of. At
#: bracket depth 0 a type keyword / linkage attribute / class head almost
#: always opens a fresh declaration, so stopping there keeps one bad decl
#: from swallowing the well-formed ones after it (found by fuzz_frontends).
_DECL_SYNC = (
    frozenset("namespace template using typedef class struct enum".split())
    | _TYPE_KEYWORDS
    | _FN_ATTRS
)


class Parser:
    def __init__(self, tokens: list[Token], path: str = "<memory>", recover: bool = False):
        # Copy: '>>' splitting mutates the list.
        self.toks = list(tokens)
        self.i = 0
        self.path = path
        self.recover = recover
        #: Number of errors recovered from (0 on a clean parse).
        self.error_count = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self, off: int = 0) -> Optional[Token]:
        k = self.i + off
        return self.toks[k] if k < len(self.toks) else None

    def _at(self, text: str, off: int = 0) -> bool:
        t = self._peek(off)
        return t is not None and t.text == text

    def _at_type(self, tt: TokenType, off: int = 0) -> bool:
        t = self._peek(off)
        return t is not None and t.type is tt

    def _advance(self) -> Token:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of input", self.path, 0, 0)
        self.i += 1
        return t

    def _expect(self, text: str) -> Token:
        t = self._peek()
        if t is None or t.text != text:
            got = t.text if t else "<eof>"
            f, ln, c = (t.file, t.line, t.col) if t else (self.path, 0, 0)
            raise ParseError(f"expected {text!r}, got {got!r}", f, ln, c)
        self.i += 1
        return t

    def _accept(self, text: str) -> bool:
        if self._at(text):
            self.i += 1
            return True
        return False

    def _expect_gt(self) -> None:
        """Consume a '>' closer, splitting '>>'/'>>>' when necessary."""
        t = self._peek()
        if t is None:
            raise ParseError("expected '>'", self.path, 0, 0)
        if t.text == ">":
            self.i += 1
            return
        if t.text in (">>", ">>>"):
            rest = t.text[1:]
            self.toks[self.i] = Token(TokenType.PUNCT, rest, t.file, t.line, t.col + 1)
            return
        raise ParseError(f"expected '>', got {t.text!r}", t.file, t.line, t.col)

    def _span_from(self, start: Token, end_off: int = -1) -> SourceSpan:
        endt = self._peek(end_off) or start
        lo = min(start.line, endt.line)
        hi = max(start.line, endt.line)
        if endt.file != start.file:
            hi = start.line
        return SourceSpan(start.file, lo, hi)

    # ------------------------------------------------------------------
    # panic-mode error recovery
    # ------------------------------------------------------------------
    def _error_span(self, at_i: int) -> SourceSpan:
        t = self.toks[at_i] if at_i < len(self.toks) else None
        if t is None:
            return SourceSpan(self.path, 0)
        return SourceSpan(t.file, t.line)

    def _report(self, code: str, e: ParseError) -> None:
        self.error_count += 1
        diag.emit_exception(code, e)

    def _sync_decl(self, start_i: int, stop_before_brace: bool = False) -> None:
        """Resync after a failed declaration: skip to just past the next
        ``;`` or ``}`` at bracket depth 0, or stop before a token that can
        start a fresh declaration. Always advances past ``start_i``.

        ``stop_before_brace`` leaves a depth-0 ``}`` unconsumed — used
        inside namespaces, where that brace closes the enclosing scope."""
        if self.i <= start_i:
            self.i = start_i + 1
        depth = 0
        while (t := self._peek()) is not None:
            if depth == 0:
                if t.text == "}":
                    if stop_before_brace:
                        return
                    self.i += 1
                    return
                if t.text == ";":
                    self.i += 1
                    return
                if t.text in _DECL_SYNC or t.type is TokenType.DIRECTIVE:
                    return
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth = max(depth - 1, 0)
            self.i += 1

    def _sync_stmt(self, start_i: int) -> None:
        """Resync after a failed statement: skip to just past the next
        ``;`` at bracket depth 0, or stop before a ``}`` closing the
        enclosing block / a statement keyword. Always advances past
        ``start_i``."""
        if self.i <= start_i:
            self.i = start_i + 1
        depth = 0
        while (t := self._peek()) is not None:
            if depth == 0:
                if t.text == ";":
                    self.i += 1
                    return
                if t.text == "}":
                    return
                if t.text in _STMT_SYNC or t.type is TokenType.DIRECTIVE:
                    return
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth = max(depth - 1, 0)
            self.i += 1

    def _parse_decls_into(self, decls: list[Decl], stop: Optional[str]) -> None:
        """Parse declarations until ``stop`` (EOF when None), recovering
        per-declaration when ``self.recover`` is set."""
        while True:
            t = self._peek()
            if t is None:
                if stop is None:
                    return
                if self.recover:
                    diag.error(
                        "parse/unclosed-brace",
                        f"unexpected end of input: missing {stop!r}",
                        self.path,
                    )
                    return
                raise ParseError(
                    f"unexpected end of input: missing {stop!r}", self.path, 0, 0
                )
            if stop is not None and t.text == stop:
                return
            start_i = self.i
            try:
                d = self.parse_decl()
            except ParseError as e:
                if not self.recover:
                    raise
                self._report("parse/bad-decl", e)
                decls.append(ErrorDecl(message=str(e), span=self._error_span(start_i)))
                self._sync_decl(start_i, stop_before_brace=stop is not None)
                continue
            if d is not None:
                decls.append(d)

    def _expect_close(self, text: str) -> Optional[Token]:
        """Like :meth:`_expect`, but in recover mode a missing closer at
        EOF is tolerated (the diagnostic was already emitted)."""
        if self.recover and self._peek() is None:
            return None
        return self._expect(text)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def parse_translation_unit(self) -> TranslationUnit:
        tu = TranslationUnit(path=self.path)
        self._parse_decls_into(tu.decls, None)
        return tu

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def parse_decl(self) -> Optional[Decl]:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of input in declaration", self.path, 0, 0)
        if t.type is TokenType.DIRECTIVE:
            return self._parse_pragma_decl()
        if self._accept(";"):
            return None
        if t.text == "namespace":
            return self._parse_namespace()
        if t.text == "using":
            return self._parse_using()
        if t.text == "typedef":
            return self._parse_typedef()
        if t.text == "template":
            return self._parse_template()
        if t.text in ("class", "struct") and self._looks_like_class_def():
            return self._parse_class([])
        return self._parse_function_or_var([])

    def _looks_like_class_def(self) -> bool:
        # 'class X {' or 'class X : ... {' or 'class X;' — vs elaborated
        # type in a declaration like 'struct foo x;'
        t2 = self._peek(1)
        t3 = self._peek(2)
        if t2 is None or t2.type not in (TokenType.IDENT, TokenType.KEYWORD):
            return False
        return t3 is not None and t3.text in ("{", ":", ";", "<")

    def _parse_namespace(self) -> NamespaceDecl:
        start = self._expect("namespace")
        name = self._advance().text if not self._at("{") else ""
        ns = NamespaceDecl(name=name)
        self._expect("{")
        self._parse_decls_into(ns.decls, "}")
        self._expect_close("}")
        ns.span = SourceSpan(start.file, start.line, (self._peek(-1) or start).line)
        return ns

    def _parse_using(self) -> UsingDecl:
        start = self._expect("using")
        if self._at("namespace"):
            self._advance()
            parts = self._qualified_name()
            self._expect(";")
            return UsingDecl(
                text="namespace " + "::".join(parts),
                span=SourceSpan(start.file, start.line),
            )
        # using alias = type;
        alias = self._advance().text
        if self._accept("="):
            ty = self._parse_type()
            self._expect(";")
            return UsingDecl(
                text=f"{alias} = {ty}",
                alias=alias,
                target=ty,
                span=SourceSpan(start.file, start.line),
            )
        # using a::b::c;
        parts = [alias]
        while self._accept("::"):
            parts.append(self._advance().text)
        self._expect(";")
        return UsingDecl(text="::".join(parts), span=SourceSpan(start.file, start.line))

    def _parse_typedef(self) -> TypedefDecl:
        start = self._expect("typedef")
        ty = self._parse_type()
        if ty is None:
            raise ParseError("bad typedef", start.file, start.line, start.col)
        name = self._advance().text
        self._expect(";")
        return TypedefDecl(name=name, type=ty, span=SourceSpan(start.file, start.line))

    def _parse_template(self) -> Decl:
        start = self._expect("template")
        self._expect("<")
        tparams: list[TemplateParam] = []
        if not self._at(">"):
            while True:
                tparams.append(self._parse_template_param())
                if not self._accept(","):
                    break
        self._expect_gt()
        t = self._peek()
        if t is not None and t.text in ("class", "struct") and self._looks_like_class_def():
            cls = self._parse_class(tparams)
            cls.span = SourceSpan(start.file, start.line, cls.span.line_end if cls.span else start.line)
            return cls
        fn = self._parse_function_or_var([], tparams)
        return fn

    def _parse_template_param(self) -> TemplateParam:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of input in template parameters", self.path, 0, 0)
        if t.text in ("typename", "class"):
            self._advance()
            name = self._advance().text if self._at_type(TokenType.IDENT) else ""
            # default argument: typename T = foo
            if self._accept("="):
                self._parse_type()
            return TemplateParam(kind="type", name=name, span=SourceSpan(t.file, t.line))
        # non-type: e.g. int D
        ty = self._parse_type()
        name = self._advance().text if self._at_type(TokenType.IDENT) else ""
        if self._accept("="):
            self.parse_expr(no_comma=True, no_gt=True)
        return TemplateParam(kind="nontype", name=name, value_type=ty, span=SourceSpan(t.file, t.line))

    def _parse_class(self, tparams: list[TemplateParam]) -> ClassDecl:
        kw = self._advance()  # class | struct
        name = self._advance().text
        cls = ClassDecl(name=name, kind=kw.text, template_params=tparams)
        # template specialisation headers like 'class View<double*>' are
        # parsed and the args discarded (declaration identity is the name).
        if self._at("<"):
            saved = self.i
            args = self._try_template_args()
            if args is None:
                self.i = saved
        if self._accept(":"):
            while True:
                self._accept("public") or self._accept("private") or self._accept("protected")
                base = self._parse_type()
                if base is not None:
                    cls.bases.append(base)
                if not self._accept(","):
                    break
        if self._accept(";"):
            cls.span = SourceSpan(kw.file, kw.line)
            return cls
        self._expect("{")
        while not self._at("}"):
            if self._peek() is None:
                if self.recover:
                    diag.error(
                        "parse/unclosed-brace",
                        f"unexpected end of input in class {name!r}",
                        kw.file, kw.line, kw.col,
                    )
                    break
                raise ParseError(f"unclosed class {name!r}", kw.file, kw.line, kw.col)
            if self._accept("public") or self._accept("private") or self._accept("protected"):
                self._expect(":")
                continue
            start_i = self.i
            try:
                if self._at("template"):
                    d = self._parse_template()
                    if isinstance(d, FunctionDecl):
                        d.is_method = True
                        cls.methods.append(d)
                    continue
                self._parse_member(cls)
            except ParseError as e:
                if not self.recover:
                    raise
                self._report("parse/bad-member", e)
                cls.fields.append(
                    FieldDecl(name="<error>", span=self._error_span(start_i))
                )
                self._sync_stmt(start_i)
        self._expect_close("}")
        self._accept(";")
        cls.span = SourceSpan(kw.file, kw.line, (self._peek(-1) or kw).line)
        return cls

    def _parse_member(self, cls: ClassDecl) -> None:
        start = self._peek()
        if start is None:
            raise ParseError(f"unexpected end of input in class {cls.name!r}", self.path, 0, 0)
        attrs: list[str] = []
        while (t := self._peek()) is not None and t.text in _FN_ATTRS:
            attrs.append(t.text)
            self._advance()
        # destructor
        if self._at("~"):
            self._advance()
            self._advance()  # name
            self._expect("(")
            self._expect(")")
            body = self._parse_compound() if self._at("{") else None
            if body is None:
                self._expect(";")
            cls.methods.append(
                FunctionDecl(
                    name="~" + cls.name,
                    ret=None,
                    body=body,
                    is_method=True,
                    attrs=attrs,
                    span=SourceSpan(start.file, start.line),
                )
            )
            return
        # constructor: Name '('
        if self._at(cls.name) and self._at("(", 1):
            self._advance()
            fn = self._finish_function(cls.name, None, attrs, [], is_method=True, is_ctor=True)
            cls.methods.append(fn)
            return
        ty = self._parse_type()
        if ty is None:
            t = self._peek()
            raise ParseError(
                f"bad member in {cls.name}: {t.text if t else '<eof>'}",
                start.file,
                start.line,
                start.col,
            )
        # operator()
        if self._at("operator"):
            self._advance()
            op = ""
            while not self._at("("):
                op += self._advance().text
            if op == "":  # operator()
                self._expect("(")
                self._expect(")")
                op = "()"
            fn = self._finish_function("operator" + op, ty, attrs, [], is_method=True, is_operator=True)
            cls.methods.append(fn)
            return
        name = self._advance().text
        if self._at("("):
            fn = self._finish_function(name, ty, attrs, [], is_method=True)
            cls.methods.append(fn)
            return
        # field
        init = None
        if self._accept("="):
            init = self.parse_expr(no_comma=True)
        self._expect(";")
        cls.fields.append(
            FieldDecl(name=name, type=ty, init=init, span=SourceSpan(start.file, start.line))
        )

    def _parse_function_or_var(
        self, attrs: list[str], tparams: Optional[list[TemplateParam]] = None
    ) -> Decl:
        start = self._peek()
        if start is None:
            raise ParseError("unexpected end of input in declaration", self.path, 0, 0)
        attrs = list(attrs)
        while (t := self._peek()) is not None and t.text in _FN_ATTRS:
            attrs.append(t.text)
            self._advance()
        ty = self._parse_type()
        if ty is None:
            t = self._peek()
            raise ParseError(
                f"expected declaration, got {t.text if t else '<eof>'}",
                start.file,
                start.line,
                start.col,
            )
        name_tok = self._peek()
        if name_tok is None or name_tok.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise ParseError("expected declarator name", start.file, start.line, start.col)
        name = self._advance().text
        # qualified definition: Class::method — keep the last part as name.
        while self._accept("::"):
            name = self._advance().text
        if self._at("("):
            fn = self._finish_function(name, ty, attrs, tparams or [])
            fn.span = SourceSpan(start.file, start.line, fn.span.line_end if fn.span else start.line)
            return fn
        # global variable
        var = self._finish_var(name, ty, start)
        self._expect(";")
        return var

    def _finish_function(
        self,
        name: str,
        ret: Optional[TypeRef],
        attrs: list[str],
        tparams: list[TemplateParam],
        is_method: bool = False,
        is_ctor: bool = False,
        is_operator: bool = False,
    ) -> FunctionDecl:
        open_tok = self._expect("(")
        params: list[ParamDecl] = []
        if not self._at(")"):
            while True:
                pstart = self._peek()
                pty = self._parse_type()
                if pty is None:
                    raise ParseError(
                        "bad parameter",
                        pstart.file if pstart else "?",
                        pstart.line if pstart else 0,
                        0,
                    )
                pname = ""
                t = self._peek()
                if t is not None and t.type is TokenType.IDENT:
                    pname = self._advance().text
                default = None
                if self._accept("="):
                    default = self.parse_expr(no_comma=True)
                params.append(
                    ParamDecl(
                        name=pname,
                        type=pty,
                        default=default,
                        span=SourceSpan(pstart.file, pstart.line),
                    )
                )
                if not self._accept(","):
                    break
        self._expect(")")
        quals: list[str] = []
        while (t := self._peek()) is not None and t.text in ("const", "noexcept", "override"):
            quals.append(t.text)
            self._advance()
        inits: list[Stmt] = []
        if is_ctor and self._accept(":"):
            while True:
                fname = self._advance().text
                self._expect("(")
                args: list[Expr] = []
                if not self._at(")"):
                    while True:
                        args.append(self.parse_expr(no_comma=True))
                        if not self._accept(","):
                            break
                close = self._expect(")")
                span = SourceSpan(close.file, close.line)
                if len(args) == 1:
                    # member initialiser: semantically an assignment
                    init_expr: Expr = AssignExpr(
                        op="=", lhs=IdentExpr(parts=[fname], span=span), rhs=args[0], span=span
                    )
                else:
                    init_expr = CallExpr(
                        callee=IdentExpr(parts=[fname], span=span), args=args, span=span
                    )
                inits.append(ExprStmt(expr=init_expr, span=span))
                if not self._accept(","):
                    break
        body: Optional[CompoundStmt] = None
        if self._at("{"):
            body = self._parse_compound()
            if inits:
                body.stmts = inits + body.stmts
        else:
            self._expect(";")
        return FunctionDecl(
            name=name,
            ret=ret,
            params=params,
            body=body,
            attrs=attrs,
            template_params=tparams,
            is_method=is_method,
            is_ctor=is_ctor,
            is_operator=is_operator,
            qualifiers=quals,
            span=SourceSpan(open_tok.file, open_tok.line, (self._peek(-1) or open_tok).line),
        )

    def _finish_var(self, name: str, ty: TypeRef, start: Token) -> VarDecl:
        init: Optional[Expr] = None
        ctor_args: Optional[list[Expr]] = None
        if self._accept("="):
            init = self.parse_expr(no_comma=True)
        elif self._at("("):
            self._advance()
            ctor_args = []
            if not self._at(")"):
                while True:
                    ctor_args.append(self.parse_expr(no_comma=True))
                    if not self._accept(","):
                        break
            self._expect(")")
        elif self._at("{"):
            self._advance()
            items: list[Expr] = []
            if not self._at("}"):
                while True:
                    items.append(self.parse_expr(no_comma=True))
                    if not self._accept(","):
                        break
            self._expect("}")
            init = InitListExpr(items=items, span=SourceSpan(start.file, start.line))
        elif self._at("["):
            # C array declarator: T name[expr]
            self._advance()
            size = self.parse_expr()
            self._expect("]")
            ty = TypeRef(
                name=ty.name,
                template_args=ty.template_args + [size],
                pointer=ty.pointer + 1,
                is_const=ty.is_const,
                span=ty.span,
            )
        end = self._peek(-1) or start
        return VarDecl(
            name=name,
            type=ty,
            init=init,
            ctor_args=ctor_args,
            span=SourceSpan(start.file, start.line, end.line if end.file == start.file else start.line),
        )

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------
    def _parse_type(self) -> Optional[TypeRef]:
        """Tentatively parse a type; returns None (position restored) on failure."""
        saved = self.i
        start = self._peek()
        if start is None:
            return None
        is_const = False
        while self._at("const") or self._at("volatile") or self._at("typename"):
            if self._at("const"):
                is_const = True
            self._advance()
        t = self._peek()
        if t is None:
            self.i = saved
            return None
        name_parts: list[str] = []
        if t.text in ("struct", "class", "enum", "union") and self._at_type(TokenType.IDENT, 1):
            self._advance()
            t = self._peek()
        if t.text in _TYPE_KEYWORDS:
            # multi-word builtins: unsigned long long, long double, ...
            while (tt := self._peek()) is not None and tt.text in _TYPE_KEYWORDS:
                name_parts.append(tt.text)
                self._advance()
            base = TypeRef(name=[" ".join(name_parts)], span=SourceSpan(t.file, t.line))
        elif t.type is TokenType.IDENT:
            name_parts = self._qualified_name()
            base = TypeRef(name=name_parts, span=SourceSpan(t.file, t.line))
            if self._at("<"):
                args = self._try_template_args()
                if args is None:
                    self.i = saved
                    return None
                base.template_args = args
        else:
            self.i = saved
            return None
        while True:
            if self._accept("*"):
                base.pointer += 1
                self._accept("const")
                self._accept("__restrict__")
            elif self._accept("&"):
                base.is_ref = True
            elif self._accept("const"):
                is_const = True
            else:
                break
        base.is_const = is_const
        return base

    def _qualified_name(self) -> list[str]:
        parts = [self._advance().text]
        while self._at("::") and (
            self._at_type(TokenType.IDENT, 1) or self._at_type(TokenType.KEYWORD, 1)
        ):
            self._advance()
            parts.append(self._advance().text)
        return parts

    def _try_template_args(self) -> Optional[list[Union[TypeRef, Expr]]]:
        """Tentative template-argument-list parse starting at '<'."""
        saved = self.i
        if not self._accept("<"):
            return None
        args: list[Union[TypeRef, Expr]] = []
        if self._at(">") or self._at(">>") or self._at(">>>"):
            self._expect_gt()
            return args
        while True:
            t = self._peek()
            if t is None:
                self.i = saved
                return None
            # 'class foo' — SYCL kernel-name idiom
            if t.text in ("class", "typename") and self._at_type(TokenType.IDENT, 1):
                self._advance()
                kn = self._advance().text
                args.append(TypeRef(name=[kn], span=SourceSpan(t.file, t.line)))
            else:
                arg = self._parse_type()
                if arg is not None and (
                    self._at(",") or self._at(">") or self._at(">>") or self._at(">>>")
                ):
                    args.append(arg)
                else:
                    if arg is not None:
                        # parsed as type but not followed by , or > — rewind
                        # and try expression instead
                        pass
                    try:
                        expr = self.parse_expr(no_comma=True, no_gt=True)
                    except ParseError:
                        self.i = saved
                        return None
                    args.append(expr)
            if self._accept(","):
                continue
            if self._at(">") or self._at(">>") or self._at(">>>"):
                self._expect_gt()
                return args
            self.i = saved
            return None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _parse_compound(self) -> CompoundStmt:
        open_tok = self._expect("{")
        node = CompoundStmt()
        while not self._at("}"):
            if self.recover and self._peek() is None:
                diag.error(
                    "parse/unclosed-brace",
                    "unexpected end of input: unclosed '{'",
                    open_tok.file, open_tok.line, open_tok.col,
                )
                node.span = SourceSpan(open_tok.file, open_tok.line)
                return node
            start_i = self.i
            try:
                node.stmts.append(self.parse_stmt())
            except ParseError as e:
                if not self.recover:
                    raise
                self._report("parse/bad-stmt", e)
                node.stmts.append(ErrorStmt(message=str(e), span=self._error_span(start_i)))
                self._sync_stmt(start_i)
        close = self._expect("}")
        node.span = SourceSpan(
            open_tok.file,
            open_tok.line,
            close.line if close.file == open_tok.file else open_tok.line,
        )
        return node

    def parse_stmt(self) -> Stmt:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of input in statement", self.path, 0, 0)
        if t.type is TokenType.DIRECTIVE:
            return self._parse_pragma_stmt()
        if t.text == "{":
            return self._parse_compound()
        if t.text == ";":
            self._advance()
            return ExprStmt(expr=None, span=SourceSpan(t.file, t.line))
        if t.text == "if":
            return self._parse_if()
        if t.text == "for":
            return self._parse_for()
        if t.text == "while":
            return self._parse_while()
        if t.text == "do":
            return self._parse_do()
        if t.text == "return":
            self._advance()
            value = None if self._at(";") else self.parse_expr()
            self._expect(";")
            return ReturnStmt(value=value, span=SourceSpan(t.file, t.line))
        if t.text == "break":
            self._advance()
            self._expect(";")
            return BreakStmt(span=SourceSpan(t.file, t.line))
        if t.text == "continue":
            self._advance()
            self._expect(";")
            return ContinueStmt(span=SourceSpan(t.file, t.line))
        # declaration?
        decl = self._try_decl_stmt()
        if decl is not None:
            return decl
        expr = self.parse_expr()
        self._expect(";")
        return ExprStmt(expr=expr, span=SourceSpan(t.file, t.line))

    def _try_decl_stmt(self) -> Optional[DeclStmt]:
        saved = self.i
        start = self._peek()
        if start is None:
            return None
        is_static = self._accept("static")
        ty = self._parse_type()
        if ty is None:
            self.i = saved
            return None
        t = self._peek()
        if t is None or t.type is not TokenType.IDENT:
            self.i = saved
            return None
        nxt = self._peek(1)
        if nxt is None or nxt.text not in ("=", ";", "(", ",", "[", "{"):
            self.i = saved
            return None
        decls: list[VarDecl] = []
        while True:
            name = self._advance().text
            var = self._finish_var(name, ty, start)
            var.is_static = is_static
            decls.append(var)
            if not self._accept(","):
                break
            # subsequent declarators share the base type
        try:
            self._expect(";")
        except ParseError:
            self.i = saved
            return None
        return DeclStmt(decls=decls, span=SourceSpan(start.file, start.line))

    def _parse_if(self) -> IfStmt:
        t = self._expect("if")
        self._expect("(")
        cond = self.parse_expr()
        self._expect(")")
        then = self.parse_stmt()
        other = None
        if self._accept("else"):
            other = self.parse_stmt()
        return IfStmt(cond=cond, then=then, other=other, span=SourceSpan(t.file, t.line))

    def _parse_for(self) -> ForStmt:
        t = self._expect("for")
        self._expect("(")
        init: Optional[Stmt] = None
        if not self._accept(";"):
            init = self._try_decl_stmt()
            if init is None:
                e = self.parse_expr()
                self._expect(";")
                init = ExprStmt(expr=e, span=SourceSpan(t.file, t.line))
        cond = None if self._at(";") else self.parse_expr()
        self._expect(";")
        inc = None if self._at(")") else self.parse_expr()
        self._expect(")")
        body = self.parse_stmt()
        end_line = body.span.line_end if body.span and body.span.file == t.file else t.line
        return ForStmt(init=init, cond=cond, inc=inc, body=body, span=SourceSpan(t.file, t.line, end_line))

    def _parse_while(self) -> WhileStmt:
        t = self._expect("while")
        self._expect("(")
        cond = self.parse_expr()
        self._expect(")")
        body = self.parse_stmt()
        return WhileStmt(cond=cond, body=body, span=SourceSpan(t.file, t.line))

    def _parse_do(self) -> DoStmt:
        t = self._expect("do")
        body = self.parse_stmt()
        self._expect("while")
        self._expect("(")
        cond = self.parse_expr()
        self._expect(")")
        self._expect(";")
        return DoStmt(body=body, cond=cond, span=SourceSpan(t.file, t.line))

    # ------------------------------------------------------------------
    # pragmas
    # ------------------------------------------------------------------
    def _parse_pragma_tokens(self, tok: Token) -> tuple[str, list[str], list[PragmaClause]]:
        text = tok.text.lstrip()[1:].replace("\\\n", " ").strip()
        # text = 'pragma omp parallel for ...'
        toks = [
            t
            for t in lex(text, tok.file, tolerant=self.recover)
            if not t.is_trivia and t.type is not TokenType.EOF
        ]
        # toks[0] = 'pragma', toks[1] = family
        family = toks[1].text if len(toks) > 1 else ""
        i = 2
        directives: list[str] = []
        clauses: list[PragmaClause] = []
        while i < len(toks):
            w = toks[i]
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            if nxt is not None and nxt.text == "(":
                # clause with arguments
                j = i + 2
                depth = 1
                args: list[str] = []
                cur = ""
                while j < len(toks) and depth:
                    tt = toks[j]
                    if tt.text == "(":
                        depth += 1
                        cur += tt.text
                    elif tt.text == ")":
                        depth -= 1
                        if depth:
                            cur += tt.text
                    elif tt.text == "," and depth == 1:
                        args.append(cur)
                        cur = ""
                    else:
                        cur += (" " if cur and tt.text not in ":.[]" and cur[-1] not in ":.[]" else "") + tt.text
                    j += 1
                if cur:
                    args.append(cur)
                clauses.append(
                    PragmaClause(name=w.text, arguments=args, span=SourceSpan(tok.file, tok.line))
                )
                i = j
            elif w.text in _DIRECTIVE_WORDS and not clauses:
                directives.append(w.text)
                i += 1
            else:
                clauses.append(PragmaClause(name=w.text, span=SourceSpan(tok.file, tok.line)))
                i += 1
        return family, directives, clauses

    def _parse_pragma_stmt(self) -> PragmaStmt:
        tok = self._advance()
        family, directives, clauses = self._parse_pragma_tokens(tok)
        node = PragmaStmt(
            family=family,
            directives=directives,
            clauses=clauses,
            span=SourceSpan(tok.file, tok.line),
        )
        if directives and not (set(directives) & _STANDALONE):
            nxt = self._peek()
            if nxt is not None and nxt.text != "}":
                node.body = self.parse_stmt()
        return node

    def _parse_pragma_decl(self) -> PragmaDecl:
        tok = self._advance()
        family, directives, clauses = self._parse_pragma_tokens(tok)
        return PragmaDecl(
            family=family,
            directives=directives,
            clauses=clauses,
            span=SourceSpan(tok.file, tok.line),
        )

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    _BIN_LEVELS = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]
    _ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")

    def parse_expr(self, no_comma: bool = False, no_gt: bool = False) -> Expr:
        e = self._parse_assign(no_gt)
        if not no_comma:
            while self._at(","):
                # comma operator: rare; keep left-to-right sequencing node
                self._advance()
                rhs = self._parse_assign(no_gt)
                e = BinaryExpr(op=",", lhs=e, rhs=rhs, span=e.span)
        return e

    def _parse_assign(self, no_gt: bool) -> Expr:
        lhs = self._parse_cond(no_gt)
        t = self._peek()
        if t is not None and t.text in self._ASSIGN_OPS:
            self._advance()
            rhs = self._parse_assign(no_gt)
            return AssignExpr(op=t.text, lhs=lhs, rhs=rhs, span=lhs.span)
        return lhs

    def _parse_cond(self, no_gt: bool) -> Expr:
        cond = self._parse_binary(0, no_gt)
        if self._at("?"):
            self._advance()
            then = self.parse_expr(no_comma=True)
            self._expect(":")
            other = self._parse_assign(no_gt)
            return CondExpr(cond=cond, then=then, other=other, span=cond.span)
        return cond

    def _parse_binary(self, level: int, no_gt: bool) -> Expr:
        if level >= len(self._BIN_LEVELS):
            return self._parse_unary(no_gt)
        lhs = self._parse_binary(level + 1, no_gt)
        ops = self._BIN_LEVELS[level]
        while True:
            t = self._peek()
            if t is None or t.text not in ops:
                break
            if no_gt and t.text in (">", ">>"):
                break
            self._advance()
            rhs = self._parse_binary(level + 1, no_gt)
            lhs = BinaryExpr(op=t.text, lhs=lhs, rhs=rhs, span=lhs.span)
        return lhs

    def _parse_unary(self, no_gt: bool) -> Expr:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of expression", self.path, 0, 0)
        if t.text in ("-", "+", "!", "~", "*", "&", "++", "--"):
            self._advance()
            operand = self._parse_unary(no_gt)
            return UnaryExpr(op=t.text, operand=operand, prefix=True, span=SourceSpan(t.file, t.line))
        if t.text == "sizeof":
            self._advance()
            self._expect("(")
            saved = self.i
            ty = self._parse_type()
            if ty is not None and self._at(")"):
                self._advance()
                return SizeofExpr(type=ty, span=SourceSpan(t.file, t.line))
            self.i = saved
            e = self.parse_expr()
            self._expect(")")
            return SizeofExpr(operand=e, span=SourceSpan(t.file, t.line))
        if t.text == "new":
            self._advance()
            ty = self._parse_type()
            if ty is None:
                raise ParseError("bad new-expression", t.file, t.line, t.col)
            if self._accept("["):
                size = self.parse_expr()
                self._expect("]")
                return NewExpr(type=ty, array_size=size, span=SourceSpan(t.file, t.line))
            ctor: list[Expr] = []
            if self._accept("("):
                if not self._at(")"):
                    while True:
                        ctor.append(self.parse_expr(no_comma=True))
                        if not self._accept(","):
                            break
                self._expect(")")
            return NewExpr(type=ty, ctor_args=ctor, span=SourceSpan(t.file, t.line))
        if t.text == "delete":
            self._advance()
            is_array = False
            if self._accept("["):
                self._expect("]")
                is_array = True
            operand = self._parse_unary(no_gt)
            return DeleteExpr(operand=operand, is_array=is_array, span=SourceSpan(t.file, t.line))
        return self._parse_postfix(no_gt)

    def _parse_postfix(self, no_gt: bool) -> Expr:
        e = self._parse_primary(no_gt)
        while True:
            t = self._peek()
            if t is None:
                return e
            if t.text == "(":
                self._advance()
                args: list[Expr] = []
                if not self._at(")"):
                    while True:
                        args.append(self.parse_expr(no_comma=True))
                        if not self._accept(","):
                            break
                close = self._expect(")")
                e = CallExpr(callee=e, args=args, span=SourceSpan(t.file, t.line, close.line if close.file == t.file else t.line))
            elif t.text == "<<<":
                self._advance()
                config: list[Expr] = []
                while True:
                    config.append(self.parse_expr(no_comma=True))
                    if not self._accept(","):
                        break
                self._expect(">>>")
                self._expect("(")
                args = []
                if not self._at(")"):
                    while True:
                        args.append(self.parse_expr(no_comma=True))
                        if not self._accept(","):
                            break
                self._expect(")")
                e = KernelLaunchExpr(callee=e, config=config, args=args, span=SourceSpan(t.file, t.line))
            elif t.text == "[":
                self._advance()
                idx = self.parse_expr()
                self._expect("]")
                e = SubscriptExpr(base=e, index=idx, span=SourceSpan(t.file, t.line))
            elif t.text in (".", "->"):
                self._advance()
                member = self._advance().text
                # member template: .get<double>() — consume template args
                targs = None
                if self._at("<"):
                    targs = self._try_template_args()
                e = MemberExpr(base=e, member=member, arrow=(t.text == "->"), span=SourceSpan(t.file, t.line))
                if targs is not None and self._at("("):
                    self._advance()
                    args = []
                    if not self._at(")"):
                        while True:
                            args.append(self.parse_expr(no_comma=True))
                            if not self._accept(","):
                                break
                    self._expect(")")
                    e = CallExpr(callee=e, args=args, template_args=targs, span=SourceSpan(t.file, t.line))
            elif t.text in ("++", "--"):
                self._advance()
                e = UnaryExpr(op=t.text, operand=e, prefix=False, span=SourceSpan(t.file, t.line))
            elif t.text == "<" and not no_gt:
                # possible explicit template call: f<double>(x)
                saved = self.i
                targs = self._try_template_args()
                if targs is not None and self._at("("):
                    self._advance()
                    args = []
                    if not self._at(")"):
                        while True:
                            args.append(self.parse_expr(no_comma=True))
                            if not self._accept(","):
                                break
                    self._expect(")")
                    e = CallExpr(callee=e, args=args, template_args=targs, span=SourceSpan(t.file, t.line))
                elif targs is not None and self._at("<<<"):
                    self.i = saved
                    return e
                else:
                    self.i = saved
                    return e
            else:
                return e

    def _parse_primary(self, no_gt: bool) -> Expr:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of expression", self.path, 0, 0)
        span = SourceSpan(t.file, t.line)
        if t.type is TokenType.INT:
            self._advance()
            return LiteralExpr(kind="int", value=t.text, span=span)
        if t.type is TokenType.FLOAT:
            self._advance()
            return LiteralExpr(kind="float", value=t.text, span=span)
        if t.type is TokenType.STRING:
            self._advance()
            return LiteralExpr(kind="string", value=t.text, span=span)
        if t.type is TokenType.CHAR:
            self._advance()
            return LiteralExpr(kind="char", value=t.text, span=span)
        if t.text in ("true", "false"):
            self._advance()
            return LiteralExpr(kind="bool", value=t.text, span=span)
        if t.text == "nullptr":
            self._advance()
            return LiteralExpr(kind="nullptr", value="nullptr", span=span)
        if t.text == "this":
            self._advance()
            return ThisExpr(span=span)
        if t.text == "[":
            return self._parse_lambda()
        if t.text == "{":
            self._advance()
            items: list[Expr] = []
            if not self._at("}"):
                while True:
                    items.append(self.parse_expr(no_comma=True))
                    if not self._accept(","):
                        break
            self._expect("}")
            return InitListExpr(items=items, span=span)
        if t.text == "(":
            # cast or parenthesised expression
            saved = self.i
            self._advance()
            ty = self._parse_type()
            if ty is not None and self._at(")"):
                self._advance()
                nxt = self._peek()
                # looks like a cast when followed by something that starts
                # an expression
                if nxt is not None and (
                    nxt.type
                    in (
                        TokenType.IDENT,
                        TokenType.INT,
                        TokenType.FLOAT,
                        TokenType.STRING,
                        TokenType.CHAR,
                    )
                    or nxt.text in ("(", "-", "+", "*", "&", "!", "~")
                    or nxt.text in ("true", "false", "nullptr", "this", "sizeof", "new")
                ):
                    operand = self._parse_unary(no_gt)
                    return CastExpr(type=ty, operand=operand, kind="c", span=span)
            self.i = saved
            self._advance()
            e = self.parse_expr()
            self._expect(")")
            return e
        if t.text in ("static_cast", "reinterpret_cast", "const_cast", "dynamic_cast"):
            kindmap = {"static_cast": "static", "reinterpret_cast": "reinterpret"}
            self._advance()
            self._expect("<")
            ty = self._parse_type()
            self._expect_gt()
            self._expect("(")
            operand = self.parse_expr()
            self._expect(")")
            return CastExpr(type=ty, operand=operand, kind=kindmap.get(t.text, "c"), span=span)
        if t.type in (TokenType.IDENT, TokenType.KEYWORD):
            # functional cast on builtin types: double(x), int(n)
            if t.text in _TYPE_KEYWORDS and self._at("(", 1):
                self._advance()
                self._advance()
                operand = self.parse_expr()
                self._expect(")")
                return CastExpr(
                    type=TypeRef(name=[t.text], span=span), operand=operand, kind="c", span=span
                )
            parts = self._qualified_name()
            return IdentExpr(parts=parts, span=span)
        raise ParseError(f"unexpected token {t.text!r} in expression", t.file, t.line, t.col)

    def _parse_lambda(self) -> LambdaExpr:
        t = self._expect("[")
        capture = ""
        while not self._at("]"):
            capture += self._advance().text
        self._expect("]")
        params: list[ParamDecl] = []
        if self._accept("("):
            if not self._at(")"):
                while True:
                    pstart = self._peek()
                    pty = self._parse_type()
                    pname = ""
                    if self._at_type(TokenType.IDENT):
                        pname = self._advance().text
                    params.append(
                        ParamDecl(
                            name=pname,
                            type=pty,
                            span=SourceSpan(pstart.file, pstart.line) if pstart else None,
                        )
                    )
                    if not self._accept(","):
                        break
            self._expect(")")
        self._accept("mutable")
        if self._accept("->"):
            self._parse_type()
        body = self._parse_compound()
        return LambdaExpr(capture=capture, params=params, body=body, span=SourceSpan(t.file, t.line))


# ---------------------------------------------------------------------------
# module-level helpers
# ---------------------------------------------------------------------------


def parse_tokens(
    tokens: list[Token], path: str = "<memory>", recover: bool = False
) -> TranslationUnit:
    """Parse a significant token stream into a :class:`TranslationUnit`.

    ``recover=True`` enables panic-mode error recovery: unparseable
    declarations/statements become error-node placeholders plus
    diagnostics instead of raising.
    """
    return Parser(tokens, path, recover=recover).parse_translation_unit()


def parse_unit(
    fs: VirtualFS,
    path: str,
    defines: Optional[dict[str, str]] = None,
    recover: bool = False,
) -> TranslationUnit:
    """Preprocess + parse one translation unit from a virtual filesystem."""
    pp = preprocess(fs, path, defines)
    tu = parse_tokens(pp.tokens, path, recover=recover)
    return tu
