"""Language substrates: MiniC++ and MiniFortran frontends.

The paper extracts semantic-bearing trees via Clang/GCC plugins and
tree-sitter. Offline, we implement the frontends themselves: full lexers
(trivia-preserving, for CSTs and SLOC), a C preprocessor, recursive-descent
parsers, and semantic analysis that models the behaviours the paper's
findings hinge on (OpenMP pragmas becoming first-class semantic AST tokens,
template expansion inflating ``T_sem`` for library-based models, CUDA/HIP
dialect nodes, Fortran directives living in comments).
"""
