"""Source files and the virtual filesystem used by the frontends.

Codebases under analysis are represented as a :class:`VirtualFS`: a mapping
from path to text. This keeps corpora hermetic (no OS filesystem access
during analysis) and lets tests construct codebases inline. Paths beginning
with ``<system>/`` denote system headers — the paper's analyses can mask
those out, and ``T_sem+i`` refuses to inline code that comes from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.util.errors import WorkflowError

#: Prefix marking system/model-runtime headers inside a VirtualFS.
SYSTEM_PREFIX = "<system>/"


def is_system_path(path: str) -> bool:
    """True for paths that live in the modelled system-include tree."""
    return path.startswith(SYSTEM_PREFIX)


@dataclass(frozen=True)
class SourceFile:
    """One file of a codebase."""

    path: str
    text: str

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    @property
    def is_system(self) -> bool:
        return is_system_path(self.path)


@dataclass
class VirtualFS:
    """An in-memory file tree with C-style include resolution."""

    files: dict[str, str] = field(default_factory=dict)
    include_dirs: list[str] = field(default_factory=lambda: ["", SYSTEM_PREFIX])

    def add(self, path: str, text: str) -> "VirtualFS":
        self.files[path] = text
        return self

    def get(self, path: str) -> SourceFile:
        if path not in self.files:
            raise WorkflowError(f"no such file in virtual FS: {path}")
        return SourceFile(path, self.files[path])

    def exists(self, path: str) -> bool:
        return path in self.files

    def resolve_include(self, name: str, including_file: str, angled: bool) -> Optional[str]:
        """Resolve ``#include`` per C semantics.

        Quoted includes first try the including file's directory; angled
        includes (and quoted fallbacks) walk ``include_dirs``.
        """
        candidates: list[str] = []
        if not angled:
            base = including_file.rsplit("/", 1)[0] if "/" in including_file else ""
            candidates.append(f"{base}/{name}" if base else name)
        for d in self.include_dirs:
            candidates.append(f"{d}{name}" if d.endswith("/") or not d else f"{d}/{name}")
        for c in candidates:
            if c in self.files:
                return c
        return None

    def paths(self) -> list[str]:
        return sorted(self.files)

    def user_paths(self) -> list[str]:
        """Paths excluding the system-include tree."""
        return [p for p in self.paths() if not is_system_path(p)]

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, str]]) -> "VirtualFS":
        fs = cls()
        for path, text in pairs:
            fs.add(path, text)
        return fs
