"""MiniFortran — a from-scratch free-form Fortran-subset frontend.

Covers the BabelStream-Fortran feature set of the paper's §V-B: programs,
modules, subroutines/functions, declarations with attributes, ``do`` /
``do concurrent`` loops, whole-array and array-section assignment,
``allocate``/``deallocate``, and — crucially — OpenMP/OpenACC directives
that live in ``!$omp`` / ``!$acc`` sentinel comments yet carry semantics
("languages that use special comment tokens for directives are also
handled", §III-C).

``T_sem`` labels use an ``ft-`` prefix so Fortran semantic trees are *not*
comparable with MiniC++ trees — mirroring the paper's observation that
GIMPLE and ClangAST cannot be meaningfully compared across compilers.
"""

from repro.lang.fortran.lexer import lex_fortran, FtToken, FtTokenType
from repro.lang.fortran.parser import parse_fortran
from repro.lang.fortran.asttree import fortran_to_tree
from repro.lang.fortran.cst import fortran_cst, fortran_src_tree
from repro.lang.fortran.lower import lower_fortran

__all__ = [
    "lex_fortran",
    "FtToken",
    "FtTokenType",
    "parse_fortran",
    "fortran_to_tree",
    "fortran_cst",
    "fortran_src_tree",
    "lower_fortran",
]
