"""Free-form Fortran lexer.

Statement-oriented: newlines are significant (statement separators), ``&``
continuations are joined, ``!`` comments are trivia *except* the ``!$omp`` /
``!$acc`` sentinels, which become DIRECTIVE tokens — the "semantic-bearing
information in unusual places" provision of §III-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro import diag, obs
from repro.util.errors import ParseError


class FtTokenType(Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int-lit"
    REAL = "real-lit"
    STRING = "str-lit"
    LOGICAL = "logical-lit"
    DOTOP = "dotop"  # .and. .or. .not. ...
    PUNCT = "punct"
    DIRECTIVE = "directive"
    COMMENT = "comment"
    NEWLINE = "nl"
    EOF = "eof"


KEYWORDS = frozenset(
    """
    program module subroutine function end use implicit none integer real
    logical character parameter allocatable dimension intent in out inout
    allocate deallocate do concurrent while if then else elseif endif enddo
    call return print write read contains result kind stop exit cycle
    select case default pure elemental interface procedure type public
    private save target pointer data where forall
    """.split()
)

_PUNCTS = [
    "::", "=>", "==", "/=", "<=", ">=", "**", "(", ")", ",", "=", "+", "-",
    "*", "/", "<", ">", ":", ";", "%", "[", "]",
]


@dataclass(frozen=True)
class FtToken:
    type: FtTokenType
    text: str
    file: str
    line: int
    col: int

    @property
    def is_trivia(self) -> bool:
        return self.type is FtTokenType.COMMENT

    def __repr__(self) -> str:
        return f"FtToken({self.type.value}, {self.text!r}, {self.file}:{self.line})"


def lex_fortran(text: str, file: str = "<memory>", tolerant: bool = False) -> list[FtToken]:
    """Tokenise free-form Fortran source (continuations already joined).

    With ``tolerant=True``, lexical damage (unterminated strings, stray
    characters) is repaired in place and reported as ``lex/*`` warnings
    instead of raising :class:`ParseError`.
    """
    out: list[FtToken] = []
    lines = text.splitlines()
    # Join '&' continuations, tracking the first line number of each joined
    # logical line (directives continue with '!$omp &' on the next line).
    logical: list[tuple[int, str]] = []
    buf = ""
    buf_line = 0
    for idx, ln in enumerate(lines, start=1):
        stripped = ln.rstrip()
        if buf:
            cont = stripped.lstrip()
            low = cont.lower()
            if low.startswith("!$omp") or low.startswith("!$acc"):
                cont = cont[5:].lstrip()
                if cont.startswith("&"):
                    cont = cont[1:]
            body = cont
            if body.endswith("&"):
                buf += " " + body[:-1].rstrip()
                continue
            buf += " " + body
            logical.append((buf_line, buf))
            buf = ""
            continue
        if stripped.endswith("&") and not stripped.lstrip().startswith("!"):
            buf = stripped[:-1].rstrip()
            buf_line = idx
            continue
        low = stripped.lstrip().lower()
        if (low.startswith("!$omp") or low.startswith("!$acc")) and stripped.rstrip().endswith("&"):
            buf = stripped.rstrip()[:-1].rstrip()
            buf_line = idx
            continue
        logical.append((idx, stripped))

    if buf:
        logical.append((buf_line, buf))

    for lineno, ln in logical:
        _lex_line(ln, lineno, file, out, tolerant)
        out.append(FtToken(FtTokenType.NEWLINE, "\n", file, lineno, len(ln) + 1))
    out.append(FtToken(FtTokenType.EOF, "", file, len(lines) + 1, 1))
    if obs.enabled():
        obs.add("lex.fortran.calls")
        obs.add("lex.fortran.tokens", len(out))
    return out


def _lex_line(ln: str, lineno: int, file: str, out: list[FtToken], tolerant: bool = False) -> None:
    i = 0
    n = len(ln)
    while i < n:
        ch = ln[i]
        col = i + 1
        if ch in " \t":
            i += 1
            continue
        if ch == "!":
            rest = ln[i:]
            low = rest.lower()
            if low.startswith("!$omp") or low.startswith("!$acc"):
                out.append(FtToken(FtTokenType.DIRECTIVE, rest, file, lineno, col))
            else:
                # a '!$'-prefixed comment that is not a known sentinel (and
                # not the bare '!$ ' conditional-compilation form) is almost
                # certainly a typo'd directive — flag it rather than letting
                # it vanish as an ordinary comment
                if low.startswith("!$") and low[2:3] not in ("", " ", "\t", "&"):
                    diag.warning(
                        "lex/unknown-sentinel",
                        f"unknown directive sentinel {rest.split()[0]!r} (treated as comment)",
                        file, lineno, col,
                    )
                out.append(FtToken(FtTokenType.COMMENT, rest, file, lineno, col))
            return
        if ch == ";":
            out.append(FtToken(FtTokenType.NEWLINE, ";", file, lineno, col))
            i += 1
            continue
        if ch in "'\"":
            j = i + 1
            while j < n and ln[j] != ch:
                j += 1
            if j >= n:
                if not tolerant:
                    raise ParseError("unterminated string", file, lineno, col)
                diag.warning(
                    "lex/unterminated-literal",
                    "unterminated string (closed at end of line)",
                    file, lineno, col,
                )
                out.append(FtToken(FtTokenType.STRING, ln[i:] + ch, file, lineno, col))
                i = n
                continue
            out.append(FtToken(FtTokenType.STRING, ln[i : j + 1], file, lineno, col))
            i = j + 1
            continue
        if ch == "." and i + 1 < n and ln[i + 1].isalpha():
            j = ln.find(".", i + 1)
            if j != -1:
                word = ln[i : j + 1].lower()
                if word in (".true.", ".false."):
                    out.append(FtToken(FtTokenType.LOGICAL, word, file, lineno, col))
                    i = j + 1
                    continue
                if word in (".and.", ".or.", ".not.", ".eqv.", ".neqv.", ".lt.", ".le.", ".gt.", ".ge.", ".eq.", ".ne."):
                    out.append(FtToken(FtTokenType.DOTOP, word, file, lineno, col))
                    i = j + 1
                    continue
        if ch.isdigit() or (ch == "." and i + 1 < n and ln[i + 1].isdigit()):
            j = i
            is_real = False
            while j < n and ln[j].isdigit():
                j += 1
            if j < n and ln[j] == "." and not (j + 1 < n and ln[j + 1].isalpha()):
                is_real = True
                j += 1
                while j < n and ln[j].isdigit():
                    j += 1
            if j < n and ln[j] in "eEdD":
                k = j + 1
                if k < n and ln[k] in "+-":
                    k += 1
                if k < n and ln[k].isdigit():
                    is_real = True
                    j = k
                    while j < n and ln[j].isdigit():
                        j += 1
            if j < n and ln[j] == "_":  # kind suffix: 1.0_dp
                j += 1
                while j < n and (ln[j].isalnum() or ln[j] == "_"):
                    j += 1
                is_real = True
            tt = FtTokenType.REAL if is_real else FtTokenType.INT
            out.append(FtToken(tt, ln[i:j], file, lineno, col))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (ln[j].isalnum() or ln[j] == "_"):
                j += 1
            word = ln[i:j]
            low = word.lower()
            tt = FtTokenType.KEYWORD if low in KEYWORDS else FtTokenType.IDENT
            out.append(FtToken(tt, low if tt is FtTokenType.KEYWORD else word, file, lineno, col))
            i = j
            continue
        for p in _PUNCTS:
            if ln.startswith(p, i):
                out.append(FtToken(FtTokenType.PUNCT, p, file, lineno, col))
                i += len(p)
                break
        else:
            if not tolerant:
                raise ParseError(f"unexpected character {ch!r}", file, lineno, col)
            diag.warning(
                "lex/unexpected-char",
                f"unexpected character {ch!r} (skipped)",
                file, lineno, col,
            )
            i += 1


def significant(tokens: list[FtToken]) -> list[FtToken]:
    """Drop comments; keep newlines (statement separators) and directives."""
    return [t for t in tokens if t.type is not FtTokenType.COMMENT]
