"""MiniFortran CST and normalised ``T_src``.

tree-sitter-fortran analogue: a lossless token tree with paren grouping and
block nesting (``do``/``if``/``program`` regions), from which ``T_src``
drops comments and punctuation. Directives stay, with their semantic words
visible — identically to the C++ side.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.fortran.lexer import FtToken, FtTokenType, lex_fortran
from repro.trees.node import Node, SourceSpan

_BLOCK_OPENERS = frozenset({"program", "module", "subroutine", "function", "do", "if"})


def _token_node(tok: FtToken) -> Node:
    span = SourceSpan(tok.file, tok.line)
    if tok.type is FtTokenType.KEYWORD:
        return Node(tok.text, "kw", None, span)
    if tok.type is FtTokenType.IDENT:
        return Node(tok.text, "ident", None, span)
    if tok.type is FtTokenType.INT:
        return Node("int-lit", "lit", None, span, {"text": tok.text})
    if tok.type is FtTokenType.REAL:
        return Node("real-lit", "lit", None, span, {"text": tok.text})
    if tok.type is FtTokenType.STRING:
        return Node("str-lit", "lit", None, span, {"text": tok.text})
    if tok.type is FtTokenType.LOGICAL:
        return Node("logical-lit", "lit", None, span, {"text": tok.text})
    if tok.type is FtTokenType.DOTOP:
        return Node(tok.text, "kw", None, span)
    if tok.type is FtTokenType.COMMENT:
        return Node("comment", "trivia", None, span)
    if tok.type is FtTokenType.DIRECTIVE:
        return _directive_node(tok)
    return Node(tok.text, "punct", None, span)


def _directive_node(tok: FtToken) -> Node:
    span = SourceSpan(tok.file, tok.line)
    body = tok.text[2:].strip()  # strip '!$'
    words = body.replace("(", " ( ").replace(")", " ) ").replace(",", " , ").replace(":", " : ").split()
    family = words[0].lower() if words else ""
    node = Node(f"directive:{family}", "directive", None, span)
    for w in words[1:]:
        if w in "(),:":
            continue
        node.children.append(Node(w.lower(), "kw", None, span))
    return node


def fortran_cst(text: str, path: str = "<memory>", tolerant: bool = False) -> Node:
    """Lossless-ish CST: file → statements/blocks → token leaves."""
    toks = lex_fortran(text, path, tolerant=tolerant)
    root = Node("file", "cst", None, None, {"path": path})
    # stack of (container node, kind) for block nesting
    stack: list[Node] = [root]
    line: list[Node] = []
    line_first: list[FtToken] = []

    def flush() -> None:
        nonlocal line, line_first
        if not line:
            return
        first = line_first[0] if line_first else None
        stmt = Node("stmt", "cst-stmt", None, SourceSpan(first.file, first.line) if first else None)
        # paren grouping within the statement
        gstack = [stmt]
        for nd, tk in zip(line, line_first):
            if tk.text == "(" and tk.type is FtTokenType.PUNCT:
                g = Node("paren-group", "group", None, SourceSpan(tk.file, tk.line))
                gstack[-1].children.append(g)
                gstack.append(g)
                continue
            if tk.text == ")" and tk.type is FtTokenType.PUNCT:
                if len(gstack) > 1:
                    gstack.pop()
                continue
            gstack[-1].children.append(nd)
        # block structure
        head = line_first[0]
        head_word = head.text if head.type is FtTokenType.KEYWORD else ""
        words = [t.text for t in line_first if t.type is FtTokenType.KEYWORD]
        if head_word == "end" or head_word in ("enddo", "endif"):
            if len(stack) > 1:
                stack.pop()
            stack[-1].children.append(stmt)
        elif head_word in _BLOCK_OPENERS and ("then" in words or head_word != "if"):
            block = Node(f"{head_word}-block", "block", [stmt], stmt.span)
            stack[-1].children.append(block)
            stack.append(block)
        else:
            stack[-1].children.append(stmt)
        line = []
        line_first = []

    for tok in toks:
        if tok.type in (FtTokenType.NEWLINE, FtTokenType.EOF):
            flush()
            continue
        line.append(_token_node(tok))
        line_first.append(tok)
    flush()
    return root


_ANON_KINDS = frozenset({"trivia", "punct"})


def fortran_src_tree(cst: Node) -> Node:
    """``T_src``: drop trivia and anonymous punctuation."""

    def rebuild(node: Node) -> Optional[Node]:
        if node.kind in _ANON_KINDS:
            return None
        kept = []
        for c in node.children:
            rc = rebuild(c)
            if rc is not None:
                kept.append(rc)
        return Node(node.label, node.kind, kept, node.span, dict(node.attrs))

    out = rebuild(cst)
    assert out is not None
    return out
