"""MiniFortran AST node definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.trees.node import SourceSpan


@dataclass
class FtNode:
    span: Optional[SourceSpan] = field(default=None, kw_only=True)


# -- expressions -------------------------------------------------------------


@dataclass
class FtExpr(FtNode):
    pass


@dataclass
class FtIdent(FtExpr):
    name: str = ""


@dataclass
class FtLiteral(FtExpr):
    kind: str = "int"  # int | real | string | logical
    value: str = ""


@dataclass
class FtBinOp(FtExpr):
    op: str = "+"
    lhs: Optional[FtExpr] = None
    rhs: Optional[FtExpr] = None


@dataclass
class FtUnOp(FtExpr):
    op: str = "-"
    operand: Optional[FtExpr] = None


@dataclass
class FtRange(FtExpr):
    """Array-section bound ``lo:hi[:step]``; bare ``:`` has both None."""

    lo: Optional[FtExpr] = None
    hi: Optional[FtExpr] = None
    step: Optional[FtExpr] = None


@dataclass
class FtCallOrIndex(FtExpr):
    """``name(args)`` — function reference or array element/section.

    Fortran cannot distinguish these syntactically; ``is_index`` is set
    during the parser's declaration-table pass.
    """

    name: str = ""
    args: list[FtExpr] = field(default_factory=list)
    is_index: Optional[bool] = None


# -- statements ---------------------------------------------------------------


@dataclass
class FtStmt(FtNode):
    pass


@dataclass
class FtDeclAttr(FtNode):
    name: str = ""
    args: list[str] = field(default_factory=list)


@dataclass
class FtDecl(FtStmt):
    """Type declaration statement: ``real(kind=8), allocatable :: a(:), b``."""

    base_type: str = "real"
    kind: Optional[str] = None
    attrs: list[FtDeclAttr] = field(default_factory=list)
    entities: list[tuple[str, list[FtExpr], Optional[FtExpr]]] = field(
        default_factory=list
    )  # (name, dims, init)


@dataclass
class FtImplicitNone(FtStmt):
    pass


@dataclass
class FtUse(FtStmt):
    module: str = ""
    only: list[str] = field(default_factory=list)


@dataclass
class FtAssign(FtStmt):
    lhs: Optional[FtExpr] = None
    rhs: Optional[FtExpr] = None

    @property
    def is_array_op(self) -> bool:
        """Whole-array or section assignment (vectorised semantics)."""

        def arrayish(e: Optional[FtExpr]) -> bool:
            if isinstance(e, FtCallOrIndex):
                return e.is_index is True and any(isinstance(a, FtRange) for a in e.args)
            if isinstance(e, FtIdent):
                return False  # resolved later by sema flag in attrs
            return False

        return arrayish(self.lhs)


@dataclass
class FtCallStmt(FtStmt):
    name: str = ""
    args: list[FtExpr] = field(default_factory=list)


@dataclass
class FtPrint(FtStmt):
    items: list[FtExpr] = field(default_factory=list)


@dataclass
class FtAllocate(FtStmt):
    items: list[FtCallOrIndex] = field(default_factory=list)
    dealloc: bool = False


@dataclass
class FtDo(FtStmt):
    var: str = ""
    lo: Optional[FtExpr] = None
    hi: Optional[FtExpr] = None
    step: Optional[FtExpr] = None
    body: list[FtStmt] = field(default_factory=list)


@dataclass
class FtDoConcurrent(FtStmt):
    """``do concurrent (i = lo:hi)`` — the StdPar-of-Fortran (paper §V-B)."""

    var: str = ""
    lo: Optional[FtExpr] = None
    hi: Optional[FtExpr] = None
    body: list[FtStmt] = field(default_factory=list)


@dataclass
class FtWhile(FtStmt):
    cond: Optional[FtExpr] = None
    body: list[FtStmt] = field(default_factory=list)


@dataclass
class FtIf(FtStmt):
    cond: Optional[FtExpr] = None
    then: list[FtStmt] = field(default_factory=list)
    elifs: list[tuple[FtExpr, list[FtStmt]]] = field(default_factory=list)
    other: list[FtStmt] = field(default_factory=list)


@dataclass
class FtReturn(FtStmt):
    pass


@dataclass
class FtStop(FtStmt):
    code: Optional[FtExpr] = None


@dataclass
class FtExitCycle(FtStmt):
    kind: str = "exit"  # exit | cycle


@dataclass
class FtError(FtStmt):
    """Placeholder emitted by panic-mode recovery for an unparseable
    statement. Converts to an ordinary ``error-node`` leaf in all tree
    views so degraded trees stay TED-comparable (DESIGN.md)."""

    message: str = ""


@dataclass
class FtDirective(FtStmt):
    """``!$omp`` / ``!$acc`` sentinel directive with optional attached body.

    ``is_end`` marks ``!$omp end …`` closers (consumed during attachment).
    """

    family: str = "omp"
    directives: list[str] = field(default_factory=list)
    clauses: list[tuple[str, list[str]]] = field(default_factory=list)
    body: list[FtStmt] = field(default_factory=list)
    is_end: bool = False


# -- program units ---------------------------------------------------------------


@dataclass
class FtUnit(FtNode):
    kind: str = "program"  # program | module | subroutine | function
    name: str = ""
    params: list[str] = field(default_factory=list)
    result: Optional[str] = None
    decls: list[FtStmt] = field(default_factory=list)
    body: list[FtStmt] = field(default_factory=list)
    contains: list["FtUnit"] = field(default_factory=list)


@dataclass
class FtFile(FtNode):
    path: str = "<memory>"
    units: list[FtUnit] = field(default_factory=list)
