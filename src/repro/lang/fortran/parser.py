"""MiniFortran statement-oriented recursive-descent parser.

Parses the significant token stream line by line; block constructs
(``program``/``do``/``if``/``contains``) recurse until their matching
``end``. A post-pass resolves the call-vs-array-index ambiguity using the
declaration table, and attaches ``!$omp``/``!$acc`` directives to the
following statement (consuming optional ``!$omp end …`` closers).

With ``recover=True`` the parser practices panic-mode recovery: a
statement that fails to parse is reported through :mod:`repro.diag`,
replaced by an :class:`FtError` placeholder, and the parser resynchronises
at the next statement boundary (newline). Unterminated block constructs
(``do``/``if``/program units missing their ``end``) keep their partial
bodies and emit ``parse/missing-end`` diagnostics, so damaged files still
produce TED-comparable trees.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.fortran.astnodes import (
    FtAllocate,
    FtAssign,
    FtBinOp,
    FtCallOrIndex,
    FtCallStmt,
    FtDecl,
    FtDeclAttr,
    FtDirective,
    FtDo,
    FtDoConcurrent,
    FtError,
    FtExitCycle,
    FtExpr,
    FtFile,
    FtIdent,
    FtIf,
    FtImplicitNone,
    FtLiteral,
    FtPrint,
    FtRange,
    FtReturn,
    FtStmt,
    FtStop,
    FtUnit,
    FtUnOp,
    FtUse,
    FtWhile,
)
from repro import diag
from repro.lang.fortran.lexer import FtToken, FtTokenType, lex_fortran, significant
from repro.trees.node import SourceSpan
from repro.util.errors import ParseError

_TYPE_WORDS = frozenset({"integer", "real", "logical", "character", "type"})

#: Fortran intrinsics — never array names.
INTRINSICS = frozenset(
    """
    dot_product sum maxval minval abs mod sqrt size epsilon real int max min
    exp log sin cos huge tiny merge transfer allocated present matmul
    """.split()
)


class FortranParser:
    def __init__(self, tokens: list[FtToken], path: str, recover: bool = False):
        self.toks = significant(tokens)
        self.i = 0
        self.path = path
        self.array_names: set[str] = set()
        self.recover = recover
        self.error_count = 0

    # -- token helpers -----------------------------------------------------
    def _peek(self, off: int = 0) -> Optional[FtToken]:
        k = self.i + off
        return self.toks[k] if k < len(self.toks) else None

    def _at(self, text: str, off: int = 0) -> bool:
        t = self._peek(off)
        return t is not None and t.text == text

    def _at_nl(self) -> bool:
        t = self._peek()
        return t is None or t.type in (FtTokenType.NEWLINE, FtTokenType.EOF)

    def _advance(self) -> FtToken:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of input", self.path, 0, 0)
        self.i += 1
        return t

    def _expect(self, text: str) -> FtToken:
        t = self._peek()
        if t is None or t.text != text:
            got = t.text if t else "<eof>"
            f, ln, c = (t.file, t.line, t.col) if t else (self.path, 0, 0)
            raise ParseError(f"expected {text!r}, got {got!r}", f, ln, c)
        self.i += 1
        return t

    def _accept(self, text: str) -> bool:
        if self._at(text):
            self.i += 1
            return True
        return False

    def _skip_newlines(self) -> None:
        while (t := self._peek()) is not None and t.type is FtTokenType.NEWLINE:
            self.i += 1

    def _end_of_stmt(self) -> None:
        t = self._peek()
        if t is not None and t.type is FtTokenType.NEWLINE:
            self.i += 1
        elif t is not None and t.type is not FtTokenType.EOF:
            raise ParseError(f"trailing tokens: {t.text!r}", t.file, t.line, t.col)

    # -- recovery helpers ---------------------------------------------------
    def _at_eof(self) -> bool:
        t = self._peek()
        return t is None or t.type is FtTokenType.EOF

    def _report(self, code: str, e: ParseError) -> None:
        self.error_count += 1
        diag.emit_exception(code, e)

    def _sync_line(self, start_i: int) -> None:
        """Panic-mode resync: skip to just past the next statement boundary.

        Guarantees progress even when the failed parse consumed nothing.
        """
        if self.i <= start_i:
            self.i = start_i + 1
        while (t := self._peek()) is not None and t.type not in (
            FtTokenType.NEWLINE,
            FtTokenType.EOF,
        ):
            self.i += 1
        if (t := self._peek()) is not None and t.type is FtTokenType.NEWLINE:
            self.i += 1

    def _sync_unit(self, start_i: int) -> None:
        """Skip whole lines until one starts with a unit keyword (or EOF)."""
        if self.i <= start_i:
            self.i = start_i + 1
        heads = ("program", "module", "subroutine", "function")
        while not self._at_eof():
            self._sync_line(self.i)
            t = self._peek()
            if t is None or t.type is FtTokenType.EOF or t.text in heads:
                return

    def _missing_end(self, what: str) -> bool:
        """In recover mode at EOF, report the missing block closer and let
        the partial body stand. Returns True when the closer is waived."""
        if not (self.recover and self._at_eof()):
            return False
        prev = self.toks[self.i - 1] if 0 < self.i <= len(self.toks) else None
        f, ln, c = (prev.file, prev.line, prev.col) if prev else (self.path, 0, 0)
        self.error_count += 1
        diag.error(
            "parse/missing-end",
            f"unexpected end of input: missing 'end' closing {what}",
            f, ln, c,
        )
        return True

    def _close_block(self, kind: str, what: str, combined: Optional[str] = None) -> None:
        """Consume the ``end <kind>`` / ``<endkind>`` closing a block.

        In recover mode a mismatched closer (e.g. ``end program`` reached
        while still inside a ``do``) degrades to a ``parse/missing-end``
        diagnostic; the closer tokens are left unconsumed for the
        enclosing construct, so the partial body stands."""
        if self._missing_end(what):
            return
        start_i = self.i
        try:
            if combined is not None and self._accept(combined):
                pass
            else:
                self._expect("end")
                self._accept(kind)
            self._end_of_stmt()
        except ParseError:
            if not self.recover:
                raise
            self.i = start_i
            self.error_count += 1
            t = self._peek()
            f, ln, c = (t.file, t.line, t.col) if t else (self.path, 0, 0)
            diag.error("parse/missing-end", f"missing 'end {kind}' closing {what}", f, ln, c)

    # -- entry ----------------------------------------------------------------
    def parse_file(self) -> FtFile:
        f = FtFile(path=self.path)
        self._skip_newlines()
        while (t := self._peek()) is not None and t.type is not FtTokenType.EOF:
            start_i = self.i
            try:
                f.units.append(self.parse_unit())
            except ParseError as e:
                if not self.recover:
                    raise
                self._report("parse/bad-unit", e)
                span = SourceSpan(t.file, t.line)
                f.units.append(
                    FtUnit(
                        kind="program",
                        name="<error>",
                        body=[FtError(message=str(e), span=span)],
                        span=span,
                    )
                )
                self._sync_unit(start_i)
            self._skip_newlines()
        for u in f.units:
            _attach_directives(u.body)
            _resolve_indexing(u, self.array_names)
        return f

    def parse_unit(self) -> FtUnit:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of input", self.path, 0, 0)
        if t.text in ("program", "module", "subroutine", "function"):
            return self._parse_unit_block(t.text)
        raise ParseError(f"expected program unit, got {t.text!r}", t.file, t.line, t.col)

    def _parse_unit_block(self, kind: str) -> FtUnit:
        start = self._expect(kind)
        name = self._advance().text
        unit = FtUnit(kind=kind, name=name, span=SourceSpan(start.file, start.line))
        if kind in ("subroutine", "function") and self._accept("("):
            while not self._at(")"):
                unit.params.append(self._advance().text)
                self._accept(",")
            self._expect(")")
            if kind == "function" and self._accept("result"):
                self._expect("(")
                unit.result = self._advance().text
                self._expect(")")
        self._end_of_stmt()
        while True:
            unit.body.extend(self._parse_block(until={"end"}, unit=unit))
            if self._missing_end(f"{kind} {name!r}"):
                break
            # 'end [kind [name]]'
            self._expect("end")
            nxt = self._peek()
            if (
                self.recover
                and nxt is not None
                and nxt.type not in (FtTokenType.NEWLINE, FtTokenType.EOF)
                and nxt.text != kind
            ):
                # Stray 'end do'/'end if' left behind by a failed block
                # header: skip the line and keep parsing the unit body.
                self.error_count += 1
                diag.error(
                    "parse/stray-end",
                    f"unmatched 'end {nxt.text}'",
                    nxt.file, nxt.line, nxt.col,
                )
                self._sync_line(self.i)
                continue
            if self._at(kind):
                self._advance()
                if not self._at_nl():
                    self._advance()  # trailing name
            self._end_of_stmt()
            break
        if unit.span is not None:
            prev = self._peek(-1) or start
            unit.span = SourceSpan(start.file, start.line, prev.line)
        return unit

    # -- blocks ----------------------------------------------------------------
    def _parse_block(self, until: set[str], unit: Optional[FtUnit] = None) -> list[FtStmt]:
        stmts: list[FtStmt] = []
        while True:
            self._skip_newlines()
            t = self._peek()
            if t is None or t.type is FtTokenType.EOF:
                break
            if t.text in until:
                # 'end' followed by 'do'/'if' inside nested blocks is handled
                # by callers; at this level any 'until' word terminates.
                break
            if t.text in ("else", "elseif", "contains"):
                if t.text == "contains" and unit is not None:
                    self._advance()
                    self._end_of_stmt()
                    self._skip_newlines()
                    while self._peek() is not None and self._peek().text in (
                        "subroutine",
                        "function",
                    ):
                        sub_i = self.i
                        try:
                            unit.contains.append(self.parse_unit())
                        except ParseError as e:
                            if not self.recover:
                                raise
                            self._report("parse/bad-unit", e)
                            unit.contains.append(
                                FtUnit(
                                    kind="subroutine",
                                    name="<error>",
                                    body=[FtError(message=str(e))],
                                )
                            )
                            self._sync_unit(sub_i)
                        self._skip_newlines()
                    continue
                break
            start_i = self.i
            try:
                stmts.append(self.parse_stmt())
            except ParseError as e:
                if not self.recover:
                    raise
                self._report("parse/bad-stmt", e)
                stmts.append(FtError(message=str(e), span=SourceSpan(t.file, t.line)))
                self._sync_line(start_i)
        return stmts

    # -- statements ----------------------------------------------------------------
    def parse_stmt(self) -> FtStmt:
        t = self._peek()
        if t is None or t.type is FtTokenType.EOF:
            raise ParseError("unexpected end of input in statement", self.path, 0, 0)
        span = SourceSpan(t.file, t.line)
        if t.type is FtTokenType.DIRECTIVE:
            return self._parse_directive()
        if t.text in _TYPE_WORDS and self._is_decl():
            return self._parse_decl()
        if t.text == "implicit":
            self._advance()
            self._expect("none")
            self._end_of_stmt()
            return FtImplicitNone(span=span)
        if t.text == "use":
            self._advance()
            mod = self._advance().text
            only: list[str] = []
            if self._accept(","):
                if self._accept("only"):
                    self._expect(":")
                    while not self._at_nl():
                        only.append(self._advance().text)
                        self._accept(",")
            self._end_of_stmt()
            return FtUse(module=mod, only=only, span=span)
        if t.text in ("allocate", "deallocate"):
            return self._parse_allocate(t.text == "deallocate")
        if t.text == "do":
            return self._parse_do()
        if t.text == "if":
            return self._parse_if()
        if t.text == "call":
            self._advance()
            name = self._advance().text
            args: list[FtExpr] = []
            if self._accept("("):
                while not self._at(")"):
                    args.append(self.parse_expr())
                    self._accept(",")
                self._expect(")")
            self._end_of_stmt()
            return FtCallStmt(name=name, args=args, span=span)
        if t.text in ("print", "write"):
            self._advance()
            if t.text == "write":
                self._expect("(")
                while not self._at(")"):
                    self._advance()
                self._expect(")")
            else:
                self._expect("*")
                if not self._accept(","):
                    self._end_of_stmt()
                    return FtPrint(span=span)
            items: list[FtExpr] = []
            while not self._at_nl():
                items.append(self.parse_expr())
                self._accept(",")
            self._end_of_stmt()
            return FtPrint(items=items, span=span)
        if t.text == "return":
            self._advance()
            self._end_of_stmt()
            return FtReturn(span=span)
        if t.text == "stop":
            self._advance()
            code = None if self._at_nl() else self.parse_expr()
            self._end_of_stmt()
            return FtStop(code=code, span=span)
        if t.text in ("exit", "cycle"):
            self._advance()
            self._end_of_stmt()
            return FtExitCycle(kind=t.text, span=span)
        # assignment: lhs = rhs
        lhs = self.parse_expr()
        self._expect("=")
        rhs = self.parse_expr()
        self._end_of_stmt()
        return FtAssign(lhs=lhs, rhs=rhs, span=span)

    def _is_decl(self) -> bool:
        # A type word starts a declaration iff the statement contains '::'
        # before the newline, or the classic 'real x' form follows.
        j = self.i
        while j < len(self.toks) and self.toks[j].type is not FtTokenType.NEWLINE:
            if self.toks[j].text == "::":
                return True
            j += 1
        # 'real(8) x' without '::' is not used by the corpus; also 'real(x)'
        # alone is a cast call.
        return False

    def _parse_decl(self) -> FtDecl:
        t = self._advance()
        decl = FtDecl(base_type=t.text, span=SourceSpan(t.file, t.line))
        if self._accept("("):
            # kind spec: (8) or (kind=8) or (len=...)
            spec = ""
            depth = 1
            while depth:
                tk = self._advance()
                if tk.text == "(":
                    depth += 1
                elif tk.text == ")":
                    depth -= 1
                    if not depth:
                        break
                spec += tk.text
            decl.kind = spec
        while self._accept(","):
            a = self._advance()
            attr = FtDeclAttr(name=a.text, span=SourceSpan(a.file, a.line))
            if self._accept("("):
                depth = 1
                cur = ""
                while depth:
                    tk = self._advance()
                    if tk.text == "(":
                        depth += 1
                        cur += tk.text
                    elif tk.text == ")":
                        depth -= 1
                        if depth:
                            cur += tk.text
                    elif tk.text == "," and depth == 1:
                        attr.args.append(cur)
                        cur = ""
                    else:
                        cur += tk.text
                if cur:
                    attr.args.append(cur)
            decl.attrs.append(attr)
        self._expect("::")
        while not self._at_nl():
            name = self._advance().text
            dims: list[FtExpr] = []
            if self._accept("("):
                while not self._at(")"):
                    dims.append(self.parse_expr())
                    self._accept(",")
                self._expect(")")
            init = None
            if self._accept("="):
                init = self.parse_expr()
            decl.entities.append((name, dims, init))
            self._accept(",")
        self._end_of_stmt()
        has_dim_attr = any(a.name in ("dimension", "allocatable") for a in decl.attrs)
        for name, dims, _init in decl.entities:
            if dims or has_dim_attr:
                self.array_names.add(name.lower())
        return decl

    def _parse_allocate(self, dealloc: bool) -> FtAllocate:
        t = self._advance()
        self._expect("(")
        items: list[FtCallOrIndex] = []
        while not self._at(")"):
            name = self._advance().text
            args: list[FtExpr] = []
            if self._accept("("):
                while not self._at(")"):
                    args.append(self.parse_expr())
                    self._accept(",")
                self._expect(")")
            items.append(FtCallOrIndex(name=name, args=args, is_index=True, span=SourceSpan(t.file, t.line)))
            self._accept(",")
        self._expect(")")
        self._end_of_stmt()
        return FtAllocate(items=items, dealloc=dealloc, span=SourceSpan(t.file, t.line))

    def _parse_do(self) -> FtStmt:
        t = self._expect("do")
        span = SourceSpan(t.file, t.line)
        if self._accept("while"):
            self._expect("(")
            cond = self.parse_expr()
            self._expect(")")
            self._end_of_stmt()
            body = self._parse_block(until={"end"})
            self._close_block("do", "'do while' loop")
            return FtWhile(cond=cond, body=body, span=span)
        if self._accept("concurrent"):
            self._expect("(")
            var = self._advance().text
            self._expect("=")
            lo = self.parse_expr(no_range=True)
            self._expect(":")
            hi = self.parse_expr(no_range=True)
            self._expect(")")
            self._end_of_stmt()
            body = self._parse_block(until={"end"})
            self._close_block("do", "'do concurrent' loop")
            node = FtDoConcurrent(var=var, lo=lo, hi=hi, body=body, span=span)
            return node
        var = self._advance().text
        self._expect("=")
        lo = self.parse_expr()
        self._expect(",")
        hi = self.parse_expr()
        step = None
        if self._accept(","):
            step = self.parse_expr()
        self._end_of_stmt()
        body = self._parse_block(until={"end", "enddo"})
        self._close_block("do", "'do' loop", combined="enddo")
        return FtDo(var=var, lo=lo, hi=hi, step=step, body=body, span=span)

    def _parse_if(self) -> FtIf:
        t = self._expect("if")
        span = SourceSpan(t.file, t.line)
        self._expect("(")
        cond = self.parse_expr()
        self._expect(")")
        if not self._accept("then"):
            # single-statement if
            inner = self.parse_stmt()
            return FtIf(cond=cond, then=[inner], span=span)
        self._end_of_stmt()
        node = FtIf(cond=cond, span=span)
        node.then = self._parse_block(until={"end", "endif"})
        while True:
            if self._at("elseif") or (self._at("else") and self._at("if", 1)):
                if self._accept("elseif"):
                    pass
                else:
                    self._advance()
                    self._advance()
                self._expect("(")
                ec = self.parse_expr()
                self._expect(")")
                self._accept("then")
                self._end_of_stmt()
                eb = self._parse_block(until={"end", "endif"})
                node.elifs.append((ec, eb))
                continue
            if self._accept("else"):
                self._end_of_stmt()
                node.other = self._parse_block(until={"end", "endif"})
            break
        self._close_block("if", "'if' block", combined="endif")
        return node

    # -- directives -------------------------------------------------------------
    def _parse_directive(self) -> FtDirective:
        tok = self._advance()
        self._end_of_stmt()
        text = tok.text
        low = text.lower()
        family = "omp" if low.startswith("!$omp") else "acc"
        rest = text[5:].strip()
        node = FtDirective(family=family, span=SourceSpan(tok.file, tok.line))
        # split into directive words then clauses
        i = 0
        words: list[str] = []
        while i < len(rest):
            if rest[i] in " \t":
                i += 1
                continue
            if rest[i] == "(":
                break
            j = i
            while j < len(rest) and rest[j] not in " \t(":
                j += 1
            words.append(rest[i:j].lower())
            # a word directly followed by '(' starts the clause region
            if j < len(rest) and rest[j] == "(":
                words.pop()
                break
            i = j
        directive_words = {
            "end", "parallel", "do", "simd", "target", "teams", "distribute",
            "task", "taskloop", "barrier", "taskwait", "single", "master",
            "critical", "sections", "section", "atomic", "workshare",
            "kernels", "loop", "data", "enter", "exit", "update", "declare",
            "routine", "serial", "concurrent", "wait",
        }
        clause_start = len(words)
        for k, w in enumerate(words):
            if w not in directive_words:
                clause_start = k
                break
        node.directives = [w for w in words[:clause_start]]
        if words and not node.directives:
            # First word is not a known directive — likely a misspelled
            # sentinel body like '!$omp paralel do'. Keep it as clause text
            # but flag it so the damage is visible.
            diag.warning(
                "parse/unknown-directive",
                f"unrecognised {family} directive word {words[0]!r}",
                tok.file, tok.line, tok.col,
            )
        if node.directives and node.directives[0] == "end":
            node.is_end = True
            node.directives = node.directives[1:]
        # clause region: parse 'name(arg,...)' and bare names
        clause_text = rest
        for w in words[:clause_start]:
            idx = clause_text.lower().find(w)
            if idx != -1:
                clause_text = clause_text[idx + len(w):]
        clause_text = clause_text.strip()
        k = 0
        while k < len(clause_text):
            if clause_text[k] in " \t,":
                k += 1
                continue
            j = k
            while j < len(clause_text) and clause_text[j] not in " \t(,":
                j += 1
            cname = clause_text[k:j].lower()
            args: list[str] = []
            if j < len(clause_text) and clause_text[j] == "(":
                depth = 1
                j += 1
                cur = ""
                while j < len(clause_text) and depth:
                    c = clause_text[j]
                    if c == "(":
                        depth += 1
                        cur += c
                    elif c == ")":
                        depth -= 1
                        if depth:
                            cur += c
                    elif c == "," and depth == 1:
                        args.append(cur.strip())
                        cur = ""
                    else:
                        cur += c
                    j += 1
                if cur.strip():
                    args.append(cur.strip())
            if cname:
                node.clauses.append((cname, args))
            k = j
        return node

    # -- expressions --------------------------------------------------------------
    _LEVELS = [
        (".or.", ".neqv.", ".eqv."),
        (".and.",),
        (".not.",),  # handled in unary
        ("==", "/=", "<", "<=", ">", ">=", ".eq.", ".ne.", ".lt.", ".le.", ".gt.", ".ge."),
        ("+", "-"),
        ("*", "/"),
        ("**",),
    ]

    def parse_expr(self, no_range: bool = False) -> FtExpr:
        e = self._parse_level(0)
        if not no_range and self._at(":"):
            # top-level range inside parens: lo:hi[:step]
            self._advance()
            hi = None if self._at(")") or self._at(",") else self._parse_level(0)
            step = None
            if self._accept(":"):
                step = self._parse_level(0)
            return FtRange(lo=e, hi=hi, step=step, span=e.span)
        return e

    def _parse_level(self, lvl: int) -> FtExpr:
        if lvl >= len(self._LEVELS):
            return self._parse_unary()
        if self._LEVELS[lvl] == (".not.",):
            return self._parse_level(lvl + 1)
        lhs = self._parse_level(lvl + 1)
        while (t := self._peek()) is not None and t.text in self._LEVELS[lvl]:
            self._advance()
            rhs = self._parse_level(lvl + 1)
            lhs = FtBinOp(op=t.text, lhs=lhs, rhs=rhs, span=lhs.span)
        return lhs

    def _parse_unary(self) -> FtExpr:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of expression", self.path, 0, 0)
        if t.text in ("-", "+", ".not."):
            self._advance()
            return FtUnOp(op=t.text, operand=self._parse_unary(), span=SourceSpan(t.file, t.line))
        return self._parse_primary()

    def _parse_primary(self) -> FtExpr:
        t = self._peek()
        if t is None:
            raise ParseError("unexpected end of expression", self.path, 0, 0)
        span = SourceSpan(t.file, t.line)
        if t.type is FtTokenType.INT:
            self._advance()
            return FtLiteral(kind="int", value=t.text, span=span)
        if t.type is FtTokenType.REAL:
            self._advance()
            return FtLiteral(kind="real", value=t.text, span=span)
        if t.type is FtTokenType.STRING:
            self._advance()
            return FtLiteral(kind="string", value=t.text, span=span)
        if t.type is FtTokenType.LOGICAL:
            self._advance()
            return FtLiteral(kind="logical", value=t.text, span=span)
        if t.text == "(":
            self._advance()
            e = self.parse_expr()
            self._expect(")")
            return e
        if t.text == ":":
            # bare section ':' inside an index list
            self._advance()
            hi = None
            if not (self._at(")") or self._at(",")):
                hi = self._parse_level(0)
            return FtRange(lo=None, hi=hi, span=span)
        if t.type in (FtTokenType.IDENT, FtTokenType.KEYWORD):
            self._advance()
            name = t.text
            if self._at("("):
                self._advance()
                args: list[FtExpr] = []
                while not self._at(")"):
                    args.append(self.parse_expr())
                    self._accept(",")
                self._expect(")")
                return FtCallOrIndex(name=name, args=args, span=span)
            return FtIdent(name=name, span=span)
        raise ParseError(f"unexpected token {t.text!r} in expression", t.file, t.line, t.col)


# ---------------------------------------------------------------------------
# post passes
# ---------------------------------------------------------------------------


def _attach_directives(stmts: list[FtStmt]) -> None:
    """Attach each non-end directive to the following statement; drop ends."""
    i = 0
    while i < len(stmts):
        s = stmts[i]
        if isinstance(s, FtDirective) and not s.is_end and not s.body:
            standalone = set(s.directives) & {"barrier", "taskwait", "declare", "routine", "update", "wait"}
            if not standalone and i + 1 < len(stmts):
                nxt = stmts[i + 1]
                if not isinstance(nxt, FtDirective):
                    s.body = [nxt]
                    del stmts[i + 1]
        if isinstance(s, FtDirective) and s.is_end:
            del stmts[i]
            continue
        for attr in ("body", "then", "other"):
            sub = getattr(s, attr, None)
            if isinstance(sub, list):
                _attach_directives(sub)
        if isinstance(s, FtIf):
            for _, blk in s.elifs:
                _attach_directives(blk)
        i += 1


def _resolve_indexing(unit: FtUnit, array_names: set[str]) -> None:
    """Mark FtCallOrIndex nodes as array indexing vs function calls."""

    def walk_expr(e):
        if isinstance(e, FtCallOrIndex):
            if e.is_index is None:
                low = e.name.lower()
                e.is_index = low in array_names and low not in INTRINSICS
            for a in e.args:
                walk_expr(a)
        elif isinstance(e, FtBinOp):
            walk_expr(e.lhs)
            walk_expr(e.rhs)
        elif isinstance(e, FtUnOp):
            walk_expr(e.operand)
        elif isinstance(e, FtRange):
            for x in (e.lo, e.hi, e.step):
                if x is not None:
                    walk_expr(x)

    def walk_stmt(s):
        for attr in ("lhs", "rhs", "cond", "lo", "hi", "step", "code"):
            v = getattr(s, attr, None)
            if isinstance(v, FtExpr):
                walk_expr(v)
        for attr in ("args", "items"):
            v = getattr(s, attr, None)
            if isinstance(v, list):
                for x in v:
                    if isinstance(x, FtExpr):
                        walk_expr(x)
        for attr in ("body", "then", "other"):
            v = getattr(s, attr, None)
            if isinstance(v, list):
                for x in v:
                    walk_stmt(x)
        if isinstance(s, FtIf):
            for c, blk in s.elifs:
                walk_expr(c)
                for x in blk:
                    walk_stmt(x)

    for st in unit.decls + unit.body:
        walk_stmt(st)
    for sub in unit.contains:
        _resolve_indexing(sub, array_names)


def parse_fortran(text: str, path: str = "<memory>", recover: bool = False) -> FtFile:
    """Lex + parse free-form Fortran source.

    ``recover=True`` enables tolerant lexing plus panic-mode parser
    recovery: damaged statements become :class:`FtError` placeholders and
    every problem is reported through :mod:`repro.diag`.
    """
    toks = lex_fortran(text, path, tolerant=recover)
    return FortranParser(toks, path, recover=recover).parse_file()
