"""MiniFortran AST → ``T_sem`` tree (GENERIC/GIMPLE-frontend analogue).

All labels carry an ``ft-`` prefix: Fortran semantic trees live in a
different label namespace than MiniC++ trees, reproducing the paper's
"cross-compiler comparison is not possible" property for ``T_sem``.

The OpenACC finding of §V-B falls out of the directive handling: a GCC
OpenACC directive whose lowering is a single-threaded fallback still
contributes its directive node here (the *source* said something), but the
``T_ir`` lowering adds almost nothing — which is exactly the mismatch the
paper observed.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.fortran.astnodes import (
    FtAllocate,
    FtAssign,
    FtBinOp,
    FtCallOrIndex,
    FtCallStmt,
    FtDecl,
    FtDirective,
    FtDo,
    FtDoConcurrent,
    FtError,
    FtExitCycle,
    FtExpr,
    FtFile,
    FtIdent,
    FtIf,
    FtImplicitNone,
    FtLiteral,
    FtPrint,
    FtRange,
    FtReturn,
    FtStmt,
    FtStop,
    FtUnit,
    FtUnOp,
    FtUse,
    FtWhile,
)
from repro.trees.node import Node


def fortran_to_tree(f: FtFile) -> Node:
    root = Node("ft-file", "tu", None, None, {"path": f.path})
    for u in f.units:
        root.children.append(_unit(u))
    return root


def _unit(u: FtUnit) -> Node:
    n = Node(u.name, "fn" if u.kind in ("subroutine", "function") else "module", None, u.span, {"unit_kind": u.kind})
    n.children.append(Node(f"ft-{u.kind}", "unit-kind", None, u.span))
    for p in u.params:
        n.children.append(Node(p, "param", None, u.span))
    if u.result:
        n.children.append(Node("ft-result", "result", [Node(u.result, "var", None, u.span)], u.span))
    body = Node("ft-body", "stmt", [_stmt(s) for s in u.body], u.span)
    n.children.append(body)
    for sub in u.contains:
        n.children.append(_unit(sub))
    return n


def _stmt(s: FtStmt) -> Node:
    if isinstance(s, FtError):
        # Recovery placeholder: an ordinary labelled leaf, so degraded trees
        # stay TED-comparable (DESIGN.md, error-node contract).
        return Node("error-node", "error", None, s.span)
    if isinstance(s, FtDecl):
        n = Node(f"ft-decl:{s.base_type}", "stmt", None, s.span, {"kind": s.kind or ""})
        for a in s.attrs:
            n.children.append(Node(f"ft-attr:{a.name}", "decl-attr", None, s.span))
        for name, dims, init in s.entities:
            kids = [_expr(d) for d in dims]
            if init is not None:
                kids.append(Node("ft-init", "init", [_expr(init)], s.span))
            en = Node(name, "var", kids, s.span)
            n.children.append(en)
        return n
    if isinstance(s, FtImplicitNone):
        return Node("ft-implicit-none", "stmt", None, s.span)
    if isinstance(s, FtUse):
        return Node("ft-use", "stmt", [Node(s.module, "module", None, s.span)], s.span)
    if isinstance(s, FtAssign):
        label = "ft-array-assign" if _is_array_expr(s.lhs) else "ft-assign"
        return Node(label, "assign", [_expr(s.lhs), _expr(s.rhs)], s.span)
    if isinstance(s, FtCallStmt):
        return Node(s.name, "call", [_expr(a) for a in s.args], s.span)
    if isinstance(s, FtPrint):
        return Node("ft-print", "stmt", [_expr(e) for e in s.items], s.span)
    if isinstance(s, FtAllocate):
        label = "ft-deallocate" if s.dealloc else "ft-allocate"
        return Node(label, "alloc", [_expr(i) for i in s.items], s.span)
    if isinstance(s, FtDo):
        kids = [
            Node(s.var, "var", None, s.span),
            _expr(s.lo),
            _expr(s.hi),
        ]
        if s.step is not None:
            kids.append(_expr(s.step))
        kids.append(Node("ft-body", "stmt", [_stmt(x) for x in s.body], s.span))
        return Node("ft-do", "stmt", kids, s.span)
    if isinstance(s, FtDoConcurrent):
        kids = [
            Node(s.var, "var", None, s.span),
            _expr(s.lo),
            _expr(s.hi),
            Node("ft-body", "stmt", [_stmt(x) for x in s.body], s.span),
        ]
        # do concurrent is a *language-level* parallel construct: dedicated
        # semantic token, like OpenMP pragma nodes on the C++ side.
        return Node("ft-do-concurrent", "parallel-construct", kids, s.span)
    if isinstance(s, FtWhile):
        return Node(
            "ft-do-while",
            "stmt",
            [_expr(s.cond), Node("ft-body", "stmt", [_stmt(x) for x in s.body], s.span)],
            s.span,
        )
    if isinstance(s, FtIf):
        kids = [_expr(s.cond), Node("ft-then", "stmt", [_stmt(x) for x in s.then], s.span)]
        for c, blk in s.elifs:
            kids.append(
                Node("ft-elseif", "stmt", [_expr(c)] + [_stmt(x) for x in blk], s.span)
            )
        if s.other:
            kids.append(Node("ft-else", "stmt", [_stmt(x) for x in s.other], s.span))
        return Node("ft-if", "stmt", kids, s.span)
    if isinstance(s, FtReturn):
        return Node("ft-return", "stmt", None, s.span)
    if isinstance(s, FtStop):
        kids = [_expr(s.code)] if s.code is not None else []
        return Node("ft-stop", "stmt", kids, s.span)
    if isinstance(s, FtExitCycle):
        return Node(f"ft-{s.kind}", "stmt", None, s.span)
    if isinstance(s, FtDirective):
        label = f"ft-{s.family}-{'-'.join(s.directives)}" if s.directives else f"ft-{s.family}"
        n = Node(label, f"{s.family}-directive", None, s.span)
        dirs = set(s.directives)
        for cname, args in s.clauses:
            cn = Node(f"clause:{cname}", f"{s.family}-clause", None, s.span)
            for a in args:
                cn.children.append(Node(a, "clause-arg", None, s.span))
            if cname == "reduction":
                for a in args:
                    cn.children.append(Node("reduction-init", f"{s.family}-implicit", None, s.span))
                    cn.children.append(Node("reduction-combine", f"{s.family}-implicit", None, s.span))
            n.children.append(cn)
        # Implicit semantics: GCC's GIMPLE carries OpenMP tokens too (§V-C);
        # OpenACC under GCC adds almost nothing (the §V-B QoI finding), so
        # acc directives contribute only their surface nodes.
        implicit: list[str] = []
        if s.family == "omp":
            if "parallel" in dirs:
                implicit += ["thread-team", "implicit-barrier", "data-sharing"]
            if "do" in dirs or "distribute" in dirs:
                implicit += ["iteration-space", "loop-schedule"]
            if "simd" in dirs:
                implicit += ["simd-lanes"]
            if "target" in dirs:
                implicit += ["device-data-environment", "target-task", "host-device-mapping"]
            if "teams" in dirs:
                implicit += ["league-of-teams"]
            if "task" in dirs or "taskloop" in dirs:
                implicit += ["task-data-environment", "implicit-taskgroup"]
        for name in implicit:
            n.children.append(Node(name, f"{s.family}-implicit", None, s.span))
        if s.body:
            captured = Node("captured-stmt", f"{s.family}-captured", [_stmt(b) for b in s.body], s.span)
            n.children.append(captured)
        return n
    return Node(type(s).__name__, "stmt", None, s.span)


def _is_array_expr(e: Optional[FtExpr]) -> bool:
    if isinstance(e, FtCallOrIndex):
        return bool(e.is_index) and any(isinstance(a, FtRange) for a in e.args)
    return False


def _expr(e: Optional[FtExpr]) -> Node:
    if e is None:
        return Node("ft-null", "expr")
    if isinstance(e, FtIdent):
        return Node(e.name, "var", None, e.span)
    if isinstance(e, FtLiteral):
        return Node(e.value, "lit", None, e.span, {"lit_kind": e.kind})
    if isinstance(e, FtBinOp):
        return Node(f"ft-binop:{e.op}", "binop", [_expr(e.lhs), _expr(e.rhs)], e.span)
    if isinstance(e, FtUnOp):
        return Node(f"ft-unop:{e.op}", "unop", [_expr(e.operand)], e.span)
    if isinstance(e, FtRange):
        kids = [_expr(e.lo) if e.lo else Node("ft-lbound", "expr"),
                _expr(e.hi) if e.hi else Node("ft-ubound", "expr")]
        if e.step is not None:
            kids.append(_expr(e.step))
        return Node("ft-section", "expr", kids, e.span)
    if isinstance(e, FtCallOrIndex):
        if e.is_index:
            return Node("ft-index", "expr", [Node(e.name, "var", None, e.span)] + [_expr(a) for a in e.args], e.span)
        return Node(e.name, "call", [_expr(a) for a in e.args], e.span)
    return Node(type(e).__name__, "expr", None, e.span)
