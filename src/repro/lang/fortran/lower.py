"""MiniFortran → MiniIR lowering (the GFortran Low-GIMPLE analogue).

Behavioural choices match the paper's §V-B observations:

* whole-array / section assignments lower to elementwise loops (GCC's
  scalarisation),
* ``do concurrent`` lowers as a plain countable loop on the host,
* host **OpenMP** directives outline + ``__kmpc_fork_call`` exactly like
  the C++ side,
* **OpenACC** lowers the region essentially serially behind a single
  ``GOACC_parallel_keyed`` veneer — the single-threaded quality-of-
  implementation behaviour the BabelStream-Fortran authors reported.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.ir import IRBlock, IRFunction, IRGlobal, IRInstr, IRModule
from repro.compiler.lower import CompileResult, CompileOptions
from repro.lang.fortran.astnodes import (
    FtAllocate,
    FtAssign,
    FtBinOp,
    FtCallOrIndex,
    FtCallStmt,
    FtDecl,
    FtDirective,
    FtDo,
    FtDoConcurrent,
    FtError,
    FtExitCycle,
    FtExpr,
    FtFile,
    FtIdent,
    FtIf,
    FtLiteral,
    FtPrint,
    FtRange,
    FtReturn,
    FtStmt,
    FtStop,
    FtUnit,
    FtUnOp,
    FtWhile,
)

_BIN_OPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "**": "pow",
    "==": "cmp.eq",
    ".eq.": "cmp.eq",
    "/=": "cmp.ne",
    ".ne.": "cmp.ne",
    "<": "cmp.lt",
    ".lt.": "cmp.lt",
    "<=": "cmp.le",
    ".le.": "cmp.le",
    ">": "cmp.gt",
    ".gt.": "cmp.gt",
    ">=": "cmp.ge",
    ".ge.": "cmp.ge",
    ".and.": "land",
    ".or.": "lor",
    ".eqv.": "cmp.eq",
    ".neqv.": "cmp.ne",
}


def lower_fortran(f: FtFile, options: Optional[CompileOptions] = None) -> CompileResult:
    opts = options or CompileOptions(name=f.path)
    lw = _FtLowerer(opts)
    for u in f.units:
        lw.lower_unit(u)
    return CompileResult(lw.host, lw.devices, opts)


class _FtLowerer:
    def __init__(self, opts: CompileOptions):
        self.opts = opts
        self.host = IRModule(opts.name, "host")
        self.devices: list[IRModule] = []
        self._device: Optional[IRModule] = None
        self.outline_n = 0
        self.kernel_n = 0
        self.fn: Optional[IRFunction] = None
        self.block: Optional[IRBlock] = None
        self.module: Optional[IRModule] = None
        self.reg_n = 0
        self.blk_n = 0
        self.vars: dict[str, str] = {}
        self.loops: list[tuple[str, str]] = []  # (break label, cycle label)

    # -- plumbing (mirrors the C++ lowerer) ---------------------------------
    def fresh_reg(self) -> str:
        self.reg_n += 1
        return f"%{self.reg_n}"

    def fresh_block(self, hint: str) -> IRBlock:
        assert self.fn is not None
        self.blk_n += 1
        return self.fn.new_block(f"{hint}.{self.blk_n}")

    def emit(self, op: str, operands: list[str], result: bool = False, span=None) -> str:
        assert self.block is not None
        res = self.fresh_reg() if result else ""
        self.block.add(IRInstr(op, operands, res, span))
        return res

    # -- units -----------------------------------------------------------------
    def lower_unit(self, u: FtUnit, module: Optional[IRModule] = None) -> None:
        module = module or self.host
        saved = (self.fn, self.block, self.module, self.reg_n, self.blk_n, self.vars, self.loops)
        fn = IRFunction(u.name, list(u.params), span=u.span)
        module.functions.append(fn)
        self.fn = fn
        self.module = module
        self.block = fn.new_block("entry")
        self.reg_n = 0
        self.blk_n = 0
        self.vars = {}
        self.loops = []
        for p in u.params:
            slot = self.emit("alloca", [p], result=True, span=u.span)
            self.emit("store", [f"%{p}", slot], span=u.span)
            self.vars[p] = slot
        for s in u.body:
            if self.block is None or self.block.terminated:
                break
            self.stmt(s)
        if self.block is not None and not self.block.terminated:
            self.block.add(IRInstr("ret", []))
        self.fn, self.block, self.module, self.reg_n, self.blk_n, self.vars, self.loops = saved
        for sub in u.contains:
            self.lower_unit(sub, module)

    # -- statements ---------------------------------------------------------------
    def stmt(self, s: FtStmt) -> None:
        if self.block is None:
            return
        if isinstance(s, FtDecl):
            for name, dims, init in s.entities:
                slot = self.emit("alloca", [name], result=True, span=s.span)
                self.vars[name.lower()] = slot
                if init is not None:
                    self.emit("store", [self.expr(init), slot], span=s.span)
        elif isinstance(s, FtAssign):
            self.lower_assign(s)
        elif isinstance(s, FtCallStmt):
            args = [self.expr(a) for a in s.args]
            self.emit("call", [f"@{s.name}", *args], span=s.span)
            assert self.module is not None
            if self.module.function(s.name) is None:
                self.module.declare(s.name, len(args))
        elif isinstance(s, FtPrint):
            vals = [self.expr(e) for e in s.items]
            self.emit("call", ["@_gfortran_st_write", *vals], span=s.span)
            assert self.module is not None
            self.module.declare("_gfortran_st_write", 1)
        elif isinstance(s, FtAllocate):
            sym = "@_gfortran_deallocate" if s.dealloc else "@_gfortran_allocate"
            for item in s.items:
                dims = [self.expr(a) for a in item.args]
                self.emit("call", [sym, self.addr(item.name), *dims], span=s.span)
            assert self.module is not None
            self.module.declare(sym[1:], 2)
        elif isinstance(s, FtDo):
            self.lower_counted_loop(s.var, s.lo, s.hi, s.step, s.body, s.span)
        elif isinstance(s, FtDoConcurrent):
            # host lowering: plain countable loop (annotated parallelisable)
            self.emit("call", ["@llvm.loop.parallel_accesses"], span=s.span)
            assert self.module is not None
            self.module.declare("llvm.loop.parallel_accesses", 0)
            self.lower_counted_loop(s.var, s.lo, s.hi, None, s.body, s.span)
        elif isinstance(s, FtWhile):
            self.lower_while(s)
        elif isinstance(s, FtIf):
            self.lower_if(s)
        elif isinstance(s, FtReturn):
            self.emit("ret", [], span=s.span)
        elif isinstance(s, FtStop):
            code = self.expr(s.code) if s.code is not None else "const:0"
            self.emit("call", ["@_gfortran_stop", code], span=s.span)
            self.emit("ret", [], span=s.span)
            assert self.module is not None
            self.module.declare("_gfortran_stop", 1)
        elif isinstance(s, FtExitCycle):
            if self.loops:
                target = self.loops[-1][0] if s.kind == "exit" else self.loops[-1][1]
                self.emit("br", [target], span=s.span)
        elif isinstance(s, FtDirective):
            self.lower_directive(s)
        elif isinstance(s, FtError):
            # Recovery placeholder: keep an aligned marker in T_ir so the
            # degraded region costs the same TED on every tree view.
            self.emit("error-node", [], span=s.span)

    def lower_assign(self, s: FtAssign) -> None:
        if self._assign_is_array(s):
            self._lower_array_assign(s)
            return
        addr = self.lvalue(s.lhs)
        val = self.expr(s.rhs)
        self.emit("store", [val, addr], span=s.span)

    def _assign_is_array(self, s: FtAssign) -> bool:
        lhs = s.lhs
        if isinstance(lhs, FtCallOrIndex) and lhs.is_index:
            return any(isinstance(a, FtRange) for a in lhs.args)
        return False

    def _lower_array_assign(self, s: FtAssign) -> None:
        """Scalarise: cond/body/inc loop with elementwise gep/load/store."""
        cond_b = self.fresh_block("arr.cond")
        body_b = self.fresh_block("arr.body")
        end_b = self.fresh_block("arr.end")
        idx = self.emit("alloca", ["arr.idx"], result=True, span=s.span)
        self.emit("store", ["const:1", idx], span=s.span)
        bound = self.emit("call", ["@_gfortran_size"], result=True, span=s.span)
        assert self.module is not None
        self.module.declare("_gfortran_size", 1)
        self.emit("br", [cond_b.label], span=s.span)
        self.block = cond_b
        cur = self.emit("load", [idx], result=True, span=s.span)
        c = self.emit("cmp.le", [cur, bound], result=True, span=s.span)
        self.emit("condbr", [c, body_b.label, end_b.label])
        self.block = body_b
        # elementwise rhs then store to lhs element
        val = self.expr(s.rhs)
        assert isinstance(s.lhs, FtCallOrIndex)
        base = self.addr(s.lhs.name)
        ptr = self.emit("gep", [base, cur], result=True, span=s.span)
        self.emit("store", [val, ptr], span=s.span)
        nxt = self.emit("add", [cur, "const:1"], result=True, span=s.span)
        self.emit("store", [nxt, idx], span=s.span)
        self.emit("br", [cond_b.label])
        self.block = end_b

    def lower_counted_loop(self, var, lo, hi, step, body, span) -> None:
        slot = self.vars.get(var.lower())
        if slot is None:
            slot = self.emit("alloca", [var], result=True, span=span)
            self.vars[var.lower()] = slot
        self.emit("store", [self.expr(lo), slot], span=span)
        cond_b = self.fresh_block("do.cond")
        body_b = self.fresh_block("do.body")
        inc_b = self.fresh_block("do.inc")
        end_b = self.fresh_block("do.end")
        self.emit("br", [cond_b.label], span=span)
        self.block = cond_b
        cur = self.emit("load", [slot], result=True, span=span)
        c = self.emit("cmp.le", [cur, self.expr(hi)], result=True, span=span)
        self.emit("condbr", [c, body_b.label, end_b.label])
        self.block = body_b
        self.loops.append((end_b.label, inc_b.label))
        for st in body:
            if self.block is None or self.block.terminated:
                break
            self.stmt(st)
        self.loops.pop()
        if not self.block.terminated:
            self.emit("br", [inc_b.label])
        self.block = inc_b
        cur2 = self.emit("load", [slot], result=True, span=span)
        stepv = self.expr(step) if step is not None else "const:1"
        nxt = self.emit("add", [cur2, stepv], result=True, span=span)
        self.emit("store", [nxt, slot], span=span)
        self.emit("br", [cond_b.label])
        self.block = end_b

    def lower_while(self, s: FtWhile) -> None:
        cond_b = self.fresh_block("while.cond")
        body_b = self.fresh_block("while.body")
        end_b = self.fresh_block("while.end")
        self.emit("br", [cond_b.label], span=s.span)
        self.block = cond_b
        c = self.expr(s.cond)
        self.emit("condbr", [c, body_b.label, end_b.label])
        self.block = body_b
        self.loops.append((end_b.label, cond_b.label))
        for st in s.body:
            if self.block is None or self.block.terminated:
                break
            self.stmt(st)
        self.loops.pop()
        if not self.block.terminated:
            self.emit("br", [cond_b.label])
        self.block = end_b

    def lower_if(self, s: FtIf) -> None:
        c = self.expr(s.cond)
        then_b = self.fresh_block("if.then")
        merge_b = self.fresh_block("if.end")
        else_b = self.fresh_block("if.else") if (s.other or s.elifs) else merge_b
        self.emit("condbr", [c, then_b.label, else_b.label], span=s.span)
        self.block = then_b
        for st in s.then:
            if self.block.terminated:
                break
            self.stmt(st)
        if not self.block.terminated:
            self.emit("br", [merge_b.label])
        if s.other or s.elifs:
            self.block = else_b
            for ec, blk in s.elifs:
                inner = FtIf(cond=ec, then=blk, span=s.span)
                self.lower_if(inner)
            for st in s.other:
                if self.block.terminated:
                    break
                self.stmt(st)
            if not self.block.terminated:
                self.emit("br", [merge_b.label])
        self.block = merge_b

    # -- directives ---------------------------------------------------------------
    def device_module(self) -> IRModule:
        if self._device is None:
            m = IRModule(f"{self.opts.name}.omp-device", "device:omp")
            m.globals.append(IRGlobal(".omp_offloading.img", "fatbin", "section .llvm.offloading"))
            m.globals.append(IRGlobal(".offload_entries", "const"))
            m.declare("__tgt_register_requires", 1)
            self.devices.append(m)
            self._device = m
        return self._device

    def _outline(self, body: list[FtStmt], name: str, module: IRModule, kernel: bool = False) -> None:
        saved = (self.fn, self.block, self.module, self.reg_n, self.blk_n, self.vars, self.loops)
        fn = IRFunction(name, [], attrs=(["kernel"] if kernel else []))
        module.functions.append(fn)
        self.fn = fn
        self.module = module
        self.block = fn.new_block("entry")
        self.reg_n = 0
        self.blk_n = 0
        self.vars = dict(saved[5])
        self.loops = []
        for st in body:
            if self.block is None or self.block.terminated:
                break
            self.stmt(st)
        if self.block is not None and not self.block.terminated:
            self.block.add(IRInstr("ret", []))
        self.fn, self.block, self.module, self.reg_n, self.blk_n, self.vars, self.loops = saved

    def lower_directive(self, s: FtDirective) -> None:
        assert self.module is not None
        self.outline_n += 1
        base = self.fn.name if self.fn is not None else "unit"
        if s.family == "acc":
            # GCC OpenACC host fallback: serial region + one veneer call.
            name = f"{base}.acc_outlined.{self.outline_n}"
            self._outline(s.body, name, self.host)
            self.emit("call", ["@GOACC_parallel_keyed", f"@{name}"], span=s.span)
            self.host.declare("GOACC_parallel_keyed", 2)
            return
        if "target" in s.directives:
            self.kernel_n += 1
            dev = self.device_module()
            name = f"__omp_offloading_ft_{self.kernel_n:02d}_{base}"
            self._outline(s.body, name, dev, kernel=True)
            self.emit("call", ["@__tgt_target_kernel", f"@{name}.region_id"], span=s.span)
            self.host.globals.append(IRGlobal(f"{name}.region_id", "const"))
            self.host.declare("__tgt_target_kernel", 2)
            return
        if set(s.directives) & {"barrier", "taskwait"}:
            self.emit("call", ["@__kmpc_barrier"], span=s.span)
            self.host.declare("__kmpc_barrier", 0)
            return
        name = f"{base}.omp_outlined.{self.outline_n}"
        self._outline(s.body, name, self.host)
        self.emit("call", ["@__kmpc_fork_call", f"@{name}"], span=s.span)
        self.host.declare("__kmpc_fork_call", 2)
        if any(c[0] == "reduction" for c in s.clauses):
            self.emit("call", ["@__kmpc_reduce_nowait"], span=s.span)
            self.host.declare("__kmpc_reduce_nowait", 1)
        if "taskloop" in s.directives:
            self.emit("call", ["@__kmpc_taskloop"], span=s.span)
            self.host.declare("__kmpc_taskloop", 1)

    # -- expressions --------------------------------------------------------------
    def addr(self, name: str) -> str:
        slot = self.vars.get(name.lower())
        return slot if slot is not None else f"@{name}"

    def lvalue(self, e: Optional[FtExpr]) -> str:
        if isinstance(e, FtIdent):
            return self.addr(e.name)
        if isinstance(e, FtCallOrIndex):
            base = self.addr(e.name)
            idxs = [self.expr(a) for a in e.args]
            return self.emit("gep", [base, *idxs], result=True, span=e.span)
        v = self.expr(e)
        slot = self.emit("alloca", ["tmp"], result=True)
        self.emit("store", [v, slot])
        return slot

    def expr(self, e: Optional[FtExpr]) -> str:
        if e is None or self.block is None:
            return "undef"
        if isinstance(e, FtLiteral):
            return f"const:{e.value}"
        if isinstance(e, FtIdent):
            return self.emit("load", [self.addr(e.name)], result=True, span=e.span)
        if isinstance(e, FtBinOp):
            lhs = self.expr(e.lhs)
            rhs = self.expr(e.rhs)
            return self.emit(_BIN_OPS.get(e.op, "bin"), [lhs, rhs], result=True, span=e.span)
        if isinstance(e, FtUnOp):
            v = self.expr(e.operand)
            opmap = {"-": "neg", "+": "pos", ".not.": "not"}
            if e.op == "+":
                return v
            return self.emit(opmap.get(e.op, "unop"), [v], result=True, span=e.span)
        if isinstance(e, FtRange):
            # inside an elementwise loop a section reads the current element;
            # conservatively load through gep with the loop register elided.
            return "%section"
        if isinstance(e, FtCallOrIndex):
            if e.is_index:
                base = self.addr(e.name)
                idxs = [self.expr(a) for a in e.args]
                ptr = self.emit("gep", [base, *idxs], result=True, span=e.span)
                return self.emit("load", [ptr], result=True, span=e.span)
            args = [self.expr(a) for a in e.args]
            assert self.module is not None
            if self.module.function(e.name) is None:
                self.module.declare(e.name, len(args))
            return self.emit("call", [f"@{e.name}", *args], result=True, span=e.span)
        return "undef"
