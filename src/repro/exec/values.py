"""Runtime value representations for the MiniC++ interpreter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class Cell:
    """A mutable variable slot. Reference captures/aliases share cells."""

    __slots__ = ("value",)

    def __init__(self, value: Any = 0):
        self.value = value

    def __repr__(self) -> str:
        return f"Cell({self.value!r})"


class Buffer:
    """Backing storage for ``new[]`` / device allocations."""

    __slots__ = ("data", "label")

    def __init__(self, size: int, fill: float = 0.0, label: str = ""):
        self.data = [fill] * size
        self.label = label

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Buffer({self.label or len(self.data)})"


class Pointer:
    """A (buffer, offset) pair supporting arithmetic and indexing."""

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer: Buffer, offset: int = 0):
        self.buffer = buffer
        self.offset = offset

    def load(self, index: int = 0) -> Any:
        return self.buffer.data[self.offset + index]

    def store(self, index: int, value: Any) -> None:
        self.buffer.data[self.offset + index] = value

    def add(self, n: int) -> "Pointer":
        return Pointer(self.buffer, self.offset + int(n))

    def __repr__(self) -> str:
        return f"Pointer({self.buffer!r}+{self.offset})"


@dataclass
class Lambda:
    """A closure: the AST lambda plus its captured environment."""

    node: Any  # LambdaExpr
    env: Any  # Environment at capture time (shared for [&], copied for [=])
    this: Optional["StructVal"] = None


@dataclass
class StructVal:
    """An instance of a user-defined (or intrinsic) class."""

    class_name: str
    fields: dict[str, Cell] = field(default_factory=dict)
    #: intrinsic payload (e.g. the range size of a sycl::range)
    payload: dict[str, Any] = field(default_factory=dict)

    def field_cell(self, name: str) -> Cell:
        if name not in self.fields:
            self.fields[name] = Cell(0)
        return self.fields[name]


class Environment:
    """Lexically chained scopes of name → Cell."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Environment"] = None):
        self.vars: dict[str, Cell] = {}
        self.parent = parent

    def define(self, name: str, value: Any) -> Cell:
        c = Cell(value)
        self.vars[name] = c
        return c

    def bind_cell(self, name: str, cell: Cell) -> None:
        self.vars[name] = cell

    def lookup(self, name: str) -> Optional[Cell]:
        env: Optional[Environment] = self
        while env is not None:
            c = env.vars.get(name)
            if c is not None:
                return c
            env = env.parent
        return None

    def snapshot(self) -> "Environment":
        """Flattened by-value copy (for ``[=]`` captures)."""
        flat = Environment()
        seen: set[str] = set()
        env: Optional[Environment] = self
        while env is not None:
            for k, c in env.vars.items():
                if k not in seen:
                    flat.vars[k] = Cell(c.value)
                    seen.add(k)
            env = env.parent
        return flat
