"""Intrinsic runtime for the parallel-model API surfaces.

Maps every runtime entry point the corpus uses — CUDA/HIP memory+launch,
SYCL queues/buffers/accessors/reductions, Kokkos views and patterns, TBB
ranges and algorithms, C++ StdPar algorithms, OpenMP runtime queries, and
libm — onto serial Python semantics. User code (kernels, lambdas, loop
bodies) is always interpreted, so coverage reflects real execution of the
*codebase*; only the runtime layers are intrinsic, exactly as a real
coverage run never instruments ``libcudart``.

Registration is name-based with qualified-name preference, so corpus
headers can declare the API (for ``T_sem``) while execution lands here.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from repro import obs
from repro.exec.values import Buffer, Cell, Pointer, StructVal
from repro.util.errors import InterpreterError

# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------

_FUNCTIONS: dict[str, Callable] = {}
_CTORS: dict[str, Callable] = {}
_METHODS: dict[tuple[str, str], Callable] = {}
_CONSTANTS: dict[str, Any] = {}
#: special forms: receive (interp, env, template_args, arg_exprs) unevaluated
#: — needed by APIs with reference out-parameters (Kokkos reductions).
_SPECIALS: dict[str, Callable] = {}


def _short(name: str) -> str:
    return name.rsplit("::", 1)[-1]


def function(name: str) -> Optional[Callable]:
    f = _FUNCTIONS.get(name)
    if f is not None:
        return f
    return _FUNCTIONS.get(_short(name))


def ctor(name: str) -> Optional[Callable]:
    c = _CTORS.get(name)
    if c is not None:
        return c
    return _CTORS.get(_short(name))


def method(class_name: str, member: str) -> Optional[Callable]:
    m = _METHODS.get((class_name, member))
    if m is not None:
        return m
    return _METHODS.get((_short(class_name), member))


def constant(name: str) -> Optional[Any]:
    return _CONSTANTS.get(name, _CONSTANTS.get(_short(name)))


def special(name: str) -> Optional[Callable]:
    s = _SPECIALS.get(name)
    if s is not None:
        return s
    return _SPECIALS.get(_short(name))


def member_value(struct: StructVal, member: str) -> Optional[Any]:
    return None  # fields/payload already checked by the interpreter


def register_function(name: str):
    def deco(fn):
        _FUNCTIONS[name] = fn
        return fn

    return deco


def register_ctor(name: str):
    def deco(fn):
        _CTORS[name] = fn
        return fn

    return deco


def register_method(class_name: str, member: str):
    def deco(fn):
        _METHODS[(class_name, member)] = fn
        return fn

    return deco


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _as_ptr(v: Any) -> Pointer:
    if isinstance(v, Pointer):
        return v
    if isinstance(v, StructVal) and "ptr" in v.payload:
        return v.payload["ptr"]
    raise InterpreterError(f"expected pointer, got {type(v).__name__}")


def _elems(nbytes: Any) -> int:
    """Byte counts arrive as n * sizeof(T) with sizeof == 8."""
    return int(nbytes) // 8


def _invoke(interp, f: Any, args: list[Any]) -> Any:
    return interp.call_value(f, args)


# ---------------------------------------------------------------------------
# libm / libc / OpenMP runtime
# ---------------------------------------------------------------------------

for _name, _fn in {
    "sqrt": math.sqrt,
    "fabs": abs,
    "abs": abs,
    "exp": math.exp,
    "log": math.log,
    "pow": math.pow,
    "sin": math.sin,
    "cos": math.cos,
    "floor": math.floor,
    "ceil": math.ceil,
}.items():
    _FUNCTIONS[_name] = (lambda f: lambda interp, targs, args: f(*[float(a) for a in args]))(_fn)

_FUNCTIONS["fmin"] = lambda interp, targs, args: min(args)
_FUNCTIONS["fmax"] = lambda interp, targs, args: max(args)
_FUNCTIONS["std::min"] = lambda interp, targs, args: min(args)
_FUNCTIONS["std::max"] = lambda interp, targs, args: max(args)


@register_function("printf")
def _printf(interp, targs, args):
    fmt = str(args[0]) if args else ""
    text = fmt.replace("%d", "{}").replace("%f", "{}").replace("%g", "{}").replace("%s", "{}").replace("%e", "{}").replace("\\n", "\n")
    try:
        interp.stdout.append(text.format(*args[1:]))
    except (IndexError, KeyError, ValueError):
        # Format/argument mismatch in corpus code: keep the raw format
        # string in the transcript and count the degradation.
        obs.add("exec.printf.format_errors")
        interp.stdout.append(fmt)
    return len(args)


@register_function("fprintf")
def _fprintf(interp, targs, args):
    return _printf(interp, targs, args[1:])


@register_function("exit")
def _exit(interp, targs, args):
    raise InterpreterError(f"program called exit({args[0] if args else 0})")


_FUNCTIONS["omp_get_num_threads"] = lambda interp, targs, args: 1
_FUNCTIONS["omp_get_max_threads"] = lambda interp, targs, args: 1
_FUNCTIONS["omp_get_thread_num"] = lambda interp, targs, args: 0
_FUNCTIONS["omp_get_wtime"] = lambda interp, targs, args: float(interp.steps) * 1e-9

_CONSTANTS["std::execution::par_unseq"] = "par_unseq"
_CONSTANTS["std::execution::par"] = "par"
_CONSTANTS["std::execution::seq"] = "seq"
_CONSTANTS["cudaMemcpyHostToDevice"] = 1
_CONSTANTS["cudaMemcpyDeviceToHost"] = 2
_CONSTANTS["hipMemcpyHostToDevice"] = 1
_CONSTANTS["hipMemcpyDeviceToHost"] = 2
_CONSTANTS["cudaSuccess"] = 0
_CONSTANTS["hipSuccess"] = 0
_CONSTANTS["read_only"] = 1
_CONSTANTS["write_only"] = 2
_CONSTANTS["read_write"] = 3
_CONSTANTS["sycl::read_only"] = 1
_CONSTANTS["sycl::write_only"] = 2
_CONSTANTS["sycl::read_write"] = 3

# ---------------------------------------------------------------------------
# CUDA / HIP runtime
# ---------------------------------------------------------------------------


def _gpu_malloc(interp, targs, args):
    cell, nbytes = args[0], args[1]
    if not isinstance(cell, Cell):
        raise InterpreterError("cudaMalloc needs &pointer")
    cell.value = Pointer(Buffer(_elems(nbytes), label="device"))
    return 0


def _gpu_memcpy(interp, targs, args):
    dst = _as_ptr(args[0])
    src = _as_ptr(args[1])
    n = _elems(args[2])
    for i in range(n):
        dst.store(i, src.load(i))
    return 0


_FUNCTIONS["cudaMalloc"] = _gpu_malloc
_FUNCTIONS["hipMalloc"] = _gpu_malloc
_FUNCTIONS["cudaMemcpy"] = _gpu_memcpy
_FUNCTIONS["hipMemcpy"] = _gpu_memcpy
_FUNCTIONS["cudaFree"] = lambda interp, targs, args: 0
_FUNCTIONS["hipFree"] = lambda interp, targs, args: 0
_FUNCTIONS["cudaDeviceSynchronize"] = lambda interp, targs, args: 0
_FUNCTIONS["hipDeviceSynchronize"] = lambda interp, targs, args: 0
_FUNCTIONS["cudaMallocManaged"] = _gpu_malloc
_FUNCTIONS["hipMallocManaged"] = _gpu_malloc


@register_function("hipLaunchKernelGGL")
def _hip_launch(interp, targs, args):
    """HIP's macro-style launch: (kernel, grid, block, shmem, stream, ...)."""
    kernel = args[0]
    grid = int(args[1])
    block = int(args[2])
    kargs = args[5:]
    from repro.exec.values import Environment

    for b in range(grid):
        for t in range(block):
            kenv = Environment(interp.globals)
            kenv.define("blockIdx", StructVal("dim3", {"x": Cell(b)}))
            kenv.define("threadIdx", StructVal("dim3", {"x": Cell(t)}))
            kenv.define("blockDim", StructVal("dim3", {"x": Cell(block)}))
            kenv.define("gridDim", StructVal("dim3", {"x": Cell(grid)}))
            saved = interp.globals
            interp.globals = kenv
            try:
                interp.call_value(kernel, list(kargs))
            finally:
                interp.globals = saved
    return 0


@register_ctor("dim3")
def _dim3(interp, targs, args):
    return int(args[0]) if args else 1


# ---------------------------------------------------------------------------
# SYCL
# ---------------------------------------------------------------------------


@register_ctor("sycl::queue")
def _sycl_queue(interp, targs, args):
    return StructVal("sycl::queue")


@register_ctor("sycl::range")
def _sycl_range(interp, targs, args):
    size = int(args[0]) if args else 0
    return StructVal("sycl::range", payload={"size": size})


@register_ctor("sycl::id")
def _sycl_id(interp, targs, args):
    return StructVal("sycl::id", payload={"index": int(args[0]) if args else 0})


@register_ctor("sycl::buffer")
def _sycl_buffer(interp, targs, args):
    host = _as_ptr(args[0])
    size = args[1].payload["size"] if len(args) > 1 and isinstance(args[1], StructVal) else len(host.buffer)
    return StructVal("sycl::buffer", payload={"ptr": host, "size": size})


@register_ctor("sycl::accessor")
def _sycl_accessor(interp, targs, args):
    buf = args[0]
    if not (isinstance(buf, StructVal) and "ptr" in buf.payload):
        raise InterpreterError("accessor over non-buffer")
    return StructVal("sycl::accessor", payload={"ptr": buf.payload["ptr"], "size": buf.payload.get("size", 0)})


@register_ctor("sycl::reduction")
def _sycl_reduction(interp, targs, args):
    target = args[0]
    return StructVal("sycl::reduction", payload={"target": target})


@register_ctor("sycl::plus")
def _sycl_plus(interp, targs, args):
    return StructVal("sycl::plus", payload={"fn": lambda a, b: a + b})


@register_function("sycl::malloc_shared")
def _sycl_malloc_shared(interp, targs, args):
    n = int(args[0])
    return Pointer(Buffer(n, label="usm"))


@register_function("sycl::malloc_device")
def _sycl_malloc_device(interp, targs, args):
    return _sycl_malloc_shared(interp, targs, args)


@register_function("sycl::free")
def _sycl_free(interp, targs, args):
    return None


def _iterate_kernel(interp, size: int, fn: Any, reduction: Optional[StructVal] = None):
    if reduction is not None:
        acc = Cell(0.0)
        for i in range(size):
            idx = StructVal("sycl::id", payload={"index": i})
            interp.call_value(fn, [idx, acc])
        target = reduction.payload["target"]
        if isinstance(target, Pointer):
            target.store(0, target.load(0) + acc.value)
        elif isinstance(target, Cell):
            target.value = target.value + acc.value
        return None
    for i in range(size):
        idx = StructVal("sycl::id", payload={"index": i})
        interp.call_value(fn, [idx])
    return None


def _range_size(v: Any) -> int:
    if isinstance(v, StructVal) and "size" in v.payload:
        return int(v.payload["size"])
    return int(v)


@register_method("sycl::queue", "parallel_for")
def _q_parallel_for(interp, self_val, args):
    rng = _range_size(args[0])
    if len(args) == 3:
        return _iterate_kernel(interp, rng, args[2], reduction=args[1])
    return _iterate_kernel(interp, rng, args[1])


@register_method("sycl::handler", "parallel_for")
def _h_parallel_for(interp, self_val, args):
    return _q_parallel_for(interp, self_val, args)


@register_method("sycl::queue", "single_task")
def _q_single_task(interp, self_val, args):
    return interp.call_value(args[0], [])


@register_method("sycl::handler", "single_task")
def _h_single_task(interp, self_val, args):
    return interp.call_value(args[0], [])


@register_method("sycl::queue", "submit")
def _q_submit(interp, self_val, args):
    handler = StructVal("sycl::handler")
    interp.call_value(args[0], [handler])
    return self_val


@register_method("sycl::queue", "wait")
def _q_wait(interp, self_val, args):
    return self_val


@register_method("sycl::queue", "wait_and_throw")
def _q_wait_throw(interp, self_val, args):
    return self_val


@register_method("sycl::queue", "memcpy")
def _q_memcpy(interp, self_val, args):
    dst = _as_ptr(args[0])
    src = _as_ptr(args[1])
    for i in range(_elems(args[2])):
        dst.store(i, src.load(i))
    return self_val


@register_method("sycl::id", "get")
def _id_get(interp, self_val, args):
    return self_val.payload.get("index", 0)


@register_method("sycl::range", "size")
def _range_size_m(interp, self_val, args):
    return self_val.payload.get("size", 0)


@register_method("sycl::buffer", "get_access")
def _buf_get_access(interp, self_val, args):
    return StructVal("sycl::accessor", payload=dict(self_val.payload))


@register_method("sycl::accessor", "operator()")
def _acc_call(interp, self_val, args):
    ptr: Pointer = self_val.payload["ptr"]
    return ptr.load(int(args[0]))


# ---------------------------------------------------------------------------
# Kokkos
# ---------------------------------------------------------------------------

_FUNCTIONS["Kokkos::initialize"] = lambda interp, targs, args: None
_FUNCTIONS["Kokkos::finalize"] = lambda interp, targs, args: None
_FUNCTIONS["Kokkos::fence"] = lambda interp, targs, args: None


@register_ctor("Kokkos::View")
def _kokkos_view(interp, targs, args):
    label = str(args[0]) if args else ""
    dims = [int(a) for a in args[1:]] or [0]
    total = 1
    for d in dims:
        total *= max(d, 1)
    return StructVal(
        "Kokkos::View", payload={"ptr": Pointer(Buffer(total, label=label)), "dims": dims}
    )


@register_method("Kokkos::View", "operator()")
def _view_call(interp, self_val, args):
    ptr: Pointer = self_val.payload["ptr"]
    flat = interp._flatten_index(self_val, args)
    return ptr.load(flat)


@register_method("Kokkos::View", "size")
def _view_size(interp, self_val, args):
    return len(self_val.payload["ptr"].buffer)


@register_function("Kokkos::parallel_for")
def _kokkos_parallel_for(interp, targs, args):
    # (label, n, lambda) or (n, lambda)
    if isinstance(args[0], str):
        n, fn = int(args[1]), args[2]
    else:
        n, fn = int(args[0]), args[1]
    for i in range(n):
        _invoke(interp, fn, [i])
    return None


def _kokkos_parallel_reduce(interp, env, targs, arg_exprs):
    # (label, n, lambda(i, acc&), result&) or (n, lambda, result&) — the
    # trailing result is a reference out-parameter, so this is a special
    # form that takes the argument expressions unevaluated.
    vals = [interp.eval_expr(a, env) for a in arg_exprs[:-1]]
    result = interp._lvalue_cell(arg_exprs[-1], env)
    if isinstance(vals[0], str):
        n, fn = int(vals[1]), vals[2]
    else:
        n, fn = int(vals[0]), vals[1]
    acc = Cell(0.0)
    for i in range(n):
        _invoke(interp, fn, [i, acc])
    if isinstance(result, Cell):
        result.value = acc.value
    elif isinstance(result, Pointer):
        result.store(0, acc.value)
    return None


_SPECIALS["Kokkos::parallel_reduce"] = _kokkos_parallel_reduce


# ---------------------------------------------------------------------------
# TBB
# ---------------------------------------------------------------------------


@register_ctor("tbb::blocked_range")
def _tbb_blocked_range(interp, targs, args):
    return StructVal(
        "tbb::blocked_range", payload={"begin": int(args[0]), "end": int(args[1])}
    )


@register_method("tbb::blocked_range", "begin")
def _tbb_begin(interp, self_val, args):
    return self_val.payload["begin"]


@register_method("tbb::blocked_range", "end")
def _tbb_end(interp, self_val, args):
    return self_val.payload["end"]


@register_function("tbb::parallel_for")
def _tbb_parallel_for(interp, targs, args):
    first = args[0]
    if isinstance(first, StructVal) and first.class_name.endswith("blocked_range"):
        # (range, lambda(range&)) — single chunk, serial
        return _invoke(interp, args[1], [first])
    # (first, last, lambda(i))
    lo, hi, fn = int(args[0]), int(args[1]), args[2]
    for i in range(lo, hi):
        _invoke(interp, fn, [i])
    return None


@register_function("tbb::parallel_reduce")
def _tbb_parallel_reduce(interp, targs, args):
    # (range, init, lambda(range, running)->value, combiner)
    rng, init, body = args[0], args[1], args[2]
    return _invoke(interp, body, [rng, init])


# ---------------------------------------------------------------------------
# C++ standard algorithms (StdPar)
# ---------------------------------------------------------------------------


def _strip_policy(args: list[Any]) -> list[Any]:
    if args and isinstance(args[0], str) and args[0] in ("par", "par_unseq", "seq"):
        return args[1:]
    return args


@register_function("std::fill")
def _std_fill(interp, targs, args):
    a = _strip_policy(args)
    first, last, value = _as_ptr(a[0]), _as_ptr(a[1]), a[2]
    for i in range(last.offset - first.offset):
        first.store(i, value)
    return None


@register_function("std::copy")
def _std_copy(interp, targs, args):
    a = _strip_policy(args)
    first, last, out = _as_ptr(a[0]), _as_ptr(a[1]), _as_ptr(a[2])
    for i in range(last.offset - first.offset):
        out.store(i, first.load(i))
    return None


@register_function("std::for_each")
def _std_for_each(interp, targs, args):
    a = _strip_policy(args)
    first, last, fn = a[0], a[1], a[2]
    if isinstance(first, Pointer):
        for i in range(_as_ptr(last).offset - first.offset):
            _invoke(interp, fn, [first.load(i)])
        return None
    # counting form: integers
    for i in range(int(first), int(last)):
        _invoke(interp, fn, [i])
    return None


@register_function("std::for_each_n")
def _std_for_each_n(interp, targs, args):
    a = _strip_policy(args)
    first, n, fn = a[0], int(a[1]), a[2]
    if isinstance(first, Pointer):
        for i in range(n):
            _invoke(interp, fn, [first.load(i)])
    else:
        for i in range(int(first), int(first) + n):
            _invoke(interp, fn, [i])
    return None


@register_function("std::transform")
def _std_transform(interp, targs, args):
    a = _strip_policy(args)
    if len(a) == 4:
        first, last, out, fn = _as_ptr(a[0]), _as_ptr(a[1]), _as_ptr(a[2]), a[3]
        for i in range(last.offset - first.offset):
            out.store(i, _invoke(interp, fn, [first.load(i)]))
        return None
    first, last, second, out, fn = _as_ptr(a[0]), _as_ptr(a[1]), _as_ptr(a[2]), _as_ptr(a[3]), a[4]
    for i in range(last.offset - first.offset):
        out.store(i, _invoke(interp, fn, [first.load(i), second.load(i)]))
    return None


@register_function("std::reduce")
def _std_reduce(interp, targs, args):
    a = _strip_policy(args)
    first, last = _as_ptr(a[0]), _as_ptr(a[1])
    init = a[2] if len(a) > 2 else 0.0
    acc = init
    for i in range(last.offset - first.offset):
        acc = acc + first.load(i)
    return acc


@register_function("std::transform_reduce")
def _std_transform_reduce(interp, targs, args):
    a = _strip_policy(args)
    # (first1, last1, first2, init) — inner product form
    if len(a) >= 4 and isinstance(a[2], Pointer):
        first, last, second, init = _as_ptr(a[0]), _as_ptr(a[1]), _as_ptr(a[2]), a[3]
        acc = init
        for i in range(last.offset - first.offset):
            acc = acc + first.load(i) * second.load(i)
        return acc
    # (first, last, init, reduce_op, transform_op)
    first, last, init = _as_ptr(a[0]), _as_ptr(a[1]), a[2]
    fn = a[4] if len(a) > 4 else None
    acc = init
    for i in range(last.offset - first.offset):
        v = first.load(i)
        acc = acc + (_invoke(interp, fn, [v]) if fn is not None else v)
    return acc


@register_ctor("std::plus")
def _std_plus(interp, targs, args):
    return StructVal("std::plus", payload={"fn": lambda a, b: a + b})


@register_ctor("std::multiplies")
def _std_multiplies(interp, targs, args):
    return StructVal("std::multiplies", payload={"fn": lambda a, b: a * b})
