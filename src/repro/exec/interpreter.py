"""The MiniC++ AST interpreter.

Serial reference semantics for everything, including the parallel dialects:

* ``#pragma omp …`` bodies run inline (master-thread semantics),
* CUDA/HIP ``<<<grid, block>>>`` launches iterate the whole index space,
* SYCL/Kokkos/TBB/StdPar launchers call their lambdas in a loop via the
  intrinsics registry (:mod:`repro.exec.intrinsics`).

Every executed statement (and every call/lambda entry) records its source
line; :meth:`ExecutionResult.line_mask` converts the profile into the tree
mask used by the ``+coverage`` metric variants.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.lang.cpp.astnodes import (
    AssignExpr,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CastExpr,
    ClassDecl,
    CompoundStmt,
    CondExpr,
    ContinueStmt,
    DeclStmt,
    DeleteExpr,
    DoStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDecl,
    IdentExpr,
    IfStmt,
    InitListExpr,
    KernelLaunchExpr,
    LambdaExpr,
    LiteralExpr,
    MemberExpr,
    NewExpr,
    PragmaStmt,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    SubscriptExpr,
    ThisExpr,
    TranslationUnit,
    UnaryExpr,
    VarDecl,
    WhileStmt,
)
from repro.lang.cpp.sema import SemaResult
from repro.trees.coverage_mask import LineMask
from repro.util.errors import InterpreterError

from repro.exec.values import Buffer, Cell, Environment, Lambda, Pointer, StructVal


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


@dataclass
class ExecutionResult:
    """Outcome of one interpreted run."""

    value: Any
    coverage: Counter  # (file, line) -> hits
    stdout: list[str] = field(default_factory=list)
    steps: int = 0

    def line_mask(self) -> LineMask:
        """Coverage profile as a tree mask (GCov-style line records)."""
        per_file: dict[str, set[int]] = {}
        for (f, line), _count in self.coverage.items():
            per_file.setdefault(f, set()).add(line)
        return LineMask(per_file, unknown_covered=False)

    def hits(self, file: str, line: int) -> int:
        return self.coverage.get((file, line), 0)


class Interpreter:
    """Interprets one analysed translation unit."""

    #: execution fuel — guards accidental infinite loops in corpus code.
    MAX_STEPS = 30_000_000

    def __init__(self, tu: TranslationUnit, sema: SemaResult):
        self.tu = tu
        self.sema = sema
        self.coverage: Counter = Counter()
        self.stdout: list[str] = []
        self.steps = 0
        self.globals = Environment()
        # late import: the registry needs Interpreter types
        from repro.exec import intrinsics as _intr

        self.intrinsics = _intr

    # -- bookkeeping --------------------------------------------------------
    def record(self, node) -> None:
        span = getattr(node, "span", None)
        if span is not None:
            self.coverage[(span.file, span.line_start)] += 1
        self.steps += 1
        if self.steps > self.MAX_STEPS:
            raise InterpreterError("execution fuel exhausted (possible infinite loop)")

    # -- entry ---------------------------------------------------------------
    def run(self, entry: str = "main", args: Optional[list[Any]] = None) -> ExecutionResult:
        fn = self.sema.functions.get(entry)
        if fn is None or fn.body is None:
            raise InterpreterError(f"no definition for entry point {entry!r}")
        # global variables (including namespace-nested ones from headers)
        def define_globals(decls) -> None:
            from repro.lang.cpp.astnodes import NamespaceDecl

            for d in decls:
                if isinstance(d, VarDecl):
                    self.globals.define(
                        d.name,
                        self.eval_expr(d.init, self.globals) if d.init is not None else 0,
                    )
                elif isinstance(d, NamespaceDecl):
                    define_globals(d.decls)

        define_globals(self.tu.decls)
        try:
            value = self.call_function(fn, args or [])
        except _Return as r:  # top-level return leaks only on misuse
            value = r.value
        return ExecutionResult(value, self.coverage, self.stdout, self.steps)

    # -- functions ------------------------------------------------------------
    def call_function(
        self, fn: FunctionDecl, args: list[Any], this: Optional[StructVal] = None
    ) -> Any:
        if fn.body is None:
            raise InterpreterError(f"call to undefined function {fn.name!r}")
        env = Environment(self.globals)
        self.record(fn)
        for p, a in zip(fn.params, args):
            if p.name:
                if isinstance(a, Cell) and p.type is not None and p.type.is_ref:
                    env.bind_cell(p.name, a)
                else:
                    # Cells passed to non-reference params are pointer-to-
                    # scalar values (&x) and stay wrapped.
                    env.define(p.name, a)
        # defaulted trailing params
        for p in fn.params[len(args) :]:
            if p.name:
                env.define(
                    p.name, self.eval_expr(p.default, env) if p.default is not None else 0
                )
        if this is not None:
            env.define("this", this)
            for name, cell in this.fields.items():
                env.bind_cell(name, cell)
        try:
            self.exec_stmt(fn.body, env)
        except _Return as r:
            return r.value
        return None

    def call_lambda(self, lam: Lambda, args: list[Any]) -> Any:
        node: LambdaExpr = lam.node
        env = Environment(lam.env)
        for p, a in zip(node.params, args):
            if p.name:
                if isinstance(a, Cell) and p.type is not None and p.type.is_ref:
                    env.bind_cell(p.name, a)
                else:
                    env.define(p.name, a)
        try:
            if node.body is not None:
                self.exec_stmt(node.body, env)
        except _Return as r:
            return r.value
        return None

    def call_value(self, value: Any, args: list[Any]) -> Any:
        """Invoke a callable runtime value (lambda, functor, function)."""
        if isinstance(value, Lambda):
            return self.call_lambda(value, args)
        if isinstance(value, FunctionDecl):
            return self.call_function(value, args)
        if isinstance(value, StructVal):
            # functor: operator()
            cls = self._class_of(value)
            if cls is not None:
                for m in cls.methods:
                    if m.is_operator and m.name == "operator()" and m.body is not None:
                        return self.call_function(m, args, this=value)
            hit = self.intrinsics.method(value.class_name, "operator()")
            if hit is not None:
                return hit(self, value, args)
        if callable(value):
            return value(*args)
        raise InterpreterError(f"value is not callable: {value!r}")

    def _class_of(self, v: StructVal) -> Optional[ClassDecl]:
        cls = self.sema.classes.get(v.class_name)
        if cls is not None:
            return cls
        short = v.class_name.rsplit("::", 1)[-1]
        for q, c in self.sema.classes.items():
            if q.rsplit("::", 1)[-1] == short:
                return c
        return None

    # -- statements ---------------------------------------------------------------
    def exec_stmt(self, s: Optional[Stmt], env: Environment) -> None:
        if s is None:
            return
        self.record(s)
        if isinstance(s, CompoundStmt):
            inner = Environment(env)
            for st in s.stmts:
                self.exec_stmt(st, inner)
        elif isinstance(s, ExprStmt):
            if s.expr is not None:
                self.eval_expr(s.expr, env)
        elif isinstance(s, DeclStmt):
            for v in s.decls:
                self.exec_var(v, env)
        elif isinstance(s, IfStmt):
            if self.truthy(self.eval_expr(s.cond, env)):
                self.exec_stmt(s.then, env)
            elif s.other is not None:
                self.exec_stmt(s.other, env)
        elif isinstance(s, ForStmt):
            inner = Environment(env)
            self.exec_stmt(s.init, inner)
            while s.cond is None or self.truthy(self.eval_expr(s.cond, inner)):
                try:
                    self.exec_stmt(s.body, inner)
                except _Break:
                    break
                except _Continue:
                    pass
                if s.inc is not None:
                    self.eval_expr(s.inc, inner)
        elif isinstance(s, WhileStmt):
            while self.truthy(self.eval_expr(s.cond, env)):
                try:
                    self.exec_stmt(s.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(s, DoStmt):
            while True:
                try:
                    self.exec_stmt(s.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self.truthy(self.eval_expr(s.cond, env)):
                    break
        elif isinstance(s, ReturnStmt):
            raise _Return(self.eval_expr(s.value, env) if s.value is not None else None)
        elif isinstance(s, BreakStmt):
            raise _Break()
        elif isinstance(s, ContinueStmt):
            raise _Continue()
        elif isinstance(s, PragmaStmt):
            # serial semantics: run the structured block on one thread
            self.exec_stmt(s.body, env)

    def exec_var(self, v: VarDecl, env: Environment) -> None:
        self.record(v)
        if v.init is not None:
            env.define(v.name, self.eval_expr(v.init, env))
            return
        # C array declarator (T name[size]): the parser folds the size into
        # the type's template_args and bumps pointer depth.
        if (
            v.type is not None
            and v.type.pointer > 0
            and v.type.template_args
            and not isinstance(v.type.template_args[-1], type(v.type))
        ):
            size_expr = v.type.template_args[-1]
            try:
                n = int(self.eval_expr(size_expr, env))
            except (InterpreterError, TypeError, ValueError):
                n = 0
            if n > 0:
                env.define(v.name, Pointer(Buffer(n, label=v.name)))
                return
        if v.ctor_args is not None or (v.type is not None and self._is_class_type(v.type)):
            args = [self.eval_expr(a, env) for a in (v.ctor_args or [])]
            val = self.construct(v.type, args, v)
            env.define(v.name, val)
            return
        env.define(v.name, 0)

    def _is_class_type(self, ty) -> bool:
        if ty is None or ty.pointer:
            return False
        name = ty.base_name
        if self.intrinsics.ctor(name) is not None:
            return True
        return (
            name in self.sema.classes
            or name.rsplit("::", 1)[-1] in {q.rsplit("::", 1)[-1] for q in self.sema.classes}
        ) and name not in ("int", "double", "float", "bool", "auto")

    def construct(self, ty, args: list[Any], site) -> Any:
        name = ty.base_name if ty is not None else "struct"
        ctor = self.intrinsics.ctor(name)
        if ctor is not None:
            targs = [str(a) for a in (ty.template_args if ty is not None else [])]
            return ctor(self, targs, args)
        cls = self.sema.classes.get(name) or self._class_of(StructVal(name))
        inst = StructVal(name)
        if cls is not None:
            for f in cls.fields:
                init_val = 0
                inst.fields[f.name] = Cell(init_val)
            for m in cls.methods:
                if m.is_ctor and m.body is not None and len(m.params) == len(args):
                    self.call_function(m, args, this=inst)
                    break
        return inst

    # -- expressions --------------------------------------------------------------
    def truthy(self, v: Any) -> bool:
        if isinstance(v, Pointer):
            return True
        return bool(v)

    def eval_expr(self, e: Optional[Expr], env: Environment) -> Any:
        if e is None:
            return None
        if isinstance(e, LiteralExpr):
            return self._literal(e)
        if isinstance(e, IdentExpr):
            return self._ident(e, env)
        if isinstance(e, BinaryExpr):
            return self._binary(e, env)
        if isinstance(e, AssignExpr):
            return self._assign(e, env)
        if isinstance(e, UnaryExpr):
            return self._unary(e, env)
        if isinstance(e, CondExpr):
            if self.truthy(self.eval_expr(e.cond, env)):
                return self.eval_expr(e.then, env)
            return self.eval_expr(e.other, env)
        if isinstance(e, CallExpr):
            return self._call(e, env)
        if isinstance(e, KernelLaunchExpr):
            return self._launch(e, env)
        if isinstance(e, MemberExpr):
            return self._member(e, env)
        if isinstance(e, SubscriptExpr):
            base = self.eval_expr(e.base, env)
            idx = self.eval_expr(e.index, env)
            return self._load_index(base, idx)
        if isinstance(e, LambdaExpr):
            cap_env = env if "&" in (e.capture or "=") else env.snapshot()
            this_cell = env.lookup("this")
            return Lambda(e, cap_env, this_cell.value if this_cell else None)
        if isinstance(e, CastExpr):
            v = self.eval_expr(e.operand, env)
            return self._cast(e, v)
        if isinstance(e, NewExpr):
            if e.array_size is not None:
                n = int(self.eval_expr(e.array_size, env))
                return Pointer(Buffer(n))
            args = [self.eval_expr(a, env) for a in e.ctor_args]
            return self.construct(e.type, args, e)
        if isinstance(e, DeleteExpr):
            self.eval_expr(e.operand, env)
            return None
        if isinstance(e, SizeofExpr):
            return 8  # every scalar is a 64-bit slot in MiniC++
        if isinstance(e, InitListExpr):
            return [self.eval_expr(x, env) for x in e.items]
        if isinstance(e, ThisExpr):
            c = env.lookup("this")
            return c.value if c else None
        raise InterpreterError(f"cannot evaluate {type(e).__name__}")

    def _literal(self, e: LiteralExpr) -> Any:
        if e.kind == "int":
            return int(e.value.rstrip("uUlL"), 0)
        if e.kind == "float":
            return float(e.value.rstrip("fFlL"))
        if e.kind == "string":
            return e.value[1:-1]
        if e.kind == "char":
            return e.value[1:-1]
        if e.kind == "bool":
            return e.value == "true"
        return None  # nullptr

    def _ident(self, e: IdentExpr, env: Environment) -> Any:
        # Qualified names (std::execution::par_unseq, cudaMemcpyHostToDevice)
        # prefer intrinsic constants over header placeholder globals.
        if len(e.parts) > 1:
            const = self.intrinsics.constant(e.name)
            if const is not None:
                return const
        name = e.parts[-1]
        c = env.lookup(name) or env.lookup(e.name)
        if c is not None:
            return c.value
        const = self.intrinsics.constant(e.name)
        if const is not None:
            return const
        fn = self.sema.functions.get(e.name)
        if fn is None:
            short = e.name.rsplit("::", 1)[-1]
            fn = self.sema.functions.get(short)
        if fn is not None and fn.body is not None:
            return fn
        raise InterpreterError(f"undefined identifier {e.name!r}")

    _NUM_OPS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "%": lambda a, b: int(a) % int(b),
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<<": lambda a, b: int(a) << int(b),
        ">>": lambda a, b: int(a) >> int(b),
        "&": lambda a, b: int(a) & int(b),
        "|": lambda a, b: int(a) | int(b),
        "^": lambda a, b: int(a) ^ int(b),
    }

    def _binary(self, e: BinaryExpr, env: Environment) -> Any:
        if e.op == "&&":
            return self.truthy(self.eval_expr(e.lhs, env)) and self.truthy(
                self.eval_expr(e.rhs, env)
            )
        if e.op == "||":
            return self.truthy(self.eval_expr(e.lhs, env)) or self.truthy(
                self.eval_expr(e.rhs, env)
            )
        if e.op == ",":
            self.eval_expr(e.lhs, env)
            return self.eval_expr(e.rhs, env)
        a = self.eval_expr(e.lhs, env)
        b = self.eval_expr(e.rhs, env)
        if isinstance(a, Pointer) and e.op in ("+", "-"):
            if isinstance(b, Pointer):
                if e.op == "-":
                    return a.offset - b.offset
                raise InterpreterError("pointer + pointer")
            return a.add(int(b) if e.op == "+" else -int(b))
        if e.op == "/":
            if isinstance(a, int) and isinstance(b, int):
                return a // b if b else 0
            return a / b if b else float("inf")
        op = self._NUM_OPS.get(e.op)
        if op is None:
            raise InterpreterError(f"unsupported binary op {e.op!r}")
        return op(a, b)

    def _unary(self, e: UnaryExpr, env: Environment) -> Any:
        if e.op == "&":
            return self._lvalue_cell(e.operand, env)
        if e.op == "*":
            v = self.eval_expr(e.operand, env)
            if isinstance(v, Pointer):
                return v.load(0)
            if isinstance(v, Cell):
                return v.value
            raise InterpreterError("dereference of non-pointer")
        if e.op in ("++", "--"):
            cell_or_slot = self._lvalue(e.operand, env)
            cur = self._slot_load(cell_or_slot)
            delta = 1 if e.op == "++" else -1
            nxt = (cur.add(delta) if isinstance(cur, Pointer) else cur + delta)
            self._slot_store(cell_or_slot, nxt)
            return nxt if e.prefix else cur
        v = self.eval_expr(e.operand, env)
        if e.op == "-":
            return -v
        if e.op == "+":
            return v
        if e.op == "!":
            return not self.truthy(v)
        if e.op == "~":
            return ~int(v)
        raise InterpreterError(f"unsupported unary op {e.op!r}")

    # -- lvalues -------------------------------------------------------------------
    # An lvalue slot is ("cell", Cell) | ("ptr", Pointer, index) |
    # ("struct", StructVal, field)
    def _lvalue(self, e: Optional[Expr], env: Environment):
        if isinstance(e, IdentExpr):
            name = e.parts[-1]
            c = env.lookup(name)
            if c is None:
                c = env.define(name, 0)
            return ("cell", c)
        if isinstance(e, SubscriptExpr):
            base = self.eval_expr(e.base, env)
            idx = self.eval_expr(e.index, env)
            return self._index_slot(base, idx)
        if isinstance(e, MemberExpr):
            base = self.eval_expr(e.base, env)
            if isinstance(base, StructVal):
                return ("cell", base.field_cell(e.member))
            raise InterpreterError(f"member store on non-struct: {e.member}")
        if isinstance(e, UnaryExpr) and e.op == "*":
            v = self.eval_expr(e.operand, env)
            if isinstance(v, Pointer):
                return ("ptr", v, 0)
            if isinstance(v, Cell):
                return ("cell", v)
            raise InterpreterError("store through non-pointer")
        if isinstance(e, CallExpr):
            # functor element store: view(i) = x
            base = self.eval_expr(e.callee, env)
            idxs = [self.eval_expr(a, env) for a in e.args]
            if isinstance(base, StructVal) and "ptr" in base.payload:
                ptr: Pointer = base.payload["ptr"]
                flat = self._flatten_index(base, idxs)
                return ("ptr", ptr, flat)
            raise InterpreterError("call expression is not assignable")
        raise InterpreterError(f"not an lvalue: {type(e).__name__}")

    def _index_slot(self, base: Any, idx: Any):
        if isinstance(base, Pointer):
            return ("ptr", base, int(idx))
        if isinstance(base, StructVal):
            if "ptr" in base.payload:
                off = int(idx.payload.get("index", 0)) if isinstance(idx, StructVal) else int(idx)
                return ("ptr", base.payload["ptr"], off)
        if isinstance(base, list):
            return ("list", base, int(idx))
        raise InterpreterError(f"cannot index into {type(base).__name__}")

    def _flatten_index(self, view: StructVal, idxs: list[Any]) -> int:
        dims = view.payload.get("dims")
        ints = [int(i) for i in idxs]
        if not dims or len(ints) == 1:
            return ints[0]
        flat = 0
        for d, i in zip(dims, ints):
            flat = flat * d + i
        return flat

    def _slot_load(self, slot) -> Any:
        kind = slot[0]
        if kind == "cell":
            return slot[1].value
        if kind == "ptr":
            return slot[1].load(slot[2])
        if kind == "list":
            return slot[1][slot[2]]
        raise InterpreterError("bad slot")

    def _slot_store(self, slot, value: Any) -> None:
        kind = slot[0]
        if kind == "cell":
            slot[1].value = value
        elif kind == "ptr":
            slot[1].store(slot[2], value)
        elif kind == "list":
            slot[1][slot[2]] = value
        else:
            raise InterpreterError("bad slot")

    def _lvalue_cell(self, e: Optional[Expr], env: Environment) -> Any:
        """&expr — returns a Cell for scalars or a Pointer for elements."""
        slot = self._lvalue(e, env)
        if slot[0] == "cell":
            return slot[1]
        if slot[0] == "ptr":
            return slot[1].add(slot[2])
        raise InterpreterError("cannot take address")

    def _assign(self, e: AssignExpr, env: Environment) -> Any:
        slot = self._lvalue(e.lhs, env)
        if e.op == "=":
            val = self.eval_expr(e.rhs, env)
        else:
            cur = self._slot_load(slot)
            rhs = self.eval_expr(e.rhs, env)
            if isinstance(cur, Pointer) and e.op in ("+=", "-="):
                val = cur.add(int(rhs) if e.op == "+=" else -int(rhs))
            else:
                fn = self._NUM_OPS.get(e.op[:-1])
                if fn is None:
                    if e.op[:-1] == "/":
                        val = (cur // rhs) if isinstance(cur, int) and isinstance(rhs, int) else cur / rhs
                    else:
                        raise InterpreterError(f"unsupported compound op {e.op!r}")
                else:
                    val = fn(cur, rhs)
        self._slot_store(slot, val)
        return val

    # -- member / call -----------------------------------------------------------------
    def _member(self, e: MemberExpr, env: Environment) -> Any:
        base = self.eval_expr(e.base, env)
        if isinstance(base, StructVal):
            if e.member in base.fields:
                return base.fields[e.member].value
            if e.member in base.payload:
                return base.payload[e.member]
            # zero-arg intrinsic property (e.g. threadIdx.x)
            hit = self.intrinsics.member_value(base, e.member)
            if hit is not None:
                return hit
            return base.field_cell(e.member).value
        raise InterpreterError(f"member access on {type(base).__name__}: {e.member}")

    def _call(self, e: CallExpr, env: Environment) -> Any:
        self.record(e)
        callee = e.callee
        # method call?
        if isinstance(callee, MemberExpr):
            base = self.eval_expr(callee.base, env)
            args = [self.eval_expr(a, env) for a in e.args]
            if isinstance(base, StructVal):
                hit = self.intrinsics.method(base.class_name, callee.member)
                if hit is not None:
                    return hit(self, base, args)
                cls = self._class_of(base)
                if cls is not None:
                    for m in cls.methods:
                        if m.name == callee.member and m.body is not None:
                            return self.call_function(m, args, this=base)
                raise InterpreterError(
                    f"no method {callee.member!r} on {base.class_name}"
                )
            if isinstance(base, Lambda) and callee.member == "operator()":
                return self.call_lambda(base, args)
            raise InterpreterError(f"method call on non-struct {type(base).__name__}")
        # free call
        if isinstance(callee, IdentExpr):
            name = callee.name
            fn = self.sema.functions.get(name)
            if fn is None:
                short = name.rsplit("::", 1)[-1]
                fn = self.sema.functions.get(short)
            if fn is not None and fn.body is not None:
                args = self._eval_args(fn, e.args, env)
                return self.call_function(fn, args)
            special = self.intrinsics.special(name)
            if special is not None:
                targs = [str(t) for t in e.template_args]
                return special(self, env, targs, e.args)
            intr = self.intrinsics.function(name)
            if intr is not None:
                targs = [str(t) for t in e.template_args]
                args = [self.eval_expr(a, env) for a in e.args]
                return intr(self, targs, args)
            ctor = self.intrinsics.ctor(name)
            if ctor is not None:
                targs = [str(t) for t in e.template_args]
                args = [self.eval_expr(a, env) for a in e.args]
                return ctor(self, targs, args)
            # user class constructor-expression: Foo(args)
            if name in self.sema.classes or name.rsplit("::", 1)[-1] in {
                q.rsplit("::", 1)[-1] for q in self.sema.classes
            }:
                from repro.lang.cpp.astnodes import TypeRef

                args = [self.eval_expr(a, env) for a in e.args]
                return self.construct(TypeRef(name=name.split("::")), args, e)
            # local callable (lambda in a variable)
            c = env.lookup(name.rsplit("::", 1)[-1])
            if c is not None:
                return self.call_value(c.value, [self.eval_expr(a, env) for a in e.args])
            raise InterpreterError(f"call to unknown function {name!r}")
        # computed callee
        target = self.eval_expr(callee, env)
        args = [self.eval_expr(a, env) for a in e.args]
        return self.call_value(target, args)

    def _eval_args(self, fn: FunctionDecl, arg_exprs: list[Expr], env: Environment) -> list[Any]:
        """Evaluate args, passing Cells for reference parameters."""
        out: list[Any] = []
        for p, a in zip(fn.params, arg_exprs):
            if p.type is not None and p.type.is_ref and not p.type.is_const:
                try:
                    out.append(self._lvalue_cell(a, env))
                    continue
                except InterpreterError:
                    pass
            out.append(self.eval_expr(a, env))
        for a in arg_exprs[len(fn.params) :]:
            out.append(self.eval_expr(a, env))
        return out

    def _launch(self, e: KernelLaunchExpr, env: Environment) -> Any:
        self.record(e)
        grid = int(self.eval_expr(e.config[0], env)) if e.config else 1
        block = int(self.eval_expr(e.config[1], env)) if len(e.config) > 1 else 1
        name = e.callee.name if isinstance(e.callee, IdentExpr) else ""
        fn = self.sema.functions.get(name) or self.sema.functions.get(
            name.rsplit("::", 1)[-1]
        )
        if fn is None or fn.body is None:
            raise InterpreterError(f"launch of unknown kernel {name!r}")
        args = [self.eval_expr(a, env) for a in e.args]
        for b in range(grid):
            for t in range(block):
                kenv = Environment(self.globals)
                kenv.define("blockIdx", StructVal("dim3", {"x": Cell(b), "y": Cell(0), "z": Cell(0)}))
                kenv.define("threadIdx", StructVal("dim3", {"x": Cell(t), "y": Cell(0), "z": Cell(0)}))
                kenv.define("blockDim", StructVal("dim3", {"x": Cell(block), "y": Cell(1), "z": Cell(1)}))
                kenv.define("gridDim", StructVal("dim3", {"x": Cell(grid), "y": Cell(1), "z": Cell(1)}))
                saved = self.globals
                self.globals = kenv
                try:
                    self.call_function(fn, args)
                finally:
                    self.globals = saved
        return None

    def _load_index(self, base: Any, idx: Any) -> Any:
        slot = self._index_slot(base, idx)
        return self._slot_load(slot)

    def _cast(self, e: CastExpr, v: Any) -> Any:
        tname = e.type.base_name if e.type is not None else ""
        if tname in ("int", "long", "unsigned", "unsigned int", "long long", "size_t"):
            return int(v)
        if tname in ("double", "float"):
            return float(v)
        if tname == "bool":
            return bool(v)
        return v


def run_program(
    tu: TranslationUnit,
    sema: SemaResult,
    entry: str = "main",
    args: Optional[list[Any]] = None,
) -> ExecutionResult:
    """Interpret ``entry`` (default ``main``) and return the result/profile."""
    return Interpreter(tu, sema).run(entry, args)
