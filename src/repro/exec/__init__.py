"""MiniC++ AST interpreter (coverage substrate).

The paper's coverage variant recompiles the application with coverage flags
and runs it on a reduced problem; the resulting line profile masks the
trees. We reproduce the *run* itself: an AST interpreter with serial
semantics for every parallel construct (OpenMP regions run inline, CUDA
grids iterate sequentially, SYCL/Kokkos/TBB/StdPar launchers invoke their
lambdas in a loop), recording per-line hit counts that convert directly to
a :class:`repro.trees.coverage_mask.LineMask`.
"""

from repro.exec.interpreter import Interpreter, ExecutionResult, run_program
from repro.exec.values import Pointer, Buffer, Lambda, StructVal

__all__ = [
    "Interpreter",
    "ExecutionResult",
    "run_program",
    "Pointer",
    "Buffer",
    "Lambda",
    "StructVal",
]
