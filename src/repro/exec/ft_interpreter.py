"""MiniFortran AST interpreter.

Serial reference semantics for the Fortran corpus: ``do`` / ``do
concurrent`` loops iterate sequentially, whole-array and section
assignments evaluate elementwise, directives run their bodies inline, and
the intrinsics BabelStream-Fortran needs (``sum``, ``dot_product``,
``abs``, …) are built in. Executed statements record line coverage, so the
Fortran ``+coverage`` metric variants come from real runs exactly like the
C++ side.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.lang.fortran.astnodes import (
    FtAllocate,
    FtAssign,
    FtBinOp,
    FtCallOrIndex,
    FtCallStmt,
    FtDecl,
    FtDirective,
    FtDo,
    FtDoConcurrent,
    FtExitCycle,
    FtExpr,
    FtFile,
    FtIdent,
    FtIf,
    FtImplicitNone,
    FtLiteral,
    FtPrint,
    FtRange,
    FtReturn,
    FtStmt,
    FtStop,
    FtUnit,
    FtUnOp,
    FtUse,
    FtWhile,
)
from repro.util.errors import InterpreterError


class _Stop(Exception):
    def __init__(self, code: int):
        self.code = code


class _Return(Exception):
    pass


class _Exit(Exception):
    pass


class _Cycle(Exception):
    pass


@dataclass
class FtExecutionResult:
    """Outcome of one interpreted Fortran run."""

    value: int
    coverage: Counter = field(default_factory=Counter)
    stdout: list[str] = field(default_factory=list)
    steps: int = 0

    def line_mask(self):
        from repro.trees.coverage_mask import LineMask

        per_file: dict[str, set[int]] = {}
        for (f, line), _c in self.coverage.items():
            per_file.setdefault(f, set()).add(line)
        return LineMask(per_file, unknown_covered=False)


class _Array:
    """A 1-based Fortran array (the corpus uses rank-1 arrays)."""

    __slots__ = ("data",)

    def __init__(self, n: int):
        self.data = [0.0] * n

    def get(self, i: int) -> Any:
        return self.data[i - 1]

    def set(self, i: int, v: Any) -> None:
        self.data[i - 1] = v

    def __len__(self) -> int:
        return len(self.data)


_INTRINSICS_1 = {
    "abs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "int": int,
    "real": float,
}


class FortranInterpreter:
    MAX_STEPS = 10_000_000

    def __init__(self, f: FtFile):
        self.file = f
        self.coverage: Counter = Counter()
        self.stdout: list[str] = []
        self.steps = 0
        self.scalars: dict[str, Any] = {}
        self.arrays: dict[str, _Array] = {}
        self.subs: dict[str, FtUnit] = {}

    # -- bookkeeping --------------------------------------------------------
    def record(self, node) -> None:
        span = getattr(node, "span", None)
        if span is not None:
            self.coverage[(span.file, span.line_start)] += 1
        self.steps += 1
        if self.steps > self.MAX_STEPS:
            raise InterpreterError("fortran execution fuel exhausted")

    # -- entry ----------------------------------------------------------------
    def run(self) -> FtExecutionResult:
        program = next((u for u in self.file.units if u.kind == "program"), None)
        if program is None:
            raise InterpreterError("no program unit to run")
        for u in self.file.units:
            for sub in u.contains:
                self.subs[sub.name.lower()] = sub
            if u.kind in ("subroutine", "function"):
                self.subs[u.name.lower()] = u
        code = 0
        try:
            for s in program.body:
                self.stmt(s)
        except _Stop as st:
            code = st.code
        return FtExecutionResult(code, self.coverage, self.stdout, self.steps)

    # -- statements ---------------------------------------------------------------
    def stmt(self, s: FtStmt) -> None:
        self.record(s)
        if isinstance(s, (FtImplicitNone, FtUse)):
            return
        if isinstance(s, FtDecl):
            self.exec_decl(s)
        elif isinstance(s, FtAllocate):
            for item in s.items:
                if s.dealloc:
                    self.arrays.pop(item.name.lower(), None)
                else:
                    n = int(self.expr(item.args[0])) if item.args else 0
                    self.arrays[item.name.lower()] = _Array(n)
        elif isinstance(s, FtAssign):
            self.exec_assign(s)
        elif isinstance(s, FtDo):
            lo = int(self.expr(s.lo))
            hi = int(self.expr(s.hi))
            step = int(self.expr(s.step)) if s.step is not None else 1
            var = s.var.lower()
            i = lo
            while (step > 0 and i <= hi) or (step < 0 and i >= hi):
                self.scalars[var] = i
                try:
                    for st in s.body:
                        self.stmt(st)
                except _Cycle:
                    pass
                except _Exit:
                    break
                i += step
        elif isinstance(s, FtDoConcurrent):
            lo = int(self.expr(s.lo))
            hi = int(self.expr(s.hi))
            var = s.var.lower()
            for i in range(lo, hi + 1):
                self.scalars[var] = i
                for st in s.body:
                    self.stmt(st)
        elif isinstance(s, FtWhile):
            while self.truthy(self.expr(s.cond)):
                try:
                    for st in s.body:
                        self.stmt(st)
                except _Cycle:
                    continue
                except _Exit:
                    break
        elif isinstance(s, FtIf):
            if self.truthy(self.expr(s.cond)):
                for st in s.then:
                    self.stmt(st)
                return
            for cond, blk in s.elifs:
                if self.truthy(self.expr(cond)):
                    for st in blk:
                        self.stmt(st)
                    return
            for st in s.other:
                self.stmt(st)
        elif isinstance(s, FtPrint):
            self.stdout.append(" ".join(str(self.expr(e)) for e in s.items))
        elif isinstance(s, FtStop):
            raise _Stop(int(self.expr(s.code)) if s.code is not None else 0)
        elif isinstance(s, FtReturn):
            raise _Return()
        elif isinstance(s, FtExitCycle):
            raise _Exit() if s.kind == "exit" else _Cycle()
        elif isinstance(s, FtCallStmt):
            self.call_subroutine(s)
        elif isinstance(s, FtDirective):
            # serial semantics: directives run their structured block inline
            for st in s.body:
                self.stmt(st)

    def exec_decl(self, s: FtDecl) -> None:
        has_dim = any(a.name in ("dimension", "allocatable") for a in s.attrs)
        for name, dims, init in s.entities:
            low = name.lower()
            if init is not None and not dims and not has_dim:
                self.scalars[low] = self.expr(init)
            elif dims and not has_dim and not isinstance(dims[0], FtRange):
                # explicit-shape local: real :: grid(64)
                try:
                    n = int(self.expr(dims[0]))
                    self.arrays[low] = _Array(n)
                except InterpreterError:
                    self.scalars.setdefault(low, 0.0)
            else:
                if not has_dim:
                    self.scalars.setdefault(low, 0.0)
                # allocatable arrays materialise at allocate()

    # -- assignment -----------------------------------------------------------
    def exec_assign(self, s: FtAssign) -> None:
        lhs = s.lhs
        if isinstance(lhs, FtIdent):
            low = lhs.name.lower()
            if low in self.arrays:
                self._array_assign(self.arrays[low], s.rhs)
            else:
                self.scalars[low] = self.expr(s.rhs)
            return
        if isinstance(lhs, FtCallOrIndex):
            arr = self.arrays.get(lhs.name.lower())
            if arr is None:
                raise InterpreterError(f"assignment to unknown array {lhs.name!r}")
            if lhs.args and not isinstance(lhs.args[0], FtRange):
                arr.set(int(self.expr(lhs.args[0])), self.expr(s.rhs))
            else:
                self._array_assign(arr, s.rhs)
            return
        raise InterpreterError("unsupported assignment target")

    def _array_assign(self, arr: _Array, rhs: FtExpr) -> None:
        """Elementwise evaluation of a whole-array/section assignment."""
        for k in range(1, len(arr) + 1):
            arr.set(k, self.expr(rhs, elem=k))

    # -- subroutines --------------------------------------------------------------
    def call_subroutine(self, s: FtCallStmt) -> None:
        sub = self.subs.get(s.name.lower())
        if sub is None:
            raise InterpreterError(f"call to unknown subroutine {s.name!r}")
        # corpus subroutines share the program's variables (host association
        # approximation); positional args bind scalar values by name
        saved = {}
        for pname, arg in zip(sub.params, s.args):
            low = pname.lower()
            saved[low] = self.scalars.get(low)
            self.scalars[low] = self.expr(arg)
        try:
            for st in sub.body:
                self.stmt(st)
        except _Return:
            pass
        for low, old in saved.items():
            if old is None:
                self.scalars.pop(low, None)
            else:
                self.scalars[low] = old

    # -- expressions --------------------------------------------------------------
    def truthy(self, v: Any) -> bool:
        return bool(v)

    def expr(self, e: Optional[FtExpr], elem: Optional[int] = None) -> Any:
        if e is None:
            return 0
        if isinstance(e, FtLiteral):
            if e.kind == "int":
                return int(e.value)
            if e.kind == "real":
                text = e.value.lower().replace("d", "e").split("_")[0]
                return float(text)
            if e.kind == "logical":
                return e.value == ".true."
            return e.value.strip("'\"")
        if isinstance(e, FtIdent):
            low = e.name.lower()
            if low in self.scalars:
                return self.scalars[low]
            if low in self.arrays:
                arr = self.arrays[low]
                if elem is not None:
                    return arr.get(elem)
                return arr
            raise InterpreterError(f"undefined name {e.name!r}")
        if isinstance(e, FtBinOp):
            a = self.expr(e.lhs, elem)
            b = self.expr(e.rhs, elem)
            return self._binop(e.op, a, b)
        if isinstance(e, FtUnOp):
            v = self.expr(e.operand, elem)
            if e.op == "-":
                return -v
            if e.op == ".not.":
                return not v
            return v
        if isinstance(e, FtCallOrIndex):
            return self._call_or_index(e, elem)
        if isinstance(e, FtRange):
            raise InterpreterError("bare section outside array context")
        raise InterpreterError(f"cannot evaluate {type(e).__name__}")

    @staticmethod
    def _binop(op: str, a: Any, b: Any) -> Any:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return a / b if not (isinstance(a, int) and isinstance(b, int)) else a // b
        if op == "**":
            return a**b
        if op in ("==", ".eq."):
            return a == b
        if op in ("/=", ".ne."):
            return a != b
        if op in ("<", ".lt."):
            return a < b
        if op in ("<=", ".le."):
            return a <= b
        if op in (">", ".gt."):
            return a > b
        if op in (">=", ".ge."):
            return a >= b
        if op == ".and.":
            return bool(a) and bool(b)
        if op == ".or.":
            return bool(a) or bool(b)
        if op == ".eqv.":
            return bool(a) == bool(b)
        if op == ".neqv.":
            return bool(a) != bool(b)
        raise InterpreterError(f"unsupported operator {op!r}")

    def _call_or_index(self, e: FtCallOrIndex, elem: Optional[int]) -> Any:
        low = e.name.lower()
        if e.is_index or low in self.arrays:
            arr = self.arrays.get(low)
            if arr is None:
                raise InterpreterError(f"unknown array {e.name!r}")
            if e.args and not isinstance(e.args[0], FtRange):
                return arr.get(int(self.expr(e.args[0], elem)))
            # section a(:) in elementwise context
            if elem is not None:
                return arr.get(elem)
            return arr
        # intrinsics
        if low in _INTRINSICS_1:
            return _INTRINSICS_1[low](self.expr(e.args[0], elem))
        if low == "mod":
            return self.expr(e.args[0], elem) % self.expr(e.args[1], elem)
        if low in ("max", "min"):
            vals = [self.expr(a, elem) for a in e.args]
            return max(vals) if low == "max" else min(vals)
        if low == "sum":
            arr = self._whole_array(e.args[0])
            return sum(arr.data)
        if low == "dot_product":
            a = self._whole_array(e.args[0])
            b = self._whole_array(e.args[1])
            return sum(x * y for x, y in zip(a.data, b.data))
        if low in ("maxval", "minval"):
            arr = self._whole_array(e.args[0])
            return max(arr.data) if low == "maxval" else min(arr.data)
        if low == "size":
            return len(self._whole_array(e.args[0]))
        if low == "epsilon":
            return 2.220446049250313e-16
        if low == "huge":
            return 1.7976931348623157e308
        if low == "allocated":
            name = e.args[0].name.lower() if isinstance(e.args[0], FtIdent) else ""
            return name in self.arrays
        # user function
        sub = self.subs.get(low)
        if sub is not None and sub.kind == "function":
            saved = {}
            for pname, arg in zip(sub.params, e.args):
                p = pname.lower()
                saved[p] = self.scalars.get(p)
                self.scalars[p] = self.expr(arg, elem)
            result_name = (sub.result or sub.name).lower()
            try:
                for st in sub.body:
                    self.stmt(st)
            except _Return:
                pass
            out = self.scalars.get(result_name, 0.0)
            for p, old in saved.items():
                if old is None:
                    self.scalars.pop(p, None)
                else:
                    self.scalars[p] = old
            return out
        raise InterpreterError(f"unknown function or array {e.name!r}")

    def _whole_array(self, e: FtExpr) -> _Array:
        if isinstance(e, FtIdent) and e.name.lower() in self.arrays:
            return self.arrays[e.name.lower()]
        if isinstance(e, FtCallOrIndex) and e.name.lower() in self.arrays:
            return self.arrays[e.name.lower()]
        raise InterpreterError("expected a whole array argument")


def run_fortran(f: FtFile) -> FtExecutionResult:
    """Interpret the program unit of ``f`` and return result + coverage."""
    return FortranInterpreter(f).run()
