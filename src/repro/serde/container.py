"""Compressed Codebase DB container.

Layout: 8-byte magic, 1-byte format version, 4-byte big-endian length of
the compressed payload, then zlib-compressed MessagePack bytes. The magic
lets tooling reject foreign files with a clear error instead of a zlib
backtrace.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Any

from repro.serde.msgpack import pack, unpack
from repro.util.errors import SerdeError

MAGIC = b"SVALEDB\x00"
VERSION = 1


def write_blob(path: str | Path, obj: Any, level: int = 6, atomic: bool = False) -> int:
    """Serialise ``obj`` into the container at ``path``; returns bytes written.

    With ``atomic=True`` the container is written to a unique sibling temp
    file and ``os.replace``d into place, so concurrent readers (and a run
    killed mid-write) only ever observe a complete old or new file — the
    durability contract the TED cache shards and ``repro.ckpt`` checkpoints
    rely on.
    """
    payload = zlib.compress(pack(obj), level)
    data = MAGIC + bytes([VERSION]) + struct.pack(">I", len(payload)) + payload
    target = Path(path)
    if atomic:
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
    else:
        target.write_bytes(data)
    return len(data)


def read_blob(path: str | Path) -> Any:
    """Read one object back from a container file."""
    data = Path(path).read_bytes()
    if len(data) < len(MAGIC) + 5 or not data.startswith(MAGIC):
        raise SerdeError(f"{path}: not a Codebase DB container")
    version = data[len(MAGIC)]
    if version != VERSION:
        raise SerdeError(f"{path}: unsupported container version {version}")
    (length,) = struct.unpack(">I", data[len(MAGIC) + 1 : len(MAGIC) + 5])
    payload = data[len(MAGIC) + 5 :]
    if len(payload) != length:
        raise SerdeError(f"{path}: payload length mismatch ({len(payload)} != {length})")
    try:
        raw = zlib.decompress(payload)
    except zlib.error as e:
        raise SerdeError(f"{path}: corrupt payload: {e}") from e
    return unpack(raw)
