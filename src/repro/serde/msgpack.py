"""A from-scratch MessagePack codec.

Implements the subset of the MessagePack specification used by Codebase DBs:
nil, bool, int (all widths, signed and unsigned), float64, str (all widths),
bin, array and map families. Wire-compatible with reference implementations
for these types (verified by golden-byte tests against spec examples).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.util.errors import SerdeError

# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def pack(obj: Any) -> bytes:
    """Serialise ``obj`` to MessagePack bytes."""
    out = bytearray()
    _pack_into(obj, out)
    return bytes(out)


def _pack_into(obj: Any, out: bytearray) -> None:
    if obj is None:
        out.append(0xC0)
    elif obj is True:
        out.append(0xC3)
    elif obj is False:
        out.append(0xC2)
    elif isinstance(obj, int):
        _pack_int(obj, out)
    elif isinstance(obj, float):
        out.append(0xCB)
        out += struct.pack(">d", obj)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        n = len(data)
        if n < 32:
            out.append(0xA0 | n)
        elif n < 2**8:
            out.append(0xD9)
            out.append(n)
        elif n < 2**16:
            out.append(0xDA)
            out += struct.pack(">H", n)
        elif n < 2**32:
            out.append(0xDB)
            out += struct.pack(">I", n)
        else:
            raise SerdeError("string too long for MessagePack")
        out += data
    elif isinstance(obj, (bytes, bytearray)):
        n = len(obj)
        if n < 2**8:
            out.append(0xC4)
            out.append(n)
        elif n < 2**16:
            out.append(0xC5)
            out += struct.pack(">H", n)
        elif n < 2**32:
            out.append(0xC6)
            out += struct.pack(">I", n)
        else:
            raise SerdeError("bytes too long for MessagePack")
        out += obj
    elif isinstance(obj, (list, tuple)):
        n = len(obj)
        if n < 16:
            out.append(0x90 | n)
        elif n < 2**16:
            out.append(0xDC)
            out += struct.pack(">H", n)
        elif n < 2**32:
            out.append(0xDD)
            out += struct.pack(">I", n)
        else:
            raise SerdeError("array too long for MessagePack")
        for item in obj:
            _pack_into(item, out)
    elif isinstance(obj, dict):
        n = len(obj)
        if n < 16:
            out.append(0x80 | n)
        elif n < 2**16:
            out.append(0xDE)
            out += struct.pack(">H", n)
        elif n < 2**32:
            out.append(0xDF)
            out += struct.pack(">I", n)
        else:
            raise SerdeError("map too long for MessagePack")
        for k, v in obj.items():
            _pack_into(k, out)
            _pack_into(v, out)
    else:
        raise SerdeError(f"cannot pack object of type {type(obj).__name__}")


def _pack_int(v: int, out: bytearray) -> None:
    if 0 <= v < 128:
        out.append(v)
    elif -32 <= v < 0:
        out.append(v & 0xFF)
    elif 0 <= v < 2**8:
        out.append(0xCC)
        out.append(v)
    elif 0 <= v < 2**16:
        out.append(0xCD)
        out += struct.pack(">H", v)
    elif 0 <= v < 2**32:
        out.append(0xCE)
        out += struct.pack(">I", v)
    elif 0 <= v < 2**64:
        out.append(0xCF)
        out += struct.pack(">Q", v)
    elif -(2**7) <= v < 0:
        out.append(0xD0)
        out += struct.pack(">b", v)
    elif -(2**15) <= v < 0:
        out.append(0xD1)
        out += struct.pack(">h", v)
    elif -(2**31) <= v < 0:
        out.append(0xD2)
        out += struct.pack(">i", v)
    elif -(2**63) <= v < 0:
        out.append(0xD3)
        out += struct.pack(">q", v)
    else:
        raise SerdeError(f"integer out of MessagePack range: {v}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise SerdeError("truncated MessagePack data")
        b = self.data[self.pos : self.pos + n]
        self.pos += n
        return b

    def byte(self) -> int:
        return self.take(1)[0]


def unpack(data: bytes) -> Any:
    """Deserialise one MessagePack object; rejects trailing garbage."""
    r = _Reader(data)
    obj = _unpack_one(r)
    if r.pos != len(data):
        raise SerdeError(f"{len(data) - r.pos} trailing bytes after object")
    return obj


def _unpack_one(r: _Reader) -> Any:
    tag = r.byte()
    if tag < 0x80:  # positive fixint
        return tag
    if tag >= 0xE0:  # negative fixint
        return tag - 256
    if 0x80 <= tag < 0x90:  # fixmap
        return _read_map(r, tag & 0x0F)
    if 0x90 <= tag < 0xA0:  # fixarray
        return _read_array(r, tag & 0x0F)
    if 0xA0 <= tag < 0xC0:  # fixstr
        return r.take(tag & 0x1F).decode("utf-8")
    if tag == 0xC0:
        return None
    if tag == 0xC2:
        return False
    if tag == 0xC3:
        return True
    if tag == 0xC4:
        return bytes(r.take(r.byte()))
    if tag == 0xC5:
        return bytes(r.take(struct.unpack(">H", r.take(2))[0]))
    if tag == 0xC6:
        return bytes(r.take(struct.unpack(">I", r.take(4))[0]))
    if tag == 0xCA:
        return struct.unpack(">f", r.take(4))[0]
    if tag == 0xCB:
        return struct.unpack(">d", r.take(8))[0]
    if tag == 0xCC:
        return r.byte()
    if tag == 0xCD:
        return struct.unpack(">H", r.take(2))[0]
    if tag == 0xCE:
        return struct.unpack(">I", r.take(4))[0]
    if tag == 0xCF:
        return struct.unpack(">Q", r.take(8))[0]
    if tag == 0xD0:
        return struct.unpack(">b", r.take(1))[0]
    if tag == 0xD1:
        return struct.unpack(">h", r.take(2))[0]
    if tag == 0xD2:
        return struct.unpack(">i", r.take(4))[0]
    if tag == 0xD3:
        return struct.unpack(">q", r.take(8))[0]
    if tag == 0xD9:
        return r.take(r.byte()).decode("utf-8")
    if tag == 0xDA:
        return r.take(struct.unpack(">H", r.take(2))[0]).decode("utf-8")
    if tag == 0xDB:
        return r.take(struct.unpack(">I", r.take(4))[0]).decode("utf-8")
    if tag == 0xDC:
        return _read_array(r, struct.unpack(">H", r.take(2))[0])
    if tag == 0xDD:
        return _read_array(r, struct.unpack(">I", r.take(4))[0])
    if tag == 0xDE:
        return _read_map(r, struct.unpack(">H", r.take(2))[0])
    if tag == 0xDF:
        return _read_map(r, struct.unpack(">I", r.take(4))[0])
    raise SerdeError(f"unsupported MessagePack tag 0x{tag:02x}")


def _read_array(r: _Reader, n: int) -> list:
    return [_unpack_one(r) for _ in range(n)]


def _read_map(r: _Reader, n: int) -> dict:
    out = {}
    for _ in range(n):
        k = _unpack_one(r)
        out[k] = _unpack_one(r)
    return out
