"""Codebase DB serialisation (paper §IV).

SilverVale stores "a portable set of semantic-bearing trees and metadata
files all stored in a Zstd compressed MessagePack format". We reproduce the
format family with a from-scratch, spec-conformant MessagePack codec plus a
zlib-compressed container (Zstd is unavailable offline; zlib preserves the
compressed-binary-container behaviour — see DESIGN.md substitutions).
"""

from repro.serde.msgpack import pack, unpack
from repro.serde.container import write_blob, read_blob, MAGIC

__all__ = ["pack", "unpack", "write_blob", "read_blob", "MAGIC"]
