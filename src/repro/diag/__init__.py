"""Diagnostics: structured, source-located error reporting for the pipeline.

Usage — emitting from pipeline code::

    from repro import diag

    diag.error("parse/unexpected-token", f"unexpected {tok.text!r}",
               file=tok.file, line=tok.line, col=tok.col)

Usage — capturing (CLI, tests, the fuzz harness)::

    with diag.capture() as sink:
        index_codebase(spec, fs)
    if sink.has_errors():
        print(sink.summary())

Everything is a near-no-op while no sink is installed; see
``diagnostics.py`` for the cost model and DESIGN.md for the error-code
and error-node contracts.
"""

from repro.diag.diagnostics import (
    SEVERITIES,
    Diagnostic,
    DiagnosticSink,
    capture,
    capture_local,
    current_sink,
    emit,
    emit_exception,
    enabled,
    error,
    fatal,
    note,
    warning,
)

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "DiagnosticSink",
    "capture",
    "capture_local",
    "current_sink",
    "emit",
    "emit_exception",
    "enabled",
    "error",
    "fatal",
    "note",
    "warning",
]
