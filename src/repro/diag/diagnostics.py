"""Structured diagnostics: source-located records plus a per-run sink.

Counterpart of the obs layer for *what went wrong* rather than *how long
it took*. Frontends, the indexer and the execution engine emit
:class:`Diagnostic` records instead of printing or silently swallowing
failures; whoever owns the run (CLI, tests, the fuzz harness) installs a
:class:`DiagnosticSink` around the work and inspects it afterwards.

Design constraints (mirroring ``repro/obs/spans.py``):

* **Near-zero cost when nobody listens.** ``emit()`` checks a module-level
  integer before building the record; frontends can emit from hot loops
  without a guard at the call site.
* **Thread- and context-safe.** The active sink lives in a
  :class:`contextvars.ContextVar` with a module-level fallback, so worker
  threads that started before ``capture()`` still report into the sink.
* **Stable error codes.** Codes are ``phase/slug`` strings
  (``parse/unexpected-token``, ``index/quarantined`` …) — a public
  contract for tests and the fuzz harness; see DESIGN.md.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro import obs

#: Severity ladder, least to most severe. ``error`` marks a unit that
#: degraded; ``fatal`` marks a failure strict mode would abort on.
SEVERITIES = ("note", "warning", "error", "fatal")


@dataclass(frozen=True)
class Diagnostic:
    """One source-located report. Immutable so sinks can be shared freely."""

    severity: str  # one of SEVERITIES
    code: str  # "phase/slug", e.g. "parse/unexpected-token"
    message: str
    file: str = ""
    line: int = 0
    col: int = 0

    @property
    def phase(self) -> str:
        """The pipeline stage that emitted this (prefix of ``code``)."""
        return self.code.split("/", 1)[0]

    def format(self) -> str:
        """Render in the familiar ``file:line:col: severity: message`` shape."""
        loc = self.file or "<input>"
        if self.line:
            loc += f":{self.line}"
            if self.col:
                loc += f":{self.col}"
        return f"{loc}: {self.severity}: {self.message} [{self.code}]"


class DiagnosticSink:
    """Accumulates diagnostics for one run (one CLI invocation, one test).

    Bounded: after ``limit`` records further emissions are counted in
    ``dropped`` but not stored, so a pathological input cannot hold the
    whole error stream in memory.
    """

    def __init__(self, limit: int = 10_000) -> None:
        self.diagnostics: list[Diagnostic] = []
        self.limit = limit
        self.dropped = 0

    # -- recording ------------------------------------------------------

    def emit(self, d: Diagnostic) -> None:
        if len(self.diagnostics) < self.limit:
            self.diagnostics.append(d)
        else:
            self.dropped += 1

    # -- queries --------------------------------------------------------

    def count(self, severity: Optional[str] = None) -> int:
        if severity is None:
            return len(self.diagnostics) + self.dropped
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def has_errors(self) -> bool:
        return any(d.severity in ("error", "fatal") for d in self.diagnostics)

    def by_code(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.diagnostics:
            out[d.code] = out.get(d.code, 0) + 1
        return out

    def summary(self) -> str:
        """One line: ``7 diagnostics: 2 errors, 4 warnings, 1 note``."""
        total = self.count()
        if total == 0:
            return "no diagnostics"
        parts = []
        for sev in ("fatal", "error", "warning", "note"):
            n = self.count(sev)
            if n:
                label = sev if n == 1 else sev + "s"
                parts.append(f"{n} {label}")
        if self.dropped:
            parts.append(f"{self.dropped} dropped")
        noun = "diagnostic" if total == 1 else "diagnostics"
        return f"{total} {noun}: " + ", ".join(parts)


# ---------------------------------------------------------------------------
# Sink installation (same shape as obs collector installation)
# ---------------------------------------------------------------------------

_STATE: contextvars.ContextVar[Optional[DiagnosticSink]] = contextvars.ContextVar(
    "repro_diag_sink", default=None
)

#: Count of installed sinks — the fast "is anyone listening" flag.
_ACTIVE: int = 0

#: Fallback sink for threads whose context never saw the install.
_GLOBAL: Optional[DiagnosticSink] = None


def enabled() -> bool:
    """True when at least one sink is installed."""
    return _ACTIVE > 0


def current_sink() -> Optional[DiagnosticSink]:
    """The sink this context reports into, if any."""
    if not _ACTIVE:
        return None
    sink = _STATE.get()
    if sink is None:
        sink = _GLOBAL
    return sink


@contextmanager
def capture(limit: int = 10_000) -> Iterator[DiagnosticSink]:
    """Install a fresh :class:`DiagnosticSink` for the duration of the block.

    Nested ``capture()`` blocks shadow the outer sink; each block starts
    empty — the reset mechanism between tests and CLI runs.
    """
    global _ACTIVE, _GLOBAL
    sink = DiagnosticSink(limit=limit)
    token = _STATE.set(sink)
    prev_global = _GLOBAL
    _GLOBAL = sink
    _ACTIVE += 1
    try:
        yield sink
    finally:
        _ACTIVE -= 1
        _GLOBAL = prev_global
        _STATE.reset(token)


@contextmanager
def capture_local(limit: int = 10_000) -> Iterator[DiagnosticSink]:
    """Context-local :func:`capture`: no module-global fallback update.

    Built for concurrent request handlers (``silvervale serve``): each
    asyncio task installs its own sink without touching the shared
    ``_GLOBAL`` slot, so interleaved enter/exit orders across tasks can
    never leave the thread-fallback pointing at a finished request's sink.
    Diagnostics from contexts that never saw this install (bare worker
    threads) keep reporting into the enclosing :func:`capture` sink.
    """
    global _ACTIVE
    sink = DiagnosticSink(limit=limit)
    token = _STATE.set(sink)
    _ACTIVE += 1
    try:
        yield sink
    finally:
        _ACTIVE -= 1
        _STATE.reset(token)


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


def emit(
    severity: str,
    code: str,
    message: str,
    file: str = "",
    line: int = 0,
    col: int = 0,
) -> Optional[Diagnostic]:
    """Record one diagnostic; returns it, or ``None`` when nobody listens.

    Also bumps the ``diag.<severity>`` obs counter so profiled runs see
    diagnostic volume next to timing data.
    """
    if not _ACTIVE and not obs.enabled():
        return None
    d = Diagnostic(severity=severity, code=code, message=message, file=file, line=line, col=col)
    sink = current_sink()
    if sink is not None:
        sink.emit(d)
    obs.add(f"diag.{severity}")
    return d


def note(code: str, message: str, file: str = "", line: int = 0, col: int = 0):
    return emit("note", code, message, file, line, col)


def warning(code: str, message: str, file: str = "", line: int = 0, col: int = 0):
    return emit("warning", code, message, file, line, col)


def error(code: str, message: str, file: str = "", line: int = 0, col: int = 0):
    return emit("error", code, message, file, line, col)


def fatal(code: str, message: str, file: str = "", line: int = 0, col: int = 0):
    return emit("fatal", code, message, file, line, col)


def emit_exception(code: str, exc: BaseException, severity: str = "error"):
    """Record an exception as a diagnostic, picking up source location from
    :class:`repro.util.errors.ParseError`-style attributes when present."""
    file = getattr(exc, "file", "") or ""
    line = getattr(exc, "line", 0) or 0
    col = getattr(exc, "col", 0) or 0
    # ParseError/SemanticError bake the location into str(exc); prefer the
    # raw message so format() does not print it twice.
    message = getattr(exc, "message", "") or str(exc)
    return emit(severity, code, message, file=file, line=line, col=col)
