"""Export surfaces: span aggregation, Chrome trace events, flat metrics.

Three consumers, three shapes:

* :func:`aggregate_spans` — nested name-keyed aggregates for the ASCII
  report (``silvervale … --profile`` via ``repro.viz.ascii.ascii_span_tree``),
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome trace-event
  JSON (load it in ``chrome://tracing`` or Perfetto),
* :func:`metrics_json` / :func:`write_metrics` — a flat machine-readable
  snapshot the benchmark harness diffs across PRs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.obs.spans import Collector

#: Schema identifier stamped into the metrics JSON so the harness can detect
#: breaking changes to the snapshot layout. v2 added the ``hists`` section
#: (per-name latency distributions) and worker pid lanes in the trace.
METRICS_SCHEMA = "repro.obs/v2"


# ---------------------------------------------------------------------------
# Aggregation (ASCII report input)
# ---------------------------------------------------------------------------


@dataclass
class SpanAggregate:
    """All spans sharing one name under one parent aggregate, merged."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0
    child_total: float = 0.0
    children: dict[str, "SpanAggregate"] = field(default_factory=dict)

    @property
    def self_time(self) -> float:
        """Time spent in these spans outside any recorded child span."""
        return max(self.total - self.child_total, 0.0)

    def record(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        self.min = min(self.min, duration)
        self.max = max(self.max, duration)


def aggregate_spans(collector: Collector) -> list[SpanAggregate]:
    """Merge the collector's span log into a forest of named aggregates.

    Sibling spans with the same name collapse into one node (count > 1);
    nesting follows the recorded parent links, so the result mirrors the
    pipeline's call structure regardless of how many times each stage ran.
    """
    root = SpanAggregate("<root>")
    by_index: dict[int, SpanAggregate] = {}
    for rec in collector.spans:
        parent = by_index.get(rec.parent, root)
        agg = parent.children.get(rec.name)
        if agg is None:
            agg = SpanAggregate(rec.name)
            parent.children[rec.name] = agg
        agg.record(rec.duration)
        parent.child_total += rec.duration
        by_index[rec.index] = agg
    return list(root.children.values())


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def chrome_trace(collector: Collector) -> dict[str, Any]:
    """The collector as a Chrome trace-event object (``ph: "X"`` events).

    Timestamps are microseconds since the collector epoch; thread ids are
    remapped to small integers per process so the trace viewer's lane
    labels stay readable. Spans adopted from pool workers keep their
    originating pid, so every worker gets its own process lane (named
    ``silvervale worker <pid>``) alongside the parent's.
    """
    tid_map: dict[tuple[int, int], int] = {}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": collector.pid,
            "tid": 0,
            "args": {"name": "silvervale"},
        }
    ]
    named_pids = {collector.pid}
    for rec in collector.spans:
        pid = rec.pid or collector.pid
        if pid not in named_pids:
            named_pids.add(pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"silvervale worker {pid}"},
                }
            )
        tid = tid_map.setdefault((pid, rec.thread), len(tid_map))
        ev: dict[str, Any] = {
            "name": rec.name,
            "cat": "span",
            "ph": "X",
            "ts": rec.start * 1e6,
            "dur": rec.duration * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if rec.attrs:
            ev["args"] = {k: _jsonable(v) for k, v in rec.attrs.items()}
        events.append(ev)
    # counters ride along as Chrome counter events at the end of the window.
    end_ts = max((r.end for r in collector.spans), default=0.0) * 1e6
    for name, value in sorted(collector.counters.items()):
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": end_ts,
                "pid": collector.pid,
                "tid": 0,
                "args": {"value": value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"epoch_unix_s": collector.epoch_wall},
    }


def write_chrome_trace(collector: Collector, path: str | Path) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    p = Path(path)
    p.write_text(json.dumps(chrome_trace(collector), indent=1))
    return p


# ---------------------------------------------------------------------------
# Flat metrics JSON (benchmark-harness diff surface)
# ---------------------------------------------------------------------------


def metrics_json(collector: Collector, extra: Optional[dict[str, Any]] = None) -> dict[str, Any]:
    """Flat, machine-readable snapshot: per-name span stats + counters."""
    spans: dict[str, dict[str, float]] = {}
    child_time: dict[str, float] = {}
    for rec in collector.spans:
        s = spans.setdefault(
            rec.name, {"count": 0, "total_s": 0.0, "min_s": float("inf"), "max_s": 0.0}
        )
        s["count"] += 1
        s["total_s"] += rec.duration
        s["min_s"] = min(s["min_s"], rec.duration)
        s["max_s"] = max(s["max_s"], rec.duration)
        if rec.parent >= 0:
            pname = collector.spans[rec.parent].name
            child_time[pname] = child_time.get(pname, 0.0) + rec.duration
    for name, s in spans.items():
        s["self_s"] = max(s["total_s"] - child_time.get(name, 0.0), 0.0)
        if s["min_s"] == float("inf"):
            s["min_s"] = 0.0
    out: dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "spans": spans,
        "counters": dict(sorted(collector.counters.items())),
        "gauges": dict(sorted(collector.gauges.items())),
        "hists": {name: collector.hists[name].summary() for name in sorted(collector.hists)},
    }
    if extra:
        out.update(extra)
    return out


def write_metrics(
    collector: Collector, path: str | Path, extra: Optional[dict[str, Any]] = None
) -> Path:
    """Serialise :func:`metrics_json` to ``path``; returns the path."""
    p = Path(path)
    p.write_text(json.dumps(metrics_json(collector, extra), indent=1, sort_keys=True))
    return p


def _jsonable(v: Any) -> Any:
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return repr(v)
