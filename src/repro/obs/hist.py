"""Fixed-bucket latency histograms: the distribution half of the metrics layer.

Counters answer "how many"; histograms answer "how long, usually — and in
the tail". Every closed span feeds its duration into a histogram keyed by
the span name (see :meth:`repro.obs.Collector._close_span`), and pipeline
code can record any other distribution explicitly::

    obs.observe("engine.chunk.wait", waited_s)

Design constraints (same cost model as spans/counters):

* **Near-zero cost when disabled.** :func:`observe` checks the module-level
  active flag before touching contextvars; with no collector installed it
  allocates nothing and returns immediately.
* **Fixed buckets, mergeable across workers.** Bucket boundaries are a
  process-independent geometric series (:data:`BOUNDS` — 10^(1/10) steps
  from 100 ns to 10 000 s, ~26 % relative resolution), so two histograms
  merge by adding bucket counts: pool workers record locally and the
  parent merges the serialized counts, exactly like counters.
* **Stable export.** :meth:`Histogram.summary` (count/sum/min/max and
  interpolated p50/p90/p99) is what ``metrics_json``, the ``--profile``
  report and the run ledger persist; the bucket layout itself is pinned in
  DESIGN.md §"Histogram bucket contract" — changing :data:`BOUNDS` is a
  breaking change to merged artifacts.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

#: Geometric bucket upper bounds in seconds: 10^(k/10) for k in [-70, 40),
#: i.e. 1e-7 .. 1e4 in ~26% steps. Values <= BOUNDS[0] land in bucket 0,
#: values > BOUNDS[-1] in the overflow bucket. 111 bounds -> 112 buckets.
BOUNDS: tuple[float, ...] = tuple(10.0 ** (k / 10.0) for k in range(-70, 41))

#: Percentiles exported by :meth:`Histogram.summary` (a stable contract for
#: the metrics JSON, the --profile report and the run ledger).
SUMMARY_PERCENTILES: tuple[int, ...] = (50, 90, 99)


def bucket_index(value: float) -> int:
    """Bucket holding ``value``: the first bound >= value (overflow last)."""
    return bisect_left(BOUNDS, value)


class Histogram:
    """One named distribution: fixed geometric buckets + exact moments.

    ``counts`` is dense (``len(BOUNDS) + 1`` ints including the overflow
    bucket); ``min``/``max``/``sum``/``count`` are exact, so single-valued
    histograms report exact percentiles and interpolation is always clamped
    to the observed range.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts: list[int] = [0] * (len(BOUNDS) + 1)
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = float("inf")
        self.max: float = 0.0

    # -- recording ---------------------------------------------------------

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(BOUNDS, v)] += 1
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram of the same bucket layout into this one."""
        for i, n in enumerate(other.counts):
            if n:
                self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    # -- queries -----------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Interpolated q-th percentile (0..100), clamped to [min, max].

        Accuracy is bounded by the bucket resolution (~26 % relative); the
        exact min/max tighten the edge buckets, so a single-valued
        histogram reports the exact value at every percentile.
        """
        if self.count == 0:
            return 0.0
        rank = (q / 100.0) * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = BOUNDS[i - 1] if i > 0 else 0.0
                hi = BOUNDS[i] if i < len(BOUNDS) else self.max
                frac = (rank - seen) / n
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
            seen += n
        return self.max

    def summary(self) -> dict[str, float]:
        """Flat export shape: count, sum, min, max, p50/p90/p99."""
        if self.count == 0:
            return {"count": 0, "sum_s": 0.0, "min_s": 0.0, "max_s": 0.0}
        out: dict[str, float] = {
            "count": self.count,
            "sum_s": self.sum,
            "min_s": self.min,
            "max_s": self.max,
        }
        for q in SUMMARY_PERCENTILES:
            out[f"p{q}_s"] = self.percentile(q)
        return out

    # -- serialisation (worker -> parent transport) ------------------------

    def to_obj(self) -> dict[str, Any]:
        """Sparse, picklable form for cross-process merges."""
        return {
            "buckets": [[i, n] for i, n in enumerate(self.counts) if n],
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "Histogram":
        h = cls()
        for i, n in obj.get("buckets", ()):
            if 0 <= int(i) < len(h.counts):
                h.counts[int(i)] = int(n)
        h.count = int(obj.get("count", 0))
        h.sum = float(obj.get("sum", 0.0))
        h.min = float(obj.get("min", float("inf")))
        h.max = float(obj.get("max", 0.0))
        return h
