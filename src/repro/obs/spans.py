"""Hierarchical spans: the tracing half of the observability layer.

Design constraints (ISSUE 1 / ROADMAP scaling work):

* **Near-zero cost when disabled.** Every entry point checks a module-level
  integer before touching contextvars or allocating; ``span()`` returns a
  shared no-op context manager and ``traced`` functions call straight
  through. The benchmark suite must not regress when nobody is collecting.
* **Thread-safe nesting.** The current (collector, parent-index) pair lives
  in a :class:`contextvars.ContextVar`, so spans nest correctly across
  ``asyncio`` tasks and copied contexts; worker threads that start with an
  empty context fall back to the installed collector's root so their spans
  are still captured (as top-level spans of that thread).
* **Stable stage names.** Span names emitted by the pipeline (``index.cpp``,
  ``parse``, ``sema``, ``lower``, ``ted`` …) are a public contract for the
  benchmark harness — see DESIGN.md §"Span taxonomy".
"""

from __future__ import annotations

import contextvars
import functools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, TypeVar

from repro.obs.hist import Histogram

F = TypeVar("F", bound=Callable)


@dataclass
class SpanRecord:
    """One finished (or in-flight) span."""

    name: str
    index: int
    parent: int  # index of the parent record, -1 for a root span
    start: float  # seconds since the collector's epoch
    end: float = 0.0
    thread: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)
    #: originating process; 0 means "the collector's own process". Only
    #: spans adopted from pool workers carry a foreign pid — the trace
    #: export renders them as separate pid lanes.
    pid: int = 0

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)


class Collector:
    """Accumulates spans, counters and gauges for one collection window."""

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.hists: dict[str, Histogram] = {}
        self._lock = threading.Lock()
        #: perf_counter value all span timestamps are relative to.
        self.epoch = time.perf_counter()
        #: wall-clock time of the epoch (for trace metadata).
        self.epoch_wall = time.time()
        self.pid = os.getpid()

    # -- spans ----------------------------------------------------------

    def _open_span(self, name: str, parent: int, attrs: dict[str, Any]) -> SpanRecord:
        rec = SpanRecord(
            name=name,
            index=0,
            parent=parent,
            start=time.perf_counter() - self.epoch,
            thread=threading.get_ident(),
            attrs=attrs,
        )
        with self._lock:
            rec.index = len(self.spans)
            self.spans.append(rec)
        return rec

    def _close_span(self, rec: SpanRecord) -> None:
        rec.end = time.perf_counter() - self.epoch
        # every span name doubles as a latency histogram, so percentiles
        # per stage fall out of tracing with no extra call sites
        self.observe(rec.name, rec.duration)

    # -- counters / gauges / histograms --------------------------------

    def add(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            h = self.hists.get(name)
            if h is None:
                h = self.hists[name] = Histogram()
            h.observe(value)

    def export_spans(self, limit: Optional[int] = None) -> tuple[list[tuple], int]:
        """Span log as transport tuples for :meth:`adopt_chunk`.

        Returns ``(tuples, dropped)``: when ``limit`` caps the log, the
        *earliest* spans are kept (their parents are guaranteed in-range
        because parents precede children in the log) and the overflow count
        is reported so the parent can surface it as a counter.
        """
        recs = self.spans
        dropped = 0
        if limit is not None and len(recs) > limit:
            dropped = len(recs) - limit
            recs = recs[:limit]
        out = [(r.name, r.parent, r.start, r.end, r.thread, dict(r.attrs)) for r in recs]
        return out, dropped

    def export_hists(self) -> dict[str, dict]:
        """Histograms as transport objects for :meth:`adopt_chunk`."""
        return {name: h.to_obj() for name, h in self.hists.items()}

    # -- worker-payload adoption ----------------------------------------

    def adopt_chunk(
        self,
        spans: list[tuple],
        hists: dict[str, dict],
        pid: int,
        epoch_wall: float,
        parent: int = -1,
    ) -> None:
        """Merge one pool worker's serialized collection window.

        ``spans`` is the worker's span log in index order as
        ``(name, parent, start, end, thread, attrs)`` tuples (parent links
        are positional within the chunk, -1 for chunk roots); ``hists`` maps
        name -> :meth:`Histogram.to_obj`. Worker timestamps are relative to
        the worker collector's epoch, so they are re-anchored onto this
        collector's timeline via the wall-clock epoch difference — same
        machine, same clock, so lanes line up in the trace viewer. Chunk
        roots are re-parented under ``parent`` (the pool span), keeping the
        aggregate tree navigable.
        """
        shift = epoch_wall - self.epoch_wall
        with self._lock:
            base = len(self.spans)
            for off, (name, rel_parent, start, end, thread, attrs) in enumerate(spans):
                self.spans.append(
                    SpanRecord(
                        name=name,
                        index=base + off,
                        parent=base + rel_parent if rel_parent >= 0 else parent,
                        start=start + shift,
                        end=end + shift,
                        thread=thread,
                        attrs=attrs or {},
                        pid=pid,
                    )
                )
            for name, obj in hists.items():
                h = self.hists.get(name)
                if h is None:
                    h = self.hists[name] = Histogram()
                h.merge(Histogram.from_obj(obj))

    # -- queries --------------------------------------------------------

    def roots(self) -> list[SpanRecord]:
        return [r for r in self.spans if r.parent < 0]

    def children_of(self, index: int) -> list[SpanRecord]:
        return [r for r in self.spans if r.parent == index]

    def total_time(self) -> float:
        return sum(r.duration for r in self.roots())


# ---------------------------------------------------------------------------
# Collector installation
# ---------------------------------------------------------------------------

#: (collector, parent span index) for the current context; ``None`` when the
#: context has never entered a collection window.
_STATE: contextvars.ContextVar[Optional[tuple[Collector, int]]] = contextvars.ContextVar(
    "repro_obs_state", default=None
)

#: Count of installed collectors — the fast "is anyone listening" flag that
#: every hot-path check reads before doing any real work.
_ACTIVE: int = 0

#: Fallback collector for threads whose context never saw the install.
_GLOBAL: Optional[Collector] = None


def enabled() -> bool:
    """True when at least one collector is installed (spans are recorded)."""
    return _ACTIVE > 0


def _current_state() -> Optional[tuple[Collector, int]]:
    st = _STATE.get()
    if st is None and _GLOBAL is not None:
        return (_GLOBAL, -1)
    return st


def current_collector() -> Optional[Collector]:
    """The collector this context reports into, if any."""
    if not _ACTIVE:
        return None
    st = _current_state()
    return st[0] if st is not None else None


@contextmanager
def collect() -> Iterator[Collector]:
    """Install a fresh :class:`Collector` for the duration of the block.

    Nested ``collect()`` blocks shadow the outer collector (spans and
    counters go to the innermost one); the outer collector resumes when the
    inner block exits. Each block starts from a clean slate — this is the
    reset mechanism between tests and between CLI runs.
    """
    global _ACTIVE, _GLOBAL
    c = Collector()
    token = _STATE.set((c, -1))
    prev_global = _GLOBAL
    _GLOBAL = c
    _ACTIVE += 1
    try:
        yield c
    finally:
        _ACTIVE -= 1
        _GLOBAL = prev_global
        _STATE.reset(token)


# ---------------------------------------------------------------------------
# The span context manager
# ---------------------------------------------------------------------------


class _NoopSpan:
    """Shared do-nothing span handed out while no collector is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        return None

    @property
    def index(self) -> int:
        return -1


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("_name", "_attrs", "_rec", "_token", "_collector")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self._name = name
        self._attrs = attrs
        self._rec: Optional[SpanRecord] = None
        self._token = None
        self._collector: Optional[Collector] = None

    def __enter__(self) -> "_Span":
        st = _current_state()
        if st is None:
            return self
        collector, parent = st
        self._collector = collector
        self._rec = collector._open_span(self._name, parent, self._attrs)
        self._token = _STATE.set((collector, self._rec.index))
        return self

    def __exit__(self, *exc) -> None:
        if self._rec is None:
            return
        assert self._collector is not None
        self._collector._close_span(self._rec)
        if self._token is not None:
            _STATE.reset(self._token)

    def set(self, **attrs) -> None:
        """Attach attributes to the live span (no-op when not recording)."""
        if self._rec is not None:
            self._rec.attrs.update(attrs)

    @property
    def index(self) -> int:
        """Record index of the live span (-1 before entry / not recording);
        lets callers re-parent adopted worker spans under this span."""
        return self._rec.index if self._rec is not None else -1


def span(name: str, **attrs):
    """Open a span named ``name`` for the duration of a ``with`` block.

    Compiles to a shared no-op when no collector is installed — safe to
    leave in hot paths.
    """
    if not _ACTIVE:
        return _NOOP
    return _Span(name, attrs)


def traced(name: Optional[str] = None) -> Callable[[F], F]:
    """Decorator form of :func:`span` (span name defaults to the qualname)."""

    def deco(fn: F) -> F:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _ACTIVE:
                return fn(*args, **kwargs)
            with span(label):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco
