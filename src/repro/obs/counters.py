"""Counters, gauges and histogram observations: the metrics entry points.

Counters accumulate (cache hits, tokens lexed, DP cells visited); gauges
record a last-written value (cache size); histograms record latency
distributions (see :mod:`repro.obs.hist`). All are collector-scoped: they
reset naturally when a new :func:`repro.obs.collect` window opens, which is
the reset semantics tests and CLI runs rely on.

All entry points are near-no-ops while no collector is installed; hot loops
that would otherwise pay a function call per iteration should accumulate
into a local and flush once (see ``distance/zhang_shasha.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.hist import Histogram
from repro.obs.spans import _ACTIVE, current_collector, enabled  # noqa: F401


def add(name: str, value: float = 1.0) -> None:
    """Increment counter ``name`` by ``value`` (no-op when not collecting)."""
    c = current_collector()
    if c is not None:
        c.add(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when not collecting)."""
    c = current_collector()
    if c is not None:
        c.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when not collecting)."""
    c = current_collector()
    if c is not None:
        c.observe(name, value)


def get(name: str) -> float:
    """Current value of *counter* ``name`` in the active collector.

    Counter-only by contract: gauges and histograms live in separate
    namespaces, so asking ``get()`` for a gauge name returns 0.0 exactly
    like any unknown counter — use :func:`get_gauge` /
    :func:`get_histogram` for those. Returns 0.0 when no collector is
    installed.
    """
    c = current_collector()
    if c is None:
        return 0.0
    return c.counters.get(name, 0.0)


def get_gauge(name: str, default: float = 0.0) -> float:
    """Current value of gauge ``name`` (``default`` when unset/not collecting)."""
    c = current_collector()
    if c is None:
        return default
    return c.gauges.get(name, default)


def get_histogram(name: str) -> Optional[Histogram]:
    """The active collector's histogram ``name``, or ``None``."""
    c = current_collector()
    if c is None:
        return None
    return c.hists.get(name)
