"""Counters and gauges: the metrics half of the observability layer.

Counters accumulate (cache hits, tokens lexed, DP cells visited); gauges
record a last-written value (cache size). Both are collector-scoped: they
reset naturally when a new :func:`repro.obs.collect` window opens, which is
the reset semantics tests and CLI runs rely on.

All entry points are near-no-ops while no collector is installed; hot loops
that would otherwise pay a function call per iteration should accumulate
into a local and flush once (see ``distance/zhang_shasha.py``).
"""

from __future__ import annotations

from repro.obs.spans import _ACTIVE, current_collector, enabled  # noqa: F401


def add(name: str, value: float = 1.0) -> None:
    """Increment counter ``name`` by ``value`` (no-op when not collecting)."""
    c = current_collector()
    if c is not None:
        c.add(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when not collecting)."""
    c = current_collector()
    if c is not None:
        c.gauge(name, value)


def get(name: str) -> float:
    """Current value of counter ``name`` in the active collector (0 if none)."""
    c = current_collector()
    if c is None:
        return 0.0
    return c.counters.get(name, 0.0)
