"""Persistent run ledger: every CLI run leaves a diffable metrics snapshot.

The paper's productivity metric is only credible if reproduction runs are
comparable *over time* — "is compare faster than it was last week, and did
the counters move?" is a question flat per-run JSON files cannot answer.
This store gives every ``silvervale`` run (and every benchmark harness
run) a durable, schema-stamped snapshot in the shared artifact root, and
the ``silvervale obs`` subcommand family reads them back:

* ``obs history`` — trend table of recent runs, filterable per command /
  app / corpus fingerprint;
* ``obs diff <run> <run>`` — counter and latency deltas between two
  snapshots, with regression highlighting;
* ``obs report`` — one run's full summary (latest by default).

Ledger key contract (pinned in DESIGN.md §"Run ledger contract")
----------------------------------------------------------------
One ``obs-<run-id>.svc`` file per run under the artifact root, in the
``obs`` namespace of the generic artifact layer (next to ``ted``/``ckpt``/
``unit``). The run id is time-ordered (``YYYYMMDDTHHMMSS-<µs>-<pid>``), so
lexicographic order *is* chronological order and "latest"/"previous" are
cheap. The payload value is the snapshot dict below; its ``metrics``
section is exactly :func:`repro.obs.metrics_json`, so the ledger shares
one schema version (:data:`repro.obs.METRICS_SCHEMA`) with ``--metrics-out``
files and the benchmark artifacts. Snapshots are immutable once written;
``silvervale cache clear --namespace obs`` is the only pruning mechanism.
"""

from __future__ import annotations

import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.artifacts import BlobStore
from repro.obs.export import METRICS_SCHEMA, metrics_json
from repro.obs.spans import Collector
from repro.util.errors import ReproError

#: Ledger container schema (the artifact-layer stamp on every obs-*.svc).
LEDGER_SCHEMA = "repro.obsledger/v1"

#: What the container stamp cannot encode: the snapshot layout the stored
#: values follow. Bump to invalidate every existing snapshot.
LEDGER_KEY_SPEC = "obsrun:v1"

#: Envelope schema shared by the BENCH/INCR/CHAOS/FUZZ/OBS harness
#: artifacts (one version for all of them; the per-case ``metrics``
#: sections inside carry :data:`METRICS_SCHEMA`).
HARNESS_SCHEMA = "repro.harness/v1"

#: p99 latency increase (fractional) past which ``obs diff`` highlights a
#: span as regressed; paired with an absolute floor so micro-spans do not
#: flap.
REGRESSION_FRAC = 0.25
REGRESSION_FLOOR_S = 0.001


class RunLedgerStore(BlobStore):
    """Directory of per-run metrics snapshots (``obs`` artifact namespace)."""

    NAMESPACE = "obs"
    SCHEMA = LEDGER_SCHEMA
    KEY_SPEC = LEDGER_KEY_SPEC
    DESCRIPTION = "run-ledger snapshot"
    KIND = "ledger snapshot"
    INVALID_COUNTER = "obs.ledger.invalid"
    SAVED_COUNTER = "obs.ledger.saved"
    KEY_FIELD = "run"
    VALUE_FIELD = "snapshot"

    def run_ids(self) -> list[str]:
        """Run ids on disk, oldest first (ids are time-ordered by layout)."""
        return sorted(self.keys())


def new_run_id(now: Optional[float] = None) -> str:
    """Time-ordered, collision-resistant run id (UTC time + µs + pid)."""
    t = time.time() if now is None else now
    dt = datetime.fromtimestamp(t, tz=timezone.utc)
    import os

    return f"{dt.strftime('%Y%m%dT%H%M%S')}-{dt.microsecond:06d}-{os.getpid()}"


def corpus_fingerprint(app: str, models: Optional[Sequence[str]] = None) -> Optional[str]:
    """Content digest of the corpus slice a run read (sorted file hashes).

    Two snapshots are latency-comparable only when they measured the same
    inputs; this is the "same inputs" half of that check. Returns ``None``
    for unknown apps — the ledger records the run either way.
    """
    import hashlib

    try:
        from repro.corpus.registry import app_models, build_fs
    except ImportError:  # pragma: no cover - corpus is always present
        return None
    try:
        names = sorted(models) if models is not None else app_models(app)
        h = hashlib.sha256()
        for model in names:
            fs = build_fs(app, model)
            h.update(model.encode())
            for path in sorted(fs.files):
                h.update(path.encode())
                h.update(hashlib.sha256(fs.files[path].encode()).digest())
        return h.hexdigest()[:16]
    except Exception:
        return None


def snapshot_from_collector(
    collector: Collector,
    command: str,
    argv: Optional[Sequence[str]] = None,
    duration_s: float = 0.0,
    workload: Optional[dict[str, Any]] = None,
    corpus: Optional[str] = None,
    exit_code: int = 0,
    run_id: Optional[str] = None,
) -> dict[str, Any]:
    """Build one ledger snapshot; ``metrics`` is :func:`metrics_json` verbatim."""
    return {
        "run": run_id or new_run_id(),
        "time_unix": time.time(),
        "command": command,
        "argv": list(argv) if argv is not None else [],
        "workload": dict(workload or {}),
        "corpus": corpus,
        "duration_s": float(duration_s),
        "exit_code": int(exit_code),
        "metrics": metrics_json(collector),
    }


def record_run(store: RunLedgerStore, snapshot: dict[str, Any]) -> str:
    """Persist one snapshot; returns its run id."""
    run_id = snapshot["run"]
    store.save(run_id, snapshot)
    return run_id


def history(
    store: RunLedgerStore,
    command: Optional[str] = None,
    app: Optional[str] = None,
    limit: Optional[int] = None,
) -> list[dict[str, Any]]:
    """Snapshots oldest-first, optionally filtered, keeping the newest
    ``limit`` entries (unreadable files are skipped, not fatal)."""
    out = []
    for run_id in store.run_ids():
        snap = store.load(run_id)
        if not snap:
            continue
        if command is not None and snap.get("command") != command:
            continue
        if app is not None and snap.get("workload", {}).get("app") != app:
            continue
        out.append(snap)
    if limit is not None and len(out) > limit:
        out = out[-limit:]
    return out


def resolve_run(store: RunLedgerStore, token: str) -> str:
    """Map a user token to a run id: ``last``/``latest``, ``prev``, or a
    unique run-id prefix. Raises :class:`ReproError` on no/ambiguous match."""
    ids = store.run_ids()
    if not ids:
        raise ReproError("run ledger is empty: no snapshots recorded yet")
    if token in ("last", "latest"):
        return ids[-1]
    if token in ("prev", "previous"):
        if len(ids) < 2:
            raise ReproError("run ledger has only one snapshot; no previous run")
        return ids[-2]
    matches = [i for i in ids if i.startswith(token)]
    if not matches:
        raise ReproError(f"no ledger snapshot matches {token!r}")
    if len(matches) > 1:
        raise ReproError(
            f"{token!r} is ambiguous: matches {len(matches)} snapshots "
            f"({', '.join(matches[:4])}{', ...' if len(matches) > 4 else ''})"
        )
    return matches[0]


def diff_snapshots(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Structured delta of two snapshots (``a`` = before, ``b`` = after).

    ``schema_ok`` is the hard gate (CI fails on a mismatch — the numbers
    are not comparable across metric-schema versions); latency movement is
    advisory: a span whose p99 grew by more than :data:`REGRESSION_FRAC`
    (and :data:`REGRESSION_FLOOR_S` absolute) lands in ``regressions``.
    """
    ma, mb = a.get("metrics", {}), b.get("metrics", {})
    schema_a, schema_b = ma.get("schema"), mb.get("schema")
    ca, cb = ma.get("counters", {}), mb.get("counters", {})
    counters: dict[str, dict[str, float]] = {}
    for name in sorted(set(ca) | set(cb)):
        va, vb = ca.get(name, 0.0), cb.get(name, 0.0)
        if va != vb:
            counters[name] = {"before": va, "after": vb, "delta": vb - va}
    ha, hb = ma.get("hists", {}), mb.get("hists", {})
    hists: dict[str, dict[str, float]] = {}
    regressions: list[str] = []
    for name in sorted(set(ha) & set(hb)):
        sa, sb = ha[name], hb[name]
        if not sa.get("count") or not sb.get("count"):
            continue
        rec = {}
        for q in ("p50_s", "p99_s"):
            if q in sa and q in sb:
                rec[q] = {"before": sa[q], "after": sb[q], "delta": sb[q] - sa[q]}
        if rec:
            hists[name] = rec
        p99 = rec.get("p99_s")
        if (
            p99 is not None
            and p99["delta"] > REGRESSION_FLOOR_S
            and p99["before"] > 0
            and p99["delta"] / p99["before"] > REGRESSION_FRAC
        ):
            regressions.append(name)
    same_corpus = (
        a.get("corpus") is not None
        and a.get("corpus") == b.get("corpus")
        and a.get("command") == b.get("command")
    )
    return {
        "before": a.get("run"),
        "after": b.get("run"),
        "schema_ok": schema_a == schema_b == METRICS_SCHEMA,
        "schemas": {"before": schema_a, "after": schema_b},
        "comparable": same_corpus,
        "duration_s": {
            "before": a.get("duration_s", 0.0),
            "after": b.get("duration_s", 0.0),
            "delta": b.get("duration_s", 0.0) - a.get("duration_s", 0.0),
        },
        "counters": counters,
        "hists": hists,
        "regressions": regressions,
    }


# ---------------------------------------------------------------------------
# Benchmark-harness artifact envelope (BENCH/INCR/CHAOS/FUZZ/OBS unification)
# ---------------------------------------------------------------------------


def harness_artifact(kind: str, report: dict[str, Any]) -> dict[str, Any]:
    """One shared envelope for every CI harness JSON artifact."""
    return {
        "schema": HARNESS_SCHEMA,
        "kind": kind,
        "metrics_schema": METRICS_SCHEMA,
        "generated_unix": time.time(),
        "report": report,
    }


def write_harness_artifact(path: str | Path, kind: str, report: dict[str, Any]) -> Path:
    """Serialise :func:`harness_artifact` as JSON to ``path``."""
    import json

    p = Path(path)
    p.write_text(json.dumps(harness_artifact(kind, report), indent=2, sort_keys=True) + "\n")
    return p


def record_harness_run(
    ledger_dir: Optional[str],
    kind: str,
    collector: Optional[Collector],
    report: dict[str, Any],
    duration_s: float = 0.0,
) -> Optional[str]:
    """Optionally persist a harness run into a ledger (``--ledger-dir``).

    Harness snapshots share the CLI snapshot shape (``command`` is
    ``harness:<kind>``) so ``obs history``/``obs diff`` read them like any
    other run; failures are reported to stderr but never fail the harness.
    """
    if not ledger_dir:
        return None
    try:
        store = RunLedgerStore(ledger_dir)
        collector = collector if collector is not None else Collector()
        snap = snapshot_from_collector(
            collector,
            command=f"harness:{kind}",
            duration_s=duration_s,
            workload={"kind": kind},
        )
        snap["report"] = report
        return record_run(store, snap)
    except Exception as e:  # a broken ledger must not fail a benchmark gate
        print(f"warning: could not record {kind} harness run: {e}", file=sys.stderr)
        return None
