"""Observability: hierarchical spans, counters/gauges, trace & metrics export.

Usage — instrumenting pipeline code::

    from repro import obs

    with obs.span("parse", path=path):
        tu = parse_tokens(tokens, path)
    obs.add("lex.tokens", len(tokens))

Usage — collecting (CLI ``--profile``, tests, benchmarks)::

    with obs.collect() as col:
        run_pipeline()
    print(ascii_span_tree(aggregate_spans(col)))
    write_chrome_trace(col, "trace.json")

Everything is a near-no-op while no collector is installed; see
``spans.py`` for the cost model and DESIGN.md for the span taxonomy
(stage names are a stable public contract for benchmarks).

The persistent run ledger lives in :mod:`repro.obs.ledger` and is *not*
re-exported here: the artifact layer it builds on imports ``repro.obs``,
so consumers import it directly (``from repro.obs import ledger``).
"""

from repro.obs.counters import add, gauge, get, get_gauge, get_histogram, observe
from repro.obs.export import (
    METRICS_SCHEMA,
    SpanAggregate,
    aggregate_spans,
    chrome_trace,
    metrics_json,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.hist import BOUNDS, Histogram
from repro.obs.spans import (
    Collector,
    SpanRecord,
    collect,
    current_collector,
    enabled,
    span,
    traced,
)

__all__ = [
    "BOUNDS",
    "Collector",
    "Histogram",
    "SpanRecord",
    "SpanAggregate",
    "METRICS_SCHEMA",
    "add",
    "gauge",
    "get",
    "get_gauge",
    "get_histogram",
    "observe",
    "collect",
    "current_collector",
    "enabled",
    "span",
    "traced",
    "aggregate_spans",
    "chrome_trace",
    "metrics_json",
    "write_chrome_trace",
    "write_metrics",
]
