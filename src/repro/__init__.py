"""repro — a from-scratch reproduction of "A Metric for HPC Programming
Model Productivity" (Lin, Deakin & McIntosh-Smith, SC 2024).

The package implements TBMD (Tree-Based Model Divergence) end to end:

* :mod:`repro.trees` / :mod:`repro.distance` — semantic-bearing trees and
  the TED / diff kernels,
* :mod:`repro.lang` — MiniC++ and MiniFortran frontends (lexer,
  preprocessor, parser, sema, CSTs),
* :mod:`repro.compiler` — MiniIR lowering with offload bundles (``T_ir``),
* :mod:`repro.exec` / :mod:`repro.coverage` — AST interpreter and coverage,
* :mod:`repro.metrics` — SLOC/LLOC/Source and the TBMD tree metrics,
* :mod:`repro.analysis` / :mod:`repro.viz` — clustering, heatmaps, figures,
* :mod:`repro.obs` — observability: spans, counters, trace/metrics export,
* :mod:`repro.perfport` — Φ, cascade plots, navigation charts,
* :mod:`repro.workflow` — compile-DB ingestion, indexing, Codebase DBs, CLI,
* :mod:`repro.corpus` — BabelStream/miniBUDE/TeaLeaf/CloverLeaf ports.

Quickstart::

    from repro.corpus import index_app
    from repro.workflow import MetricSpec, divergence

    cbs = index_app("babelstream", models=["serial", "omp", "cuda"])
    d = divergence(cbs["serial"], cbs["cuda"], MetricSpec("Tsem"))
"""

__version__ = "1.0.0"

from repro.trees import Node, SourceSpan
from repro.distance import ted, ted_normalized

__all__ = ["Node", "SourceSpan", "ted", "ted_normalized", "__version__"]
