"""Performance portability (Φ) and the combined navigation charts (§VI).

The paper benchmarks TeaLeaf/CloverLeaf on six platforms (Table III). With
no hardware available, a roofline performance model generates the
efficiency matrix (see DESIGN.md substitutions): platform peaks from Table
III, per-(app, model, platform) support and efficiency factors calibrated
to the paper's qualitative results, plus seeded measurement noise. Φ,
cascade plots and navigation charts consume only that matrix, so their
shapes are exactly the artefacts the paper reports.
"""

from repro.perfport.platforms import Platform, PLATFORMS, platform_by_abbr
from repro.perfport.perfmodel import PerfModel, EfficiencyMatrix
from repro.perfport.pp_metric import phi, app_efficiency
from repro.perfport.cascade import CascadeData, cascade
from repro.perfport.navigation import NavigationChart, NavPoint, navigation_chart

__all__ = [
    "Platform",
    "PLATFORMS",
    "platform_by_abbr",
    "PerfModel",
    "EfficiencyMatrix",
    "phi",
    "app_efficiency",
    "CascadeData",
    "cascade",
    "NavigationChart",
    "NavPoint",
    "navigation_chart",
]
