"""Platform registry — the paper's Table III, with roofline peaks.

Names, abbreviations and topology are verbatim Table III; the peak numbers
are public spec-sheet values used by the roofline performance model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Platform:
    vendor: str
    name: str
    abbr: str
    topology: str
    kind: str  # "cpu" | "gpu"
    #: achievable memory bandwidth per benchmark node, GB/s
    mem_bw: float
    #: FP64 peak per benchmark node, GFLOP/s
    flops: float


#: Table III (order preserved).
PLATFORMS: tuple[Platform, ...] = (
    Platform("Intel", "Xeon Platinum 8468", "SPR", "8 nodes (32C*2)", "cpu", 480.0, 4300.0),
    Platform("AMD", "EPYC 7713", "Milan", "8 nodes (64C*2)", "cpu", 340.0, 3600.0),
    Platform("AWS", "Graviton 3e", "G3e", "8 nodes (64C*1)", "cpu", 300.0, 1900.0),
    Platform("NVIDIA", "Tesla H100 (SXM 80GB)", "H100", "2 nodes (4 GPUs)", "gpu", 3350.0, 34000.0),
    Platform("AMD", "Instinct MI250X", "MI250X", "2 nodes (4 GPUs)", "gpu", 3280.0, 47900.0),
    Platform("Intel", "Data Center GPU Max 1550", "PVC", "1 node (4 GPUs*)", "gpu", 3280.0, 52000.0),
)


def platform_by_abbr(abbr: str) -> Platform:
    for p in PLATFORMS:
        if p.abbr == abbr:
            return p
    raise KeyError(f"unknown platform {abbr!r}")


def cpu_platforms() -> list[Platform]:
    return [p for p in PLATFORMS if p.kind == "cpu"]


def gpu_platforms() -> list[Platform]:
    return [p for p in PLATFORMS if p.kind == "gpu"]
