"""The performance-portability metric Φ (Pennycook, Sewall & Lee 2016).

Φ(a, p, H) is the harmonic mean of an application's efficiency over the
platform set H, and zero if any platform in H is unsupported:

    Φ = |H| / Σ_{i∈H} 1/e_i(a, p)   if e_i > 0 for all i, else 0
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro import obs
from repro.perfport.perfmodel import EfficiencyMatrix


def phi(efficiencies: Iterable[float]) -> float:
    """Harmonic-mean Φ over one model's per-platform efficiencies."""
    effs = list(efficiencies)
    if not effs or any(e <= 0.0 for e in effs):
        return 0.0
    return len(effs) / sum(1.0 / e for e in effs)


def app_efficiency(perf: float, best: float) -> float:
    """Application efficiency: achieved / best-observed on the platform."""
    return perf / best if best > 0 else 0.0


def phi_table(matrix: EfficiencyMatrix) -> dict[str, float]:
    """Φ per model over the full platform set of the matrix."""
    with obs.span("phi", app=matrix.app, models=len(matrix.models)):
        return {m: phi(matrix.eff[i].tolist()) for i, m in enumerate(matrix.models)}


def phi_subset(matrix: EfficiencyMatrix, platforms: Sequence[str]) -> dict[str, float]:
    """Φ per model over a platform subset (navigation-chart scenarios)."""
    idx = [matrix.platforms.index(p) for p in platforms]
    return {m: phi(matrix.eff[i, idx].tolist()) for i, m in enumerate(matrix.models)}
