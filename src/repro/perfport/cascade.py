"""Cascade plots (Sewall et al. 2020) — Figs. 11 & 12.

For each model, platforms are ordered by decreasing efficiency and Φ is
re-evaluated over the growing subsets; an unsupported platform collapses
the tail to zero. The right-hand panel is the final Φ bar per model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfport.perfmodel import EfficiencyMatrix
from repro.perfport.pp_metric import phi


@dataclass
class CascadeSeries:
    model: str
    #: platform abbreviations in this model's cascade order
    order: list[str]
    #: efficiency at each cascade position
    efficiencies: list[float]
    #: Φ over the first k platforms, k = 1..n
    phis: list[float]

    @property
    def final_phi(self) -> float:
        return self.phis[-1] if self.phis else 0.0


@dataclass
class CascadeData:
    app: str
    series: list[CascadeSeries] = field(default_factory=list)

    def by_model(self, model: str) -> CascadeSeries:
        for s in self.series:
            if s.model == model:
                return s
        raise KeyError(model)

    def phi_bars(self) -> dict[str, float]:
        return {s.model: s.final_phi for s in self.series}

    def to_csv(self) -> str:
        lines = ["model,position,platform,efficiency,phi"]
        for s in self.series:
            for k, (p, e, f) in enumerate(zip(s.order, s.efficiencies, s.phis), start=1):
                lines.append(f"{s.model},{k},{p},{e:.4f},{f:.4f}")
        return "\n".join(lines)


def cascade(matrix: EfficiencyMatrix) -> CascadeData:
    """Build the cascade series for every model of an efficiency matrix."""
    data = CascadeData(app=matrix.app)
    for i, model in enumerate(matrix.models):
        effs = matrix.eff[i].tolist()
        order = sorted(range(len(effs)), key=lambda j: -effs[j])
        ordered_eff = [effs[j] for j in order]
        phis = [phi(ordered_eff[: k + 1]) for k in range(len(order))]
        data.series.append(
            CascadeSeries(
                model=model,
                order=[matrix.platforms[j] for j in order],
                efficiencies=ordered_eff,
                phis=phis,
            )
        )
    return data
