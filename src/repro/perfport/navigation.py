"""Navigation charts (Figs. 13, 14, 15): Φ against model divergence.

Each model contributes two connected points — its ``T_sem`` (★) and
``T_src`` (●) divergence from the serial baseline — at its Φ height. "The
ideal model is located in the top right quadrant, where it shares proximity
to the serial model and has good performance portability"; the x-axis runs
*towards no resemblance of serial code* as divergence grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.workflow.codebase import IndexedCodebase


@dataclass
class NavPoint:
    model: str
    phi: float
    #: divergence under T_sem (semantic) and T_src (perceived)
    tsem: float
    tsrc: float

    @property
    def perceived_bloat(self) -> float:
        """Positive when the source *looks* more complex than it is
        semantically (the SYCL-accessor observation of §VI)."""
        return self.tsrc - self.tsem


@dataclass
class NavigationChart:
    app: str
    points: list[NavPoint] = field(default_factory=list)

    def by_model(self, model: str) -> NavPoint:
        for p in self.points:
            if p.model == model:
                return p
        raise KeyError(model)

    def ranked(self) -> list[NavPoint]:
        """Models ranked by a simple ideal-quadrant score: Φ minus semantic
        divergence (top-right is best)."""
        return sorted(self.points, key=lambda p: -(p.phi - p.tsem))

    def to_csv(self) -> str:
        lines = ["model,phi,tsem,tsrc"]
        for p in self.points:
            lines.append(f"{p.model},{p.phi:.4f},{p.tsem:.4f},{p.tsrc:.4f}")
        return "\n".join(lines)


def navigation_chart(
    app: str,
    phis: Mapping[str, float],
    tsem: Mapping[str, float],
    tsrc: Mapping[str, float],
    models: Optional[Sequence[str]] = None,
) -> NavigationChart:
    """Assemble a navigation chart from Φ and divergence tables.

    Models with Φ = 0 are still plotted: "divergence is unaffected by Φ".
    """
    chart = NavigationChart(app=app)
    for m in models if models is not None else sorted(phis):
        chart.points.append(
            NavPoint(
                model=m,
                phi=float(phis.get(m, 0.0)),
                tsem=float(tsem.get(m, 0.0)),
                tsrc=float(tsrc.get(m, 0.0)),
            )
        )
    return chart


def navigation_chart_from_codebases(
    app: str,
    phis: Mapping[str, float],
    baseline: IndexedCodebase,
    others: Sequence[IndexedCodebase],
    engine=None,
) -> NavigationChart:
    """Assemble a navigation chart by computing both divergence rows.

    The ``T_sem`` and ``T_src`` rows are independent baseline→model
    evaluations, so they are scheduled as one flat batch through ``engine``
    (a :class:`repro.distance.engine.DistanceEngine`; serial when ``None``)
    and benefit from its workers and persistent TED cache.
    """
    # deferred import: perfport is otherwise independent of the workflow
    # layer, and comparer pulls in the whole metric stack
    from repro.workflow.comparer import MetricSpec, divergence_row

    tsem = divergence_row(baseline, others, MetricSpec("Tsem"), engine=engine)
    tsrc = divergence_row(baseline, others, MetricSpec("Tsrc"), engine=engine)
    return navigation_chart(app, phis, tsem, tsrc, [cb.model for cb in others])
