"""Roofline performance model — the benchmark-testbed substitute.

For every (application, model, platform) the model produces a synthetic
"measured" figure of merit:

``perf = roofline(platform, app) × support(model, platform) ×
model_factor(model, platform_kind) × noise``

where ``roofline`` picks the bandwidth or compute ceiling by the app's
arithmetic intensity, ``support`` is 0/1 (a model that cannot target a
platform scores zero — CUDA off NVIDIA, TBB on GPUs, ...), the model
factors encode well-documented efficiency relationships (first-party ≥
portability layers ≥ directives-on-GPU, host OpenMP ≈ native on CPUs,
serial ≈ single-core), and noise is a seeded ±3% deterministic jitter.

These choices make "who wins, by roughly what factor, where crossovers
fall" match the paper's cascade plots without pretending to reproduce
absolute testbed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.perfport.platforms import PLATFORMS, Platform

#: Application characterisation (Table II "Type" column).
APP_INTENSITY = {
    "babelstream": 0.08,  # memory BW bound
    "babelstream-fortran": 0.08,
    "minibude": 14.0,  # compute bound
    "cloverleaf": 0.2,  # memory BW / structured grid
    "tealeaf": 0.15,  # memory BW / structured grid (CG solver)
}

#: model -> platform kinds it can execute on at all.
MODEL_SUPPORT = {
    "serial": {"cpu"},
    "omp": {"cpu"},
    "omp-taskloop": {"cpu"},
    "omp-target": {"cpu", "gpu"},
    "cuda": {"gpu:NVIDIA"},
    "hip": {"gpu:AMD", "gpu:NVIDIA"},
    "sycl-acc": {"cpu", "gpu"},
    "sycl-usm": {"cpu", "gpu"},
    "kokkos": {"cpu", "gpu"},
    "tbb": {"cpu"},
    "stdpar": {"cpu", "gpu:NVIDIA", "gpu:Intel"},
    # Fortran models
    "sequential": {"cpu"},
    "array": {"cpu"},
    "doconcurrent": {"cpu", "gpu:NVIDIA"},
    "openacc": {"cpu", "gpu:NVIDIA", "gpu:AMD"},
    "openacc-array": {"cpu", "gpu:NVIDIA", "gpu:AMD"},
}

#: model -> (cpu efficiency factor, gpu efficiency factor) against roofline.
MODEL_FACTOR = {
    "serial": (0.035, 0.0),
    "sequential": (0.035, 0.0),
    "array": (0.040, 0.0),
    "omp": (0.92, 0.0),
    "omp-taskloop": (0.84, 0.0),
    "omp-target": (0.78, 0.86),
    "cuda": (0.0, 0.95),
    "hip": (0.0, 0.93),
    "sycl-acc": (0.80, 0.88),
    "sycl-usm": (0.82, 0.86),
    "kokkos": (0.88, 0.90),
    "tbb": (0.86, 0.0),
    "stdpar": (0.80, 0.82),
    "doconcurrent": (0.80, 0.75),
    "openacc": (0.045, 0.70),  # single-threaded on CPU: GCC QoI issue (§V-B)
    "openacc-array": (0.05, 0.70),
}


def _supported(model: str, platform: Platform) -> bool:
    rules = MODEL_SUPPORT.get(model, set())
    if platform.kind in rules:
        return True
    return f"{platform.kind}:{platform.vendor}" in rules


@dataclass
class EfficiencyMatrix:
    """models × platforms application-efficiency matrix in [0, 1]."""

    app: str
    models: list[str]
    platforms: list[str]
    #: raw synthetic performance (figure of merit, higher is better)
    perf: np.ndarray
    #: application efficiency: perf / best perf on that platform
    eff: np.ndarray

    def efficiency(self, model: str, platform: str) -> float:
        return float(self.eff[self.models.index(model), self.platforms.index(platform)])

    def row(self, model: str) -> dict[str, float]:
        i = self.models.index(model)
        return dict(zip(self.platforms, self.eff[i].tolist()))

    def to_csv(self) -> str:
        lines = ["model," + ",".join(self.platforms)]
        for m, row in zip(self.models, self.eff):
            lines.append(m + "," + ",".join(f"{v:.4f}" for v in row))
        return "\n".join(lines)


class PerfModel:
    """Deterministic synthetic benchmark results."""

    def __init__(self, seed: int = 20240817):
        self.seed = seed

    def roofline(self, app: str, platform: Platform) -> float:
        """Attainable GFLOP/s by the classic roofline (min of ceilings)."""
        intensity = APP_INTENSITY.get(app, 1.0)
        return min(platform.flops, platform.mem_bw * intensity)

    def performance(self, app: str, model: str, platform: Platform) -> float:
        """Synthetic measured figure of merit; 0.0 when unsupported."""
        if not _supported(model, platform):
            return 0.0
        cpu_f, gpu_f = MODEL_FACTOR.get(model, (0.5, 0.5))
        factor = cpu_f if platform.kind == "cpu" else gpu_f
        if factor <= 0.0:
            return 0.0
        base = self.roofline(app, platform) * factor
        # seeded deterministic jitter: ±3%, stable across runs
        rng = np.random.default_rng(
            abs(hash((self.seed, app, model, platform.abbr))) % (2**32)
        )
        return base * (1.0 + rng.uniform(-0.03, 0.03))

    def efficiency_matrix(
        self,
        app: str,
        models: Sequence[str],
        platforms: Optional[Sequence[Platform]] = None,
    ) -> EfficiencyMatrix:
        plats = list(platforms) if platforms is not None else list(PLATFORMS)
        perf = np.zeros((len(models), len(plats)))
        with obs.span("perfmodel", app=app, models=len(models), platforms=len(plats)):
            for i, m in enumerate(models):
                for j, p in enumerate(plats):
                    perf[i, j] = self.performance(app, m, p)
        best = perf.max(axis=0)
        eff = np.where(best > 0, perf / np.where(best > 0, best, 1.0), 0.0)
        return EfficiencyMatrix(
            app=app,
            models=list(models),
            platforms=[p.abbr for p in plats],
            perf=perf,
            eff=eff,
        )
