"""Persistent caching subsystem.

:class:`TedCacheStore` memoises unit-cost TED distances on disk, keyed by
the canonical structural-hash pair (see DESIGN.md §"TED cache key contract").
The distance layer consults the installed store via
:func:`repro.distance.ted.set_disk_cache`; the parallel engine installs it
in every worker.
"""

from repro.cache.store import KEY_SPEC, SCHEMA, TedCacheStore, pair_key

__all__ = ["KEY_SPEC", "SCHEMA", "TedCacheStore", "pair_key"]
