"""Persistent, content-addressed TED result store.

Repeat figure runs (and different figures over the same corpus) revisit the
same tree pairs; the in-process memo in :mod:`repro.distance.ted` only helps
within one process lifetime. This store memoises unit-cost TED distances on
disk so a warm run performs zero Zhang–Shasha evaluations.

Key contract (pinned in DESIGN.md §"TED cache key contract")
------------------------------------------------------------
An entry is keyed by the *canonical tree-pair hash*: the two structural
hashes (:func:`repro.trees.hashing.structural_hash`) sorted lexicographically
and joined with ``:``. The structural hash is computed over the tree as the
metric pipeline sees it — i.e. *after* name normalisation, system-include
stripping, coverage masking and inlining — so every metric spec and
normalisation flag that changes the compared tree changes the key. What the
hash cannot encode rides in ``KEY_SPEC`` (cost model + kernel semantics) and
in the payload ``schema`` version; either mismatching invalidates the entry.

Layout
------
``root/`` holds up to 256 shard files named ``ted-<xx>.svc`` (``xx`` = first
two hex digits of the smaller hash). Each shard is a standard ``SVALEDB``
container (:mod:`repro.serde.container`) whose payload is::

    {"schema": "repro.cache/v1", "keyspec": KEY_SPEC, "entries": {key: d}}

Writes are buffered in memory and flushed with read-merge-replace: the shard
is re-read, merged with the pending entries, written to a unique temp file
and ``os.replace``d into place. Concurrent writers can lose each other's
*entries* (last merge wins — it is a cache) but can never corrupt a shard.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, Optional

from repro import obs
from repro.serde.container import read_blob, write_blob
from repro.util.errors import SerdeError

#: Payload schema version; bump when the entry layout changes. Old shards
#: are silently invalidated (treated as empty) on the lenient read path.
SCHEMA = "repro.cache/v1"

#: What the structural hashes cannot encode: the cost model and the kernel
#: family whose distances the entries hold. Part of the stable key contract.
KEY_SPEC = "ted:unit:zs"

_SHARD_PREFIX = "ted-"
_SHARD_SUFFIX = ".svc"


def pair_key(h1: str, h2: str) -> str:
    """Canonical cache key for an unordered pair of structural hashes.

    Unit-cost TED is symmetric, so the pair is stored once under the sorted
    order.
    """
    return f"{h1}:{h2}" if h1 <= h2 else f"{h2}:{h1}"


def _shard_id(key: str) -> str:
    return key[:2]


class TedCacheStore:
    """On-disk memo of unit-cost TED distances, sharded by hash prefix."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: shard id -> entries loaded from disk (lenient reads)
        self._loaded: dict[str, dict[str, float]] = {}
        #: shard id -> entries recorded this run, not yet flushed
        self._pending: dict[str, dict[str, float]] = {}

    # -- paths -------------------------------------------------------------

    def shard_path(self, shard: str) -> Path:
        return self.root / f"{_SHARD_PREFIX}{shard}{_SHARD_SUFFIX}"

    def _shard_ids_on_disk(self) -> list[str]:
        out = []
        for p in sorted(self.root.glob(f"{_SHARD_PREFIX}??{_SHARD_SUFFIX}")):
            out.append(p.name[len(_SHARD_PREFIX) : -len(_SHARD_SUFFIX)])
        return out

    # -- reading -----------------------------------------------------------

    def read_shard(self, shard: str) -> dict[str, float]:
        """Entries of one shard file, *strict*: a corrupt or foreign file, a
        container-version bump, or a schema/keyspec mismatch raises a clear
        :class:`SerdeError` instead of returning partial data.
        """
        path = self.shard_path(shard)
        payload = read_blob(path)  # raises SerdeError on foreign/corrupt
        if not isinstance(payload, dict) or "schema" not in payload:
            raise SerdeError(f"{path}: not a TED cache shard")
        if payload.get("schema") != SCHEMA:
            raise SerdeError(
                f"{path}: cache schema {payload.get('schema')!r} != {SCHEMA!r}"
            )
        if payload.get("keyspec") != KEY_SPEC:
            raise SerdeError(
                f"{path}: cache keyspec {payload.get('keyspec')!r} != {KEY_SPEC!r}"
            )
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            raise SerdeError(f"{path}: malformed cache entries")
        return entries

    def _load(self, shard: str) -> dict[str, float]:
        """Lenient shard load used on the hot path: anything unreadable
        (corrupt, foreign, stale schema) counts as ``cache.disk.invalid``
        and behaves as an empty shard — the engine recomputes and the next
        flush rewrites the shard in the current format.
        """
        cached = self._loaded.get(shard)
        if cached is not None:
            return cached
        entries: dict[str, float] = {}
        if self.shard_path(shard).exists():
            try:
                entries = self.read_shard(shard)
            except SerdeError:
                obs.add("cache.disk.invalid")
        self._loaded[shard] = entries
        return entries

    def lookup(self, h1: str, h2: str) -> Optional[float]:
        """Stored distance for the pair, or ``None`` on a miss."""
        key = pair_key(h1, h2)
        shard = _shard_id(key)
        pending = self._pending.get(shard)
        if pending is not None and key in pending:
            return pending[key]
        return self._load(shard).get(key)

    # -- writing -----------------------------------------------------------

    def record(self, h1: str, h2: str, distance: float) -> None:
        """Buffer one distance for the next :meth:`flush`."""
        key = pair_key(h1, h2)
        self._pending.setdefault(_shard_id(key), {})[key] = float(distance)

    def flush(self) -> int:
        """Write pending entries to disk; returns the number written.

        Each dirty shard is re-read (picking up entries other processes
        flushed meanwhile), merged, and atomically replaced.
        """
        written = 0
        for shard, pending in sorted(self._pending.items()):
            self._loaded.pop(shard, None)  # re-read: another writer may have run
            entries = dict(self._load(shard))
            entries.update(pending)
            payload = {"schema": SCHEMA, "keyspec": KEY_SPEC, "entries": entries}
            tmp = self.root / f".{_SHARD_PREFIX}{shard}.{os.getpid()}.tmp"
            write_blob(tmp, payload)
            os.replace(tmp, self.shard_path(shard))
            self._loaded[shard] = entries
            written += len(pending)
        self._pending.clear()
        return written

    def drop_loaded(self) -> None:
        """Forget in-memory shard snapshots so the next lookup re-reads disk
        (used after other processes may have flushed new entries)."""
        self._loaded.clear()

    # -- maintenance -------------------------------------------------------

    def __len__(self) -> int:
        ids = set(self._shard_ids_on_disk()) | set(self._pending)
        total = 0
        for shard in ids:
            keys = set(self._load(shard))
            keys.update(self._pending.get(shard, ()))
            total += len(keys)
        return total

    def iter_entries(self) -> Iterator[tuple[str, float]]:
        """All (key, distance) pairs currently on disk (lenient)."""
        for shard in self._shard_ids_on_disk():
            yield from self._load(shard).items()

    def stats(self) -> dict:
        """Store summary for ``silvervale cache stats`` (strict per shard:
        unreadable shards are reported, not hidden)."""
        shards = self._shard_ids_on_disk()
        entries = 0
        size_bytes = 0
        invalid: list[str] = []
        for shard in shards:
            size_bytes += self.shard_path(shard).stat().st_size
            try:
                entries += len(self.read_shard(shard))
            except SerdeError:
                invalid.append(shard)
        return {
            "root": str(self.root),
            "schema": SCHEMA,
            "keyspec": KEY_SPEC,
            "shards": len(shards),
            "entries": entries,
            "bytes": size_bytes,
            "invalid_shards": invalid,
        }

    def clear(self) -> int:
        """Delete every shard file; returns the number removed."""
        removed = 0
        for shard in self._shard_ids_on_disk():
            self.shard_path(shard).unlink(missing_ok=True)
            removed += 1
        self._loaded.clear()
        self._pending.clear()
        return removed
