"""Persistent, content-addressed TED result store.

Repeat figure runs (and different figures over the same corpus) revisit the
same tree pairs; the in-process memo in :mod:`repro.distance.ted` only helps
within one process lifetime. This store memoises unit-cost TED distances on
disk so a warm run performs zero Zhang–Shasha evaluations.

Key contract (pinned in DESIGN.md §"TED cache key contract")
------------------------------------------------------------
An entry is keyed by the *canonical tree-pair hash*: the two structural
hashes (:func:`repro.trees.hashing.structural_hash`) sorted lexicographically
and joined with ``:``. The structural hash is computed over the tree as the
metric pipeline sees it — i.e. *after* name normalisation, system-include
stripping, coverage masking and inlining — so every metric spec and
normalisation flag that changes the compared tree changes the key. What the
hash cannot encode rides in ``KEY_SPEC`` (cost model + kernel semantics) and
in the payload ``schema`` version; either mismatching invalidates the entry.

Layout
------
The store is the ``ted`` namespace of the generic artifact layer
(:class:`repro.artifacts.ShardMapStore`): up to 256 shard files named
``ted-<xx>.svc`` (``xx`` = first two hex digits of the smaller hash), each a
standard ``SVALEDB`` container whose payload is::

    {"schema": "repro.cache/v1", "keyspec": KEY_SPEC, "entries": {key: d}}

Sharding, pending-write buffering, atomic read-merge-replace flushes and
the strict/lenient read split all live in the artifact layer.
"""

from __future__ import annotations

from typing import Optional

from repro.artifacts import ShardMapStore

#: Payload schema version; bump when the entry layout changes. Old shards
#: are silently invalidated (treated as empty) on the lenient read path.
SCHEMA = "repro.cache/v1"

#: What the structural hashes cannot encode: the cost model and the kernel
#: family whose distances the entries hold. Part of the stable key contract.
KEY_SPEC = "ted:unit:zs"


def pair_key(h1: str, h2: str) -> str:
    """Canonical cache key for an unordered pair of structural hashes.

    Unit-cost TED is symmetric, so the pair is stored once under the sorted
    order.
    """
    return f"{h1}:{h2}" if h1 <= h2 else f"{h2}:{h1}"


def _shard_id(key: str) -> str:
    return ShardMapStore.shard_of(key)


class TedCacheStore(ShardMapStore):
    """On-disk memo of unit-cost TED distances, sharded by hash prefix."""

    NAMESPACE = "ted"
    SCHEMA = SCHEMA
    KEY_SPEC = KEY_SPEC
    DESCRIPTION = "TED cache shard"
    KIND = "cache"
    INVALID_COUNTER = "cache.disk.invalid"

    def lookup(self, h1: str, h2: str) -> Optional[float]:
        """Stored distance for the pair, or ``None`` on a miss."""
        return self.get(pair_key(h1, h2))

    def record(self, h1: str, h2: str, distance: float) -> None:
        """Buffer one distance for the next :meth:`flush`."""
        self.put(pair_key(h1, h2), float(distance))
